PYTHON ?= python
JOBS ?= 4

export PYTHONPATH := src

.PHONY: test test-perf bench bench-baseline bench-smoke

test:
	$(PYTHON) -m pytest tests/ -q

test-perf:
	$(PYTHON) -m pytest tests/perf tests/bdd/test_swap_properties.py -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-smoke:
	$(PYTHON) -m pytest benchmarks/test_perf_smoke.py -q

# Regenerate the committed perf trajectory point.
bench-baseline:
	$(PYTHON) -m repro bench perf --jobs $(JOBS) --perf-json BENCH_compact.json
