PYTHON ?= python
JOBS ?= 4

export PYTHONPATH := src

.PHONY: test test-perf bench bench-baseline bench-smoke verify serve check \
	campaign-smoke synth3d-smoke service-load-smoke

test:
	$(PYTHON) -m pytest tests/ -q

# Static analysis: self-lint src/, lint the example circuits and the
# committed check fixtures (bad fixtures are expected to have findings,
# so they are exercised by tests/check instead of linted here).
check:
	$(PYTHON) -m repro check --self --src src/repro examples/circuits

# Tier-1 tests + fault-injection smoke + perf baseline schema check.
verify:
	$(PYTHON) -m pytest tests/ -x -q
	$(PYTHON) -m pytest tests/robust/test_injection_smoke.py -q
	$(PYTHON) -c "import json; from repro.perf import validate_bench_payload; \
	validate_bench_payload(json.load(open('BENCH_compact.json'))); \
	print('BENCH_compact.json: schema OK')"

test-perf:
	$(PYTHON) -m pytest tests/perf tests/bdd/test_swap_properties.py -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-smoke:
	$(PYTHON) -m pytest benchmarks/test_perf_smoke.py -q

# Regenerate the committed perf trajectory point.
bench-baseline:
	$(PYTHON) -m repro bench perf --jobs $(JOBS) --layer-sweep 1,2,3 \
	  --perf-json BENCH_compact.json

# Chaos-ridden yield campaign: kill workers, drop connections, corrupt
# cache and checkpoint files, then assert the resumed report is
# bit-identical to a fault-free run. Exit 1 on divergence.
campaign-smoke:
	$(PYTHON) -m repro bench campaign --chaos --samples 40 --shard-size 5 \
	  --p-stuck-on 0.01 --p-stuck-off 0.05

# 3D path end to end: two-layer synthesis (validated) on two example
# circuits, each artifact re-checked against its layered certificate
# (repro check exits 1 on any non-INFO finding), then a small layer
# sweep through the bench harness.
SYNTH3D_TMP ?= .synth3d-smoke
synth3d-smoke:
	mkdir -p $(SYNTH3D_TMP)
	$(PYTHON) -m repro synth examples/circuits/c17.v --layers 2 \
	  --json $(SYNTH3D_TMP)/c17-2l.json
	$(PYTHON) -m repro synth examples/circuits/maj3.pla --layers 2 \
	  --json $(SYNTH3D_TMP)/maj3-2l.json
	$(PYTHON) -m repro check $(SYNTH3D_TMP)/c17-2l.json --json
	$(PYTHON) -m repro check $(SYNTH3D_TMP)/maj3-2l.json --json
	$(PYTHON) -m repro bench perf --circuits c17,voter9 --layer-sweep 1,2 \
	  --jobs 2 --time-limit 10

# Load-generator smoke: drive the async front with the cached mix and
# gate on a conservative RPS floor and a zero error budget. The floor
# is ~20x below what a 1-CPU box measures (~12k RPS), so only a real
# regression — not a noisy runner — trips it.
service-load-smoke:
	$(PYTHON) -m repro bench service --load cached --connections 64 \
	  --requests-per-conn 40 --pipeline 8 --jobs 2 \
	  --rps-floor 500 --max-error-rate 0

# Persistent synthesis service on a local Unix socket.
SERVICE_SOCKET ?= /tmp/repro.sock
serve:
	$(PYTHON) -m repro serve --socket $(SERVICE_SOCKET) --jobs $(JOBS) \
	  --cache-dir .repro-cache
