"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table/figure of the paper.  Rendered
tables are written to ``benchmarks/results/`` (pytest captures stdout,
so files are the canonical artifact) and key aggregates are attached to
pytest-benchmark's ``extra_info`` so they show up in its JSON exports.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result():
    def _save(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save


@pytest.fixture(scope="session")
def tier():
    """Benchmark tier: fast by default, full with REPRO_SUITE=full."""
    return os.environ.get("REPRO_SUITE", "fast")


@pytest.fixture(scope="session", autouse=True)
def _write_summary(_results_dir):
    """After the bench session, collate all artifacts into SUMMARY.md."""
    yield
    from repro.bench import generate_summary

    try:
        (RESULTS_DIR / "SUMMARY.md").write_text(generate_summary(RESULTS_DIR))
    except Exception:  # pragma: no cover - summary is best-effort
        pass
