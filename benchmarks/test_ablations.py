"""Ablation benches for COMPACT's design choices.

Not figures from the paper, but quantifications of the knobs the paper
discusses in prose:

* alignment constraints (Eq. 7) — what do they cost?
* variable ordering — static DFS vs interleaved vs sifted;
* Nemhauser–Trotter kernelization — solver speedup for Method A;
* exact vs greedy-heuristic labeling — quality gap.
"""

import time

import pytest

from repro.bdd import build_sbdd, sbdd_size_for_order, sift_order, static_order, interleaved_order
from repro.bench.suites import circuit
from repro.bench.tables import Table
from repro.core import (
    label_heuristic,
    label_min_semiperimeter,
    label_weighted,
    preprocess,
)
from repro.graphs import cartesian_product_k2, minimum_vertex_cover

CIRCUITS = ["c17", "parity16", "cmp8", "int2float", "priority32"]


def graph_of(name):
    return preprocess(build_sbdd(circuit(name)))


def test_ablation_alignment_cost(benchmark, save_result):
    """Alignment pins outputs/input to wordlines; measure its price."""

    def run():
        table = Table(
            "Ablation: alignment constraints (gamma=0.5)",
            ["benchmark", "S(free)", "S(aligned)", "D(free)", "D(aligned)"],
        )
        rows = []
        for name in CIRCUITS:
            bg = graph_of(name)
            free = label_weighted(bg, gamma=0.5, alignment=False, time_limit=30)
            pinned = label_weighted(bg, gamma=0.5, alignment=True, time_limit=30)
            rows.append((free, pinned))
            table.add_row(
                name, free.semiperimeter, pinned.semiperimeter,
                free.max_dimension, pinned.max_dimension,
            )
        return table, rows

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_alignment", table.render())
    for free, pinned in rows:
        # A constraint can never improve the optimum.
        assert free.objective(0.5) <= pinned.objective(0.5) + 1e-9


def test_ablation_variable_ordering(benchmark, save_result):
    """BDD size (hence crossbar size) under three ordering strategies."""

    def run():
        table = Table(
            "Ablation: variable ordering (SBDD nodes)",
            ["benchmark", "natural", "static DFS", "interleaved", "sifted"],
        )
        data = []
        for name in ("rca8", "cmp8", "mux16"):
            nl = circuit(name)
            natural = sbdd_size_for_order(nl, list(nl.inputs))
            static = sbdd_size_for_order(nl, static_order(nl))
            inter = sbdd_size_for_order(nl, interleaved_order(nl))
            sifted = sbdd_size_for_order(
                nl, sift_order(nl, max_rounds=1, time_budget=20)
            )
            data.append((name, natural, static, inter, sifted))
            table.add_row(name, natural, static, inter, sifted)
        return table, data

    table, data = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_ordering", table.render())
    for _name, natural, static, _inter, sifted in data:
        assert sifted <= static  # sifting starts from static and only improves
    # On bus-structured arithmetic, interleaving must beat the natural order.
    rca = next(d for d in data if d[0] == "rca8")
    assert rca[3] < rca[1]


def test_ablation_nt_kernelization(benchmark, save_result):
    """Vertex cover with vs without the Nemhauser-Trotter kernel."""

    def run():
        table = Table(
            "Ablation: NT kernelization for Method A's vertex cover",
            ["benchmark", "|V(P)|", "t(kernel)", "t(raw)", "same optimum"],
        )
        rows = []
        for name in ("cmp8", "int2float", "priority32"):
            product = cartesian_product_k2(graph_of(name).graph)
            t0 = time.monotonic()
            with_k = minimum_vertex_cover(product, use_kernelization=True)
            t_k = time.monotonic() - t0
            t0 = time.monotonic()
            without = minimum_vertex_cover(product, use_kernelization=False)
            t_raw = time.monotonic() - t0
            same = len(with_k.cover) == len(without.cover)
            rows.append((name, t_k, t_raw, same))
            table.add_row(name, len(product), round(t_k, 3), round(t_raw, 3), same)
        return table, rows

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_kernelization", table.render())
    for _name, _t_k, _t_raw, same in rows:
        assert same  # kernelization must not change the optimum


def test_ablation_exact_vs_heuristic(benchmark, save_result):
    """Quality gap of the greedy labeler vs exact Method A."""

    def run():
        table = Table(
            "Ablation: exact OCT vs greedy heuristic labeling",
            ["benchmark", "S(exact)", "S(greedy)", "overhead"],
        )
        overheads = []
        for name in CIRCUITS:
            bg = graph_of(name)
            exact = label_min_semiperimeter(bg, time_limit=30)
            greedy = label_heuristic(bg)
            over = greedy.semiperimeter / exact.semiperimeter - 1
            overheads.append(over)
            table.add_row(
                name, exact.semiperimeter, greedy.semiperimeter, f"{over:.1%}"
            )
        return table, overheads

    table, overheads = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_heuristic", table.render())
    assert all(o >= -1e-9 for o in overheads)  # greedy never beats exact
    assert sum(overheads) / len(overheads) < 0.15  # ...and stays close
