"""Ablation: ROBDD vs free-BDD (FBDD) representations under COMPACT.

The paper builds on work that mapped both ROBDDs and FBDDs [16, 17];
this bench measures what the relaxed (free) variable order buys on our
suite when both feed the same labeling + mapping pipeline.
"""

from repro.bdd import build_fbdd, build_sbdd, fbdd_to_bdd_graph
from repro.bench.suites import circuit
from repro.bench.tables import Table
from repro.core import Compact, preprocess

CIRCUITS = ["c17", "mux16", "voter9", "cmp8", "i2c_like", "priority32"]


def test_fbdd_vs_robdd(benchmark, save_result):
    def run():
        table = Table(
            "Ablation: ROBDD vs FBDD under COMPACT (gamma=0.5)",
            ["benchmark", "n(ROBDD)", "S(ROBDD)", "n(FBDD)", "S(FBDD)"],
        )
        rows = []
        compact = Compact(gamma=0.5, time_limit=30)
        for name in CIRCUITS:
            nl = circuit(name)
            sbdd = build_sbdd(nl)
            robdd_graph = preprocess(sbdd)
            design_r, _, _ = compact.synthesize_bdd_graph(robdd_graph, name=f"{name}:robdd")

            fbdd = build_fbdd(sbdd)
            fbdd_graph = fbdd_to_bdd_graph(fbdd)
            design_f, _, _ = compact.synthesize_bdd_graph(fbdd_graph, name=f"{name}:fbdd")

            rows.append({
                "name": name,
                "robdd_nodes": robdd_graph.num_nodes,
                "robdd_S": design_r.semiperimeter,
                "fbdd_nodes": fbdd_graph.num_nodes,
                "fbdd_S": design_f.semiperimeter,
            })
            table.add_row(
                name, robdd_graph.num_nodes, design_r.semiperimeter,
                fbdd_graph.num_nodes, design_f.semiperimeter,
            )
        return table, rows

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_fbdd", table.render())
    for r in rows:
        # The greedy FBDD should track the ROBDD closely and sometimes win.
        assert r["fbdd_nodes"] <= 1.5 * r["robdd_nodes"], r["name"]
    wins = sum(1 for r in rows if r["fbdd_nodes"] <= r["robdd_nodes"])
    benchmark.extra_info["fbdd_wins"] = wins
    assert wins >= len(rows) // 2
