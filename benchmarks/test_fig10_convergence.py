"""Figure 10: MIP convergence — best integer, best bound, relative gap.

The paper plots CPLEX converging on i2c over ~1000 s; our pure-Python
branch and bound plays that role on an instance it can close within the
budget, plus a truncated trace on a larger one.
"""

from repro.bench import fig10_convergence
from repro.bench.tables import text_series


def test_fig10_converges(benchmark, save_result):
    table, trace = benchmark.pedantic(
        lambda: fig10_convergence(circuit="c17", gamma=0.5, time_limit=30.0),
        rounds=1,
        iterations=1,
    )
    assert len(trace) >= 3
    bounds = [b for _, _, b, _ in trace]
    assert bounds == sorted(bounds), "dual bound must be monotone"
    incumbents = [i for _, i, _, _ in trace if i is not None]
    assert incumbents, "no incumbent found"
    assert all(a >= b for a, b in zip(incumbents, incumbents[1:]))

    final_gap = trace[-1][3]
    assert final_gap is not None and final_gap <= 1e-6, "gap should close on c17"

    xs = [t for t, _, _, _ in trace]
    save_result(
        "fig10_convergence",
        table.render()
        + "\n\nbound vs time:\n"
        + text_series(xs, bounds),
    )
    benchmark.extra_info["events"] = len(trace)
    benchmark.extra_info["final_gap"] = final_gap


def test_fig10_truncated_trace(benchmark, save_result):
    """A larger instance shows the still-open gap (paper's long tail)."""
    table, trace = benchmark.pedantic(
        lambda: fig10_convergence(circuit="mux16", gamma=0.5, time_limit=15.0),
        rounds=1,
        iterations=1,
    )
    save_result("fig10_convergence_mux16", table.render())
    assert trace
    final_gap = trace[-1][3]
    assert final_gap is not None and final_gap >= 0
    benchmark.extra_info["final_gap"] = final_gap
