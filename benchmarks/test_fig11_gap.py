"""Figure 11: relative gap at time-out for instances the solver cannot
close within the budget (the paper reports the same for c499, c1355,
arbiter after three hours of CPLEX)."""

from repro.bench import fig11_gaps


def test_fig11(benchmark, save_result):
    table, gaps = benchmark.pedantic(
        lambda: fig11_gaps(
            circuits=("voter9", "mux16", "cmp8", "alu4", "i2c_like"),
            time_limit=8.0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig11_gaps", table.render())
    assert len(gaps) == 5
    for name, gap in gaps.items():
        assert gap == gap and gap >= 0, name  # reported, non-NaN
    # At this budget some instances must remain open — that is the figure.
    assert any(gap > 0.01 for gap in gaps.values())
    benchmark.extra_info["gaps"] = {k: round(v, 4) for k, v in gaps.items()}
