"""Figure 12: normalized power and delay, COMPACT vs prior work [16].

Paper: power -19 % (fewer memristors to program thanks to SBDD sharing),
delay -56 % (fewer wordlines to program).
"""

from repro.bench import fig12_power_delay


def test_fig12(benchmark, save_result, tier):
    table, summary = benchmark.pedantic(
        lambda: fig12_power_delay(tier=tier), rounds=1, iterations=1
    )
    save_result("fig12_power_delay", table.render())
    # Power proxy: never worse than the baseline (equal when the SBDD
    # offers no sharing), delay strictly better on average.
    assert summary["power_ratio_avg"] <= 1.0
    assert summary["delay_ratio_avg"] < 0.85
    benchmark.extra_info.update(
        {k: round(v, 4) for k, v in summary.items()}
    )
