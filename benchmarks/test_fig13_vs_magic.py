"""Figure 13: COMPACT vs CONTRA-style MAGIC on the control circuits.

Paper: power -55 %, delay -87 % (8.65x) vs CONTRA with k = 4 LUTs.
Only the EPFL-control-like family is compared, as in the paper.
"""

from repro.bench import fig13_vs_magic


def test_fig13(benchmark, save_result, tier):
    table, summary = benchmark.pedantic(
        lambda: fig13_vs_magic(tier=tier, k=4, time_limit=30.0),
        rounds=1,
        iterations=1,
    )
    save_result("fig13_vs_magic", table.render())
    # Direction of the paper's claims: COMPACT needs less power (fewer
    # programmed devices than MAGIC executes operations) and less delay
    # on average across the control suite.
    assert summary["power_ratio_avg"] < 1.0
    assert summary["delay_ratio_avg"] < 1.0
    benchmark.extra_info.update({k: round(v, 4) for k, v in summary.items()})
