"""Figure 9: non-dominated (rows, cols) designs across the gamma sweep.

The paper sweeps gamma on cavlc and int2float and reports the Pareto
front of (rows, columns) designs; we sweep our int2float and cmp8
stand-ins (cavlc_like does not reach optimality within the fast budget).
"""

from repro.bench import fig9_pareto
from repro.bench.tables import text_series


def test_fig9(benchmark, save_result):
    table, series = benchmark.pedantic(
        lambda: fig9_pareto(
            circuits=("int2float", "cmp8"), n_gammas=7, time_limit=20.0
        ),
        rounds=1,
        iterations=1,
    )
    parts = [table.render()]
    for name, points in series.items():
        assert points, name
        # Pareto front: strictly decreasing cols as rows increase.
        rows = [p[0] for p in points]
        cols = [p[1] for p in points]
        assert rows == sorted(rows)
        assert cols == sorted(cols, reverse=True)
        parts.append(f"\n{name}:\n" + text_series(rows, cols))
    save_result("fig9_pareto", "\n".join(parts))
    benchmark.extra_info["fronts"] = {k: len(v) for k, v in series.items()}
