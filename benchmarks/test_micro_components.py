"""Micro-benchmarks of the pipeline stages (proper pytest-benchmark
timing with multiple rounds): BDD construction, OCT labeling, MIP
labeling, crossbar mapping, logical evaluation and analog simulation."""

import pytest

from repro import Compact
from repro.baselines import staircase_map_netlist
from repro.bdd import build_sbdd
from repro.bench.suites import circuit
from repro.core import label_min_semiperimeter, label_weighted, map_to_crossbar, preprocess
from repro.crossbar import simulate


@pytest.fixture(scope="module")
def prepared():
    nl = circuit("int2float")
    sbdd = build_sbdd(nl)
    bg = preprocess(sbdd)
    labeling = label_weighted(bg, gamma=0.5, time_limit=30)
    design = map_to_crossbar(bg, labeling)
    env = {name: (i % 3 == 0) for i, name in enumerate(nl.inputs)}
    return nl, sbdd, bg, labeling, design, env


def test_bench_bdd_construction(benchmark):
    nl = circuit("int2float")
    sbdd = benchmark(lambda: build_sbdd(nl))
    assert sbdd.node_count() > 100


def test_bench_preprocess(benchmark, prepared):
    _nl, sbdd, *_ = prepared
    bg = benchmark(lambda: preprocess(sbdd))
    assert bg.num_nodes == sbdd.node_count() - 1


def test_bench_oct_labeling(benchmark, prepared):
    _nl, _sbdd, bg, *_ = prepared
    lab = benchmark.pedantic(
        lambda: label_min_semiperimeter(bg), rounds=3, iterations=1
    )
    assert lab.is_valid(bg)


def test_bench_mip_labeling(benchmark, prepared):
    _nl, _sbdd, bg, *_ = prepared
    lab = benchmark.pedantic(
        lambda: label_weighted(bg, gamma=0.5, time_limit=30), rounds=1, iterations=1
    )
    assert lab.is_valid(bg)


def test_bench_crossbar_mapping(benchmark, prepared):
    _nl, _sbdd, bg, labeling, *_ = prepared
    design = benchmark(lambda: map_to_crossbar(bg, labeling))
    assert design.semiperimeter == labeling.semiperimeter


def test_bench_logical_evaluation(benchmark, prepared):
    nl, _sbdd, _bg, _lab, design, env = prepared
    out = benchmark(lambda: design.evaluate(env))
    assert out == nl.evaluate(env)


def test_bench_analog_simulation(benchmark, prepared):
    nl, _sbdd, _bg, _lab, design, env = prepared
    result = benchmark.pedantic(lambda: simulate(design, env), rounds=3, iterations=1)
    assert result.outputs == nl.evaluate(env)


def test_bench_full_flow_small(benchmark):
    nl = circuit("c17")
    res = benchmark(lambda: Compact(gamma=0.5).synthesize_netlist(nl))
    assert res.design.semiperimeter < 2 * res.bdd_graph.num_nodes


def test_bench_staircase_baseline(benchmark):
    nl = circuit("int2float")
    res = benchmark.pedantic(
        lambda: staircase_map_netlist(nl), rounds=3, iterations=1
    )
    assert res.design.semiperimeter == 2 * res.bdd_nodes
