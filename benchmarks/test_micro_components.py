"""Micro-benchmarks of the pipeline stages (proper pytest-benchmark
timing with multiple rounds): BDD construction, OCT labeling, MIP
labeling, crossbar mapping, logical evaluation and analog simulation."""

import pytest

from repro import Compact
from repro.baselines import staircase_map_netlist
from repro.bdd import build_sbdd
from repro.bench.suites import circuit
from repro.core import label_min_semiperimeter, label_weighted, map_to_crossbar, preprocess
from repro.crossbar import simulate


@pytest.fixture(scope="module")
def prepared():
    nl = circuit("int2float")
    sbdd = build_sbdd(nl)
    bg = preprocess(sbdd)
    labeling = label_weighted(bg, gamma=0.5, time_limit=30)
    design = map_to_crossbar(bg, labeling)
    env = {name: (i % 3 == 0) for i, name in enumerate(nl.inputs)}
    return nl, sbdd, bg, labeling, design, env


def test_bench_bdd_construction(benchmark):
    nl = circuit("int2float")
    sbdd = benchmark(lambda: build_sbdd(nl))
    assert sbdd.node_count() > 100


def test_bench_preprocess(benchmark, prepared):
    _nl, sbdd, *_ = prepared
    bg = benchmark(lambda: preprocess(sbdd))
    assert bg.num_nodes == sbdd.node_count() - 1


def test_bench_oct_labeling(benchmark, prepared):
    _nl, _sbdd, bg, *_ = prepared
    lab = benchmark.pedantic(
        lambda: label_min_semiperimeter(bg), rounds=3, iterations=1
    )
    assert lab.is_valid(bg)


def test_bench_mip_labeling(benchmark, prepared):
    _nl, _sbdd, bg, *_ = prepared
    lab = benchmark.pedantic(
        lambda: label_weighted(bg, gamma=0.5, time_limit=30), rounds=1, iterations=1
    )
    assert lab.is_valid(bg)


def test_bench_crossbar_mapping(benchmark, prepared):
    _nl, _sbdd, bg, labeling, *_ = prepared
    design = benchmark(lambda: map_to_crossbar(bg, labeling))
    assert design.semiperimeter == labeling.semiperimeter


def test_bench_logical_evaluation(benchmark, prepared):
    nl, _sbdd, _bg, _lab, design, env = prepared
    out = benchmark(lambda: design.evaluate(env))
    assert out == nl.evaluate(env)


def test_bench_analog_simulation(benchmark, prepared):
    nl, _sbdd, _bg, _lab, design, env = prepared
    result = benchmark.pedantic(lambda: simulate(design, env), rounds=3, iterations=1)
    assert result.outputs == nl.evaluate(env)


def test_bench_full_flow_small(benchmark):
    nl = circuit("c17")
    res = benchmark(lambda: Compact(gamma=0.5).synthesize_netlist(nl))
    assert res.design.semiperimeter < 2 * res.bdd_graph.num_nodes


def test_bench_staircase_baseline(benchmark):
    nl = circuit("int2float")
    res = benchmark.pedantic(
        lambda: staircase_map_netlist(nl), rounds=3, iterations=1
    )
    assert res.design.semiperimeter == 2 * res.bdd_nodes


# -- scatter-OR: ufunc.at vs sorted-segment reduceat --------------------------
#
# The batch fixpoint scatters cell contributions into their target
# columns.  `np.logical_or.at` is the direct spelling but runs in the
# notoriously slow ufunc.at path; `repro.crossbar.batch` sorts the cells
# by target once and reduces contiguous segments instead.  The pair of
# benchmarks below records the delta on a representative problem size.


def _scatter_problem():
    import numpy as np

    rng = np.random.default_rng(7)
    m, ncells, ncols = 256, 4096, 128
    contrib = rng.random((m, ncells)) < 0.3
    targets = rng.integers(0, ncols, size=ncells)
    return contrib, targets, ncols


def test_bench_scatter_ufunc_at(benchmark):
    import numpy as np

    contrib, targets, ncols = _scatter_problem()

    def scatter():
        out = np.zeros((contrib.shape[0], ncols), dtype=bool)
        np.logical_or.at(out, (slice(None), targets), contrib)
        return out

    benchmark(scatter)


def test_bench_scatter_segment_reduceat(benchmark):
    import numpy as np

    from repro.crossbar.batch import _scatter_plan

    contrib, targets, ncols = _scatter_problem()
    order, starts, seg_targets = _scatter_plan(targets)

    def scatter():
        out = np.zeros((contrib.shape[0], ncols), dtype=bool)
        out[:, seg_targets] |= np.logical_or.reduceat(
            contrib[:, order], starts, axis=1
        )
        return out

    # Same result as the ufunc.at spelling, much faster.
    reference = np.zeros((contrib.shape[0], ncols), dtype=bool)
    np.logical_or.at(reference, (slice(None), targets), contrib)
    assert np.array_equal(scatter(), reference)
    benchmark(scatter)


def test_bench_exhaustive_validation(benchmark, prepared):
    from repro.crossbar import validate_design

    nl, _sbdd, _bg, _lab, design, _env = prepared
    report = benchmark(lambda: validate_design(design, nl.evaluate, nl.inputs))
    assert report.ok and report.exhaustive
    assert report.checked == 1 << len(nl.inputs)


def test_bench_bitset_sweep(benchmark, prepared):
    nl, sbdd, *_ = prepared
    tables = benchmark(lambda: sbdd.evaluate_bitset(nl.inputs))
    assert set(tables) == set(nl.outputs)
