"""Three-paradigm comparison: flow-based (COMPACT) vs MAGIC vs IMPLY.

Extends the paper's Figure 13 with the IMPLY baseline its introduction
discusses ("parallelism is inherently limited ... resulting in long,
sequential executions"): the expected ordering on control circuits is

    delay(COMPACT)  <<  delay(MAGIC)  <<  delay(IMPLY).
"""

from repro.baselines import imply_map, magic_map
from repro.bench import run_compact, suite
from repro.bench.tables import Table, normalised_average


def test_paradigm_comparison(benchmark, save_result, tier):
    def run():
        table = Table(
            "Paradigms: flow-based (COMPACT) vs MAGIC (CONTRA-like) vs IMPLY",
            ["benchmark", "T(flow)", "T(magic)", "T(imply)", "P(flow)", "P(magic)", "P(imply)"],
        )
        rows = []
        for bench in suite(tier, family="epfl-control-like"):
            netlist = bench.build()
            flow = run_compact(bench, gamma=0.5, time_limit=30)
            magic = magic_map(netlist, k=4)
            imply = imply_map(netlist)
            rows.append({
                "name": bench.name,
                "t_flow": flow.rows,
                "t_magic": magic.delay_steps,
                "t_imply": imply.delay_steps,
                "p_flow": flow.literals,
                "p_magic": magic.total_ops,
                "p_imply": imply.total_ops,
            })
            table.add_row(
                bench.name, flow.rows, magic.delay_steps, imply.delay_steps,
                flow.literals, magic.total_ops, imply.total_ops,
            )
        return table, rows

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)

    flow_vs_magic = normalised_average(
        [r["t_flow"] for r in rows], [r["t_magic"] for r in rows]
    )
    magic_vs_imply = normalised_average(
        [r["t_magic"] for r in rows], [r["t_imply"] for r in rows]
    )
    summary = (
        f"\ndelay(flow)/delay(magic) avg = {flow_vs_magic:.3f}"
        f"\ndelay(magic)/delay(imply) avg = {magic_vs_imply:.3f}"
    )
    save_result("paradigm_comparison", table.render() + summary)

    # The paradigm ordering the paper's introduction lays out.
    assert flow_vs_magic < 1.0
    assert magic_vs_imply < 1.0
    # Power: flow programs far fewer devices than either op-counting style.
    p_ratio = normalised_average(
        [r["p_flow"] for r in rows], [r["p_imply"] for r in rows]
    )
    assert p_ratio < 0.5
    benchmark.extra_info["flow_vs_magic_delay"] = round(flow_vs_magic, 4)
    benchmark.extra_info["magic_vs_imply_delay"] = round(magic_vs_imply, 4)
