"""Perf smoke benchmark: in-place sifting vs the rebuild baseline.

Backs the PR's acceptance criteria:

* in-place :func:`repro.bdd.ordering.sift_order` reaches an SBDD size
  no larger than the rebuild-based sifter on *every* suite circuit,
  with **zero** SBDD rebuilds during the position scan (verified by
  the ``sbdd_rebuilds`` counter);
* end-to-end ``sift_order`` wall time on the largest suite circuit
  improves by at least 5x over the rebuild sifter;
* the perf harness payload (and the committed ``BENCH_compact.json``
  baseline, when present) validates against the schema.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.bdd import build_sbdd, sift_order, sift_order_rebuild, static_order
from repro.bdd.ordering import sbdd_size_for_order
from repro.bench.suites import circuit, suite
from repro.perf import counters, validate_bench_payload
from repro.perf.harness import run_perf_suite, write_bench_json

REPO_ROOT = Path(__file__).resolve().parent.parent
FAST_NAMES = [b.name for b in suite("fast")]
#: Largest fast-suite circuit by input count — the speedup headliner.
LARGEST = "priority32"


@pytest.mark.parametrize("name", FAST_NAMES)
def test_inplace_never_worse_than_rebuild(name, save_result):
    """In-place sifting matches or beats the rebuild sifter's greedy
    trajectory on every suite circuit — without a single rebuild."""
    netlist = circuit(name)
    start = static_order(netlist)

    rebuild_order = sift_order_rebuild(netlist, start=start, max_rounds=1)
    rebuild_size = build_sbdd(netlist, order=rebuild_order).node_count()

    counters.reset()
    stats: dict = {}
    inplace_order = sift_order(netlist, start=start, max_rounds=1, stats=stats)
    inplace_size = build_sbdd(netlist, order=inplace_order).node_count()

    # The live size reported by the sifter is the real SBDD size.
    assert stats["final_size"] == inplace_size
    assert inplace_size <= rebuild_size, (
        f"{name}: in-place {inplace_size} > rebuild {rebuild_size}"
    )
    # Exactly one construction (the initial build); the position scan
    # itself never rebuilds.
    assert counters.get("sbdd_rebuilds") == 1
    save_result(
        f"perf_smoke_{name}",
        f"{name}: inplace={inplace_size} rebuild={rebuild_size} "
        f"swaps={stats['swaps']}",
    )


def test_sift_speedup_on_largest_circuit(save_result):
    """>=5x wall-time improvement where it matters most."""
    netlist = circuit(LARGEST)
    start = static_order(netlist)

    t0 = time.monotonic()
    sift_order_rebuild(netlist, start=start, max_rounds=1)
    t_rebuild = time.monotonic() - t0

    t0 = time.monotonic()
    sift_order(netlist, start=start, max_rounds=1)
    t_inplace = time.monotonic() - t0

    speedup = t_rebuild / max(t_inplace, 1e-9)
    save_result(
        "perf_smoke_speedup",
        f"{LARGEST}: rebuild={t_rebuild:.3f}s inplace={t_inplace:.3f}s "
        f"speedup={speedup:.1f}x",
    )
    assert speedup >= 5.0, f"only {speedup:.1f}x on {LARGEST}"


def test_rebuild_baseline_counts_every_candidate():
    """The rebuild sifter really does pay one SBDD build per candidate
    position — the cost the in-place sifter eliminates."""
    netlist = circuit("c17")
    counters.reset()
    sift_order_rebuild(netlist, max_rounds=1)
    n = len(netlist.inputs)
    # 1 initial + (n-1) candidate positions per variable per round.
    assert counters.get("sbdd_rebuilds") >= 1 + n * (n - 1)


def test_harness_payload_validates(save_result):
    payload = run_perf_suite(names=["c17", "parity16", "mult4"], time_limit=10.0)
    validate_bench_payload(payload)
    for record in payload["circuits"]:
        assert record["sift"]["rebuilds"] == 0
        assert record["sbdd_nodes_sifted"] <= record["sbdd_nodes_static"]
    save_result(
        "perf_smoke_payload",
        json.dumps(
            {r["circuit"]: r["sbdd_nodes_sifted"] for r in payload["circuits"]}
        ),
    )


def test_committed_baseline_validates():
    """BENCH_compact.json at the repo root is the persisted perf
    trajectory point; it must always match the schema."""
    path = REPO_ROOT / "BENCH_compact.json"
    if not path.exists():
        pytest.skip("no committed BENCH_compact.json")
    payload = json.loads(path.read_text())
    validate_bench_payload(payload)
    committed = {r["circuit"] for r in payload["circuits"]}
    assert committed <= {b.name for b in suite("full")}


def test_stage_times_vs_committed_baseline(save_result):
    """Perf-regression guard: re-run a few committed circuits and hold
    each pipeline stage within a generous 3x of the committed
    ``BENCH_compact.json`` timer.  Stages under the 50 ms noise floor in
    the baseline are skipped — CI machines jitter far more than that."""
    path = REPO_ROOT / "BENCH_compact.json"
    if not path.exists():
        pytest.skip("no committed BENCH_compact.json")
    baseline = {r["circuit"]: r for r in json.loads(path.read_text())["circuits"]}
    check = [n for n in ("c17", "parity16", "mult4") if n in baseline]
    if not check:
        pytest.skip("no overlap with the committed baseline")

    payload = run_perf_suite(names=check, time_limit=10.0)
    regressions = []
    compared = 0
    for record in payload["circuits"]:
        base_stages = baseline[record["circuit"]].get("stages", {})
        for stage, seconds in record["stages"].items():
            ref = base_stages.get(stage)
            if ref is None or ref < 0.05:
                continue
            compared += 1
            if seconds > 3.0 * ref:
                regressions.append(
                    f"{record['circuit']}.{stage}: {seconds:.3f}s "
                    f"vs {ref:.3f}s committed"
                )
    save_result(
        "perf_smoke_stage_guard",
        f"circuits={','.join(check)} stages_compared={compared} "
        f"regressions={len(regressions)}",
    )
    assert not regressions, "; ".join(regressions)


def test_write_bench_json_rejects_invalid(tmp_path):
    with pytest.raises(ValueError):
        write_bench_json(tmp_path / "x.json", {"schema": "nope"})


def test_order_quality_regression():
    """Sifted orders keep beating the static order on the classic
    interleaving example (comparator)."""
    netlist = circuit("cmp8")
    static_size = sbdd_size_for_order(netlist, static_order(netlist))
    sifted = sift_order(netlist, max_rounds=1)
    assert sbdd_size_for_order(netlist, sifted) <= static_size


def test_decomposed_labeling_jobs2_semiperimeter_parity(save_result):
    """CI smoke for the decomposition layer: one committed-benchmark
    circuit synthesized through the decomposed OCT path with two solver
    threads must reproduce the monolithic solves exactly — identical
    semiperimeter and max dimension, with optimality preserved."""
    from repro.core import Compact, label_weighted, preprocess
    from repro.graphs import aligned_odd_cycle_transversal

    netlist = circuit("alu4")
    order = sift_order(netlist, max_rounds=1)
    bg = preprocess(build_sbdd(netlist, order=order))

    decomposed = Compact(gamma=0.5, jobs=2).label(bg)
    monolithic = label_weighted(bg, gamma=0.5)
    assert decomposed.meta["optimal"]
    assert decomposed.semiperimeter == monolithic.semiperimeter
    assert decomposed.max_dimension == monolithic.max_dimension

    # The aligned OCT engine itself: per-core solves with jobs=2 match
    # the single monolithic hub solve.
    ports = bg.port_nodes()
    per_core = aligned_odd_cycle_transversal(bg.graph, ports, jobs=2)
    mono_oct = aligned_odd_cycle_transversal(bg.graph, ports, decompose=False)
    assert per_core.optimal and mono_oct.optimal
    assert len(per_core.oct_set) == len(mono_oct.oct_set)

    save_result(
        "perf_smoke_decomposed_parity",
        f"alu4: S={decomposed.semiperimeter} D={decomposed.max_dimension} "
        f"oct={len(per_core.oct_set)} (decomposed jobs=2 == monolithic)",
    )
