"""Extension bench: amortized evaluation cost for streaming workloads.

The paper's delay model (rows + 1 steps per evaluation) is worst case;
between consecutive assignments only the changed literals need writes.
This bench measures the amortized delay and write counts over random
input streams for every suite circuit.
"""

import random

from repro.bench import run_compact, suite
from repro.bench.suites import circuit
from repro.bench.tables import Table
from repro.crossbar import schedule_sequence

STREAM_LEN = 64


def test_streaming_amortization(benchmark, save_result, tier):
    def run():
        from repro import Compact

        table = Table(
            "Streaming: worst-case vs amortized evaluation delay",
            ["benchmark", "rows+1", "worst seen", "amortized", "writes/word", "naive writes/word"],
        )
        rows = []
        rng = random.Random(11)
        for bench in suite(tier):
            if bench.name in ("cavlc_like",):  # slow MIP; skip in fast bench
                continue
            netlist = bench.build()
            design = Compact(gamma=0.5, time_limit=30).synthesize_netlist(netlist).design
            stream = [
                {n: bool(rng.getrandbits(1)) for n in netlist.inputs}
                for _ in range(STREAM_LEN)
            ]
            sched = schedule_sequence(design, stream)
            rows.append({
                "name": bench.name,
                "static": design.num_rows + 1,
                "worst": sched.worst_case_delay,
                "amortized": sched.amortized_delay,
                "writes": sched.total_writes / STREAM_LEN,
                "naive": design.memristor_count,
            })
            table.add_row(
                bench.name, design.num_rows + 1, sched.worst_case_delay,
                round(sched.amortized_delay, 2),
                round(sched.total_writes / STREAM_LEN, 1),
                design.memristor_count,
            )
        return table, rows

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("streaming_amortization", table.render())
    for r in rows:
        # Incremental programming never exceeds the paper's static bound...
        assert r["worst"] <= r["static"], r["name"]
        assert r["amortized"] <= r["static"], r["name"]
        # ...and random streams rewrite only a fraction of the devices.
        assert r["writes"] < r["naive"], r["name"]
    avg_saving = sum(1 - r["amortized"] / r["static"] for r in rows) / len(rows)
    benchmark.extra_info["avg_delay_saving"] = round(avg_saving, 4)
    assert avg_saving > 0.15
