"""Table I: benchmark properties (inputs, outputs, SBDD nodes, edges)."""

from repro.bench import table1_properties


def test_table1(benchmark, save_result, tier):
    table, rows = benchmark.pedantic(
        lambda: table1_properties(tier), rounds=1, iterations=1
    )
    save_result("table1_properties", table.render())
    assert len(rows) >= 12
    # Structural invariant from the BDD engine: edges = 2 * internal nodes.
    for r in rows:
        assert r["edges"] == 2 * (r["nodes"] - 2)
    benchmark.extra_info["circuits"] = len(rows)
    benchmark.extra_info["total_nodes"] = sum(r["nodes"] for r in rows)
