"""Table II: influence of gamma on rows, columns, D, S and time.

Paper findings to reproduce in shape:
* gamma=0 yields (near-)square designs but can inflate S;
* gamma=0.5 dominates: D as small as gamma=0 within ~2 %, S within ~1 %
  of gamma=1;
* gamma=1 minimizes S but can leave D larger.
"""

from repro.bench.experiments import table2_gamma
from repro.bench.tables import normalised_average


def test_table2(benchmark, save_result, tier):
    table, runs = benchmark.pedantic(
        lambda: table2_gamma(tier, time_limit=30.0), rounds=1, iterations=1
    )
    save_result("table2_gamma", table.render())
    assert runs, "no benchmark reached optimality at every gamma"

    by = {}
    for r in runs:
        by.setdefault(r.circuit, {})[r.gamma] = r
    s_half, s_one, d_half, d_zero = [], [], [], []
    for gammas in by.values():
        # Exact solves: gamma=1 has minimal S, gamma=0 minimal D.
        assert gammas[1.0].semiperimeter <= gammas[0.5].semiperimeter
        assert gammas[0.5].semiperimeter <= gammas[0.0].semiperimeter
        assert gammas[0.0].max_dimension <= gammas[0.5].max_dimension
        assert gammas[0.5].max_dimension <= gammas[1.0].max_dimension
        s_half.append(gammas[0.5].semiperimeter)
        s_one.append(gammas[1.0].semiperimeter)
        d_half.append(gammas[0.5].max_dimension)
        d_zero.append(gammas[0.0].max_dimension)

    # Paper: gamma=0.5 costs only ~2% semiperimeter vs gamma=1 ...
    s_overhead = normalised_average(s_half, s_one)
    assert s_overhead < 1.10
    # ... while matching gamma=0's dimension within a few percent.
    d_overhead = normalised_average(d_half, d_zero)
    assert d_overhead < 1.10
    benchmark.extra_info["s_overhead_vs_gamma1"] = round(s_overhead, 4)
    benchmark.extra_info["d_overhead_vs_gamma0"] = round(d_overhead, 4)
