"""Table III: COMPACT on per-output ROBDDs vs one shared SBDD.

Paper: SBDDs reduce nodes by ~22 %, rows/cols by ~29 %/27 %, S by ~28 %.
"""

from repro.bench import table3_sbdd_vs_robdds
from repro.bench.tables import normalised_average


def test_table3(benchmark, save_result, tier):
    table, rows = benchmark.pedantic(
        lambda: table3_sbdd_vs_robdds(tier, time_limit=30.0), rounds=1, iterations=1
    )
    save_result("table3_sbdd_vs_robdds", table.render())
    assert rows

    for r in rows:
        assert r["sbdd_nodes"] <= r["robdd_nodes"]

    node_ratio = normalised_average(
        [r["sbdd_nodes"] for r in rows], [r["robdd_nodes"] for r in rows]
    )
    s_ratio = normalised_average(
        [r["sbdd_S"] for r in rows], [r["robdd_S"] for r in rows]
    )
    # Sharing must help on average (paper: ~0.78 node ratio, ~0.72 S ratio).
    assert node_ratio <= 1.0
    assert s_ratio <= 1.02
    benchmark.extra_info["node_ratio"] = round(node_ratio, 4)
    benchmark.extra_info["semiperimeter_ratio"] = round(s_ratio, 4)
