"""Table IV: COMPACT (gamma=0.5) vs the prior staircase mapping [16].

Paper: rows -56 %, cols -77 %, D -85 %, S -55 %, area -89 %; COMPACT's
S ~ 1.11 n vs ~1.9 n for the baseline (2n exactly in our all-VH
realisation of it).
"""

from repro.bench import table4_vs_prior
from repro.bench.tables import normalised_average


def test_table4(benchmark, save_result, tier):
    table, rows = benchmark.pedantic(
        lambda: table4_vs_prior(tier, time_limit=30.0), rounds=1, iterations=1
    )
    save_result("table4_vs_prior", table.render())
    assert rows

    for r in rows:
        assert r["S"] < r["prior_S"], r["benchmark"]
        assert r["area"] < r["prior_area"], r["benchmark"]
        assert r["D"] <= r["prior_D"], r["benchmark"]

    s_ratio = normalised_average([r["S"] for r in rows], [r["prior_S"] for r in rows])
    d_ratio = normalised_average([r["D"] for r in rows], [r["prior_D"] for r in rows])
    area_ratio = normalised_average(
        [r["area"] for r in rows], [r["prior_area"] for r in rows]
    )
    s_over_n = normalised_average([r["S"] for r in rows], [r["nodes"] for r in rows])

    # Shape of the paper's claims: large reductions, S close to n.
    assert s_ratio < 0.75
    assert d_ratio < 0.75
    assert area_ratio < 0.50
    assert s_over_n < 1.25

    benchmark.extra_info["semiperimeter_ratio"] = round(s_ratio, 4)
    benchmark.extra_info["dimension_ratio"] = round(d_ratio, 4)
    benchmark.extra_info["area_ratio"] = round(area_ratio, 4)
    benchmark.extra_info["s_over_n"] = round(s_over_n, 4)
