// ISCAS85 c17: the classic 6-NAND benchmark, in the structural
// Verilog subset the repro readers accept.  Lints clean under
// `repro check examples/circuits/c17.v`.
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand g0 (N10, N1, N3);
  nand g1 (N11, N3, N6);
  nand g2 (N16, N2, N11);
  nand g3 (N19, N11, N7);
  nand g4 (N22, N10, N16);
  nand g5 (N23, N16, N19);
endmodule
