#!/usr/bin/env python3
"""End-to-end ECC on crossbars: encode -> corrupt -> decode.

Builds Hamming(7,4) encoder and decoder crossbars with COMPACT and runs
a full error-correction pipeline through them: data bits are encoded by
the first crossbar's sneak paths, one codeword bit is flipped (a faulty
channel), and the second crossbar corrects it.  Also reports the
incremental programming cost of streaming many words through the
encoder (the amortized-delay analysis).

Run:  python examples/error_correction.py
"""

import random

from repro import Compact
from repro.circuits import hamming74_decoder, hamming74_encoder
from repro.crossbar import schedule_sequence, validate_design


def main() -> None:
    enc_nl, dec_nl = hamming74_encoder(), hamming74_decoder()
    compact = Compact(gamma=0.5, time_limit=30)
    enc = compact.synthesize_netlist(enc_nl).design
    dec = compact.synthesize_netlist(dec_nl).design

    for design, nl in ((enc, enc_nl), (dec, dec_nl)):
        assert validate_design(design, nl.evaluate, nl.inputs).ok
    print(f"encoder crossbar: {enc.num_rows}x{enc.num_cols} "
          f"(S={enc.semiperimeter})")
    print(f"decoder crossbar: {dec.num_rows}x{dec.num_cols} "
          f"(S={dec.semiperimeter})\n")

    rng = random.Random(7)
    print("data  codeword   flipped  corrected  syndrome")
    for _ in range(8):
        data = rng.randrange(16)
        env = {f"d{i}": bool((data >> i) & 1) for i in range(4)}
        codeword = enc.evaluate(env)

        flip = rng.randrange(7)
        corrupted = dict(codeword)
        corrupted[f"c{flip}"] = not corrupted[f"c{flip}"]

        out = dec.evaluate(corrupted)
        recovered = sum(int(out[f"q{i}"]) << i for i in range(4))
        syndrome = sum(int(out[f"s{i}"]) << i for i in range(3))
        cw_bits = "".join(str(int(codeword[f"c{i}"])) for i in range(7))
        status = "OK " if recovered == data else "BAD"
        print(f"  {data:2d}   {cw_bits}    bit {flip}     "
              f"{recovered:2d} {status}   {syndrome} (= position {syndrome})")
        assert recovered == data

    # Streaming: how much programming does a word stream really cost?
    words = [
        {f"d{i}": bool(rng.getrandbits(1)) for i in range(4)} for _ in range(64)
    ]
    sched = schedule_sequence(enc, words)
    print(f"\nStreaming 64 words through the encoder:")
    print(f"  worst-case delay/word : {enc.num_rows + 1} steps (paper model)")
    print(f"  measured worst        : {sched.worst_case_delay} steps")
    print(f"  amortized             : {sched.amortized_delay:.2f} steps/word")
    print(f"  total cell writes     : {sched.total_writes} "
          f"(naive: {64 * enc.memristor_count})")


if __name__ == "__main__":
    main()
