#!/usr/bin/env python3
"""The gamma trade-off: semiperimeter vs maximum dimension.

Sweeps the paper's user-defined gamma parameter on a benchmark circuit
and prints the (rows, cols) Pareto front of non-dominated crossbar
designs (the paper's Figure 9 / Table II story): gamma = 1 minimizes
the semiperimeter, gamma = 0 squares the crossbar, gamma = 0.5 usually
gets both.

Run:  python examples/gamma_tradeoff.py
"""

from repro import Compact
from repro.circuits import comparator


def main() -> None:
    netlist = comparator(8)
    print(f"Circuit: {netlist.name} "
          f"({len(netlist.inputs)} inputs, {len(netlist.outputs)} outputs)\n")

    print("gamma   rows  cols     S     D   VH  optimal  t(s)")
    points = []
    for i in range(5):
        gamma = i / 4
        result = Compact(gamma=gamma, method="mip", time_limit=30).synthesize_netlist(netlist)
        lab = result.labeling
        points.append((lab.rows, lab.cols))
        print(f"{gamma:5.2f}  {lab.rows:5d} {lab.cols:5d} {lab.semiperimeter:5d} "
              f"{lab.max_dimension:5d} {lab.vh_count:4d}  {str(result.optimal):>7s}  "
              f"{result.synthesis_time:5.2f}")

    pareto = sorted(
        {p for p in points
         if not any(q != p and q[0] <= p[0] and q[1] <= p[1] for q in points)}
    )
    print("\nNon-dominated (rows, cols) designs:", " ".join(map(str, pareto)))
    print("\nNote the paper's two mechanisms at work:")
    print(" * free balancing: different 2-colorings of the same bipartite")
    print("   remainder trade rows for columns at equal semiperimeter;")
    print(" * paid balancing: extra VH nodes (bigger S) can shrink the")
    print("   maximum dimension D further.")


if __name__ == "__main__":
    main()
