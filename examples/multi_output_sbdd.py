#!/usr/bin/env python3
"""Multi-output synthesis: shared SBDD vs per-output ROBDDs.

Section VII of the paper: a multi-output function can be mapped from
one *shared* BDD instead of per-output ROBDDs merged at the 1-terminal.
This example synthesizes a 4-to-16 decoder and a priority encoder both
ways and reports the savings (the paper's Table III).

Run:  python examples/multi_output_sbdd.py
"""

from repro import Compact
from repro.baselines import merged_robdd_graph
from repro.circuits import decoder, priority_encoder
from repro.crossbar import validate_design


def compare(netlist) -> None:
    print(f"=== {netlist.name}: {len(netlist.inputs)} inputs, "
          f"{len(netlist.outputs)} outputs ===")
    compact = Compact(gamma=0.5, time_limit=30)

    # Prior-work representation: one ROBDD per output, merged at '1'.
    robdd_graph = merged_robdd_graph(netlist)
    design_r, labeling_r, _ = compact.synthesize_bdd_graph(
        robdd_graph, name=f"{netlist.name}-robdds"
    )

    # COMPACT's shared SBDD.
    result_s = compact.synthesize_netlist(netlist)
    design_s = result_s.design

    # Both must still compute the right function.
    for design in (design_r, design_s):
        assert validate_design(design, netlist.evaluate, netlist.inputs).ok

    print(f"  per-output ROBDDs: {robdd_graph.num_nodes:4d} nodes -> "
          f"{design_r.num_rows}x{design_r.num_cols} "
          f"(S={design_r.semiperimeter})")
    print(f"  shared SBDD:       {result_s.bdd_graph.num_nodes:4d} nodes -> "
          f"{design_s.num_rows}x{design_s.num_cols} "
          f"(S={design_s.semiperimeter})")
    saved_nodes = 1 - result_s.bdd_graph.num_nodes / robdd_graph.num_nodes
    saved_s = 1 - design_s.semiperimeter / design_r.semiperimeter
    print(f"  sharing saves {saved_nodes:5.1%} nodes, "
          f"{saved_s:5.1%} semiperimeter\n")


def main() -> None:
    compare(decoder(4))
    compare(priority_encoder(8))

    # Output alignment: every output is sensed on a wordline, with the
    # outputs on the top-most rows and the input on the bottom-most.
    nl = priority_encoder(8)
    result = Compact(gamma=0.5).synthesize_netlist(nl)
    design = result.design
    print("Output row assignment (alignment constraints, Eq. 7):")
    for out, row in sorted(design.output_rows.items(), key=lambda kv: kv[1]):
        print(f"  {out:>6s} -> wordline {row}")
    print(f"  input (1-terminal) -> wordline {design.input_row} (bottom)")


if __name__ == "__main__":
    main()
