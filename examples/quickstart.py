#!/usr/bin/env python3
"""Quickstart: map a Boolean function to a minimal flow-based crossbar.

Reproduces the paper's running example f = (a & b) | c (Figure 2):
build the BDD, run COMPACT's VH-labeling, map to a crossbar, and
evaluate it both logically (sneak-path connectivity) and analogically
(resistive nodal analysis).

Run:  python examples/quickstart.py
"""

from repro import Compact
from repro.crossbar import simulate, validate_design
from repro.expr import all_assignments, parse


def main() -> None:
    # The paper's example function (Section II-C, Figure 2).
    f = parse("(a & b) | c")
    print(f"Function: f = {f!r}\n")

    # Synthesize with the paper's default gamma = 0.5 (balanced
    # semiperimeter / maximum dimension).
    compact = Compact(gamma=0.5)
    result = compact.synthesize_expr(f, name="f")

    design = result.design
    labeling = result.labeling
    print(f"BDD graph: {result.bdd_graph.num_nodes} nodes, "
          f"{result.bdd_graph.num_edges} edges")
    print(f"VH-labeling: {labeling.rows} wordlines, {labeling.cols} bitlines, "
          f"{labeling.vh_count} VH nodes")
    print(f"Crossbar: {design.num_rows}x{design.num_cols} "
          f"(semiperimeter {design.semiperimeter}, "
          f"max dimension {design.max_dimension})\n")

    print("Programmed crossbar (rows are wordlines):")
    print(design.render())
    print()

    # Evaluate every assignment, flow-based style.
    print("assignment        logical  analog  V_out")
    for env in all_assignments(["a", "b", "c"]):
        logical = design.evaluate(env)["f"]
        analog = simulate(design, env)
        bits = " ".join(f"{k}={int(v)}" for k, v in env.items())
        print(f"  {bits}     {int(logical)}        {int(analog.outputs['f'])}"
              f"       {analog.voltages['f']:.3f} V")

    # Formal sign-off: exhaustive equivalence check.
    report = validate_design(design, lambda env: {"f": f.evaluate(env)}, ["a", "b", "c"])
    print(f"\nValidation: {'OK' if report.ok else 'FAILED'} "
          f"({report.checked} assignments, exhaustive={report.exhaustive})")


if __name__ == "__main__":
    main()
