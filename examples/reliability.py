#!/usr/bin/env python3
"""Reliability analysis: stuck-at faults, critical cells and yield.

Nanoscale memristor fabrics are defect-prone.  This example synthesizes
a crossbar with COMPACT, identifies which crosspoints are *critical*
(a single stuck-at defect there breaks the function), estimates the
functional yield under i.i.d. defect rates, and reports the analog
sensing margin the threshold has to work with.

Run:  python examples/reliability.py
"""

from repro import Compact
from repro.circuits import c17
from repro.crossbar import (
    STUCK_OFF,
    STUCK_ON,
    analyze_design,
    critical_cells,
    yield_estimate,
)


def main() -> None:
    netlist = c17()
    result = Compact(gamma=0.5).synthesize_netlist(netlist)
    design = result.design
    print(f"Design: {design.num_rows}x{design.num_cols}, "
          f"{design.memristor_count} programmed cells "
          f"of {design.num_rows * design.num_cols} crosspoints\n")

    # Which single faults break the function?
    crit = critical_cells(design, netlist.evaluate, netlist.inputs)
    programmed = design.memristor_count
    total = design.num_rows * design.num_cols
    print(f"Critical for stuck-OFF : {len(crit[STUCK_OFF]):3d} "
          f"of {programmed} programmed cells")
    print(f"Critical for stuck-ON  : {len(crit[STUCK_ON]):3d} "
          f"of {total} crosspoints")
    print("(stuck-ON threatens even unprogrammed cells: a short can "
          "create a spurious sneak path)\n")

    # Monte-Carlo functional yield at a few defect rates.
    print("defect rate (stuck-off on programmed cells)  ->  functional yield")
    for p in (0.001, 0.01, 0.05, 0.1):
        y = yield_estimate(
            design, netlist.evaluate, netlist.inputs,
            p_stuck_on=p / 10, p_stuck_off=p, trials=150, seed=1,
        )
        print(f"  {p:6.3f}                                     ->  {y:6.1%}")

    # Analog robustness: how far apart are sensed highs and lows?
    report = analyze_design(design, netlist.inputs)
    print(f"\nAnalog margins over {report.assignments_checked} assignments:")
    print(f"  lowest  sensed HIGH : {report.min_high_voltage:.3f} x Vin")
    print(f"  highest sensed LOW  : {report.max_low_voltage:.3f} x Vin")
    print(f"  margin              : {report.margin:.3f} x Vin")
    print(f"  worst sneak-path depth: {report.worst_path_depth} memristors")


if __name__ == "__main__":
    main()
