#!/usr/bin/env python3
"""Scalability: exact OCT/MIP labeling vs the greedy heuristic.

Section VI-C of the paper: finding an odd cycle transversal is NP-hard,
so exact synthesis times grow quickly; CPLEX-style solvers are given a
time budget and report the remaining optimality gap.  This example
sweeps priority encoders of growing size and compares

* Method A (exact OCT via NT-kernelized vertex cover, HiGHS ILP),
* the greedy heuristic labeler, and
* the resulting semiperimeters.

Run:  python examples/scalability.py
"""

import time

from repro.bdd import build_sbdd
from repro.circuits import array_multiplier, priority_encoder, round_robin_arbiter
from repro.core import label_heuristic, label_min_semiperimeter, preprocess


def main() -> None:
    netlists = [
        priority_encoder(16),
        priority_encoder(64),
        priority_encoder(128),
        array_multiplier(4),
        array_multiplier(5),
        round_robin_arbiter(8),
        round_robin_arbiter(16),
    ]
    print("circuit        nodes  S(exact)  t(exact)  S(greedy)  t(greedy)  gap")
    for netlist in netlists:
        bdd_graph = preprocess(build_sbdd(netlist))

        t0 = time.monotonic()
        exact = label_min_semiperimeter(bdd_graph, time_limit=60)
        t_exact = time.monotonic() - t0

        t0 = time.monotonic()
        greedy = label_heuristic(bdd_graph)
        t_greedy = time.monotonic() - t0

        overhead = greedy.semiperimeter / exact.semiperimeter - 1
        print(f"{netlist.name:12s} {bdd_graph.num_nodes:6d} "
              f"{exact.semiperimeter:9d} {t_exact:8.2f}s "
              f"{greedy.semiperimeter:10d} {t_greedy:9.3f}s "
              f"{overhead:6.1%}")

    print("\nThe exact method pays the NP-hard price (the paper reports a")
    print("~2650x synthesis-time ratio vs the linear-time prior work);")
    print("the greedy transversal trades a few percent of semiperimeter")
    print("for near-linear runtime.")


if __name__ == "__main__":
    main()
