#!/usr/bin/env python3
"""File-based flow: structural Verilog in, crossbar + SPICE-style check out.

The paper's toolchain accepts Verilog/BLIF/PLA circuit descriptions
(Section II-C).  This example takes the ISCAS85 c17 netlist in Verilog,
synthesizes a crossbar, compares against the prior-work staircase
baseline, and signs the design off with the resistive analog model.

Run:  python examples/verilog_flow.py
"""

from repro import Compact
from repro.baselines import magic_map, staircase_map_netlist
from repro.crossbar import simulate, validate_design
from repro.expr import all_assignments
from repro.io import read_verilog, write_blif

C17_VERILOG = """
// ISCAS85 c17 benchmark
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand NAND2_1 (N10, N1, N3);
  nand NAND2_2 (N11, N3, N6);
  nand NAND2_3 (N16, N2, N11);
  nand NAND2_4 (N19, N11, N7);
  nand NAND2_5 (N22, N10, N16);
  nand NAND2_6 (N23, N16, N19);
endmodule
"""


def main() -> None:
    netlist = read_verilog(C17_VERILOG)
    print(f"Parsed {netlist!r}\n")

    # Convert to BLIF too, just to show the interchange path.
    print("As BLIF:")
    print(write_blif(netlist))

    # COMPACT vs prior work vs MAGIC.
    ours = Compact(gamma=0.5).synthesize_netlist(netlist)
    prior = staircase_map_netlist(netlist)
    magic = magic_map(netlist, k=4)

    print("paradigm            rows  cols     S  area  power-proxy  delay")
    d = ours.design
    print(f"COMPACT (g=0.5)    {d.num_rows:5d} {d.num_cols:5d} {d.semiperimeter:5d} "
          f"{d.area:5d}  {d.literal_count:11d}  {d.num_rows:5d}")
    d = prior.design
    print(f"staircase [16]     {d.num_rows:5d} {d.num_cols:5d} {d.semiperimeter:5d} "
          f"{d.area:5d}  {d.literal_count:11d}  {d.num_rows:5d}")
    print(f"MAGIC (CONTRA-ish)     -     -     -     -  {magic.total_ops:11d}  "
          f"{magic.delay_steps:5d}")

    # Exhaustive logical sign-off + analog spot checks.
    report = validate_design(ours.design, netlist.evaluate, netlist.inputs)
    print(f"\nLogical validation: {'OK' if report.ok else 'FAILED'} "
          f"({report.checked} assignments)")

    mismatches = 0
    for i, env in enumerate(all_assignments(netlist.inputs)):
        if i % 5:
            continue
        analog = simulate(ours.design, env)
        if analog.outputs != ours.design.evaluate(env):
            mismatches += 1
    print(f"Analog (nodal-analysis) spot checks: "
          f"{'OK' if mismatches == 0 else f'{mismatches} mismatches'}")


if __name__ == "__main__":
    main()
