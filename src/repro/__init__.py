"""COMPACT: flow-based in-memory computing on nanoscale memristor crossbars.

Reproduction of Thijssen, Jha & Ewetz, "COMPACT: Flow-Based Computing on
Nanoscale Crossbars with Minimal Semiperimeter and Maximum Dimension"
(DATE 2021), as a full-stack Python library:

* :mod:`repro.expr` -- Boolean expression AST and parser
* :mod:`repro.circuits` -- gate-level netlists and benchmark generators
* :mod:`repro.io` -- PLA / BLIF / Verilog-subset readers and writers
* :mod:`repro.bdd` -- ROBDD/SBDD engine
* :mod:`repro.graphs` -- 2-coloring, vertex cover, odd cycle transversal
* :mod:`repro.milp` -- MILP modeling layer and solvers
* :mod:`repro.core` -- the COMPACT flow (labeling + mapping)
* :mod:`repro.crossbar` -- crossbar designs, evaluation, analog model
* :mod:`repro.robust` -- defect-aware remapping / fault-tolerant synthesis
* :mod:`repro.baselines` -- prior-work staircase mapper, MAGIC/CONTRA-like
* :mod:`repro.bench` -- experiment harness reproducing the paper's tables
"""

from .core import Compact, CompactResult
from .robust import RemapFailure, RemapResult, remap, synthesize_fault_tolerant

__version__ = "1.1.0"

__all__ = [
    "Compact",
    "CompactResult",
    "remap",
    "RemapResult",
    "RemapFailure",
    "synthesize_fault_tolerant",
    "__version__",
]
