"""Baselines: prior flow-based staircase mapping and MAGIC/CONTRA-like."""

from .imply import ImplyOp, ImplyProgram, imply_map
from .magic import Lut, MagicSchedule, cover_k_luts, decompose2, magic_map
from .staircase import (
    StaircaseResult,
    merged_robdd_graph,
    staircase_map_netlist,
    staircase_map_sbdd,
)

__all__ = [
    "StaircaseResult",
    "staircase_map_netlist",
    "staircase_map_sbdd",
    "merged_robdd_graph",
    "Lut",
    "MagicSchedule",
    "decompose2",
    "cover_k_luts",
    "magic_map",
    "ImplyOp",
    "ImplyProgram",
    "imply_map",
]
