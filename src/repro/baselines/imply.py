"""IMPLY-based in-memory computing baseline.

The paper's introduction contrasts flow-based computing with material
implication (IMPLY) logic [5], whose "major drawback is the number of
complex computational steps required ... parallelism is inherently
limited ... resulting in long, sequential executions".  This module
makes that concrete: it compiles a netlist into an executable sequence
of the two stateful crossbar primitives

* ``FALSE q``    — unconditionally write 0 into memristor ``q``;
* ``IMPLY p q``  — ``q <- (~p) | q`` (material implication with ``q``
  as the state-holding target),

using the classic 2-step NOT and 3-step NAND constructions (one work
memristor each), executes them on a simulated register file, and counts
steps.  Every operation writes state, so the schedule is fully serial:
power ~ delay ~ the op count — the worst of the three paradigms the
paper discusses, which is exactly its point.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping
from dataclasses import dataclass

from ..circuits.netlist import Netlist
from .magic import decompose2

__all__ = ["ImplyOp", "ImplyProgram", "imply_map"]


@dataclass(frozen=True)
class ImplyOp:
    """One stateful primitive: FALSE(target) or IMPLY(source, target)."""

    kind: str  # 'false' or 'imply'
    target: str
    source: str | None = None

    def __post_init__(self):
        if self.kind not in ("false", "imply"):
            raise ValueError(f"unknown IMPLY op {self.kind!r}")
        if self.kind == "imply" and self.source is None:
            raise ValueError("IMPLY needs a source memristor")

    def __str__(self) -> str:
        if self.kind == "false":
            return f"FALSE {self.target}"
        return f"IMPLY {self.source} {self.target}"


@dataclass
class ImplyProgram:
    """A compiled IMPLY schedule for one netlist."""

    ops: list[ImplyOp]
    outputs: dict[str, str]  # output name -> memristor holding it
    inputs: list[str]
    work_cells: int

    @property
    def total_ops(self) -> int:
        """Power proxy: every op is a write."""
        return len(self.ops)

    @property
    def delay_steps(self) -> int:
        """IMPLY is stateful and serial: delay equals the op count,
        plus one write per primary input to load the operands."""
        return len(self.ops) + len(self.inputs)

    def execute(self, assignment: Mapping[str, bool]) -> dict[str, bool]:
        """Run the program on a simulated memristor register file."""
        state: dict[str, bool] = {
            name: bool(assignment[name]) for name in self.inputs
        }
        for op in self.ops:
            if op.kind == "false":
                state[op.target] = False
            else:
                p = state[op.source]
                q = state.get(op.target, False)
                state[op.target] = (not p) or q
        return {out: state[cell] for out, cell in self.outputs.items()}


def imply_map(netlist: Netlist) -> ImplyProgram:
    """Compile ``netlist`` into an IMPLY program.

    The circuit is first reduced to fan-in-2 gates, then each gate is
    expanded over {NOT, NAND2} and realised with the canonical
    single-work-cell sequences::

        NOT a   -> w     : FALSE w; IMPLY a w                (2 ops)
        NAND a b -> w    : FALSE w; IMPLY a w; IMPLY b w     (3 ops)

    Derived gates: AND = NAND + NOT, OR = NAND of NOTs, XOR via four
    NANDs — the textbook constructions.
    """
    nl = decompose2(netlist)
    ops: list[ImplyOp] = []
    counter = itertools.count()
    value_cell: dict[str, str] = {name: name for name in nl.inputs}

    def fresh() -> str:
        return f"w{next(counter)}"

    def emit_not(a: str) -> str:
        w = fresh()
        ops.append(ImplyOp("false", w))
        ops.append(ImplyOp("imply", w, source=a))
        return w

    def emit_nand(a: str, b: str) -> str:
        w = fresh()
        ops.append(ImplyOp("false", w))
        ops.append(ImplyOp("imply", w, source=a))
        ops.append(ImplyOp("imply", w, source=b))
        return w

    def emit_const(value: bool) -> str:
        w = fresh()
        ops.append(ImplyOp("false", w))
        if value:
            # 1 = NOT 0: implement as w2 <- w IMP w2 with w = 0.
            w2 = fresh()
            ops.append(ImplyOp("false", w2))
            ops.append(ImplyOp("imply", w2, source=w))
            return w2
        return w

    for gate in nl.topological_gates():
        ins = [value_cell[i] for i in gate.inputs]
        t = gate.gate_type
        if len(ins) == 1 and t in ("AND", "OR", "XOR"):
            t = "BUF"
        elif len(ins) == 1 and t in ("NAND", "NOR", "XNOR"):
            t = "INV"
        if t == "BUF":
            cell = ins[0]
        elif t == "INV":
            cell = emit_not(ins[0])
        elif t == "AND":
            cell = emit_not(emit_nand(ins[0], ins[1]))
        elif t == "NAND":
            cell = emit_nand(ins[0], ins[1])
        elif t == "OR":
            cell = emit_nand(emit_not(ins[0]), emit_not(ins[1]))
        elif t == "NOR":
            cell = emit_not(emit_nand(emit_not(ins[0]), emit_not(ins[1])))
        elif t == "XOR":
            # Four-NAND construction.
            nab = emit_nand(ins[0], ins[1])
            cell = emit_nand(emit_nand(ins[0], nab), emit_nand(ins[1], nab))
        elif t == "XNOR":
            nab = emit_nand(ins[0], ins[1])
            x = emit_nand(emit_nand(ins[0], nab), emit_nand(ins[1], nab))
            cell = emit_not(x)
        elif t == "CONST0":
            cell = emit_const(False)
        elif t == "CONST1":
            cell = emit_const(True)
        else:  # pragma: no cover - decompose2 leaves only the above
            raise ValueError(f"unsupported gate {t} after decomposition")
        value_cell[gate.output] = cell

    outputs = {out: value_cell[out] for out in nl.outputs}
    return ImplyProgram(
        ops=ops,
        outputs=outputs,
        inputs=list(nl.inputs),
        work_cells=next(counter),
    )
