"""CONTRA-like MAGIC in-memory computing baseline (paper Section VIII-E).

MAGIC evaluates logic with stateful NOR/NOT operations on memristor
rows; CONTRA maps a circuit as a network of k-input LUTs placed in a
crossbar and schedules the per-LUT NOR sequences plus COPY operations to
realign data between LUTs.  The paper compares COMPACT against CONTRA
using *operation counts*: every operation is a write step, so

* power  ~ total number of operations executed, and
* delay  ~ number of sequential time steps (stateful logic forces the
  NOR chain of a LUT to run serially; LUTs at the same topological
  level run concurrently, but each level pays COPY realignment).

This module implements that cost model end to end on our netlists:
fan-in-2 decomposition, greedy k-feasible-cone LUT covering (k = 4 as
in the paper), exact LUT truth tables by cone simulation, a NOR-NOR
two-level realisation per LUT, and a level-by-level schedule.  The LUT
network is functionally verified against the source netlist in tests.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping
from dataclasses import dataclass, field

from ..circuits.netlist import Gate, Netlist

__all__ = ["Lut", "MagicSchedule", "decompose2", "cover_k_luts", "magic_map"]


def decompose2(netlist: Netlist) -> Netlist:
    """Rewrite a netlist with fan-in <= 2 gates (MUX/MAJ expanded).

    LUT covering needs bounded fan-in; this is the standard AIG-style
    preprocessing step.
    """
    out = Netlist(netlist.name + ":fi2", inputs=list(netlist.inputs), outputs=list(netlist.outputs))
    counter = itertools.count()

    def fresh() -> str:
        return f"_d{next(counter)}"

    def tree(op: str, nets: list[str]) -> str:
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(out.add_gate(fresh(), op, [nets[i], nets[i + 1]]))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    for gate in netlist.topological_gates():
        t, ins = gate.gate_type, list(gate.inputs)
        if t in ("AND", "OR", "XOR") and len(ins) > 2:
            result = tree(t, ins)
            out.add_gate(gate.output, "BUF", [result])
        elif t in ("NAND", "NOR", "XNOR") and len(ins) > 2:
            base = {"NAND": "AND", "NOR": "OR", "XNOR": "XOR"}[t]
            result = tree(base, ins)
            out.add_gate(gate.output, "INV", [result])
        elif t == "MUX":
            sel, a, b = ins
            ns = out.add_gate(fresh(), "INV", [sel])
            ta = out.add_gate(fresh(), "AND", [sel, a])
            tb = out.add_gate(fresh(), "AND", [ns, b])
            out.add_gate(gate.output, "OR", [ta, tb])
        elif t == "MAJ":
            # Majority via pairwise AND tree of (n choose need) is huge;
            # expand as a chain of 3-input majorities for fan-in 3 and the
            # DP threshold network otherwise.
            if len(ins) == 3:
                a, b, c = ins
                ab = out.add_gate(fresh(), "AND", [a, b])
                ac = out.add_gate(fresh(), "AND", [a, c])
                bc = out.add_gate(fresh(), "AND", [b, c])
                o1 = out.add_gate(fresh(), "OR", [ab, ac])
                out.add_gate(gate.output, "OR", [o1, bc])
            else:
                out_net = _threshold_network(out, ins, len(ins) // 2 + 1, fresh)
                out.add_gate(gate.output, "BUF", [out_net])
        else:
            out.add_gate(gate.output, t, ins)
    out.check()
    return out


def _threshold_network(nl: Netlist, ins: list[str], need: int, fresh) -> str:
    """At-least-``need``-of-``ins`` as a fan-in-2 network (DP over inputs)."""
    const0 = nl.add_gate(fresh(), "CONST0", [])
    const1 = nl.add_gate(fresh(), "CONST1", [])
    count = [const1] + [const0] * need
    for x in ins:
        new = list(count)
        for k in range(need, 0, -1):
            took = nl.add_gate(fresh(), "AND", [count[k - 1], x])
            new[k] = nl.add_gate(fresh(), "OR", [count[k], took])
        count = new
    return count[need]


@dataclass(frozen=True)
class Lut:
    """A k-input lookup table: ``output = truth[input bits]``.

    ``truth`` is a bitmask over the 2^k input combinations, with input
    bit order given by ``inputs`` (inputs[0] is the LSB of the index).
    """

    output: str
    inputs: tuple[str, ...]
    truth: int
    level: int

    def evaluate(self, values: Mapping[str, bool]) -> bool:
        idx = 0
        for bit, name in enumerate(self.inputs):
            if values[name]:
                idx |= 1 << bit
        return bool((self.truth >> idx) & 1)

    def minterms(self) -> list[int]:
        return [i for i in range(1 << len(self.inputs)) if (self.truth >> i) & 1]


def cover_k_luts(netlist: Netlist, k: int = 4) -> list[Lut]:
    """Greedy k-feasible-cone LUT covering.

    Works on the fan-in-2 decomposition.  Each net keeps the leaf set of
    its current cone; a gate absorbs its fan-in cones when the merged
    leaf set stays within ``k``, otherwise the fan-ins become LUT roots.
    Primary outputs are always roots.  Returns the LUT network in
    topological order with exact truth tables.
    """
    nl = decompose2(netlist)
    cut: dict[str, set[str]] = {name: {name} for name in nl.inputs}
    roots: set[str] = set(nl.outputs)

    gates = nl.topological_gates()
    for gate in gates:
        merged: set[str] = set()
        for src in gate.inputs:
            merged |= cut[src]
        if len(merged) <= k:
            cut[gate.output] = merged
        else:
            # Fan-ins stay as LUT boundaries.
            for src in gate.inputs:
                if nl.driver(src) is not None:
                    roots.add(src)
            cut[gate.output] = set(gate.inputs)

    # Leaves referenced by root cones must themselves be roots (fixpoint).
    changed = True
    while changed:
        changed = False
        for root in list(roots):
            for leaf in cut.get(root, {root}):
                if leaf != root and leaf not in roots and nl.driver(leaf) is not None:
                    roots.add(leaf)
                    changed = True

    driver: dict[str, Gate] = {g.output: g for g in gates}

    def cone_eval(root: str, env: dict[str, bool]) -> bool:
        gate = driver.get(root)
        if gate is None or root in env:
            return env[root]
        vals = {}
        for src in gate.inputs:
            vals[src] = env[src] if src in env else cone_eval(src, env)
            env[src] = vals[src]
        return gate.evaluate(vals)

    # Build LUTs with truth tables; levelize over the LUT network.
    luts: list[Lut] = []
    level: dict[str, int] = {name: 0 for name in nl.inputs}
    for gate in gates:
        if gate.output not in roots:
            continue
        leaves = sorted(cut[gate.output])
        truth = 0
        for idx in range(1 << len(leaves)):
            env = {leaf: bool((idx >> b) & 1) for b, leaf in enumerate(leaves)}
            if cone_eval(gate.output, dict(env)):
                truth |= 1 << idx
        lvl = 1 + max((level.get(leaf, 0) for leaf in leaves), default=0)
        level[gate.output] = lvl
        luts.append(Lut(gate.output, tuple(leaves), truth, lvl))
    return luts


@dataclass
class MagicSchedule:
    """Operation-count cost model of a CONTRA-style MAGIC execution."""

    luts: list[Lut]
    input_ops: int
    nor_ops: int
    not_ops: int
    copy_ops: int
    delay_steps: int
    levels: dict[int, list[Lut]] = field(default_factory=dict)

    @property
    def total_ops(self) -> int:
        """Every operation is a write: the paper's power proxy."""
        return self.input_ops + self.nor_ops + self.not_ops + self.copy_ops

    @property
    def power_proxy(self) -> int:
        return self.total_ops

    def evaluate(self, assignment: Mapping[str, bool], outputs: list[str]) -> dict[str, bool]:
        """Functional simulation of the LUT network."""
        values: dict[str, bool] = {k: bool(v) for k, v in assignment.items()}
        for lut in sorted(self.luts, key=lambda l: l.level):
            values[lut.output] = lut.evaluate(values)
        return {out: values[out] for out in outputs}


def magic_map(netlist: Netlist, k: int = 4, copy_per_lut: int = 2) -> MagicSchedule:
    """Map ``netlist`` to the CONTRA-style cost model.

    Per LUT the NOR-NOR realisation costs one NOR per ON-minterm, one
    combining NOR, one final NOT, and one NOT per complemented literal
    column; ``copy_per_lut`` COPY operations account for the data
    realignment between LUT placements that dominates CONTRA's
    schedules.  Same-level LUT chains run concurrently, but the COPY
    realignments are serial (they contend for the shared array).
    """
    luts = cover_k_luts(netlist, k)
    input_ops = len(netlist.inputs)
    nor_ops = 0
    not_ops = 0
    copy_ops = 0
    levels: dict[int, list[Lut]] = {}
    per_lut_steps: dict[str, int] = {}

    for lut in luts:
        n_min = len(lut.minterms())
        if n_min == 0 or n_min == (1 << len(lut.inputs)):
            # Constant LUT: one unconditional write.
            lut_not, lut_nor = 1, 0
        else:
            # NOR-NOR realisation: one NOT per input column (complemented
            # literals), one NOR per ON-minterm, one combining NOR, and a
            # final NOT to restore polarity.
            lut_not = len(lut.inputs) + 1
            lut_nor = n_min + 1
        nor_ops += lut_nor
        not_ops += lut_not
        copy_ops += copy_per_lut
        per_lut_steps[lut.output] = lut_not + lut_nor
        levels.setdefault(lut.level, []).append(lut)

    # Delay: input writes are serial; the NOR/NOT chains of same-level
    # LUTs run concurrently; realignment COPYs contend for the shared
    # array and execute serially — the parallelism limit the paper
    # attributes to the MAGIC style ("the subsequent time steps will be
    # spent attempting to realign the data").
    delay = input_ops + copy_ops
    for lvl in sorted(levels):
        delay += max(per_lut_steps[lut.output] for lut in levels[lvl])

    return MagicSchedule(
        luts=luts,
        input_ops=input_ops,
        nor_ops=nor_ops,
        not_ops=not_ops,
        copy_ops=copy_ops,
        delay_steps=delay,
        levels=levels,
    )
