"""Prior-work flow-based baseline: staircase BDD-to-crossbar mapping.

The state of the art before COMPACT ([16] in the paper) maps every BDD
node to *both* a wordline and a bitline, arranging the nodes along a
staircase from the bottom-left to the top-right of the crossbar.  Its
semiperimeter therefore grows as ~2n (measured ~1.9n in the paper)
against COMPACT's ~1.11n, and its row count ~n against COMPACT's ~n/2.

In VH-labeling terms the baseline is exactly the trivial all-VH
solution, so we realise it through the same mapping machinery: every
node is stitched to its own wordline/bitline pair, and every BDD edge
lands at a unique crosspoint.  Multi-output functions are handled the
way prior work did (Figure 8(a)): one ROBDD per output, merged at the
shared 1-terminal, i.e. placed block-diagonally in one crossbar with a
common input wordline.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..bdd import SBDD, build_robdds, build_sbdd
from ..circuits.netlist import Netlist
from ..core.labeling import Label, VHLabeling
from ..core.mapping import map_to_crossbar
from ..core.preprocess import BddGraph, preprocess
from ..crossbar.design import CrossbarDesign
from ..graphs import UGraph

__all__ = [
    "StaircaseResult",
    "staircase_map_sbdd",
    "staircase_map_netlist",
    "merged_robdd_graph",
]


@dataclass
class StaircaseResult:
    """Baseline synthesis outcome (mirrors CompactResult)."""

    design: CrossbarDesign
    labeling: VHLabeling
    bdd_graph: BddGraph
    #: Nodes actually mapped: internal nodes of all (merged) BDDs plus the
    #: shared 1-terminal (the 0-terminal is removed by pre-processing).
    bdd_nodes: int = 0
    times: dict[str, float] = field(default_factory=dict)

    @property
    def synthesis_time(self) -> float:
        return sum(self.times.values())


def staircase_map_sbdd(sbdd: SBDD) -> StaircaseResult:
    """Map an (S)BDD with the all-VH staircase scheme."""
    t0 = time.monotonic()
    bdd_graph = preprocess(sbdd)
    labels = {v: Label.VH for v in bdd_graph.graph.nodes()}
    labeling = VHLabeling(labels, meta={"method": "staircase", "optimal": True})
    design = map_to_crossbar(bdd_graph, labeling, name=f"{sbdd.name}:staircase")
    elapsed = time.monotonic() - t0
    return StaircaseResult(
        design=design,
        labeling=labeling,
        bdd_graph=bdd_graph,
        bdd_nodes=bdd_graph.num_nodes,
        times={"mapping": elapsed},
    )


def staircase_map_netlist(
    netlist: Netlist,
    order: Sequence[str] | None = None,
    share_outputs: bool = False,
) -> StaircaseResult:
    """Baseline synthesis of a netlist.

    ``share_outputs=False`` (the prior-work default) builds one ROBDD
    per output and merges them only at the 1-terminal, as in the paper's
    Figure 8(a); ``True`` lets the baseline use the shared SBDD instead
    (used in ablations).
    """
    t0 = time.monotonic()
    if share_outputs or len(netlist.outputs) == 1:
        sbdd = build_sbdd(netlist, order=order)
        result = staircase_map_sbdd(sbdd)
        result.times["bdd"] = time.monotonic() - t0
        return result

    bdd_graph = merged_robdd_graph(netlist, order=order)
    t_bdd = time.monotonic() - t0

    t0 = time.monotonic()
    merged = bdd_graph.graph
    labels = {v: Label.VH for v in merged.nodes()}
    labeling = VHLabeling(labels, meta={"method": "staircase", "optimal": True})
    design = map_to_crossbar(bdd_graph, labeling, name=f"{netlist.name}:staircase")
    t_map = time.monotonic() - t0

    return StaircaseResult(
        design=design,
        labeling=labeling,
        bdd_graph=bdd_graph,
        bdd_nodes=len(merged),
        times={"bdd": t_bdd, "mapping": t_map},
    )


def merged_robdd_graph(netlist: Netlist, order: Sequence[str] | None = None) -> BddGraph:
    """Per-output ROBDDs merged at the shared 1-terminal (Figure 8(a)).

    Node ids are namespaced per output — ``(output, bdd_id)`` — except
    the 1-terminal, which all outputs share.  The result is the
    unshared multi-output representation prior work mapped, usable with
    any labeling method (Table III compares COMPACT on this graph
    against COMPACT on the true SBDD).
    """
    per_output = build_robdds(netlist, order=order)
    merged = UGraph()
    roots: dict[str, tuple] = {}
    constant_outputs: dict[str, bool] = {}
    terminal = ("T", 1)
    terminal_used = False

    for out, sub in per_output:
        graph_part = preprocess(sub)
        constant_outputs.update(graph_part.constant_outputs)
        rename = {}
        for v in graph_part.graph.nodes():
            if graph_part.terminal is not None and v == graph_part.terminal:
                rename[v] = terminal
                terminal_used = True
            else:
                rename[v] = (out, v)
        for v in graph_part.graph.nodes():
            merged.add_node(rename[v])
        for u, v in graph_part.graph.edges():
            merged.add_edge(rename[u], rename[v], graph_part.graph.edge_data(u, v))
        for name, root in graph_part.roots.items():
            roots[name] = rename[root]

    return BddGraph(
        graph=merged,
        roots=roots,
        terminal=terminal if terminal_used else None,
        constant_outputs=constant_outputs,
    )
