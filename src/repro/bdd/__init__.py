"""ROBDD/SBDD engine: the BDD substrate COMPACT maps onto crossbars."""

from .dot import sbdd_to_dot
from .fbdd import FBDD, build_fbdd, fbdd_to_bdd_graph
from .manager import BDD, FALSE_ID, LEAF_LEVEL, TRUE_ID
from .ordering import (
    interleaved_order,
    sbdd_size_for_order,
    sift_order,
    sift_order_rebuild,
    static_order,
)
from .reorder import sift, sift_sbdd, swap_adjacent
from .sbdd import SBDD, build_robdds, build_sbdd, sbdd_from_exprs

__all__ = [
    "FBDD",
    "build_fbdd",
    "fbdd_to_bdd_graph",
    "swap_adjacent",
    "sift",
    "sift_sbdd",
    "BDD",
    "SBDD",
    "FALSE_ID",
    "TRUE_ID",
    "LEAF_LEVEL",
    "build_sbdd",
    "build_robdds",
    "sbdd_from_exprs",
    "static_order",
    "interleaved_order",
    "sift_order",
    "sift_order_rebuild",
    "sbdd_size_for_order",
    "sbdd_to_dot",
]
