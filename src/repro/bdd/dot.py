"""Graphviz (dot) export for BDDs — handy for debugging and papers."""

from __future__ import annotations

from .manager import FALSE_ID, TRUE_ID
from .sbdd import SBDD

__all__ = ["sbdd_to_dot"]


def sbdd_to_dot(sbdd: SBDD, include_false: bool = True) -> str:
    """Render an SBDD in Graphviz dot syntax.

    Then-edges are solid, else-edges dashed; roots are annotated with
    their output names.  Set ``include_false`` False to render the graph
    the crossbar mapping actually sees (0-terminal removed).
    """
    m = sbdd.manager
    lines = ["digraph sbdd {", "  rankdir=TB;"]
    reachable = sorted(sbdd.reachable())
    root_names: dict[int, list[str]] = {}
    for name, root in sbdd.roots.items():
        root_names.setdefault(root, []).append(name)

    for n in reachable:
        if n == FALSE_ID:
            if include_false:
                lines.append('  n0 [shape=box, label="0"];')
            continue
        if n == TRUE_ID:
            lines.append('  n1 [shape=box, label="1"];')
            continue
        label = m.var_of(n)
        if n in root_names:
            label += "\\n(" + ",".join(root_names[n]) + ")"
        lines.append(f'  n{n} [shape=circle, label="{label}"];')
    for n in reachable:
        if n <= TRUE_ID:
            continue
        lo, hi = m.low(n), m.high(n)
        if include_false or lo != FALSE_ID:
            lines.append(f"  n{n} -> n{lo} [style=dashed];")
        if include_false or hi != FALSE_ID:
            lines.append(f"  n{n} -> n{hi};")
    lines.append("}")
    return "\n".join(lines)
