"""Free binary decision diagrams (FBDDs).

Prior flow-based work explored mapping FBDDs as well as ROBDDs (the
paper cites [17]; Section II-A: "ROBDDs and FBDDs are extensions of
BDDs ... optimized to minimize number of nodes and edges").  An FBDD
relaxes the global variable order: each root-to-leaf path may test
variables in its own order (each at most once), which can be
exponentially smaller than any ROBDD.

This implementation uses the ROBDD manager as a *function identity
oracle*: every subfunction is named by its canonical ROBDD id, so FBDD
construction is a memoised recursion over function ids that greedily
picks, per subfunction, the branch variable minimising the resulting
ROBDD cofactor sizes.  Nodes are hash-consed on (variable, low, high),
giving a reduced FBDD whose graph plugs straight into COMPACT's
pipeline via :func:`fbdd_to_bdd_graph`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from ..crossbar.literals import Lit
from ..graphs import UGraph
from .manager import FALSE_ID, TRUE_ID
from .sbdd import SBDD

__all__ = ["FBDD", "build_fbdd", "fbdd_to_bdd_graph"]

#: FBDD terminal ids mirror the ROBDD convention.
_F_FALSE = 0
_F_TRUE = 1


@dataclass
class FBDD:
    """A multi-rooted free BDD.

    Node ``i > 1`` tests ``var[i]`` with children ``low[i]``/``high[i]``;
    ids 0/1 are the terminals.  Variables along any path are distinct by
    construction, but different paths may order them differently.
    """

    var: list[str | None]
    low: list[int]
    high: list[int]
    roots: dict[str, int]
    name: str = "fbdd"
    #: Which netlist inputs the construction considered.
    support: tuple[str, ...] = ()
    meta: dict = field(default_factory=dict)

    # -- sizes -----------------------------------------------------------------
    def reachable(self) -> set[int]:
        seen: set[int] = set()
        stack = list(self.roots.values())
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if n > _F_TRUE:
                stack.append(self.low[n])
                stack.append(self.high[n])
        return seen

    def node_count(self) -> int:
        """Reachable nodes, terminals included."""
        return len(self.reachable())

    def internal_count(self) -> int:
        return sum(1 for n in self.reachable() if n > _F_TRUE)

    # -- semantics ----------------------------------------------------------------
    def evaluate_root(self, root: int, assignment: Mapping[str, bool]) -> bool:
        node = root
        while node > _F_TRUE:
            node = self.high[node] if assignment[self.var[node]] else self.low[node]
        return node == _F_TRUE

    def evaluate(self, assignment: Mapping[str, bool]) -> dict[str, bool]:
        return {
            out: self.evaluate_root(root, assignment)
            for out, root in self.roots.items()
        }

    def check_free(self) -> None:
        """Verify no variable repeats along any path (the FBDD property)."""

        def rec(node: int, seen: frozenset[str]) -> None:
            if node <= _F_TRUE:
                return
            name = self.var[node]
            if name in seen:
                raise AssertionError(f"variable {name} repeats on a path")
            rec(self.low[node], seen | {name})
            rec(self.high[node], seen | {name})

        for root in self.roots.values():
            rec(root, frozenset())

    def __repr__(self) -> str:
        return f"FBDD({self.name!r}, outputs={len(self.roots)}, nodes={self.node_count()})"


def build_fbdd(
    sbdd: SBDD,
    candidate_limit: int | None = 8,
) -> FBDD:
    """Construct an FBDD for an SBDD's outputs by greedy branch choice.

    For each distinct subfunction (identified by its ROBDD id) the
    branch variable is the support variable minimising
    ``|f_lo| + |f_hi|`` (ROBDD node counts of the cofactors), probing at
    most ``candidate_limit`` support variables (the shallowest ones in
    the manager's order; None probes all).  Memoised per function id, so
    shared subfunctions share FBDD nodes.
    """
    manager = sbdd.manager

    var: list[str | None] = [None, None]
    low: list[int] = [_F_FALSE, _F_TRUE]
    high: list[int] = [_F_FALSE, _F_TRUE]
    unique: dict[tuple[str, int, int], int] = {}
    by_function: dict[int, int] = {FALSE_ID: _F_FALSE, TRUE_ID: _F_TRUE}

    def mk(name: str, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (name, lo, hi)
        node = unique.get(key)
        if node is None:
            node = len(var)
            var.append(name)
            low.append(lo)
            high.append(hi)
            unique[key] = node
        return node

    def cone_size(f: int) -> int:
        return manager.node_count([f])

    def rec(f: int) -> int:
        node = by_function.get(f)
        if node is not None:
            return node
        support = sorted(manager.support(f), key=manager.level_of)
        if candidate_limit is not None:
            support = support[:candidate_limit]
        best_name, best_cost, best_pair = None, None, None
        for name in support:
            f0 = manager.restrict(f, name, False)
            f1 = manager.restrict(f, name, True)
            cost = cone_size(f0) + cone_size(f1)
            if best_cost is None or cost < best_cost:
                best_name, best_cost, best_pair = name, cost, (f0, f1)
        assert best_name is not None and best_pair is not None
        node = mk(best_name, rec(best_pair[0]), rec(best_pair[1]))
        by_function[f] = node
        return node

    roots = {out: rec(root) for out, root in sbdd.roots.items()}
    return FBDD(
        var=var,
        low=low,
        high=high,
        roots=roots,
        name=f"{sbdd.name}:fbdd",
        support=tuple(sbdd.support()),
        meta={"candidate_limit": candidate_limit},
    )


def fbdd_to_bdd_graph(fbdd: FBDD):
    """Convert an FBDD into COMPACT's :class:`~repro.core.preprocess.BddGraph`.

    The 0-terminal and its incoming edges are dropped exactly as in the
    ROBDD pre-processing; every surviving decision edge carries its
    literal.
    """
    from ..core.preprocess import BddGraph

    graph = UGraph()
    reachable = fbdd.reachable()
    terminal = _F_TRUE if _F_TRUE in reachable else None

    roots: dict[str, int] = {}
    constant_outputs: dict[str, bool] = {}
    for out, root in fbdd.roots.items():
        if root == _F_TRUE:
            constant_outputs[out] = True
        elif root == _F_FALSE:
            constant_outputs[out] = False
        else:
            roots[out] = root

    if not roots:
        return BddGraph(UGraph(), {}, None, constant_outputs)

    for n in reachable:
        if n <= _F_TRUE:
            continue
        graph.add_node(n)
        name = fbdd.var[n]
        assert name is not None
        if fbdd.low[n] != _F_FALSE:
            graph.add_edge(n, fbdd.low[n], Lit(name, False))
        if fbdd.high[n] != _F_FALSE:
            graph.add_edge(n, fbdd.high[n], Lit(name, True))
    if terminal is not None:
        graph.add_node(terminal)
    return BddGraph(graph, roots, terminal, constant_outputs)
