"""Reduced ordered binary decision diagrams (ROBDDs).

A hash-consed, table-based BDD manager in the CUDD tradition, but without
complement edges: flow-based crossbar mapping needs every BDD edge to
carry a plain literal (``x`` on the then-edge, ``~x`` on the else-edge),
and the 0-terminal to be physically removable.  Nodes are integer ids
into an append-only node table; id 0 is the constant FALSE terminal and
id 1 the constant TRUE terminal.

Multiple functions built in the same manager share subgraphs through the
unique table, which is exactly the paper's *shared BDD* (SBDD): an SBDD
is simply a set of root ids in one manager.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from ..expr import Expr

__all__ = ["BDD", "FALSE_ID", "TRUE_ID", "LEAF_LEVEL"]

#: Terminal node ids (fixed for every manager).
FALSE_ID = 0
TRUE_ID = 1

#: Sentinel level for terminal nodes; larger than any variable level.
LEAF_LEVEL = 1 << 30


class BDD:
    """A BDD manager over a fixed variable order.

    Parameters
    ----------
    var_order:
        Variable names from the top level (0) downwards.  Variables can be
        appended later with :meth:`add_var` but never reordered in place;
        use :func:`repro.bdd.ordering.sift_order` to search for better
        orders and rebuild.
    """

    def __init__(self, var_order: Iterable[str] = ()):
        self._order: list[str] = []
        self._level: dict[str, int] = {}
        # Node table: _var_level[i], _low[i], _high[i].  Terminals first.
        self._var_level: list[int] = [LEAF_LEVEL, LEAF_LEVEL]
        self._low: list[int] = [FALSE_ID, TRUE_ID]
        self._high: list[int] = [FALSE_ID, TRUE_ID]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._cache: dict[tuple, int] = {}
        for name in var_order:
            self.add_var(name)

    # -- variables -----------------------------------------------------------
    @property
    def var_order(self) -> tuple[str, ...]:
        """The variable order, top level first."""
        return tuple(self._order)

    def add_var(self, name: str) -> int:
        """Declare ``name`` at the bottom of the order; returns its level."""
        if name in self._level:
            raise ValueError(f"variable {name!r} already declared")
        level = len(self._order)
        self._order.append(name)
        self._level[name] = level
        return level

    def level_of(self, name: str) -> int:
        return self._level[name]

    def var_at_level(self, level: int) -> str:
        return self._order[level]

    def var(self, name: str) -> int:
        """The BDD for the single variable ``name`` (declared on demand)."""
        if name not in self._level:
            self.add_var(name)
        return self._mk(self._level[name], FALSE_ID, TRUE_ID)

    def nvar(self, name: str) -> int:
        """The BDD for ``~name``."""
        if name not in self._level:
            self.add_var(name)
        return self._mk(self._level[name], TRUE_ID, FALSE_ID)

    # -- node table ----------------------------------------------------------
    @property
    def false(self) -> int:
        return FALSE_ID

    @property
    def true(self) -> int:
        return TRUE_ID

    def _mk(self, level: int, low: int, high: int) -> int:
        """Hash-consed node constructor with redundant-test elimination."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var_level)
            self._var_level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def level(self, node: int) -> int:
        """Variable level of ``node`` (``LEAF_LEVEL`` for terminals)."""
        return self._var_level[node]

    def var_of(self, node: int) -> str:
        """Variable name tested at ``node`` (terminals raise)."""
        lvl = self._var_level[node]
        if lvl == LEAF_LEVEL:
            raise ValueError("terminal nodes test no variable")
        return self._order[lvl]

    def low(self, node: int) -> int:
        """Else-child (edge labelled with the negated variable)."""
        return self._low[node]

    def high(self, node: int) -> int:
        """Then-child (edge labelled with the plain variable)."""
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        return node <= TRUE_ID

    def table_size(self) -> int:
        """Total number of nodes ever created (including both terminals)."""
        return len(self._var_level)

    # -- boolean operations ----------------------------------------------------
    def not_(self, f: int) -> int:
        """Negation.  O(|f|) without complement edges (result is cached)."""
        if f == FALSE_ID:
            return TRUE_ID
        if f == TRUE_ID:
            return FALSE_ID
        key = ("not", f)
        result = self._cache.get(key)
        if result is None:
            result = self._mk(
                self._var_level[f], self.not_(self._low[f]), self.not_(self._high[f])
            )
            self._cache[key] = result
        return result

    def apply_and(self, f: int, g: int) -> int:
        if f == FALSE_ID or g == FALSE_ID:
            return FALSE_ID
        if f == TRUE_ID:
            return g
        if g == TRUE_ID or f == g:
            return f
        if f > g:
            f, g = g, f
        key = ("and", f, g)
        result = self._cache.get(key)
        if result is None:
            lvl, fl, fh, gl, gh = self._split(f, g)
            result = self._mk(lvl, self.apply_and(fl, gl), self.apply_and(fh, gh))
            self._cache[key] = result
        return result

    def apply_or(self, f: int, g: int) -> int:
        if f == TRUE_ID or g == TRUE_ID:
            return TRUE_ID
        if f == FALSE_ID:
            return g
        if g == FALSE_ID or f == g:
            return f
        if f > g:
            f, g = g, f
        key = ("or", f, g)
        result = self._cache.get(key)
        if result is None:
            lvl, fl, fh, gl, gh = self._split(f, g)
            result = self._mk(lvl, self.apply_or(fl, gl), self.apply_or(fh, gh))
            self._cache[key] = result
        return result

    def apply_xor(self, f: int, g: int) -> int:
        if f == g:
            return FALSE_ID
        if f == FALSE_ID:
            return g
        if g == FALSE_ID:
            return f
        if f == TRUE_ID:
            return self.not_(g)
        if g == TRUE_ID:
            return self.not_(f)
        if f > g:
            f, g = g, f
        key = ("xor", f, g)
        result = self._cache.get(key)
        if result is None:
            lvl, fl, fh, gl, gh = self._split(f, g)
            result = self._mk(lvl, self.apply_xor(fl, gl), self.apply_xor(fh, gh))
            self._cache[key] = result
        return result

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h``."""
        if f == TRUE_ID:
            return g
        if f == FALSE_ID:
            return h
        if g == h:
            return g
        if g == TRUE_ID and h == FALSE_ID:
            return f
        if g == FALSE_ID and h == TRUE_ID:
            return self.not_(f)
        key = ("ite", f, g, h)
        result = self._cache.get(key)
        if result is None:
            lvl = min(self._var_level[f], self._var_level[g], self._var_level[h])
            fl, fh = self._cofactors(f, lvl)
            gl, gh = self._cofactors(g, lvl)
            hl, hh = self._cofactors(h, lvl)
            result = self._mk(lvl, self.ite(fl, gl, hl), self.ite(fh, gh, hh))
            self._cache[key] = result
        return result

    def _split(self, f: int, g: int) -> tuple[int, int, int, int, int]:
        lvl = min(self._var_level[f], self._var_level[g])
        fl, fh = self._cofactors(f, lvl)
        gl, gh = self._cofactors(g, lvl)
        return lvl, fl, fh, gl, gh

    def _cofactors(self, f: int, level: int) -> tuple[int, int]:
        if self._var_level[f] == level:
            return self._low[f], self._high[f]
        return f, f

    # -- derived operations ----------------------------------------------------
    def apply(self, op: str, f: int, g: int) -> int:
        """Binary operation by name: and/or/xor/nand/nor/xnor/imp."""
        op = op.lower()
        if op == "and":
            return self.apply_and(f, g)
        if op == "or":
            return self.apply_or(f, g)
        if op == "xor":
            return self.apply_xor(f, g)
        if op == "nand":
            return self.not_(self.apply_and(f, g))
        if op == "nor":
            return self.not_(self.apply_or(f, g))
        if op == "xnor":
            return self.not_(self.apply_xor(f, g))
        if op in ("imp", "implies"):
            return self.apply_or(self.not_(f), g)
        raise ValueError(f"unknown operation {op!r}")

    def restrict(self, f: int, name: str, value: bool) -> int:
        """Cofactor of ``f`` with respect to ``name = value``."""
        target = self._level[name]
        key = ("restrict", f, target, value)

        def rec(n: int) -> int:
            lvl = self._var_level[n]
            if lvl > target:
                return n
            k = ("restrict", n, target, value)
            r = self._cache.get(k)
            if r is not None:
                return r
            if lvl == target:
                r = self._high[n] if value else self._low[n]
            else:
                r = self._mk(lvl, rec(self._low[n]), rec(self._high[n]))
            self._cache[k] = r
            return r

        result = self._cache.get(key)
        if result is None:
            result = rec(f)
        return result

    def exists(self, names: Sequence[str], f: int) -> int:
        """Existential quantification over ``names``."""
        levels = frozenset(self._level[n] for n in names)
        if not levels:
            return f
        top = max(levels)

        def rec(n: int) -> int:
            lvl = self._var_level[n]
            if lvl > top:
                return n
            k = ("exists", n, levels)
            r = self._cache.get(k)
            if r is not None:
                return r
            lo, hi = rec(self._low[n]), rec(self._high[n])
            if lvl in levels:
                r = self.apply_or(lo, hi)
            else:
                r = self._mk(lvl, lo, hi)
            self._cache[k] = r
            return r

        return rec(f)

    def forall(self, names: Sequence[str], f: int) -> int:
        """Universal quantification over ``names``."""
        return self.not_(self.exists(names, self.not_(f)))

    def compose(self, f: int, name: str, g: int) -> int:
        """Substitute function ``g`` for variable ``name`` in ``f``."""
        target = self._level[name]

        def rec(n: int) -> int:
            lvl = self._var_level[n]
            if lvl > target:
                return n
            k = ("compose", n, target, g)
            r = self._cache.get(k)
            if r is not None:
                return r
            if lvl == target:
                r = self.ite(g, self._high[n], self._low[n])
            else:
                lo, hi = rec(self._low[n]), rec(self._high[n])
                v = self._mk(lvl, FALSE_ID, TRUE_ID)
                r = self.ite(v, hi, lo)
            self._cache[k] = r
            return r

        return rec(f)

    def from_expr(self, expr: Expr) -> int:
        """Compile an :class:`~repro.expr.ast.Expr` into this manager."""
        from ..expr import And, Const, Ite, Not, Or, Var, Xor

        def rec(e: Expr) -> int:
            if isinstance(e, Const):
                return TRUE_ID if e.value else FALSE_ID
            if isinstance(e, Var):
                return self.var(e.name)
            if isinstance(e, Not):
                return self.not_(rec(e.operand))
            if isinstance(e, And):
                acc = TRUE_ID
                for op in e.operands:
                    acc = self.apply_and(acc, rec(op))
                return acc
            if isinstance(e, Or):
                acc = FALSE_ID
                for op in e.operands:
                    acc = self.apply_or(acc, rec(op))
                return acc
            if isinstance(e, Xor):
                acc = FALSE_ID
                for op in e.operands:
                    acc = self.apply_xor(acc, rec(op))
                return acc
            if isinstance(e, Ite):
                return self.ite(rec(e.cond), rec(e.then), rec(e.other))
            raise TypeError(f"cannot compile {type(e).__name__}")

        return rec(expr)

    # -- inspection --------------------------------------------------------------
    def evaluate(self, f: int, assignment: Mapping[str, bool]) -> bool:
        """Evaluate ``f`` under a full assignment of its support."""
        node = f
        while node > TRUE_ID:
            name = self._order[self._var_level[node]]
            node = self._high[node] if assignment[name] else self._low[node]
        return node == TRUE_ID

    def reachable(self, roots: Iterable[int]) -> set[int]:
        """All node ids reachable from ``roots`` (terminals included)."""
        seen: set[int] = set()
        stack = list(roots)
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if n > TRUE_ID:
                stack.append(self._low[n])
                stack.append(self._high[n])
        return seen

    def node_count(self, roots: Iterable[int]) -> int:
        """Number of reachable nodes, terminals included (SBDD size)."""
        return len(self.reachable(roots))

    def edges(self, roots: Iterable[int]) -> list[tuple[int, int, str, bool]]:
        """All BDD edges reachable from ``roots``.

        Each entry is ``(parent, child, variable, polarity)`` where
        polarity True means the then-edge (literal ``variable``) and
        False the else-edge (literal ``~variable``).
        """
        out = []
        for n in self.reachable(roots):
            if n > TRUE_ID:
                name = self._order[self._var_level[n]]
                out.append((n, self._low[n], name, False))
                out.append((n, self._high[n], name, True))
        return out

    def support(self, f: int) -> frozenset[str]:
        """Variable names on which ``f`` structurally depends."""
        return frozenset(
            self._order[self._var_level[n]] for n in self.reachable([f]) if n > TRUE_ID
        )

    def sat_count(self, f: int, nvars: int | None = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        ``nvars`` defaults to the number of declared variables.
        """
        if nvars is None:
            nvars = len(self._order)
        cache: dict[int, int] = {}

        def weight(n: int) -> int:
            # Number of sat assignments of the cone below n, counting the
            # variables strictly below n's level as free ones later.
            if n == FALSE_ID:
                return 0
            if n == TRUE_ID:
                return 1
            r = cache.get(n)
            if r is not None:
                return r
            lvl = self._var_level[n]
            lo, hi = self._low[n], self._high[n]
            lo_gap = (self._var_level[lo] if lo > TRUE_ID else nvars) - lvl - 1
            hi_gap = (self._var_level[hi] if hi > TRUE_ID else nvars) - lvl - 1
            r = weight(lo) * (1 << lo_gap) + weight(hi) * (1 << hi_gap)
            cache[n] = r
            return r

        top_gap = self._var_level[f] if f > TRUE_ID else nvars
        if f == TRUE_ID:
            return 1 << nvars
        if f == FALSE_ID:
            return 0
        return weight(f) * (1 << top_gap)

    def pick_sat(self, f: int) -> dict[str, bool] | None:
        """One satisfying assignment of ``f``'s support, or None."""
        if f == FALSE_ID:
            return None
        env: dict[str, bool] = {}
        node = f
        while node > TRUE_ID:
            name = self._order[self._var_level[node]]
            if self._high[node] != FALSE_ID:
                env[name] = True
                node = self._high[node]
            else:
                env[name] = False
                node = self._low[node]
        return env

    def one_paths(self, f: int) -> int:
        """Number of distinct root-to-1 paths (crossbar sneak paths)."""
        cache: dict[int, int] = {}

        def rec(n: int) -> int:
            if n == TRUE_ID:
                return 1
            if n == FALSE_ID:
                return 0
            r = cache.get(n)
            if r is None:
                r = rec(self._low[n]) + rec(self._high[n])
                cache[n] = r
            return r

        return rec(f)

    def clear_cache(self) -> None:
        """Drop the operation cache (the unique table is kept)."""
        self._cache.clear()

    def __repr__(self) -> str:
        return f"BDD(vars={len(self._order)}, nodes={len(self._var_level)})"
