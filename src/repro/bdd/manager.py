"""Reduced ordered binary decision diagrams (ROBDDs).

A hash-consed, table-based BDD manager in the CUDD tradition, but without
complement edges: flow-based crossbar mapping needs every BDD edge to
carry a plain literal (``x`` on the then-edge, ``~x`` on the else-edge),
and the 0-terminal to be physically removable.  Nodes are integer ids
into an append-only node table; id 0 is the constant FALSE terminal and
id 1 the constant TRUE terminal.

Multiple functions built in the same manager share subgraphs through the
unique table, which is exactly the paper's *shared BDD* (SBDD): an SBDD
is simply a set of root ids in one manager.

Performance notes
-----------------
The hot kernels (``not_``, ``apply_and``/``or``/``xor``) use an explicit
stack instead of recursion — a BDD over *n* variables recurses *n* deep,
so circuits with more variables than the interpreter's recursion limit
would otherwise crash — and key the operation cache with packed integers
(``(f << 32 | g) << 3 | opcode``) instead of tuples, which avoids tuple
allocation and hashes faster.  Node ids stay far below ``2**32`` for any
table a pure-Python process can hold, so the packing is collision-free.

The op cache is *bounded*: once it holds ``max_cache_size`` entries it
is dropped wholesale (the CUDD "cache reset" policy) and a counter is
incremented.  Hits/misses/resets are reported by :meth:`BDD.cache_stats`.

Two caches are kept because dynamic reordering
(:mod:`repro.bdd.reorder`) preserves what node *ids mean* but not what
*levels* mean: results of ``not``/``and``/``or``/``xor``/``ite`` map ids
to ids and stay valid across an adjacent-level swap, while
``restrict``/``exists``/``compose`` entries embed variable levels and
must be invalidated.  The swap therefore clears only ``_lvl_cache``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from ..expr import Expr

__all__ = ["BDD", "FALSE_ID", "TRUE_ID", "LEAF_LEVEL"]

#: Terminal node ids (fixed for every manager).
FALSE_ID = 0
TRUE_ID = 1

#: Sentinel level for terminal nodes; larger than any variable level.
LEAF_LEVEL = 1 << 30

# Opcodes packed into the low 3 bits of integer cache keys.
_OP_NOT = 0
_OP_AND = 1
_OP_OR = 2
_OP_XOR = 3
_OP_ITE = 4

# Stack frame tags for the iterative kernels.
_EXPAND = 0
_COMBINE = 1


class BDD:
    """A BDD manager over a fixed variable order.

    Parameters
    ----------
    var_order:
        Variable names from the top level (0) downwards.  Variables can be
        appended later with :meth:`add_var`; in-place reordering is
        provided by :mod:`repro.bdd.reorder`, and
        :func:`repro.bdd.ordering.sift_order` searches for good orders.
    max_cache_size:
        Bound on the operation-cache entry count; exceeding it drops the
        cache (counted in :meth:`cache_stats` as a reset).
    """

    def __init__(self, var_order: Iterable[str] = (), max_cache_size: int = 1 << 20):
        if max_cache_size < 1:
            raise ValueError("max_cache_size must be positive")
        self._order: list[str] = []
        self._level: dict[str, int] = {}
        # Node table: _var_level[i], _low[i], _high[i].  Terminals first.
        self._var_level: list[int] = [LEAF_LEVEL, LEAF_LEVEL]
        self._low: list[int] = [FALSE_ID, TRUE_ID]
        self._high: list[int] = [FALSE_ID, TRUE_ID]
        self._unique: dict[tuple[int, int, int], int] = {}
        #: Level-independent op results (packed int keys; survives swaps).
        self._cache: dict[int, int] = {}
        #: Level-dependent op results (tuple keys; cleared on swaps).
        self._lvl_cache: dict[tuple, int] = {}
        self._max_cache_size = max_cache_size
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_resets = 0
        #: Adjacent-level swaps performed on this manager (see reorder.py).
        self.swap_count = 0
        for name in var_order:
            self.add_var(name)

    # -- variables -----------------------------------------------------------
    @property
    def var_order(self) -> tuple[str, ...]:
        """The variable order, top level first."""
        return tuple(self._order)

    def add_var(self, name: str) -> int:
        """Declare ``name`` at the bottom of the order; returns its level."""
        if name in self._level:
            raise ValueError(f"variable {name!r} already declared")
        level = len(self._order)
        self._order.append(name)
        self._level[name] = level
        return level

    def level_of(self, name: str) -> int:
        return self._level[name]

    def var_at_level(self, level: int) -> str:
        return self._order[level]

    def var(self, name: str) -> int:
        """The BDD for the single variable ``name`` (declared on demand)."""
        if name not in self._level:
            self.add_var(name)
        return self._mk(self._level[name], FALSE_ID, TRUE_ID)

    def nvar(self, name: str) -> int:
        """The BDD for ``~name``."""
        if name not in self._level:
            self.add_var(name)
        return self._mk(self._level[name], TRUE_ID, FALSE_ID)

    def _require_level(self, name: str) -> int:
        level = self._level.get(name)
        if level is None:
            raise ValueError(
                f"unknown variable {name!r} (declared: {', '.join(self._order) or 'none'})"
            )
        return level

    # -- node table ----------------------------------------------------------
    @property
    def false(self) -> int:
        return FALSE_ID

    @property
    def true(self) -> int:
        return TRUE_ID

    def _mk(self, level: int, low: int, high: int) -> int:
        """Hash-consed node constructor with redundant-test elimination."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var_level)
            self._var_level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def level(self, node: int) -> int:
        """Variable level of ``node`` (``LEAF_LEVEL`` for terminals)."""
        return self._var_level[node]

    def var_of(self, node: int) -> str:
        """Variable name tested at ``node`` (terminals raise)."""
        lvl = self._var_level[node]
        if lvl == LEAF_LEVEL:
            raise ValueError("terminal nodes test no variable")
        return self._order[lvl]

    def low(self, node: int) -> int:
        """Else-child (edge labelled with the negated variable)."""
        return self._low[node]

    def high(self, node: int) -> int:
        """Then-child (edge labelled with the plain variable)."""
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        return node <= TRUE_ID

    def table_size(self) -> int:
        """Total number of nodes ever created (including both terminals).

        The node table is append-only, so this is also the *peak* size.
        """
        return len(self._var_level)

    # -- op cache ----------------------------------------------------------------
    def _cache_put(self, key: int, value: int) -> None:
        cache = self._cache
        if len(cache) >= self._max_cache_size:
            cache.clear()
            self._cache_resets += 1
        cache[key] = value

    def cache_stats(self) -> dict:
        """Operation-cache statistics: hits, misses, hit_rate, resets, entries."""
        hits, misses = self._cache_hits, self._cache_misses
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
            "resets": self._cache_resets,
            "entries": len(self._cache) + len(self._lvl_cache),
        }

    def reset_cache_stats(self) -> None:
        """Zero the hit/miss/reset counters (cache contents are kept)."""
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_resets = 0

    def clear_cache(self) -> None:
        """Drop both operation caches (the unique table is kept)."""
        self._cache.clear()
        self._lvl_cache.clear()

    # -- boolean operations ----------------------------------------------------
    def not_(self, f: int) -> int:
        """Negation.  O(|f|) without complement edges (result is cached)."""
        if f <= TRUE_ID:
            return f ^ 1
        cache = self._cache
        var_level = self._var_level
        low = self._low
        high = self._high
        stack: list[tuple[int, int]] = [(_EXPAND, f)]
        vals: list[int] = []
        while stack:
            tag, n = stack.pop()
            if tag == _EXPAND:
                if n <= TRUE_ID:
                    vals.append(n ^ 1)
                    continue
                key = (n << 3) | _OP_NOT
                r = cache.get(key)
                if r is not None:
                    self._cache_hits += 1
                    vals.append(r)
                    continue
                self._cache_misses += 1
                stack.append((_COMBINE, n))
                stack.append((_EXPAND, high[n]))
                stack.append((_EXPAND, low[n]))
            else:
                hi = vals.pop()
                lo = vals.pop()
                r = self._mk(var_level[n], lo, hi)
                self._cache_put((n << 3) | _OP_NOT, r)
                vals.append(r)
        return vals[0]

    @staticmethod
    def _terminal_case(op: int, f: int, g: int) -> int | None:
        """Terminal/absorption cases of the binary kernels (None = recurse).

        XOR with a TRUE operand is *not* terminal here (it needs a
        negation); the kernel loop handles it.
        """
        if op == _OP_AND:
            if f == FALSE_ID or g == FALSE_ID:
                return FALSE_ID
            if f == TRUE_ID:
                return g
            if g == TRUE_ID or f == g:
                return f
        elif op == _OP_OR:
            if f == TRUE_ID or g == TRUE_ID:
                return TRUE_ID
            if f == FALSE_ID:
                return g
            if g == FALSE_ID or f == g:
                return f
        else:  # _OP_XOR
            if f == g:
                return FALSE_ID
            if f == FALSE_ID:
                return g
            if g == FALSE_ID:
                return f
        return None

    def _apply2(self, op: int, f: int, g: int) -> int:
        """Iterative binary apply kernel shared by and/or/xor."""
        cache = self._cache
        var_level = self._var_level
        low = self._low
        high = self._high
        terminal = self._terminal_case
        stack: list[tuple] = [(_EXPAND, f, g)]
        vals: list[int] = []
        while stack:
            frame = stack.pop()
            if frame[0] == _EXPAND:
                a, b = frame[1], frame[2]
                r = terminal(op, a, b)
                if r is not None:
                    vals.append(r)
                    continue
                if op == _OP_XOR and (a == TRUE_ID or b == TRUE_ID):
                    vals.append(self.not_(b if a == TRUE_ID else a))
                    continue
                if a > b:  # and/or/xor are commutative: canonicalise
                    a, b = b, a
                key = ((a << 32) | b) << 3 | op
                r = cache.get(key)
                if r is not None:
                    self._cache_hits += 1
                    vals.append(r)
                    continue
                self._cache_misses += 1
                la, lb = var_level[a], var_level[b]
                lvl = la if la < lb else lb
                al, ah = (low[a], high[a]) if la == lvl else (a, a)
                bl, bh = (low[b], high[b]) if lb == lvl else (b, b)
                stack.append((_COMBINE, key, lvl))
                stack.append((_EXPAND, ah, bh))
                stack.append((_EXPAND, al, bl))
            else:
                hi = vals.pop()
                lo = vals.pop()
                r = self._mk(frame[2], lo, hi)
                self._cache_put(frame[1], r)
                vals.append(r)
        return vals[0]

    def apply_and(self, f: int, g: int) -> int:
        return self._apply2(_OP_AND, f, g)

    def apply_or(self, f: int, g: int) -> int:
        return self._apply2(_OP_OR, f, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self._apply2(_OP_XOR, f, g)

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h`` (recursion depth ≤ #levels)."""
        if f == TRUE_ID:
            return g
        if f == FALSE_ID:
            return h
        if g == h:
            return g
        if g == TRUE_ID and h == FALSE_ID:
            return f
        if g == FALSE_ID and h == TRUE_ID:
            return self.not_(f)
        key = (((f << 32) | g) << 32 | h) << 3 | _OP_ITE
        result = self._cache.get(key)
        if result is not None:
            self._cache_hits += 1
            return result
        self._cache_misses += 1
        lvl = min(self._var_level[f], self._var_level[g], self._var_level[h])
        fl, fh = self._cofactors(f, lvl)
        gl, gh = self._cofactors(g, lvl)
        hl, hh = self._cofactors(h, lvl)
        result = self._mk(lvl, self.ite(fl, gl, hl), self.ite(fh, gh, hh))
        self._cache_put(key, result)
        return result

    def _cofactors(self, f: int, level: int) -> tuple[int, int]:
        if self._var_level[f] == level:
            return self._low[f], self._high[f]
        return f, f

    # -- derived operations ----------------------------------------------------
    def apply(self, op: str, f: int, g: int) -> int:
        """Binary operation by name: and/or/xor/nand/nor/xnor/imp."""
        op = op.lower()
        if op == "and":
            return self.apply_and(f, g)
        if op == "or":
            return self.apply_or(f, g)
        if op == "xor":
            return self.apply_xor(f, g)
        if op == "nand":
            return self.not_(self.apply_and(f, g))
        if op == "nor":
            return self.not_(self.apply_or(f, g))
        if op == "xnor":
            return self.not_(self.apply_xor(f, g))
        if op in ("imp", "implies"):
            return self.apply_or(self.not_(f), g)
        raise ValueError(f"unknown operation {op!r}")

    def restrict(self, f: int, name: str, value: bool) -> int:
        """Cofactor of ``f`` with respect to ``name = value``."""
        target = self._require_level(name)
        cache = self._lvl_cache

        def rec(n: int) -> int:
            lvl = self._var_level[n]
            if lvl > target:
                return n
            k = ("restrict", n, target, value)
            r = cache.get(k)
            if r is not None:
                return r
            if lvl == target:
                r = self._high[n] if value else self._low[n]
            else:
                r = self._mk(lvl, rec(self._low[n]), rec(self._high[n]))
            cache[k] = r
            return r

        return rec(f)

    def exists(self, names: Sequence[str], f: int) -> int:
        """Existential quantification over ``names``."""
        levels = frozenset(self._require_level(n) for n in names)
        if not levels:
            return f
        top = max(levels)
        cache = self._lvl_cache

        def rec(n: int) -> int:
            lvl = self._var_level[n]
            if lvl > top:
                return n
            k = ("exists", n, levels)
            r = cache.get(k)
            if r is not None:
                return r
            lo, hi = rec(self._low[n]), rec(self._high[n])
            if lvl in levels:
                r = self.apply_or(lo, hi)
            else:
                r = self._mk(lvl, lo, hi)
            cache[k] = r
            return r

        return rec(f)

    def forall(self, names: Sequence[str], f: int) -> int:
        """Universal quantification over ``names``."""
        return self.not_(self.exists(names, self.not_(f)))

    def compose(self, f: int, name: str, g: int) -> int:
        """Substitute function ``g`` for variable ``name`` in ``f``."""
        target = self._require_level(name)
        cache = self._lvl_cache

        def rec(n: int) -> int:
            lvl = self._var_level[n]
            if lvl > target:
                return n
            k = ("compose", n, target, g)
            r = cache.get(k)
            if r is not None:
                return r
            if lvl == target:
                r = self.ite(g, self._high[n], self._low[n])
            else:
                lo, hi = rec(self._low[n]), rec(self._high[n])
                v = self._mk(lvl, FALSE_ID, TRUE_ID)
                r = self.ite(v, hi, lo)
            cache[k] = r
            return r

        return rec(f)

    def from_expr(self, expr: Expr) -> int:
        """Compile an :class:`~repro.expr.ast.Expr` into this manager."""
        from ..expr import And, Const, Ite, Not, Or, Var, Xor

        def rec(e: Expr) -> int:
            if isinstance(e, Const):
                return TRUE_ID if e.value else FALSE_ID
            if isinstance(e, Var):
                return self.var(e.name)
            if isinstance(e, Not):
                return self.not_(rec(e.operand))
            if isinstance(e, And):
                acc = TRUE_ID
                for op in e.operands:
                    acc = self.apply_and(acc, rec(op))
                return acc
            if isinstance(e, Or):
                acc = FALSE_ID
                for op in e.operands:
                    acc = self.apply_or(acc, rec(op))
                return acc
            if isinstance(e, Xor):
                acc = FALSE_ID
                for op in e.operands:
                    acc = self.apply_xor(acc, rec(op))
                return acc
            if isinstance(e, Ite):
                return self.ite(rec(e.cond), rec(e.then), rec(e.other))
            raise TypeError(f"cannot compile {type(e).__name__}")

        return rec(expr)

    # -- inspection --------------------------------------------------------------
    def evaluate(self, f: int, assignment: Mapping[str, bool]) -> bool:
        """Evaluate ``f`` under a full assignment of its support."""
        node = f
        while node > TRUE_ID:
            name = self._order[self._var_level[node]]
            node = self._high[node] if assignment[name] else self._low[node]
        return node == TRUE_ID

    def reachable(self, roots: Iterable[int]) -> set[int]:
        """All node ids reachable from ``roots`` (terminals included)."""
        seen: set[int] = set()
        stack = list(roots)
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if n > TRUE_ID:
                stack.append(self._low[n])
                stack.append(self._high[n])
        return seen

    def node_count(self, roots: Iterable[int]) -> int:
        """Number of reachable nodes, terminals included (SBDD size)."""
        return len(self.reachable(roots))

    def collect_garbage(self, roots: Iterable[int]) -> dict[int, int]:
        """Compact the node table to the nodes reachable from ``roots``.

        In-place reordering rewrites nodes by allocating fresh children,
        so a long swap sequence strands dead nodes in the append-only
        table; this reclaims them.  Every surviving node gets a new
        (dense) id — the returned dict maps old ids to new ones, and the
        caller must remap any handles it holds.  Ids of nodes *not*
        reachable from ``roots`` become invalid.  Terminals keep ids 0
        and 1; both op caches are dropped (entries may reference dead
        ids).
        """
        live = self.reachable(roots)
        live.add(FALSE_ID)
        live.add(TRUE_ID)
        keep = sorted(live)
        remap = {old: new for new, old in enumerate(keep)}
        old_vl, old_lo, old_hi = self._var_level, self._low, self._high
        self._var_level = [old_vl[old] for old in keep]
        self._low = [remap[old_lo[old]] for old in keep]
        self._high = [remap[old_hi[old]] for old in keep]
        self._unique = {
            (self._var_level[i], self._low[i], self._high[i]): i
            for i in range(2, len(keep))
        }
        self._cache.clear()
        self._lvl_cache.clear()
        return remap

    def edges(self, roots: Iterable[int]) -> list[tuple[int, int, str, bool]]:
        """All BDD edges reachable from ``roots``.

        Each entry is ``(parent, child, variable, polarity)`` where
        polarity True means the then-edge (literal ``variable``) and
        False the else-edge (literal ``~variable``).
        """
        out = []
        for n in self.reachable(roots):
            if n > TRUE_ID:
                name = self._order[self._var_level[n]]
                out.append((n, self._low[n], name, False))
                out.append((n, self._high[n], name, True))
        return out

    def support(self, f: int) -> frozenset[str]:
        """Variable names on which ``f`` structurally depends."""
        return frozenset(
            self._order[self._var_level[n]] for n in self.reachable([f]) if n > TRUE_ID
        )

    def sat_count(self, f: int, nvars: int | None = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        ``nvars`` defaults to the number of declared variables.
        """
        if nvars is None:
            nvars = len(self._order)
        cache: dict[int, int] = {}

        def weight(n: int) -> int:
            # Number of sat assignments of the cone below n, counting the
            # variables strictly below n's level as free ones later.
            if n == FALSE_ID:
                return 0
            if n == TRUE_ID:
                return 1
            r = cache.get(n)
            if r is not None:
                return r
            lvl = self._var_level[n]
            lo, hi = self._low[n], self._high[n]
            lo_gap = (self._var_level[lo] if lo > TRUE_ID else nvars) - lvl - 1
            hi_gap = (self._var_level[hi] if hi > TRUE_ID else nvars) - lvl - 1
            r = weight(lo) * (1 << lo_gap) + weight(hi) * (1 << hi_gap)
            cache[n] = r
            return r

        top_gap = self._var_level[f] if f > TRUE_ID else nvars
        if f == TRUE_ID:
            return 1 << nvars
        if f == FALSE_ID:
            return 0
        return weight(f) * (1 << top_gap)

    def pick_sat(self, f: int) -> dict[str, bool] | None:
        """One satisfying assignment of ``f``'s support, or None."""
        if f == FALSE_ID:
            return None
        env: dict[str, bool] = {}
        node = f
        while node > TRUE_ID:
            name = self._order[self._var_level[node]]
            if self._high[node] != FALSE_ID:
                env[name] = True
                node = self._high[node]
            else:
                env[name] = False
                node = self._low[node]
        return env

    def one_paths(self, f: int) -> int:
        """Number of distinct root-to-1 paths (crossbar sneak paths)."""
        cache: dict[int, int] = {}

        def rec(n: int) -> int:
            if n == TRUE_ID:
                return 1
            if n == FALSE_ID:
                return 0
            r = cache.get(n)
            if r is None:
                r = rec(self._low[n]) + rec(self._high[n])
                cache[n] = r
            return r

        return rec(f)

    def __repr__(self) -> str:
        return f"BDD(vars={len(self._order)}, nodes={len(self._var_level)})"
