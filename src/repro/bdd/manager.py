"""Reduced ordered binary decision diagrams (ROBDDs).

A hash-consed, table-based BDD manager in the CUDD tradition, but without
complement edges: flow-based crossbar mapping needs every BDD edge to
carry a plain literal (``x`` on the then-edge, ``~x`` on the else-edge),
and the 0-terminal to be physically removable.  Nodes are integer ids
into an append-only node table; id 0 is the constant FALSE terminal and
id 1 the constant TRUE terminal.

Multiple functions built in the same manager share subgraphs through the
unique table, which is exactly the paper's *shared BDD* (SBDD): an SBDD
is simply a set of root ids in one manager.

Performance notes
-----------------
The node table is struct-of-arrays in spirit — three parallel sequences
``var/low/high`` indexed by node id — but the sequences are plain
Python lists, because every representation with C-typed storage was
*measured slower* on the scalar hot paths that dominate BDD work in
CPython: a list index increfs the int object it stored, while
memoryview or numpy scalar indexing must construct a fresh Python int
every read (~2x slower).  Vectorized passes (garbage-collection
compaction, the batch evaluator) snapshot the lists into numpy arrays
on demand; the O(n) copy is noise next to the sweep it feeds.

The unique table and the op cache are CPython dicts with small-int
tuple keys.  Also measurement, not taste — the obvious "optimizations"
all lose: open-addressed int64 slot arrays probed from Python run ~4x
slower per lookup than the C dict; numpy-batching the probes loses too
(per-level batches in reordering are tens of nodes — dispatch overhead
dominates); and packing a key tuple into a single shifted int runs ~3x
slower, because keys past 2**60 are multi-digit bigints whose
arithmetic allocates on every shift, while a tuple of cached small
ints hashes without allocating anything but the tuple itself.

The hot kernels (``not_``, ``apply_and``/``or``/``xor``) use an explicit
stack instead of recursion — a BDD over *n* variables recurses *n* deep,
so circuits with more variables than the interpreter's recursion limit
would otherwise crash.

The op cache is *bounded*: once it holds ``max_cache_size`` entries it
is dropped wholesale (the CUDD "cache reset" policy) and a counter is
incremented.  Hits/misses/resets are reported by :meth:`BDD.cache_stats`.

Two caches are kept because dynamic reordering
(:mod:`repro.bdd.reorder`) preserves what node *ids mean* but not what
*levels* mean: results of ``not``/``and``/``or``/``xor``/``ite`` map ids
to ids and stay valid across an adjacent-level swap, while
``restrict``/``exists``/``compose`` entries embed variable levels and
must be invalidated.  The swap therefore clears only ``_lvl_cache``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from .. import bitset
from ..expr import Expr

__all__ = ["BDD", "FALSE_ID", "TRUE_ID", "LEAF_LEVEL"]

#: Terminal node ids (fixed for every manager).
FALSE_ID = 0
TRUE_ID = 1

#: Sentinel level for terminal nodes; larger than any variable level.
LEAF_LEVEL = 1 << 30

# Opcodes packed into the second cache-key word.
_OP_NOT = 0
_OP_AND = 1
_OP_OR = 2
_OP_XOR = 3
_OP_ITE = 4

# Stack frame tags for the iterative kernels.
_EXPAND = 0
_COMBINE = 1


class BDD:
    """A BDD manager over a fixed variable order.

    Parameters
    ----------
    var_order:
        Variable names from the top level (0) downwards.  Variables can be
        appended later with :meth:`add_var`; in-place reordering is
        provided by :mod:`repro.bdd.reorder`, and
        :func:`repro.bdd.ordering.sift_order` searches for good orders.
    max_cache_size:
        Bound on the operation-cache entry count; exceeding it drops the
        cache (counted in :meth:`cache_stats` as a reset).
    """

    def __init__(self, var_order: Iterable[str] = (), max_cache_size: int = 1 << 20):
        if max_cache_size < 1:
            raise ValueError("max_cache_size must be positive")
        self._order: list[str] = []
        self._level: dict[str, int] = {}
        # Node table (parallel Python lists): var/low/high per node id;
        # terminals occupy ids 0 and 1.  Lists, not numpy-plus-memoryview:
        # a list index just increfs the int object it stored, while a
        # memoryview (or numpy scalar) index must *construct* a fresh
        # Python int — measured ~2x slower on exactly the scalar loops
        # (apply kernels, sifting swaps) that dominate BDD work in
        # CPython.  Vectorized passes snapshot the lists into numpy
        # arrays on demand via ``_node_arrays`` — the O(n) copy is noise
        # next to the sweep it feeds.
        self._var_level: list[int] = [LEAF_LEVEL, LEAF_LEVEL]
        self._low: list[int] = [FALSE_ID, TRUE_ID]
        self._high: list[int] = [FALSE_ID, TRUE_ID]
        # Unique index: (level, low, high) -> node id.  A C dict with
        # small-int tuple keys, by measurement: a Python-level
        # open-addressed probe loop over an int64 slot array runs ~4x
        # slower per lookup, numpy-batched probes lose too (reorder's
        # per-level batches are tens of nodes — dispatch overhead
        # dominates), and packing the triple into one int loses ~3x
        # (the shifted keys are multi-digit bigints whose arithmetic
        # allocates; hashing three cached small ints is cheaper).
        self._unique: dict[tuple[int, int, int], int] = {}
        #: Level-independent op results, keyed by (op, operands...)
        #: tuples for the same reason.
        self._cache: dict[tuple, int] = {}
        #: Level-dependent op results (tuple keys; cleared on swaps).
        self._lvl_cache: dict[tuple, int] = {}
        self._max_cache_size = max_cache_size
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_resets = 0
        #: Adjacent-level swaps performed on this manager (see reorder.py).
        self.swap_count = 0
        for name in var_order:
            self.add_var(name)

    def _node_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Snapshot the node table as (var, low, high) int64 arrays."""
        return (
            np.array(self._var_level, dtype=np.int64),
            np.array(self._low, dtype=np.int64),
            np.array(self._high, dtype=np.int64),
        )

    # -- variables -----------------------------------------------------------
    @property
    def var_order(self) -> tuple[str, ...]:
        """The variable order, top level first."""
        return tuple(self._order)

    def add_var(self, name: str) -> int:
        """Declare ``name`` at the bottom of the order; returns its level."""
        if name in self._level:
            raise ValueError(f"variable {name!r} already declared")
        level = len(self._order)
        self._order.append(name)
        self._level[name] = level
        return level

    def level_of(self, name: str) -> int:
        return self._level[name]

    def var_at_level(self, level: int) -> str:
        return self._order[level]

    def var(self, name: str) -> int:
        """The BDD for the single variable ``name`` (declared on demand)."""
        if name not in self._level:
            self.add_var(name)
        return self._mk(self._level[name], FALSE_ID, TRUE_ID)

    def nvar(self, name: str) -> int:
        """The BDD for ``~name``."""
        if name not in self._level:
            self.add_var(name)
        return self._mk(self._level[name], TRUE_ID, FALSE_ID)

    def _require_level(self, name: str) -> int:
        level = self._level.get(name)
        if level is None:
            raise ValueError(
                f"unknown variable {name!r} (declared: {', '.join(self._order) or 'none'})"
            )
        return level

    # -- node table ----------------------------------------------------------
    @property
    def false(self) -> int:
        return FALSE_ID

    @property
    def true(self) -> int:
        return TRUE_ID

    def _unique_key(self, node: int) -> tuple[int, int, int]:
        """Unique key for ``node``'s current (level, low, high)."""
        return (self._var_level[node], self._low[node], self._high[node])

    def _mk(self, level: int, low: int, high: int) -> int:
        """Hash-consed node constructor with redundant-test elimination."""
        if low == high:
            return low
        key = (level, low, high)
        unique = self._unique
        node = unique.get(key)
        if node is not None:
            # May resurrect a dead node (one no root reaches any more) —
            # ids denote functions, so handing it back out is sound.
            return node
        node = len(self._var_level)
        self._var_level.append(level)
        self._low.append(low)
        self._high.append(high)
        unique[key] = node
        return node

    def _unique_remove(self, node: int) -> None:
        """Drop the entry under ``node``'s current triple (if any).

        Keyed by triple, so when a twin overwrote ``node``'s key the
        twin's entry is removed instead — indistinguishable in the only
        caller (reordering), which clears *entire levels* before
        re-keying them.
        """
        self._unique.pop(self._unique_key(node), None)

    def _unique_insert(self, node: int) -> None:
        """(Re-)register ``node`` under its current (level, low, high).

        Dict assignment semantics: an existing entry with the same triple
        is overwritten — reordering relies on this when a rewritten node
        reclaims a key a dead node still holds.
        """
        self._unique[self._unique_key(node)] = node

    def unique_entries(self) -> Iterable[tuple[tuple[int, int, int], int]]:
        """Yield ``((level, low, high), node)`` per unique-table entry.

        Debug/test iterator (the consistency checks in the reorder tests
        walk it).
        """
        yield from self._unique.items()

    def _level_nodes(self, level: int) -> list[int]:
        """Ids of all table nodes at ``level``."""
        var_level = self._var_level
        return [n for n in range(2, len(var_level)) if var_level[n] == level]

    def level(self, node: int) -> int:
        """Variable level of ``node`` (``LEAF_LEVEL`` for terminals)."""
        return self._var_level[node]

    def var_of(self, node: int) -> str:
        """Variable name tested at ``node`` (terminals raise)."""
        lvl = self._var_level[node]
        if lvl == LEAF_LEVEL:
            raise ValueError("terminal nodes test no variable")
        return self._order[lvl]

    def low(self, node: int) -> int:
        """Else-child (edge labelled with the negated variable)."""
        return self._low[node]

    def high(self, node: int) -> int:
        """Then-child (edge labelled with the plain variable)."""
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        return node <= TRUE_ID

    def table_size(self) -> int:
        """Total number of nodes ever created (including both terminals).

        The node table is append-only, so this is also the *peak* size.
        """
        return len(self._var_level)

    # -- op cache ----------------------------------------------------------------
    def _cache_put(self, key: int, value: int) -> None:
        cache = self._cache
        if len(cache) >= self._max_cache_size:
            cache.clear()
            self._cache_resets += 1
        cache[key] = value

    def cache_stats(self) -> dict:
        """Operation-cache statistics: hits, misses, hit_rate, resets, entries."""
        hits, misses = self._cache_hits, self._cache_misses
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
            "resets": self._cache_resets,
            "entries": len(self._cache) + len(self._lvl_cache),
        }

    def reset_cache_stats(self) -> None:
        """Zero the hit/miss/reset counters (cache contents are kept)."""
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_resets = 0

    def clear_cache(self) -> None:
        """Drop both operation caches (the unique table is kept)."""
        self._cache.clear()
        self._lvl_cache.clear()

    # -- boolean operations ----------------------------------------------------
    def not_(self, f: int) -> int:
        """Negation.  O(|f|) without complement edges (result is cached)."""
        f = int(f)
        if f <= TRUE_ID:
            return f ^ 1
        cache = self._cache
        var_level = self._var_level
        low = self._low
        high = self._high
        stack: list[tuple[int, int]] = [(_EXPAND, f)]
        vals: list[int] = []
        while stack:
            tag, n = stack.pop()
            if tag == _EXPAND:
                if n <= TRUE_ID:
                    vals.append(n ^ 1)
                    continue
                r = cache.get((_OP_NOT, n))
                if r is not None:
                    self._cache_hits += 1
                    vals.append(r)
                    continue
                self._cache_misses += 1
                stack.append((_COMBINE, n))
                stack.append((_EXPAND, high[n]))
                stack.append((_EXPAND, low[n]))
            else:
                hi = vals.pop()
                lo = vals.pop()
                r = self._mk(var_level[n], lo, hi)
                self._cache_put((_OP_NOT, n), r)
                vals.append(r)
        return vals[0]

    @staticmethod
    def _terminal_case(op: int, f: int, g: int) -> int | None:
        """Terminal/absorption cases of the binary kernels (None = recurse).

        XOR with a TRUE operand is *not* terminal here (it needs a
        negation); the kernel loop handles it.
        """
        if op == _OP_AND:
            if f == FALSE_ID or g == FALSE_ID:
                return FALSE_ID
            if f == TRUE_ID:
                return g
            if g == TRUE_ID or f == g:
                return f
        elif op == _OP_OR:
            if f == TRUE_ID or g == TRUE_ID:
                return TRUE_ID
            if f == FALSE_ID:
                return g
            if g == FALSE_ID or f == g:
                return f
        else:  # _OP_XOR
            if f == g:
                return FALSE_ID
            if f == FALSE_ID:
                return g
            if g == FALSE_ID:
                return f
        return None

    def _apply2(self, op: int, f: int, g: int) -> int:
        """Iterative binary apply kernel shared by and/or/xor."""
        cache = self._cache
        var_level = self._var_level
        low = self._low
        high = self._high
        terminal = self._terminal_case
        stack: list[tuple] = [(_EXPAND, int(f), int(g))]
        vals: list[int] = []
        while stack:
            frame = stack.pop()
            if frame[0] == _EXPAND:
                a, b = frame[1], frame[2]
                r = terminal(op, a, b)
                if r is not None:
                    vals.append(r)
                    continue
                if op == _OP_XOR and (a == TRUE_ID or b == TRUE_ID):
                    vals.append(self.not_(b if a == TRUE_ID else a))
                    continue
                if a > b:  # and/or/xor are commutative: canonicalise
                    a, b = b, a
                key = (op, a, b)
                r = cache.get(key)
                if r is not None:
                    self._cache_hits += 1
                    vals.append(r)
                    continue
                self._cache_misses += 1
                la, lb = var_level[a], var_level[b]
                lvl = la if la < lb else lb
                al, ah = (low[a], high[a]) if la == lvl else (a, a)
                bl, bh = (low[b], high[b]) if lb == lvl else (b, b)
                stack.append((_COMBINE, key, lvl))
                stack.append((_EXPAND, ah, bh))
                stack.append((_EXPAND, al, bl))
            else:
                hi = vals.pop()
                lo = vals.pop()
                r = self._mk(frame[2], lo, hi)
                self._cache_put(frame[1], r)
                vals.append(r)
        return vals[0]

    def apply_and(self, f: int, g: int) -> int:
        return self._apply2(_OP_AND, f, g)

    def apply_or(self, f: int, g: int) -> int:
        return self._apply2(_OP_OR, f, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self._apply2(_OP_XOR, f, g)

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h`` (recursion depth <= #levels)."""
        f, g, h = int(f), int(g), int(h)
        if f == TRUE_ID:
            return g
        if f == FALSE_ID:
            return h
        if g == h:
            return g
        if g == TRUE_ID and h == FALSE_ID:
            return f
        if g == FALSE_ID and h == TRUE_ID:
            return self.not_(f)
        key = (_OP_ITE, f, g, h)
        result = self._cache.get(key)
        if result is not None:
            self._cache_hits += 1
            return result
        self._cache_misses += 1
        lvl = min(self._var_level[f], self._var_level[g], self._var_level[h])
        fl, fh = self._cofactors(f, lvl)
        gl, gh = self._cofactors(g, lvl)
        hl, hh = self._cofactors(h, lvl)
        result = self._mk(lvl, self.ite(fl, gl, hl), self.ite(fh, gh, hh))
        self._cache_put(key, result)
        return result

    def _cofactors(self, f: int, level: int) -> tuple[int, int]:
        if self._var_level[f] == level:
            return self._low[f], self._high[f]
        return f, f

    # -- derived operations ----------------------------------------------------
    def apply(self, op: str, f: int, g: int) -> int:
        """Binary operation by name: and/or/xor/nand/nor/xnor/imp."""
        op = op.lower()
        if op == "and":
            return self.apply_and(f, g)
        if op == "or":
            return self.apply_or(f, g)
        if op == "xor":
            return self.apply_xor(f, g)
        if op == "nand":
            return self.not_(self.apply_and(f, g))
        if op == "nor":
            return self.not_(self.apply_or(f, g))
        if op == "xnor":
            return self.not_(self.apply_xor(f, g))
        if op in ("imp", "implies"):
            return self.apply_or(self.not_(f), g)
        raise ValueError(f"unknown operation {op!r}")

    def restrict(self, f: int, name: str, value: bool) -> int:
        """Cofactor of ``f`` with respect to ``name = value``."""
        target = self._require_level(name)
        cache = self._lvl_cache

        def rec(n: int) -> int:
            lvl = self._var_level[n]
            if lvl > target:
                return n
            k = ("restrict", n, target, value)
            r = cache.get(k)
            if r is not None:
                return r
            if lvl == target:
                r = self._high[n] if value else self._low[n]
            else:
                r = self._mk(lvl, rec(self._low[n]), rec(self._high[n]))
            cache[k] = r
            return r

        return rec(int(f))

    def exists(self, names: Sequence[str], f: int) -> int:
        """Existential quantification over ``names``."""
        levels = frozenset(self._require_level(n) for n in names)
        if not levels:
            return f
        top = max(levels)
        cache = self._lvl_cache

        def rec(n: int) -> int:
            lvl = self._var_level[n]
            if lvl > top:
                return n
            k = ("exists", n, levels)
            r = cache.get(k)
            if r is not None:
                return r
            lo, hi = rec(self._low[n]), rec(self._high[n])
            if lvl in levels:
                r = self.apply_or(lo, hi)
            else:
                r = self._mk(lvl, lo, hi)
            cache[k] = r
            return r

        return rec(int(f))

    def forall(self, names: Sequence[str], f: int) -> int:
        """Universal quantification over ``names``."""
        return self.not_(self.exists(names, self.not_(f)))

    def compose(self, f: int, name: str, g: int) -> int:
        """Substitute function ``g`` for variable ``name`` in ``f``."""
        target = self._require_level(name)
        cache = self._lvl_cache

        def rec(n: int) -> int:
            lvl = self._var_level[n]
            if lvl > target:
                return n
            k = ("compose", n, target, g)
            r = cache.get(k)
            if r is not None:
                return r
            if lvl == target:
                r = self.ite(g, self._high[n], self._low[n])
            else:
                lo, hi = rec(self._low[n]), rec(self._high[n])
                v = self._mk(lvl, FALSE_ID, TRUE_ID)
                r = self.ite(v, hi, lo)
            cache[k] = r
            return r

        return rec(int(f))

    def from_expr(self, expr: Expr) -> int:
        """Compile an :class:`~repro.expr.ast.Expr` into this manager."""
        from ..expr import And, Const, Ite, Not, Or, Var, Xor

        def rec(e: Expr) -> int:
            if isinstance(e, Const):
                return TRUE_ID if e.value else FALSE_ID
            if isinstance(e, Var):
                return self.var(e.name)
            if isinstance(e, Not):
                return self.not_(rec(e.operand))
            if isinstance(e, And):
                acc = TRUE_ID
                for op in e.operands:
                    acc = self.apply_and(acc, rec(op))
                return acc
            if isinstance(e, Or):
                acc = FALSE_ID
                for op in e.operands:
                    acc = self.apply_or(acc, rec(op))
                return acc
            if isinstance(e, Xor):
                acc = FALSE_ID
                for op in e.operands:
                    acc = self.apply_xor(acc, rec(op))
                return acc
            if isinstance(e, Ite):
                return self.ite(rec(e.cond), rec(e.then), rec(e.other))
            raise TypeError(f"cannot compile {type(e).__name__}")

        return rec(expr)

    # -- inspection --------------------------------------------------------------
    def evaluate(self, f: int, assignment: Mapping[str, bool]) -> bool:
        """Evaluate ``f`` under a full assignment of its support."""
        node = int(f)
        while node > TRUE_ID:
            name = self._order[self._var_level[node]]
            node = self._high[node] if assignment[name] else self._low[node]
        return node == TRUE_ID

    def satisfying_bitset(self, f: int, inputs: Sequence[str]) -> np.ndarray:
        """The full truth table of ``f`` as a packed-uint64 bit vector.

        One word encodes 64 assignments (see :mod:`repro.bitset` for the
        bit convention — ascending bit index enumerates assignments in
        ``itertools.product([False, True], repeat=n)`` order over
        ``inputs``).  Every reachable node is visited once, children
        first, combining child tables with three vector ops; the whole
        ``2**n``-assignment sweep costs O(|f| * 2**n / 64) word ops.
        """
        return self.satisfying_bitsets([f], inputs)[0]

    def satisfying_bitsets(
        self, roots: Sequence[int], inputs: Sequence[str]
    ) -> list[np.ndarray]:
        """Packed truth tables for several roots, sharing the traversal.

        Shared subgraphs are swept once — this is the SBDD-wide variant
        validation uses to compare every output in one pass.
        """
        names = list(inputs)
        n = len(names)
        position = {}  # level -> bit significance of the variable
        for j, name in enumerate(names):
            lvl = self._level.get(name)
            if lvl is not None:
                position[lvl] = n - 1 - j
        roots = [int(r) for r in roots]
        table: dict[int, np.ndarray] = {
            FALSE_ID: bitset.zeros(n),
            TRUE_ID: bitset.ones(n),
        }
        var = self._var_level
        low = self._low
        high = self._high
        internal = sorted(
            (node for node in self.reachable(roots) if node > TRUE_ID),
            key=lambda node: -var[node],
        )
        masks: dict[int, np.ndarray] = {}
        for node in internal:  # deepest level first: children are done
            lvl = var[node]
            mask = masks.get(lvl)
            if mask is None:
                pos = position.get(lvl)
                if pos is None:
                    raise ValueError(
                        f"root depends on variable {self._order[lvl]!r} "
                        f"which is not among the {n} named inputs"
                    )
                mask = masks[lvl] = bitset.variable_mask(pos, n)
            table[node] = (mask & table[high[node]]) | (~mask & table[low[node]])
        return [table[r].copy() for r in roots]

    def evaluate_many(
        self, roots: Sequence[int], matrix: np.ndarray, inputs: Sequence[str]
    ) -> list[np.ndarray]:
        """Evaluate each root under every assignment row of ``matrix``.

        ``matrix`` is boolean, shaped (num_assignments, len(inputs)).
        Vectorized level-stepping descent: per level, all cursors parked
        on that level advance with one gather.  Returns one boolean
        vector per root.
        """
        matrix = np.asarray(matrix, dtype=bool)
        names = list(inputs)
        if matrix.ndim != 2 or matrix.shape[1] != len(names):
            raise ValueError(
                f"matrix must be 2-D (num_assignments, {len(names)}), "
                f"got shape {matrix.shape}"
            )
        column = {name: j for j, name in enumerate(names)}
        var, low, high = self._node_arrays()
        results = []
        for root in roots:
            cursor = np.full(matrix.shape[0], int(root), dtype=np.int64)
            for lvl in range(len(self._order)):
                at_level = var[cursor] == lvl
                if not at_level.any():
                    continue
                j = column.get(self._order[lvl])
                if j is None:
                    raise ValueError(
                        f"root depends on variable {self._order[lvl]!r} "
                        f"which is not among the {len(names)} named inputs"
                    )
                nodes = cursor[at_level]
                cursor[at_level] = np.where(
                    matrix[at_level, j], high[nodes], low[nodes]
                )
            results.append(cursor == TRUE_ID)
        return results

    def reachable(self, roots: Iterable[int]) -> set[int]:
        """All node ids reachable from ``roots`` (terminals included).

        Scalar DFS on purpose: the live set during sifting is tiny
        compared to the append-only table, so a per-node walk beats a
        vectorized frontier sweep (whose per-level numpy dispatch
        overhead dominates on small frontiers).  The full-table
        compaction path uses :func:`collect_garbage`'s array pass
        instead.
        """
        low = self._low
        high = self._high
        seen: set[int] = set()
        stack = [int(r) for r in roots]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if n > TRUE_ID:
                stack.append(low[n])
                stack.append(high[n])
        return seen

    def node_count(self, roots: Iterable[int]) -> int:
        """Number of reachable nodes, terminals included (SBDD size)."""
        return len(self.reachable(roots))

    def collect_garbage(self, roots: Iterable[int]) -> dict[int, int]:
        """Compact the node table to the nodes reachable from ``roots``.

        In-place reordering rewrites nodes by allocating fresh children,
        so a long swap sequence strands dead nodes in the append-only
        table; this reclaims them.  Every surviving node gets a new
        (dense) id — the returned dict maps old ids to new ones, and the
        caller must remap any handles it holds.  Ids of nodes *not*
        reachable from ``roots`` become invalid.  Terminals keep ids 0
        and 1; both op caches are dropped (entries may reference dead
        ids).
        """
        live = self.reachable(roots)
        live.add(FALSE_ID)
        live.add(TRUE_ID)
        keep = sorted(live)
        keep_arr = np.array(keep, dtype=np.int64)
        var_a, low_a, high_a = self._node_arrays()
        lut = np.full(len(var_a), -1, dtype=np.int64)
        lut[keep_arr] = np.arange(len(keep), dtype=np.int64)
        self._var_level = var_a[keep_arr].tolist()
        self._low = lut[low_a[keep_arr]].tolist()
        self._high = lut[high_a[keep_arr]].tolist()
        # Rebuild the unique index from scratch: live nodes only, and
        # every key canonical (GC keeps one node per function).
        var = self._var_level
        lo = self._low
        hi = self._high
        self._unique = {
            (var[node], lo[node], hi[node]): node for node in range(2, len(var))
        }
        self._cache.clear()
        self._lvl_cache.clear()
        return {old: new for new, old in enumerate(keep)}

    def edges(self, roots: Iterable[int]) -> list[tuple[int, int, str, bool]]:
        """All BDD edges reachable from ``roots``.

        Each entry is ``(parent, child, variable, polarity)`` where
        polarity True means the then-edge (literal ``variable``) and
        False the else-edge (literal ``~variable``).
        """
        out = []
        for n in self.reachable(roots):
            if n > TRUE_ID:
                name = self._order[self._var_level[n]]
                out.append((n, self._low[n], name, False))
                out.append((n, self._high[n], name, True))
        return out

    def support(self, f: int) -> frozenset[str]:
        """Variable names on which ``f`` structurally depends."""
        return frozenset(
            self._order[self._var_level[n]] for n in self.reachable([f]) if n > TRUE_ID
        )

    def sat_count(self, f: int, nvars: int | None = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        ``nvars`` defaults to the number of declared variables.
        """
        if nvars is None:
            nvars = len(self._order)
        cache: dict[int, int] = {}

        def weight(n: int) -> int:
            # Number of sat assignments of the cone below n, counting the
            # variables strictly below n's level as free ones later.
            if n == FALSE_ID:
                return 0
            if n == TRUE_ID:
                return 1
            r = cache.get(n)
            if r is not None:
                return r
            lvl = self._var_level[n]
            lo, hi = self._low[n], self._high[n]
            lo_gap = (self._var_level[lo] if lo > TRUE_ID else nvars) - lvl - 1
            hi_gap = (self._var_level[hi] if hi > TRUE_ID else nvars) - lvl - 1
            r = weight(lo) * (1 << lo_gap) + weight(hi) * (1 << hi_gap)
            cache[n] = r
            return r

        f = int(f)
        top_gap = self._var_level[f] if f > TRUE_ID else nvars
        if f == TRUE_ID:
            return 1 << nvars
        if f == FALSE_ID:
            return 0
        return weight(f) * (1 << top_gap)

    def pick_sat(self, f: int) -> dict[str, bool] | None:
        """One satisfying assignment of ``f``'s support, or None."""
        if f == FALSE_ID:
            return None
        env: dict[str, bool] = {}
        node = int(f)
        while node > TRUE_ID:
            name = self._order[self._var_level[node]]
            if self._high[node] != FALSE_ID:
                env[name] = True
                node = self._high[node]
            else:
                env[name] = False
                node = self._low[node]
        return env

    def one_paths(self, f: int) -> int:
        """Number of distinct root-to-1 paths (crossbar sneak paths)."""
        cache: dict[int, int] = {}

        def rec(n: int) -> int:
            if n == TRUE_ID:
                return 1
            if n == FALSE_ID:
                return 0
            r = cache.get(n)
            if r is None:
                r = rec(self._low[n]) + rec(self._high[n])
                cache[n] = r
            return r

        return rec(int(f))

    def __repr__(self) -> str:
        return f"BDD(vars={len(self._order)}, nodes={len(self._var_level)})"
