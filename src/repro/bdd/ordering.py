"""Variable ordering heuristics for BDD construction.

The size of an ROBDD is notoriously sensitive to the variable order.
The paper builds its BDDs with ABC/CUDD defaults; here we provide:

* :func:`static_order` — the classic depth-first fan-in traversal from
  the primary outputs, which works well for control-dominated circuits.
* :func:`sift_order` — greedy Rudell sifting.  The shared BDD is built
  *once* and every candidate position is reached by an in-place
  adjacent-level swap (:mod:`repro.bdd.reorder`), so trying a position
  costs ``O(nodes at two levels)`` instead of a full reconstruction.
* :func:`sift_order_rebuild` — the original rebuild-per-candidate
  sifter, kept as the slow exact baseline the perf smoke benchmark
  compares against (``O(rounds * n_vars^2)`` SBDD constructions).
* :func:`interleaved_order` — round-robin interleaving of structured
  input buses (``a0 b0 a1 b1 ...``), the standard trick for adders and
  comparators.

Full SBDD constructions performed by this module are tallied in the
``sbdd_rebuilds`` perf counter (:mod:`repro.perf.counters`), which is
how tests prove the in-place path does zero rebuilds per candidate.
"""

from __future__ import annotations

import re
import time
from collections.abc import Sequence

from ..circuits.netlist import Netlist
from ..perf import counters

__all__ = [
    "static_order",
    "interleaved_order",
    "sift_order",
    "sift_order_rebuild",
    "sbdd_size_for_order",
]


def static_order(netlist: Netlist) -> list[str]:
    """DFS fan-in order from the primary outputs.

    Inputs are listed in the order they are first reached by a
    depth-first traversal from each output in declaration order; inputs
    never reached (outputs independent of them) go last.
    """
    order: list[str] = []
    seen: set[str] = set()

    def visit(net: str) -> None:
        stack = [net]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            gate = netlist.driver(n)
            if gate is None:
                if n in netlist.inputs:
                    order.append(n)
                continue
            # Reverse keeps declaration order of fan-ins when popping.
            stack.extend(reversed(gate.inputs))

    for out in netlist.outputs:
        visit(out)
    for name in netlist.inputs:
        if name not in seen:
            order.append(name)
    return order


_BUS_RE = re.compile(r"^(.*?)(\d+)$")


def interleaved_order(netlist: Netlist) -> list[str]:
    """Interleave same-index bits of different input buses.

    Groups inputs by their alphabetic stem (``a3`` -> bus ``a``) and
    emits index 0 of every bus, then index 1, and so on.  Non-bus inputs
    keep their declaration position group.
    """
    buses: dict[str, list[tuple[int, str]]] = {}
    singles: list[str] = []
    for name in netlist.inputs:
        m = _BUS_RE.match(name)
        if m:
            buses.setdefault(m.group(1), []).append((int(m.group(2)), name))
        else:
            singles.append(name)
    for members in buses.values():
        members.sort()
    order: list[str] = []
    index = 0
    remaining = sum(len(v) for v in buses.values())
    while remaining:
        for stem in buses:
            members = buses[stem]
            if index < len(members):
                order.append(members[index][1])
                remaining -= 1
        index += 1
    return order + singles


def sbdd_size_for_order(netlist: Netlist, order: Sequence[str]) -> int:
    """Shared-BDD node count of ``netlist`` under ``order``.

    Performs one full SBDD construction (counted in ``sbdd_rebuilds``).
    """
    from .sbdd import build_sbdd

    counters.increment("sbdd_rebuilds")
    return build_sbdd(netlist, order=list(order)).node_count()


def sift_order(
    netlist: Netlist,
    start: Sequence[str] | None = None,
    max_rounds: int = 1,
    time_budget: float | None = None,
    max_growth: float | None = None,
    stats: dict | None = None,
) -> list[str]:
    """In-place Rudell sifting: move each variable to its best position.

    Builds the shared BDD once (the only entry in the ``sbdd_rebuilds``
    counter) and explores every candidate position with adjacent-level
    swaps on the live manager — each position costs ``O(nodes at the
    two swapped levels)`` rather than a full reconstruction, which is
    what makes sifting usable on the larger suite circuits.  By default
    every position is examined (matching the greedy trajectory of
    :func:`sift_order_rebuild`, so the result is never larger); setting
    ``max_growth`` enables Rudell's blow-up abort, trading that
    guarantee for speed.  Stops when ``time_budget`` seconds elapse.

    ``stats`` (optional dict) receives the in-place sifter's
    ``initial_size``/``final_size``/``swaps``/``rounds``.
    """
    from .reorder import sift
    from .sbdd import build_sbdd

    order = list(start) if start is not None else static_order(netlist)
    if len(order) < 2:
        return order
    counters.increment("sbdd_rebuilds")
    sbdd = build_sbdd(netlist, order=order)
    sift(
        sbdd.manager,
        list(sbdd.roots.values()),
        max_growth=max_growth,
        time_budget=time_budget,
        max_rounds=max_rounds,
        stats=stats,
    )
    return list(sbdd.manager.var_order)


def sift_order_rebuild(
    netlist: Netlist,
    start: Sequence[str] | None = None,
    max_rounds: int = 1,
    time_budget: float | None = None,
) -> list[str]:
    """Rebuild-based greedy sifting (the pre-optimization baseline).

    Rebuilds the shared BDD for every candidate position, so the cost is
    ``O(rounds * n_vars^2)`` BDD constructions — exact and simple, meant
    for small netlists and for benchmarking the in-place sifter against.
    Stops early when ``time_budget`` seconds have elapsed.
    """
    order = list(start) if start is not None else static_order(netlist)
    best_size = sbdd_size_for_order(netlist, order)
    deadline = None if time_budget is None else time.monotonic() + time_budget

    for _ in range(max_rounds):
        improved = False
        for name in list(order):
            if deadline is not None and time.monotonic() > deadline:
                return order
            base = order.index(name)
            best_pos, best_here = base, best_size
            without = order[:base] + order[base + 1 :]
            for pos in range(len(order)):
                if pos == base:
                    continue
                candidate = without[:pos] + [name] + without[pos:]
                size = sbdd_size_for_order(netlist, candidate)
                if size < best_here:
                    best_here, best_pos = size, pos
            if best_pos != base:
                order = without[:best_pos] + [name] + without[best_pos:]
                best_size = best_here
                improved = True
        if not improved:
            break
    return order
