"""Variable ordering heuristics for BDD construction.

The size of an ROBDD is notoriously sensitive to the variable order.
The paper builds its BDDs with ABC/CUDD defaults; here we provide:

* :func:`static_order` — the classic depth-first fan-in traversal from
  the primary outputs, which works well for control-dominated circuits.
* :func:`sift_order` — a rebuild-based greedy sifting search: each
  variable in turn is tried at every position and left where the shared
  BDD is smallest.  Pure-Python rebuild per candidate keeps the code
  simple and exact; intended for the benchmark sizes used here.
* :func:`interleaved_order` — round-robin interleaving of structured
  input buses (``a0 b0 a1 b1 ...``), the standard trick for adders and
  comparators.
"""

from __future__ import annotations

import re
import time
from collections.abc import Sequence

from ..circuits.netlist import Netlist

__all__ = ["static_order", "interleaved_order", "sift_order", "sbdd_size_for_order"]


def static_order(netlist: Netlist) -> list[str]:
    """DFS fan-in order from the primary outputs.

    Inputs are listed in the order they are first reached by a
    depth-first traversal from each output in declaration order; inputs
    never reached (outputs independent of them) go last.
    """
    order: list[str] = []
    seen: set[str] = set()

    def visit(net: str) -> None:
        stack = [net]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            gate = netlist.driver(n)
            if gate is None:
                if n in netlist.inputs:
                    order.append(n)
                continue
            # Reverse keeps declaration order of fan-ins when popping.
            stack.extend(reversed(gate.inputs))

    for out in netlist.outputs:
        visit(out)
    for name in netlist.inputs:
        if name not in seen:
            order.append(name)
    return order


_BUS_RE = re.compile(r"^(.*?)(\d+)$")


def interleaved_order(netlist: Netlist) -> list[str]:
    """Interleave same-index bits of different input buses.

    Groups inputs by their alphabetic stem (``a3`` -> bus ``a``) and
    emits index 0 of every bus, then index 1, and so on.  Non-bus inputs
    keep their declaration position group.
    """
    buses: dict[str, list[tuple[int, str]]] = {}
    singles: list[str] = []
    for name in netlist.inputs:
        m = _BUS_RE.match(name)
        if m:
            buses.setdefault(m.group(1), []).append((int(m.group(2)), name))
        else:
            singles.append(name)
    for members in buses.values():
        members.sort()
    order: list[str] = []
    index = 0
    remaining = sum(len(v) for v in buses.values())
    while remaining:
        for stem in buses:
            members = buses[stem]
            if index < len(members):
                order.append(members[index][1])
                remaining -= 1
        index += 1
    return order + singles


def sbdd_size_for_order(netlist: Netlist, order: Sequence[str]) -> int:
    """Shared-BDD node count of ``netlist`` under ``order``."""
    from .sbdd import build_sbdd

    return build_sbdd(netlist, order=list(order)).node_count()


def sift_order(
    netlist: Netlist,
    start: Sequence[str] | None = None,
    max_rounds: int = 1,
    time_budget: float | None = None,
) -> list[str]:
    """Greedy sifting: move each variable to its best position.

    Rebuilds the shared BDD for every candidate position, so the cost is
    ``O(rounds * n_vars^2)`` BDD constructions — exact and simple, meant
    for small and mid-size netlists.  Stops early when ``time_budget``
    seconds have elapsed.
    """
    order = list(start) if start is not None else static_order(netlist)
    best_size = sbdd_size_for_order(netlist, order)
    deadline = None if time_budget is None else time.monotonic() + time_budget

    for _ in range(max_rounds):
        improved = False
        for name in list(order):
            if deadline is not None and time.monotonic() > deadline:
                return order
            base = order.index(name)
            best_pos, best_here = base, best_size
            without = order[:base] + order[base + 1 :]
            for pos in range(len(order)):
                if pos == base:
                    continue
                candidate = without[:pos] + [name] + without[pos:]
                size = sbdd_size_for_order(netlist, candidate)
                if size < best_here:
                    best_here, best_pos = size, pos
            if best_pos != base:
                order = without[:best_pos] + [name] + without[best_pos:]
                best_size = best_here
                improved = True
        if not improved:
            break
    return order
