"""Dynamic (in-place) BDD variable reordering.

Implements the classic adjacent-level swap and Rudell's sifting on top
of the table-based manager in :mod:`repro.bdd.manager`.  Unlike the
rebuild-based :func:`repro.bdd.ordering.sift_order`, these operate on a
live manager: node *ids keep denoting the same Boolean functions*, so
existing root handles (e.g. an SBDD's outputs) stay valid across
reordering.

The swap rewrites every node testing the upper variable ``x`` through
the identity

    (x, f0, f1)  ==  (y, (x, f00, f10), (x, f01, f11))

where ``fij`` is the cofactor of ``fi`` at ``y = j``.  Reduction
guarantees no canonicity collisions (see the inline proofs), so the
unique table only needs re-keying at the two affected levels.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from ..perf import counters
from .manager import BDD, TRUE_ID

__all__ = ["swap_adjacent", "sift", "sift_sbdd"]


def swap_adjacent(manager: BDD, level: int) -> None:
    """Swap the variables at ``level`` and ``level + 1`` in place.

    All node ids continue to denote the same Boolean functions; only
    the internal (level, low, high) triples and the unique table keys
    at the two levels change.  Because ids keep their meaning, the
    level-independent op cache (not/and/or/xor/ite results) stays valid;
    only the level-dependent cache (restrict/exists/compose entries,
    which embed variable levels) is invalidated.
    """
    order = manager._order
    if not 0 <= level < len(order) - 1:
        raise IndexError(f"no adjacent pair at level {level}")
    upper = level
    lower = level + 1

    nodes_x = manager._level_nodes(upper)
    nodes_y = manager._level_nodes(lower)

    var_level = manager._var_level
    low = manager._low
    high = manager._high
    unique = manager._unique

    # Drop stale unique-table entries for both levels (inline
    # (level, low, high) keys keep this loop method-call-free).
    for n in nodes_x:
        unique.pop((upper, low[n], high[n]), None)
    for m in nodes_y:
        unique.pop((lower, low[m], high[m]), None)

    # The variables trade places.
    x_name, y_name = order[upper], order[lower]
    order[upper], order[lower] = y_name, x_name
    manager._level[x_name] = lower
    manager._level[y_name] = upper

    # y-nodes move up unchanged: same children, new level.
    for m in nodes_y:
        var_level[m] = upper
        unique[(upper, low[m], high[m])] = m

    # x-nodes that do not test y: same children, new level.  Registering
    # them *before* rewriting the dependent nodes lets the rewrite share
    # them instead of duplicating (x, f0, f1) at the new level.
    dependent = []
    for n in nodes_x:
        if var_level[low[n]] == upper or var_level[high[n]] == upper:
            # (child was a y-node, which now sits at `upper`)
            dependent.append(n)
        else:
            var_level[n] = lower
            unique[(lower, low[n], high[n])] = n

    # Dependent x-nodes become y-nodes via the swap identity.
    for n in dependent:
        f0, f1 = low[n], high[n]
        f00, f01 = _cofactor_pair(manager, f0, upper)
        f10, f11 = _cofactor_pair(manager, f1, upper)
        a = manager._mk(lower, f00, f10)
        b = manager._mk(lower, f01, f11)
        # A rewritten node can never collide with an existing y-node:
        # that would force f0 == f1 (both (y, f00, f01)), which reduction
        # forbids.  Distinct rewritten nodes stay distinct because node
        # ids denote functions and the function is unchanged.
        var_level[n] = upper
        low[n] = a
        high[n] = b
        unique[(upper, a, b)] = n

    manager._lvl_cache.clear()
    manager.swap_count += 1
    counters.increment("reorder_swaps")


def _cofactor_pair(manager: BDD, node: int, y_level: int) -> tuple[int, int]:
    if manager._var_level[node] == y_level:
        return manager._low[node], manager._high[node]
    return node, node


def _live_size(manager: BDD, roots: Sequence[int]) -> int:
    return len(manager.reachable(roots))


#: Collect garbage once the table exceeds ``_GC_FACTOR * live + _GC_SLACK``
#: nodes.  The slack keeps GC away from the small managers that unit
#: tests (and external callers holding extra node handles) operate on.
_GC_FACTOR = 4
_GC_SLACK = 512


def _maybe_collect(manager: BDD, roots: Sequence[int]) -> int:
    """GC the manager when swap garbage dominates the table.

    Swap rewrites allocate fresh nodes, so long swap sequences strand
    exponentially many dead nodes (every later swap then re-rewrites
    them).  When ``roots`` is a mutable list its entries are remapped in
    place; other id handles into the manager become invalid.  Returns
    the live node count so callers don't traverse twice per swap.
    """
    live = len(manager.reachable(roots))
    if manager.table_size() > _GC_FACTOR * live + _GC_SLACK:
        remap = manager.collect_garbage(roots)
        if isinstance(roots, list):
            roots[:] = [remap[r] for r in roots]
        counters.increment("reorder_gcs")
    return live


def move_var(manager: BDD, name: str, target_level: int, roots: Sequence[int]) -> int:
    """Move ``name`` to ``target_level`` by adjacent swaps.

    Returns the live node count (reachable from ``roots``) afterwards.
    May garbage-collect dead swap debris along the way: pass ``roots``
    as a mutable list to have its handles remapped in place (any other
    node ids held by the caller are only safe below the GC threshold).
    """
    current = manager._level[name]
    live = -1
    while current < target_level:
        swap_adjacent(manager, current)
        live = _maybe_collect(manager, roots)
        current += 1
    while current > target_level:
        swap_adjacent(manager, current - 1)
        live = _maybe_collect(manager, roots)
        current -= 1
    return live if live >= 0 else _live_size(manager, roots)


def sift(
    manager: BDD,
    roots: Sequence[int],
    max_growth: float | None = None,
    time_budget: float | None = None,
    max_rounds: int = 1,
    stats: dict | None = None,
    polish: bool = True,
) -> int:
    """Rudell sifting on a live manager.

    Each variable in turn is moved through *every* position by adjacent
    swaps and parked where the live node count (reachable from
    ``roots``) is smallest.  The main rounds visit variables in their
    current level order and scan positions top-down with
    strictly-smaller/earliest tie-breaking — exactly the greedy
    trajectory of the rebuild-based
    :func:`repro.bdd.ordering.sift_order_rebuild`, so the result is
    never larger than that baseline; a final ``polish`` round (largest
    level population first, improvements only) can then only shrink it
    further.  Returns the final live size.

    With ``max_growth`` set, a position scan is aborted early once the
    live size exceeds ``max_growth`` times the best size seen for the
    variable (Rudell's blow-up abort; trades the baseline guarantee for
    speed on adversarial circuits).

    When ``stats`` is a dict it receives ``initial_size``,
    ``final_size``, ``swaps`` (adjacent swaps this call performed) and
    ``rounds``.

    Long swap sequences strand dead nodes, so sifting garbage-collects
    the manager when the table outgrows the live set; pass ``roots`` as
    a mutable list (the usual case) to have the handles remapped in
    place.  Any other node ids held by the caller may be invalidated —
    use :func:`sift_sbdd` to keep an SBDD's root dict consistent.
    """
    deadline = None if time_budget is None else time.monotonic() + time_budget
    best_total = _live_size(manager, roots)
    n_levels = len(manager._order)
    swaps_before = manager.swap_count
    rounds_done = 0
    if stats is not None:
        stats["initial_size"] = best_total

    def _finish(size: int) -> int:
        if stats is not None:
            stats["final_size"] = size
            stats["swaps"] = manager.swap_count - swaps_before
            stats["rounds"] = rounds_done
        return size

    def _sift_round(names: list[str]) -> tuple[bool, bool]:
        """Sift each of ``names`` once; returns (improved, timed_out)."""
        nonlocal best_total
        improved = False
        for name in names:
            if deadline is not None and time.monotonic() > deadline:
                return improved, True
            base = manager._level[name]
            best_pos, best_here = base, best_total
            # Scan positions 0 .. n-1 in ascending order (keeping the
            # earliest strictly-smaller position, like the rebuild
            # sifter's candidate loop), then park at the winner.
            if base != 0:
                move_var(manager, name, 0, roots)
            size = _live_size(manager, roots)
            if size < best_here:
                best_here, best_pos = size, 0
            for pos in range(1, n_levels):
                size = move_var(manager, name, pos, roots)
                if size < best_here:
                    best_here, best_pos = size, pos
                elif max_growth is not None and size > max_growth * best_here:
                    break
            move_var(manager, name, best_pos, roots)
            if best_here < best_total:
                best_total = best_here
                improved = True
        return improved, False

    timed_out = False
    for _ in range(max_rounds):
        rounds_done += 1
        improved, timed_out = _sift_round(list(manager._order))
        if timed_out or not improved:
            break

    if polish and not timed_out and n_levels > 1:
        # One extra improvement-only pass, largest level population
        # first (the classic Rudell visiting order).
        rounds_done += 1
        population: dict[str, int] = {}
        for node in manager.reachable(roots):
            if node > TRUE_ID:
                var = manager.var_of(node)
                population[var] = population.get(var, 0) + 1
        _sift_round(sorted(manager._order, key=lambda v: -population.get(v, 0)))
    return _finish(_live_size(manager, roots))


def sift_sbdd(sbdd, **kwargs) -> int:
    """Sift an SBDD's manager in place; ``sbdd.roots`` stays valid.

    Sifting may garbage-collect the manager (remapping node ids), so
    the root handles are written back afterwards.
    """
    roots = list(sbdd.roots.values())
    size = sift(sbdd.manager, roots, **kwargs)
    sbdd.roots = dict(zip(sbdd.roots.keys(), roots))
    return size
