"""Dynamic (in-place) BDD variable reordering.

Implements the classic adjacent-level swap and Rudell's sifting on top
of the table-based manager in :mod:`repro.bdd.manager`.  Unlike the
rebuild-based :func:`repro.bdd.ordering.sift_order`, these operate on a
live manager: node *ids keep denoting the same Boolean functions*, so
existing root handles (e.g. an SBDD's outputs) stay valid across
reordering.

The swap rewrites every node testing the upper variable ``x`` through
the identity

    (x, f0, f1)  ==  (y, (x, f00, f10), (x, f01, f11))

where ``fij`` is the cofactor of ``fi`` at ``y = j``.  Reduction
guarantees no canonicity collisions (see the inline proofs), so the
unique table only needs re-keying at the two affected levels.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from .manager import BDD, TRUE_ID

__all__ = ["swap_adjacent", "sift", "sift_sbdd"]


def swap_adjacent(manager: BDD, level: int) -> None:
    """Swap the variables at ``level`` and ``level + 1`` in place.

    All node ids continue to denote the same Boolean functions; only
    the internal (level, low, high) triples and the unique table keys
    at the two levels change.  The operation cache is dropped (cached
    cofactor/quantifier entries embed levels).
    """
    order = manager._order
    if not 0 <= level < len(order) - 1:
        raise IndexError(f"no adjacent pair at level {level}")
    upper = level
    lower = level + 1

    var_level = manager._var_level
    low = manager._low
    high = manager._high
    unique = manager._unique

    nodes_x = [n for n in range(2, len(var_level)) if var_level[n] == upper]
    nodes_y = [n for n in range(2, len(var_level)) if var_level[n] == lower]

    # Drop stale keys for both levels.
    for n in nodes_x:
        unique.pop((upper, low[n], high[n]), None)
    for n in nodes_y:
        unique.pop((lower, low[n], high[n]), None)

    # The variables trade places.
    x_name, y_name = order[upper], order[lower]
    order[upper], order[lower] = y_name, x_name
    manager._level[x_name] = lower
    manager._level[y_name] = upper

    # y-nodes move up unchanged: same children, new level.
    for m in nodes_y:
        var_level[m] = upper
        unique[(upper, low[m], high[m])] = m

    # x-nodes that do not test y: same children, new level.  Registering
    # them *before* rewriting the dependent nodes lets the rewrite share
    # them instead of duplicating (x, f0, f1) at the new level.
    dependent = []
    for n in nodes_x:
        if var_level[low[n]] == upper or var_level[high[n]] == upper:
            # (child was a y-node, which now sits at `upper`)
            dependent.append(n)
        else:
            var_level[n] = lower
            unique[(lower, low[n], high[n])] = n

    # Dependent x-nodes become y-nodes via the swap identity.
    for n in dependent:
        f0, f1 = low[n], high[n]
        f00, f01 = _cofactor_pair(manager, f0, upper)
        f10, f11 = _cofactor_pair(manager, f1, upper)
        a = manager._mk(lower, f00, f10)
        b = manager._mk(lower, f01, f11)
        # A rewritten node can never collide with an existing y-node:
        # that would force f0 == f1 (both (y, f00, f01)), which reduction
        # forbids.  Distinct rewritten nodes stay distinct because node
        # ids denote functions and the function is unchanged.
        var_level[n] = upper
        low[n] = a
        high[n] = b
        unique[(upper, a, b)] = n

    manager._cache.clear()


def _cofactor_pair(manager: BDD, node: int, y_level: int) -> tuple[int, int]:
    if manager._var_level[node] == y_level:
        return manager._low[node], manager._high[node]
    return node, node


def _live_size(manager: BDD, roots: Sequence[int]) -> int:
    return len(manager.reachable(roots))


def move_var(manager: BDD, name: str, target_level: int, roots: Sequence[int]) -> int:
    """Move ``name`` to ``target_level`` by adjacent swaps.

    Returns the live node count (reachable from ``roots``) afterwards.
    """
    current = manager._level[name]
    while current < target_level:
        swap_adjacent(manager, current)
        current += 1
    while current > target_level:
        swap_adjacent(manager, current - 1)
        current -= 1
    return _live_size(manager, roots)


def sift(
    manager: BDD,
    roots: Sequence[int],
    max_growth: float = 2.0,
    time_budget: float | None = None,
    max_rounds: int = 1,
) -> int:
    """Rudell sifting on a live manager.

    Each variable (largest level population first) is moved through
    every position by adjacent swaps and parked where the live node
    count (reachable from ``roots``) is smallest.  A move is aborted
    early when the table grows past ``max_growth`` times the best size
    seen.  Returns the final live size.
    """
    deadline = None if time_budget is None else time.monotonic() + time_budget
    best_total = _live_size(manager, roots)
    n_levels = len(manager._order)

    for _ in range(max_rounds):
        improved = False
        # Order variables by how many live nodes test them (big first).
        live = manager.reachable(roots)
        population: dict[str, int] = {}
        for node in live:
            if node > TRUE_ID:
                population[manager.var_of(node)] = population.get(manager.var_of(node), 0) + 1
        names = sorted(manager._order, key=lambda v: -population.get(v, 0))

        for name in names:
            if deadline is not None and time.monotonic() > deadline:
                return _live_size(manager, roots)
            start_level = manager._level[name]
            best_level, best_size = start_level, _live_size(manager, roots)

            # Sweep to the bottom, then to the top, tracking the best spot.
            for target in range(start_level + 1, n_levels):
                size = move_var(manager, name, target, roots)
                if size < best_size:
                    best_size, best_level = size, target
                elif size > max_growth * best_size:
                    break
            for target in range(manager._level[name] - 1, -1, -1):
                size = move_var(manager, name, target, roots)
                if size < best_size:
                    best_size, best_level = size, target
                elif size > max_growth * best_size:
                    break
            move_var(manager, name, best_level, roots)
            if best_size < best_total:
                best_total = best_size
                improved = True
        if not improved:
            break
    return _live_size(manager, roots)


def sift_sbdd(sbdd, **kwargs) -> int:
    """Sift an SBDD's manager in place; root handles stay valid."""
    return sift(sbdd.manager, list(sbdd.roots.values()), **kwargs)
