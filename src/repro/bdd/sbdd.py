"""Shared BDDs (SBDDs) and netlist compilation.

An :class:`SBDD` bundles one BDD manager with a set of named roots —
one per primary output of a circuit.  Because all roots live in the same
unique table, logic shared between outputs is represented once, which is
exactly the size advantage Section VII-A of the paper measures
(Table III: SBDD vs per-output ROBDDs).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..circuits.netlist import Netlist
from ..expr import Expr
from .manager import BDD, FALSE_ID, TRUE_ID

__all__ = ["SBDD", "build_sbdd", "build_robdds"]


class SBDD:
    """A multi-rooted shared BDD.

    Attributes
    ----------
    manager:
        The owning :class:`~repro.bdd.manager.BDD` manager.
    roots:
        Ordered mapping from output name to root node id.
    """

    def __init__(self, manager: BDD, roots: Mapping[str, int], name: str = "sbdd"):
        self.manager = manager
        self.roots: dict[str, int] = dict(roots)
        self.name = name

    # -- sizes -----------------------------------------------------------------
    def reachable(self) -> set[int]:
        """Node ids reachable from any root (terminals included)."""
        return self.manager.reachable(self.roots.values())

    def node_count(self) -> int:
        """Reachable node count, terminals included (the paper's 'nodes')."""
        return len(self.reachable())

    def internal_count(self) -> int:
        """Reachable non-terminal node count."""
        return sum(1 for n in self.reachable() if n > TRUE_ID)

    def edge_count(self) -> int:
        """Number of BDD edges (two per internal node)."""
        return 2 * self.internal_count()

    def edges(self) -> list[tuple[int, int, str, bool]]:
        """All reachable edges as ``(parent, child, var, polarity)``."""
        return self.manager.edges(self.roots.values())

    # -- semantics ---------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, bool]) -> dict[str, bool]:
        """Evaluate every output under ``assignment``."""
        return {
            name: self.manager.evaluate(root, assignment)
            for name, root in self.roots.items()
        }

    def evaluate_batch(self, matrix, inputs: Sequence[str]) -> dict[str, "np.ndarray"]:
        """Evaluate every output under each assignment row of ``matrix``.

        ``matrix`` is boolean, shaped (num_assignments, len(inputs));
        returns one boolean vector per output.  Row ``k`` agrees with
        ``self.evaluate`` on the corresponding assignment dict.
        """
        results = self.manager.evaluate_many(
            list(self.roots.values()), matrix, inputs
        )
        return dict(zip(self.roots.keys(), results))

    def evaluate_bitset(self, inputs: Sequence[str]) -> dict[str, "np.ndarray"]:
        """Full truth table per output as packed uint64 words.

        One sweep over the shared graph covers all outputs; see
        :mod:`repro.bitset` for the assignment-index bit convention.
        """
        tables = self.manager.satisfying_bitsets(
            list(self.roots.values()), inputs
        )
        return dict(zip(self.roots.keys(), tables))

    def support(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for root in self.roots.values():
            out |= self.manager.support(root)
        return out

    def __repr__(self) -> str:
        return f"SBDD({self.name!r}, outputs={len(self.roots)}, nodes={self.node_count()})"


def build_sbdd(
    netlist: Netlist,
    order: Sequence[str] | None = None,
    manager: BDD | None = None,
) -> SBDD:
    """Compile a netlist into a shared BDD.

    Parameters
    ----------
    netlist:
        The combinational circuit to compile.
    order:
        Variable order (defaults to :func:`~repro.bdd.ordering.static_order`).
    manager:
        Optional existing manager to build into (its order must cover the
        netlist inputs).
    """
    from .ordering import static_order

    if manager is None:
        manager = BDD(order if order is not None else static_order(netlist))
    node: dict[str, int] = {}
    for name in netlist.inputs:
        node[name] = manager.var(name)

    for gate in netlist.topological_gates():
        ins = [node[i] for i in gate.inputs]
        t = gate.gate_type
        if t == "AND":
            acc = TRUE_ID
            for f in ins:
                acc = manager.apply_and(acc, f)
        elif t == "OR":
            acc = FALSE_ID
            for f in ins:
                acc = manager.apply_or(acc, f)
        elif t == "NAND":
            acc = TRUE_ID
            for f in ins:
                acc = manager.apply_and(acc, f)
            acc = manager.not_(acc)
        elif t == "NOR":
            acc = FALSE_ID
            for f in ins:
                acc = manager.apply_or(acc, f)
            acc = manager.not_(acc)
        elif t == "XOR":
            acc = FALSE_ID
            for f in ins:
                acc = manager.apply_xor(acc, f)
        elif t == "XNOR":
            acc = FALSE_ID
            for f in ins:
                acc = manager.apply_xor(acc, f)
            acc = manager.not_(acc)
        elif t == "INV":
            acc = manager.not_(ins[0])
        elif t == "BUF":
            acc = ins[0]
        elif t == "MUX":
            acc = manager.ite(ins[0], ins[1], ins[2])
        elif t == "MAJ":
            # Majority via threshold recursion: OR of AND-pairs is fine
            # for fan-in 3; general case builds a sorted adder chain.
            acc = _majority(manager, ins)
        elif t == "CONST0":
            acc = FALSE_ID
        elif t == "CONST1":
            acc = TRUE_ID
        else:  # pragma: no cover - Gate.__post_init__ rejects unknown types
            raise ValueError(f"unsupported gate type {t}")
        node[gate.output] = acc

    roots = {out: node[out] for out in netlist.outputs}
    return SBDD(manager, roots, name=netlist.name)


def _majority(manager: BDD, ins: list[int]) -> int:
    """Majority of an odd number of functions, by dynamic programming.

    ``count[k]`` is the BDD for "at least k of the inputs seen so far are
    true"; processing inputs one at a time keeps intermediate BDDs small.
    """
    need = len(ins) // 2 + 1
    # count[k] for k in 0..need, initially: at-least-0 = TRUE, others FALSE.
    count = [TRUE_ID] + [FALSE_ID] * need
    for f in ins:
        for k in range(need, 0, -1):
            count[k] = manager.apply_or(
                count[k], manager.apply_and(count[k - 1], f)
            )
    return count[need]


def build_robdds(
    netlist: Netlist,
    order: Sequence[str] | None = None,
) -> list[tuple[str, SBDD]]:
    """Compile one *separate* ROBDD per primary output.

    This reproduces the prior-work flow (Section VII-A, Figure 8(a)):
    each output gets its own manager, so no logic is shared.  All
    managers use the same global variable order so sizes are comparable
    to the shared build.  Returns ``[(output_name, single-root SBDD)]``.
    """
    from .ordering import static_order

    if order is None:
        order = static_order(netlist)
    results: list[tuple[str, SBDD]] = []
    for out in netlist.outputs:
        sub = Netlist(f"{netlist.name}:{out}", inputs=list(netlist.inputs), outputs=[out])
        sub.gates = list(netlist.gates)
        sub._driver = dict(netlist._driver)
        sbdd = build_sbdd(sub, order=list(order))
        results.append((out, sbdd))
    return results


def sbdd_from_exprs(
    exprs: Mapping[str, Expr],
    order: Sequence[str] | None = None,
    name: str = "sbdd",
) -> SBDD:
    """Build a shared BDD directly from named expressions."""
    if order is None:
        seen: list[str] = []
        for e in exprs.values():
            for v in sorted(e.variables()):
                if v not in seen:
                    seen.append(v)
        order = seen
    manager = BDD(order)
    roots = {out: manager.from_expr(e) for out, e in exprs.items()}
    return SBDD(manager, roots, name=name)
