"""Experiment harness: suites, runners and table/figure reproduction."""

from .experiments import (
    CompactRun,
    fig9_pareto,
    fig10_convergence,
    fig11_gaps,
    fig12_power_delay,
    fig13_vs_magic,
    run_compact,
    table1_properties,
    table2_gamma,
    table3_sbdd_vs_robdds,
    table4_vs_prior,
)
from .report import generate_summary
from .suites import BenchCircuit, circuit, suite
from .tables import Table, geometric_mean, normalised_average, text_series

__all__ = [
    "generate_summary",
    "BenchCircuit",
    "suite",
    "circuit",
    "Table",
    "geometric_mean",
    "normalised_average",
    "text_series",
    "CompactRun",
    "run_compact",
    "table1_properties",
    "table2_gamma",
    "table3_sbdd_vs_robdds",
    "table4_vs_prior",
    "fig9_pareto",
    "fig10_convergence",
    "fig11_gaps",
    "fig12_power_delay",
    "fig13_vs_magic",
]
