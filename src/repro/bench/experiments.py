"""Experiment harness: one function per table/figure of the paper.

Every function regenerates the corresponding rows/series with our
synthetic benchmark suite and returns both the raw data (for tests and
EXPERIMENTS.md) and a rendered :class:`~repro.bench.tables.Table`.

Mapping to the paper:

========  ==========================================================
Table I   benchmark properties (inputs, outputs, SBDD nodes, edges)
Table II  gamma sweep: rows/cols/D/S/time for gamma in {0, 0.5, 1}
Table III multiple ROBDDs vs one SBDD under COMPACT
Table IV  COMPACT (gamma=0.5) vs prior staircase mapping [16]
Fig 9     non-dominated (rows, cols) designs across the gamma sweep
Fig 10    MIP convergence trace (best integer / bound / gap vs time)
Fig 11    relative gap at time-out on the hard instances
Fig 12    normalized power & delay vs [16]
Fig 13    power & delay vs CONTRA-style MAGIC mapping
========  ==========================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..baselines import magic_map, merged_robdd_graph, staircase_map_netlist
from ..bdd import build_sbdd
from ..core import Compact, preprocess
from ..crossbar import measure
from .suites import BenchCircuit, suite
from .tables import Table, normalised_average

__all__ = [
    "CompactRun",
    "run_compact",
    "table1_properties",
    "table2_gamma",
    "table3_sbdd_vs_robdds",
    "table4_vs_prior",
    "fig9_pareto",
    "fig10_convergence",
    "fig11_gaps",
    "fig12_power_delay",
    "fig13_vs_magic",
]

#: Default per-instance MIP budget (seconds) for the experiment runs.
DEFAULT_TIME_LIMIT = 60.0


@dataclass
class CompactRun:
    """Flat record of one COMPACT synthesis (one table row)."""

    circuit: str
    gamma: float
    nodes: int
    edges: int
    rows: int
    cols: int
    semiperimeter: int
    max_dimension: int
    area: int
    literals: int
    delay_steps: int
    optimal: bool
    synthesis_time: float
    extra: dict = field(default_factory=dict)


def run_compact(
    bench: BenchCircuit,
    gamma: float = 0.5,
    method: str = "auto",
    backend: str = "highs",
    time_limit: float | None = DEFAULT_TIME_LIMIT,
) -> CompactRun:
    """Synthesize one suite circuit and record the paper's metrics."""
    netlist = bench.build()
    compact = Compact(gamma=gamma, method=method, backend=backend, time_limit=time_limit)
    result = compact.synthesize_netlist(netlist)
    metrics = measure(result.design)
    return CompactRun(
        circuit=bench.name,
        gamma=gamma,
        nodes=result.bdd_graph.num_nodes,
        edges=result.bdd_graph.num_edges,
        rows=metrics.rows,
        cols=metrics.cols,
        semiperimeter=metrics.semiperimeter,
        max_dimension=metrics.max_dimension,
        area=metrics.area,
        literals=metrics.literals,
        delay_steps=metrics.delay_steps,
        optimal=result.optimal,
        synthesis_time=result.synthesis_time,
    )


# --------------------------------------------------------------------------- #
# Table I
# --------------------------------------------------------------------------- #
def table1_properties(tier: str | None = None) -> tuple[Table, list[dict]]:
    """Benchmark properties: inputs, outputs, SBDD nodes and edges."""
    table = Table(
        "Table I: benchmark suite properties (SBDD sizes)",
        ["benchmark", "family", "stands in for", "inputs", "outputs", "nodes", "edges"],
    )
    rows = []
    for bench in suite(tier):
        netlist = bench.build()
        sbdd = build_sbdd(netlist)
        record = {
            "benchmark": bench.name,
            "family": bench.family,
            "stands_in_for": bench.stands_in_for or "-",
            "inputs": len(netlist.inputs),
            "outputs": len(netlist.outputs),
            "nodes": sbdd.node_count(),
            "edges": sbdd.edge_count(),
        }
        rows.append(record)
        table.add_row(*record.values())
    return table, rows


# --------------------------------------------------------------------------- #
# Table II
# --------------------------------------------------------------------------- #
def table2_gamma(
    tier: str | None = None,
    gammas: tuple[float, ...] = (0.0, 0.5, 1.0),
    time_limit: float = DEFAULT_TIME_LIMIT,
    only_optimal: bool = True,
) -> tuple[Table, list[CompactRun]]:
    """Influence of gamma on rows, columns, D, S and synthesis time.

    Following the paper, rows are reported only for benchmarks whose
    *every* gamma solve reached proven optimality within the budget
    (disable with ``only_optimal=False``).
    """
    columns = ["benchmark"]
    for g in gammas:
        columns += [f"R(g={g:g})", f"C(g={g:g})", f"D(g={g:g})", f"S(g={g:g})", f"t(g={g:g})"]
    table = Table("Table II: gamma sweep (COMPACT, MIP labeling)", columns)
    runs: list[CompactRun] = []

    for bench in suite(tier):
        per_gamma = [
            run_compact(bench, gamma=g, method="mip", time_limit=time_limit)
            for g in gammas
        ]
        if only_optimal and not all(r.optimal for r in per_gamma):
            continue
        runs.extend(per_gamma)
        cells: list = [bench.name]
        for r in per_gamma:
            cells += [r.rows, r.cols, r.max_dimension, r.semiperimeter, round(r.synthesis_time, 2)]
        table.add_row(*cells)
    return table, runs


# --------------------------------------------------------------------------- #
# Table III
# --------------------------------------------------------------------------- #
def table3_sbdd_vs_robdds(
    tier: str | None = None,
    gamma: float = 0.5,
    time_limit: float = DEFAULT_TIME_LIMIT,
) -> tuple[Table, list[dict]]:
    """COMPACT on per-output ROBDDs (merged at the 1-terminal) vs one SBDD.

    Multi-output circuits only — the representations coincide otherwise.
    """
    table = Table(
        "Table III: multiple ROBDDs vs single SBDD (COMPACT, gamma=%g)" % gamma,
        [
            "benchmark",
            "nodes(ROBDDs)", "R", "C", "D", "S", "t(s)",
            "nodes(SBDD)", "R'", "C'", "D'", "S'", "t'(s)",
        ],
    )
    rows: list[dict] = []
    for bench in suite(tier):
        netlist = bench.build()
        if len(netlist.outputs) < 2:
            continue
        compact = Compact(gamma=gamma, time_limit=time_limit)

        t0 = time.monotonic()
        robdd_graph = merged_robdd_graph(netlist)
        design_r, _lab_r, _times = compact.synthesize_bdd_graph(
            robdd_graph, name=f"{bench.name}:robdds"
        )
        t_robdd = time.monotonic() - t0

        t0 = time.monotonic()
        result_s = compact.synthesize_netlist(netlist)
        t_sbdd = time.monotonic() - t0
        design_s = result_s.design

        record = {
            "benchmark": bench.name,
            "robdd_nodes": robdd_graph.num_nodes,
            "robdd_rows": design_r.num_rows,
            "robdd_cols": design_r.num_cols,
            "robdd_D": design_r.max_dimension,
            "robdd_S": design_r.semiperimeter,
            "robdd_time": t_robdd,
            "sbdd_nodes": result_s.bdd_graph.num_nodes,
            "sbdd_rows": design_s.num_rows,
            "sbdd_cols": design_s.num_cols,
            "sbdd_D": design_s.max_dimension,
            "sbdd_S": design_s.semiperimeter,
            "sbdd_time": t_sbdd,
        }
        rows.append(record)
        table.add_row(
            bench.name,
            record["robdd_nodes"], record["robdd_rows"], record["robdd_cols"],
            record["robdd_D"], record["robdd_S"], round(record["robdd_time"], 2),
            record["sbdd_nodes"], record["sbdd_rows"], record["sbdd_cols"],
            record["sbdd_D"], record["sbdd_S"], round(record["sbdd_time"], 2),
        )
    return table, rows


# --------------------------------------------------------------------------- #
# Table IV + Figure 12
# --------------------------------------------------------------------------- #
def table4_vs_prior(
    tier: str | None = None,
    gamma: float = 0.5,
    time_limit: float = DEFAULT_TIME_LIMIT,
) -> tuple[Table, list[dict]]:
    """COMPACT (gamma=0.5) vs the staircase mapping of [16]."""
    table = Table(
        "Table IV: COMPACT (gamma=%g) vs prior flow-based mapping [16]" % gamma,
        [
            "benchmark",
            "n16", "R16", "C16", "S16", "area16",
            "n", "R", "C", "S", "area", "t(s)",
        ],
    )
    rows: list[dict] = []
    for bench in suite(tier):
        netlist = bench.build()
        base = staircase_map_netlist(netlist)
        ours = run_compact(bench, gamma=gamma, time_limit=time_limit)
        record = {
            "benchmark": bench.name,
            "prior_nodes": base.bdd_nodes,
            "prior_rows": base.design.num_rows,
            "prior_cols": base.design.num_cols,
            "prior_S": base.design.semiperimeter,
            "prior_D": base.design.max_dimension,
            "prior_area": base.design.area,
            "prior_literals": base.design.literal_count,
            "prior_delay": base.design.delay_steps,
            "nodes": ours.nodes,
            "rows": ours.rows,
            "cols": ours.cols,
            "S": ours.semiperimeter,
            "D": ours.max_dimension,
            "area": ours.area,
            "literals": ours.literals,
            "delay": ours.delay_steps,
            "time": ours.synthesis_time,
            "optimal": ours.optimal,
        }
        rows.append(record)
        table.add_row(
            bench.name,
            record["prior_nodes"], record["prior_rows"], record["prior_cols"],
            record["prior_S"], record["prior_area"],
            record["nodes"], record["rows"], record["cols"],
            record["S"], record["area"], round(record["time"], 2),
        )
    return table, rows


def fig12_power_delay(rows: list[dict] | None = None, tier: str | None = None) -> tuple[Table, dict]:
    """Normalized power and delay, COMPACT vs [16] (paper Figure 12).

    Power ~ memristors programmed per evaluation (BDD edges / literal
    cells); delay ~ wordline count + 1.  Reuses Table IV rows if given.
    """
    if rows is None:
        _table, rows = table4_vs_prior(tier)
    table = Table(
        "Figure 12: normalized power & delay (COMPACT / prior [16])",
        ["benchmark", "power(prior)", "power(ours)", "ratio", "delay(prior)", "delay(ours)", "ratio"],
    )
    power_ratios, delay_ratios = [], []
    for r in rows:
        p_ratio = r["literals"] / r["prior_literals"] if r["prior_literals"] else float("nan")
        d_ratio = r["delay"] / r["prior_delay"] if r["prior_delay"] else float("nan")
        power_ratios.append(p_ratio)
        delay_ratios.append(d_ratio)
        table.add_row(
            r["benchmark"],
            r["prior_literals"], r["literals"], round(p_ratio, 3),
            r["prior_delay"], r["delay"], round(d_ratio, 3),
        )
    summary = {
        "power_ratio_avg": normalised_average(
            [r["literals"] for r in rows], [r["prior_literals"] for r in rows]
        ),
        "delay_ratio_avg": normalised_average(
            [r["delay"] for r in rows], [r["prior_delay"] for r in rows]
        ),
    }
    table.add_row(
        "AVERAGE", "", "", round(summary["power_ratio_avg"], 3),
        "", "", round(summary["delay_ratio_avg"], 3),
    )
    return table, summary


# --------------------------------------------------------------------------- #
# Figure 9
# --------------------------------------------------------------------------- #
def fig9_pareto(
    circuits: tuple[str, ...] = ("cavlc_like", "int2float"),
    n_gammas: int = 11,
    time_limit: float = 30.0,
    tier: str | None = None,
) -> tuple[Table, dict[str, list[tuple[int, int]]]]:
    """Non-dominated (rows, cols) designs over a gamma sweep (Figure 9)."""
    entries = {b.name: b for b in suite(tier)}
    table = Table(
        "Figure 9: non-dominated (rows, cols) designs across gamma",
        ["benchmark", "non-dominated (rows, cols)"],
    )
    series: dict[str, list[tuple[int, int]]] = {}
    gammas = [i / (n_gammas - 1) for i in range(n_gammas)]
    for name in circuits:
        bench = entries[name]
        points = []
        for g in gammas:
            run = run_compact(bench, gamma=g, method="mip", time_limit=time_limit)
            points.append((run.rows, run.cols))
        pareto = _non_dominated(points)
        series[name] = pareto
        table.add_row(name, " ".join(f"({r},{c})" for r, c in pareto))
    return table, series


def _non_dominated(points: list[tuple[int, int]]) -> list[tuple[int, int]]:
    unique = sorted(set(points))
    keep = []
    for p in unique:
        if not any(
            (q[0] <= p[0] and q[1] <= p[1] and q != p) for q in unique
        ):
            keep.append(p)
    return keep


# --------------------------------------------------------------------------- #
# Figures 10 and 11
# --------------------------------------------------------------------------- #
def fig10_convergence(
    circuit: str = "c17",
    gamma: float = 0.5,
    time_limit: float = 30.0,
) -> tuple[Table, list[tuple[float, float | None, float, float | None]]]:
    """Branch-and-bound convergence on one instance (Figure 10).

    Runs the pure-Python B&B (the CPLEX stand-in) warm-started by the
    Method-A labeling and returns its (time, best integer, best bound,
    relative gap) trace.  The default instance is sized so the gap
    actually closes within the budget, mirroring the paper's i2c run
    (which CPLEX closes in ~1000 s); pass a larger circuit to watch a
    truncated trace instead.
    """
    entries = {b.name: b for b in suite("full")}
    netlist = entries[circuit].build()
    bdd_graph = preprocess(build_sbdd(netlist))

    from ..core import label_weighted

    # No warm start: the figure's story is the solver discovering
    # incumbents (best integer jumps down) while the bound climbs.
    labeling = label_weighted(
        bdd_graph,
        gamma=gamma,
        backend="bnb",
        time_limit=time_limit,
    )
    trace = labeling.meta.get("trace", [])
    table = Table(
        f"Figure 10: MIP convergence on {circuit} (gamma={gamma:g})",
        ["t (s)", "best integer", "best bound", "relative gap"],
    )
    for t, inc, bound, gap in trace:
        table.add_row(
            round(t, 3),
            "-" if inc is None else round(inc, 2),
            round(bound, 2),
            "-" if gap is None else f"{100 * gap:.1f}%",
        )
    return table, trace


def fig11_gaps(
    circuits: tuple[str, ...] = ("voter9", "mux16", "cmp8", "alu4", "i2c_like"),
    gamma: float = 0.5,
    time_limit: float = 8.0,
) -> tuple[Table, dict[str, float]]:
    """Relative gap after a fixed budget on hard instances (Figure 11)."""
    entries = {b.name: b for b in suite("full")}

    from ..core import label_min_semiperimeter, label_weighted

    table = Table(
        f"Figure 11: relative gap at {time_limit:g}s budget (B&B, gamma={gamma:g})",
        ["benchmark", "incumbent", "bound", "relative gap"],
    )
    gaps: dict[str, float] = {}
    for name in circuits:
        netlist = entries[name].build()
        bdd_graph = preprocess(build_sbdd(netlist))
        warm = label_min_semiperimeter(bdd_graph, backend="highs")
        labeling = label_weighted(
            bdd_graph, gamma=gamma, backend="bnb",
            time_limit=time_limit, warm_start=warm,
        )
        gap = labeling.meta.get("gap")
        obj = labeling.meta.get("objective")
        bound = labeling.meta.get("bound")
        gaps[name] = float("nan") if gap is None else gap
        table.add_row(
            name,
            "-" if obj is None else round(obj, 2),
            "-" if bound is None else round(bound, 2),
            "-" if gap is None else f"{100 * gap:.1f}%",
        )
    return table, gaps


# --------------------------------------------------------------------------- #
# Figure 13
# --------------------------------------------------------------------------- #
def fig13_vs_magic(
    tier: str | None = None,
    gamma: float = 0.5,
    k: int = 4,
    time_limit: float = DEFAULT_TIME_LIMIT,
) -> tuple[Table, dict]:
    """COMPACT vs CONTRA-style MAGIC on the control circuits (Figure 13).

    Following the paper, only the EPFL-control-like family is compared
    (BDDs do not scale for the arithmetic family).  Power = operation
    count for MAGIC vs active memristors for COMPACT; delay = sequential
    steps vs wordline count.
    """
    table = Table(
        "Figure 13: COMPACT vs CONTRA-style MAGIC (control circuits)",
        ["benchmark", "P(magic)", "P(ours)", "ratio", "T(magic)", "T(ours)", "ratio"],
    )
    p_ours, p_magic, t_ours, t_magic = [], [], [], []
    for bench in suite(tier, family="epfl-control-like"):
        netlist = bench.build()
        sched = magic_map(netlist, k=k)
        ours = run_compact(bench, gamma=gamma, time_limit=time_limit)
        delay_ours = ours.rows  # worst case: reprogram every wordline
        p_ours.append(ours.literals)
        p_magic.append(sched.total_ops)
        t_ours.append(delay_ours)
        t_magic.append(sched.delay_steps)
        table.add_row(
            bench.name,
            sched.total_ops, ours.literals,
            round(ours.literals / sched.total_ops, 3),
            sched.delay_steps, delay_ours,
            round(delay_ours / sched.delay_steps, 3),
        )
    summary = {
        "power_ratio_avg": normalised_average(p_ours, p_magic),
        "delay_ratio_avg": normalised_average(t_ours, t_magic),
    }
    table.add_row(
        "AVERAGE", "", "", round(summary["power_ratio_avg"], 3),
        "", "", round(summary["delay_ratio_avg"], 3),
    )
    return table, summary
