"""Collate benchmark artifacts into one summary document.

The experiment benches write one text table per table/figure into
``benchmarks/results/``; :func:`generate_summary` stitches them into a
single markdown report (written as ``SUMMARY.md`` by the bench run) so
a reproduction run leaves one reviewable artifact.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["generate_summary"]

#: Preferred presentation order; anything else is appended alphabetically.
_ORDER = [
    "table1_properties",
    "table2_gamma",
    "table3_sbdd_vs_robdds",
    "table4_vs_prior",
    "fig9_pareto",
    "fig10_convergence",
    "fig10_convergence_mux16",
    "fig11_gaps",
    "fig12_power_delay",
    "fig13_vs_magic",
    "paradigm_comparison",
    "streaming_amortization",
    "ablation_alignment",
    "ablation_ordering",
    "ablation_kernelization",
    "ablation_heuristic",
    "ablation_fbdd",
]


def generate_summary(results_dir: str | Path, title: str = "COMPACT reproduction — experiment summary") -> str:
    """Concatenate all ``*.txt`` artifacts in ``results_dir`` to markdown."""
    results = Path(results_dir)
    available = {p.stem: p for p in sorted(results.glob("*.txt"))}
    ordered = [name for name in _ORDER if name in available]
    ordered += [name for name in sorted(available) if name not in ordered]

    lines = [f"# {title}", ""]
    if not ordered:
        lines.append("(no artifacts found — run `pytest benchmarks/ --benchmark-only`)")
    for name in ordered:
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```")
        lines.append(available[name].read_text().rstrip())
        lines.append("```")
        lines.append("")
    return "\n".join(lines) + "\n"
