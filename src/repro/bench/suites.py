"""Benchmark suites.

Stand-ins for the paper's ISCAS85 and EPFL-control circuits (Table I),
generated from scratch at sizes the pure-Python stack solves to
optimality in seconds-to-minutes (see DESIGN.md for the substitution
rationale).  Two tiers:

* ``fast`` — used by the default test/bench runs;
* ``full`` — adds the larger instances (select with
  ``REPRO_SUITE=full``).

``dec8`` reproduces the paper's ``dec`` benchmark *exactly* (8-to-256
decoder: 512 SBDD nodes, 1020 edges — identical to Table I).
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass
from functools import lru_cache

from ..circuits import (
    alu_slice,
    array_multiplier,
    c17,
    comparator,
    decoder,
    i2c_control,
    int2float,
    majority_voter,
    mux_tree,
    parity_tree,
    priority_encoder,
    random_control,
    ripple_carry_adder,
    round_robin_arbiter,
    router_lookup,
)
from ..circuits.netlist import Netlist

__all__ = ["BenchCircuit", "suite", "circuit", "SUITE_TIERS"]


@dataclass(frozen=True)
class BenchCircuit:
    """One suite entry: a named, lazily-built benchmark circuit."""

    name: str
    family: str  # 'iscas85-like' or 'epfl-control-like'
    factory: Callable[[], Netlist]
    #: Paper benchmark this one stands in for (None = extra).
    stands_in_for: str | None = None

    def build(self) -> Netlist:
        nl = self.factory()
        nl.name = self.name
        return nl


def _cavlc_like() -> Netlist:
    return random_control("cavlc_like", 10, 11, 24, seed=21, literals=(2, 6))


def _ctrl_like() -> Netlist:
    return random_control("ctrl_like", 7, 26, 18, seed=23, literals=(2, 5))


_FAST: list[BenchCircuit] = [
    # ISCAS85-like arithmetic/logic
    BenchCircuit("c17", "iscas85-like", c17, "c17"),
    BenchCircuit("rca8", "iscas85-like", lambda: ripple_carry_adder(8), "c432 (arith.)"),
    BenchCircuit("parity16", "iscas85-like", lambda: parity_tree(16), "c499 (ECC/XOR)"),
    BenchCircuit("cmp8", "iscas85-like", lambda: comparator(8), "c880 (comparator part)"),
    BenchCircuit("alu4", "iscas85-like", lambda: alu_slice(4), "c3540 (ALU)"),
    BenchCircuit("mult4", "iscas85-like", lambda: array_multiplier(4), "c6288-class (mult.)"),
    BenchCircuit("mux16", "iscas85-like", lambda: mux_tree(4), "selector logic"),
    BenchCircuit("voter9", "iscas85-like", lambda: majority_voter(9), "voting logic"),
    # EPFL-control-like
    BenchCircuit("arbiter8", "epfl-control-like", lambda: round_robin_arbiter(8), "arbiter"),
    BenchCircuit("cavlc_like", "epfl-control-like", _cavlc_like, "cavlc"),
    BenchCircuit("ctrl_like", "epfl-control-like", _ctrl_like, "ctrl"),
    BenchCircuit("dec6", "epfl-control-like", lambda: decoder(6), "dec (scaled)"),
    BenchCircuit("i2c_like", "epfl-control-like", lambda: i2c_control(5, 8, seed=11), "i2c"),
    BenchCircuit("int2float", "epfl-control-like", lambda: int2float(11), "int2float"),
    BenchCircuit("priority32", "epfl-control-like", lambda: priority_encoder(32), "priority (scaled)"),
    BenchCircuit("router24", "epfl-control-like", lambda: router_lookup(24, 16), "router"),
]

def _hamming_dec() -> Netlist:
    from ..circuits import hamming74_decoder

    return hamming74_decoder()


_FULL_EXTRA: list[BenchCircuit] = [
    BenchCircuit("rca16", "iscas85-like", lambda: ripple_carry_adder(16), "c432 (arith.)"),
    BenchCircuit("mult5", "iscas85-like", lambda: array_multiplier(5), "c6288-class (mult.)"),
    BenchCircuit("hamming_dec", "iscas85-like", _hamming_dec, "c499 (true SEC decoder)"),
    BenchCircuit("dec8", "epfl-control-like", lambda: decoder(8), "dec (exact size)"),
    BenchCircuit("priority128", "epfl-control-like", lambda: priority_encoder(128), "priority (exact inputs)"),
    BenchCircuit("arbiter16", "epfl-control-like", lambda: round_robin_arbiter(16), "arbiter"),
]

SUITE_TIERS = ("fast", "full")


def suite(tier: str | None = None, family: str | None = None) -> list[BenchCircuit]:
    """The benchmark suite.

    ``tier`` defaults to the ``REPRO_SUITE`` environment variable (or
    ``fast``); ``family`` optionally filters to one circuit family.
    """
    tier = tier or os.environ.get("REPRO_SUITE", "fast")
    if tier not in SUITE_TIERS:
        raise ValueError(f"unknown suite tier {tier!r} (use one of {SUITE_TIERS})")
    entries = list(_FAST)
    if tier == "full":
        entries += _FULL_EXTRA
    if family is not None:
        entries = [e for e in entries if e.family == family]
    return entries


@lru_cache(maxsize=None)
def circuit(name: str) -> Netlist:
    """Build (and cache) one suite circuit by name."""
    for entry in _FAST + _FULL_EXTRA:
        if entry.name == name:
            return entry.build()
    raise KeyError(f"no suite circuit named {name!r}")
