"""Plain-text tables and series for experiment reports.

The bench harness prints the same rows the paper's tables report; this
module holds the small formatting helpers (fixed-width ASCII tables,
normalised averages, text sparklines for the figure-style series).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

__all__ = ["Table", "geometric_mean", "normalised_average", "text_series"]


class Table:
    """A fixed-width ASCII table with a title."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 100 or cell == int(cell):
            return f"{cell:.0f}" if cell == int(cell) else f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (ignores non-positive entries defensively)."""
    logs = [math.log(v) for v in values if v > 0]
    if not logs:
        return float("nan")
    return math.exp(sum(logs) / len(logs))


def normalised_average(ours: Sequence[float], baseline: Sequence[float]) -> float:
    """Mean of per-benchmark ratios ours/baseline (the paper's metric)."""
    ratios = [o / b for o, b in zip(ours, baseline) if b]
    if not ratios:
        return float("nan")
    return sum(ratios) / len(ratios)


def text_series(xs: Sequence[float], ys: Sequence[float], width: int = 60, height: int = 12) -> str:
    """Rough text plot of a series — keeps figure benches self-contained."""
    if not xs:
        return "(empty series)"
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - xmin) / xspan * (width - 1))
        row = height - 1 - int((y - ymin) / yspan * (height - 1))
        grid[row][col] = "*"
    lines = ["".join(r) for r in grid]
    lines.append(f"x: [{xmin:g}, {xmax:g}]  y: [{ymin:g}, {ymax:g}]")
    return "\n".join(lines)
