"""Packed-uint64 truth tables: 64 assignments per machine word.

Shared by the BDD bitset sweep (:meth:`repro.bdd.manager.BDD.
satisfying_bitset`), the netlist packed evaluator
(:meth:`repro.circuits.netlist.Netlist.evaluate_bitset`) and the
crossbar packed fixpoint (:func:`repro.crossbar.batch.bitset_evaluate`).
A truth table over ``n`` named inputs is a numpy ``uint64`` vector of
``num_words(n)`` words; bit ``k & 63`` of word ``k >> 6`` is the value
under assignment index ``k``.

Bit convention
--------------
Assignment index ``k`` assigns ``names[j] = bit (n - 1 - j) of k``: the
*last* name varies fastest, so ascending ``k`` enumerates assignments in
exactly the order of ``itertools.product([False, True], repeat=n)``.
Validation relies on this to report the same first counterexample as a
scalar sweep.

Tail invariant
--------------
For ``n < 6`` only the low ``2**n`` bits of the single word are
meaningful; every kernel keeps the surplus bits **zero** (negate with
:func:`bit_not`, never raw ``~``), so whole-word comparisons, popcounts
and first-set scans need no special casing.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "MAX_BITSET_VARS",
    "num_words",
    "tail_mask",
    "zeros",
    "ones",
    "variable_mask",
    "bit_not",
    "popcount",
    "first_set",
    "get_bit",
    "index_env",
    "pack_bools",
    "unpack_bools",
]

#: Largest input count a full-space sweep will attempt (2**26 assignments
#: = 8 MiB per truth table); wider sweeps must sample instead.
MAX_BITSET_VARS = 26

_ALL_ONES = 0xFFFFFFFFFFFFFFFF

#: Word patterns for variables at bit significance p < 6 (the bit
#: alternates within a word): bit b is set iff (b >> p) & 1.
_LOW_PATTERNS = (
    0xAAAAAAAAAAAAAAAA,
    0xCCCCCCCCCCCCCCCC,
    0xF0F0F0F0F0F0F0F0,
    0xFF00FF00FF00FF00,
    0xFFFF0000FFFF0000,
    0xFFFFFFFF00000000,
)


def num_words(n: int) -> int:
    """Words needed for a truth table over ``n`` inputs."""
    _check_width(n)
    return 1 if n < 6 else 1 << (n - 6)


def tail_mask(n: int) -> int:
    """Mask of the meaningful bits in the last (only) word for ``n < 6``."""
    _check_width(n)
    if n >= 6:
        return _ALL_ONES
    return (1 << (1 << n)) - 1


def _check_width(n: int) -> None:
    if not 0 <= n <= MAX_BITSET_VARS:
        raise ValueError(
            f"bitset sweeps support 0..{MAX_BITSET_VARS} inputs, got {n} "
            f"(2**{n} assignments would not fit a packed table)"
        )


def zeros(n: int) -> np.ndarray:
    """The all-false truth table over ``n`` inputs."""
    return np.zeros(num_words(n), dtype=np.uint64)


def ones(n: int) -> np.ndarray:
    """The all-true truth table over ``n`` inputs (tail bits zero)."""
    out = np.full(num_words(n), _ALL_ONES, dtype=np.uint64)
    out[-1] = np.uint64(tail_mask(n))
    return out


def variable_mask(position: int, n: int) -> np.ndarray:
    """Truth table of the input with bit significance ``position``.

    ``position = n - 1 - j`` for ``names[j]`` under the module's bit
    convention.  Positions below 6 alternate within every word; positions
    at or above 6 alternate in blocks of whole words.
    """
    _check_width(n)
    if not 0 <= position < max(n, 1):
        raise ValueError(f"bit position {position} out of range for {n} inputs")
    words = num_words(n)
    if position < 6:
        out = np.full(words, _LOW_PATTERNS[position], dtype=np.uint64)
        out[-1] &= np.uint64(tail_mask(n))
        return out
    out = np.zeros(words, dtype=np.uint64)
    block = 1 << (position - 6)
    out.reshape(-1, 2 * block)[:, block:] = np.uint64(_ALL_ONES)
    return out


def bit_not(table: np.ndarray, n: int) -> np.ndarray:
    """Complement a truth table, keeping the tail invariant."""
    out = np.invert(table)
    out[-1] &= np.uint64(tail_mask(n))
    return out


def popcount(table: np.ndarray) -> int:
    """Number of satisfying assignments in a packed truth table."""
    return int(np.bitwise_count(table).sum())


def first_set(table: np.ndarray) -> int | None:
    """Lowest assignment index with a set bit, or None when all-zero."""
    nonzero = np.flatnonzero(table)
    if nonzero.size == 0:
        return None
    word = int(nonzero[0])
    value = int(table[word])
    return (word << 6) + ((value & -value).bit_length() - 1)


def get_bit(table: np.ndarray, index: int) -> bool:
    """The value under assignment ``index``."""
    return bool((int(table[index >> 6]) >> (index & 63)) & 1)


def index_env(index: int, names: Sequence[str]) -> dict[str, bool]:
    """The assignment dict encoded by ``index`` (see the bit convention)."""
    n = len(names)
    return {name: bool((index >> (n - 1 - j)) & 1) for j, name in enumerate(names)}


def pack_bools(bits: np.ndarray) -> np.ndarray:
    """Pack a 1-D boolean vector into uint64 words (index i -> bit i)."""
    bits = np.asarray(bits, dtype=bool).ravel()
    padded = np.zeros(-(-bits.size // 64) * 64 or 64, dtype=bool)
    padded[: bits.size] = bits
    return np.packbits(padded, bitorder="little").view("<u8").copy()


def unpack_bools(table: np.ndarray, count: int) -> np.ndarray:
    """Unpack the first ``count`` bits of a word vector to booleans."""
    table = np.ascontiguousarray(table, dtype="<u8")
    return np.unpackbits(
        table.view(np.uint8), bitorder="little", count=count
    ).astype(bool)
