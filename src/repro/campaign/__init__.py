"""Fleet-scale yield campaigns over the synthesis service.

A *campaign* samples thousands-to-millions of fault maps from seeded,
per-shard RNG streams and drives them through warm service workers via
the batch request kinds (``validate_batch`` / ``map_batch``), deduping
repeat work through the content-addressed result cache, and emitting a
yield curve (functional fraction vs. fault count) plus a spare-line
provisioning table.

Every shard record is a pure deterministic function of (config, shard
index), which is what makes the whole pipeline restartable: completed
shards are journalled to a crash-safe checkpoint
(:mod:`~repro.campaign.checkpoint`), a resumed campaign recomputes only
the missing shards, and the final report is bit-identical whether the
run was uninterrupted, SIGKILLed and resumed, or harassed by the chaos
harness (:mod:`~repro.campaign.chaos`).
"""

from .checkpoint import CHECKPOINT_SCHEMA, CheckpointError, CheckpointJournal
from .chaos import ChaosConfig, ChaosMonkey, corrupt_checkpoint
from .runner import CampaignConfig, CampaignReport, compute_shard, run_campaign

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointJournal",
    "ChaosConfig",
    "ChaosMonkey",
    "corrupt_checkpoint",
    "CampaignConfig",
    "CampaignReport",
    "compute_shard",
    "run_campaign",
]
