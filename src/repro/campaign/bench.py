"""Campaign benchmark: clean vs. chaos, asserting identical reports.

``repro bench campaign`` spins up an in-process service, runs one
campaign fault-free, then (``--chaos``) reruns it from scratch while a
:class:`~repro.campaign.chaos.ChaosMonkey` kills workers, severs
connections and corrupts cache entries — and, between two resume
phases, garbles the checkpoint journal.  The harness asserts the chaos
report is bit-identical to the clean one: the resilience machinery must
hide every injected failure, not merely survive it.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from ..service.client import RetryPolicy, ServiceClient
from ..service.server import ServiceServer
from .chaos import ChaosConfig, ChaosMonkey, corrupt_checkpoint
from .runner import CampaignConfig, run_campaign

__all__ = ["run_campaign_bench"]


def _run_one(
    config: CampaignConfig,
    root: Path,
    label: str,
    streams: int,
    chaos_config: ChaosConfig | None,
    timeout: float,
) -> tuple[dict, dict]:
    """One fully isolated campaign (own server, cache, checkpoint)."""
    cache_dir = root / f"cache-{label}"
    checkpoint = root / f"ckpt-{label}.ndjson"
    with ServiceServer(
        ("tcp", "127.0.0.1", 0), jobs=2, queue_size=16, cache_dir=cache_dir
    ) as server:
        _kind, host, port = server.address

        def client_factory() -> ServiceClient:
            return ServiceClient(
                tcp=(host, port), timeout=timeout,
                retry=RetryPolicy(max_attempts=6, base_delay_s=0.05, max_delay_s=1.0),
            )

        chaos = None
        if chaos_config is not None:
            chaos = ChaosMonkey(chaos_config, server=server, cache_dir=cache_dir)
            # Phase 1: half the campaign, then garble the journal the
            # resume must recover from.
            half = max(1, config.num_shards // 2)
            run_campaign(
                config, client_factory, checkpoint=checkpoint,
                streams=streams, max_shards=half, chaos=chaos,
                request_timeout=timeout,
            )
            corrupted = corrupt_checkpoint(checkpoint, seed=chaos_config.seed)
        report = run_campaign(
            config, client_factory, checkpoint=checkpoint,
            streams=streams, chaos=chaos, request_timeout=timeout,
        )
    info: dict = {"label": label, "shards": report.shards}
    if chaos is not None:
        info["chaos_events"] = chaos.events
        info["checkpoint_lines_corrupted"] = corrupted
    return report.result_dict(), info


def run_campaign_bench(
    circuit: str = "c17",
    samples: int = 200,
    shard_size: int = 25,
    p_stuck_on: float = 0.01,
    p_stuck_off: float = 0.05,
    spare_rows: int = 1,
    spare_cols: int = 1,
    remap: bool = False,
    seed: int = 0,
    streams: int = 2,
    chaos: bool = False,
    timeout: float = 120.0,
) -> dict:
    """Run the campaign bench; returns a JSON-serialisable summary.

    With ``chaos`` the summary's ``match`` field states whether the
    chaos run reproduced the clean yield curve exactly — the
    acceptance property of the resilient service path.
    """
    config = CampaignConfig.from_suite(
        circuit, samples=samples, shard_size=shard_size,
        p_stuck_on=p_stuck_on, p_stuck_off=p_stuck_off,
        spare_rows=spare_rows, spare_cols=spare_cols,
        remap=remap, seed=seed,
    )
    with tempfile.TemporaryDirectory(prefix="repro-campaign-bench-") as tmp:
        root = Path(tmp)
        clean, _ = _run_one(config, root, "clean", streams, None, timeout)
        summary = {
            "circuit": circuit,
            "samples": samples,
            "yield_fraction": clean["yield_fraction"],
            "clean": clean,
        }
        if chaos:
            budget = max(2, config.num_shards // 4)
            chaos_config = ChaosConfig(
                kill_workers=budget,
                drop_connections=budget,
                corrupt_cache=budget,
                seed=seed,
            )
            chaotic, info = _run_one(
                config, root, "chaos", streams, chaos_config, timeout
            )
            summary["chaos"] = chaotic
            summary["chaos_events"] = info["chaos_events"]
            summary["checkpoint_lines_corrupted"] = info["checkpoint_lines_corrupted"]
            summary["match"] = chaotic == clean
    return summary
