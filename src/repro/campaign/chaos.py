"""Chaos harness for the resilient campaign path.

Injects the failures the service stack claims to survive — worker
SIGKILLs, dropped client connections, corrupted cache entries, garbled
checkpoint lines — on a seeded, deterministic schedule, so a chaos
campaign is reproducible and its final report can be asserted
*bit-identical* to a fault-free run:

* a killed worker surfaces as ``worker_crash``; the engine rebuilds the
  pool and the resilient client retries the request;
* a severed connection surfaces as a transport failure; the client
  reconnects and retries (results are deterministic, so replay is safe);
* a corrupted cache entry fails the schema check in ``_disk_get`` and
  is dropped — a recompute, never a wrong answer;
* a corrupted checkpoint line fails its checksum on recovery and the
  shard is recomputed from its private RNG stream.

:class:`ChaosMonkey` plugs into ``run_campaign(chaos=...)`` via the
``before_shard`` hook; :func:`corrupt_checkpoint` mangles a journal
between runs (resume-under-corruption tests).
"""

from __future__ import annotations

import os
import random
import signal
import threading
from dataclasses import dataclass
from pathlib import Path

from ..perf import counters

__all__ = ["ChaosConfig", "ChaosMonkey", "corrupt_checkpoint"]


@dataclass(frozen=True)
class ChaosConfig:
    """Failure budgets for one campaign run.

    Each budget is the *total* number of strikes of that kind to spend
    across the campaign; ``strike_rate`` is the per-shard probability of
    spending one (drawn from a ``seed``-ed stream, so the schedule is a
    pure function of the config and the shard arrival order).
    """

    kill_workers: int = 0
    drop_connections: int = 0
    corrupt_cache: int = 0
    strike_rate: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if min(self.kill_workers, self.drop_connections, self.corrupt_cache) < 0:
            raise ValueError("chaos budgets must be >= 0")
        if not 0.0 <= self.strike_rate <= 1.0:
            raise ValueError("strike_rate must lie in [0, 1]")


class ChaosMonkey:
    """Spends the configured failure budgets as shards flow past.

    ``server`` (a started :class:`~repro.service.server.ServiceServer`)
    is needed for worker kills; ``cache_dir`` for cache corruption.
    Strikes land *before* the shard's requests are issued, which is the
    worst case: the very request that follows must absorb the failure.
    Every strike is recorded in :attr:`events` (and the
    ``campaign_chaos_*`` counters) so tests can assert chaos actually
    happened rather than trivially passing.
    """

    def __init__(self, config: ChaosConfig, server=None, cache_dir: str | Path | None = None):
        self.config = config
        self._server = server
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._rng = random.Random(config.seed)
        self._lock = threading.Lock()
        self._budgets = {
            "kill_worker": config.kill_workers,
            "drop_connection": config.drop_connections,
            "corrupt_cache": config.corrupt_cache,
        }
        self.events: list[dict] = []

    def before_shard(self, shard: int, client) -> None:
        """Maybe spend one strike ahead of this shard's requests."""
        with self._lock:
            kinds = [k for k, left in self._budgets.items() if left > 0]
            if not kinds or self._rng.random() >= self.config.strike_rate:
                return
            kind = kinds[self._rng.randrange(len(kinds))]
            self._budgets[kind] -= 1
            struck = self._strike(kind, client)
            if struck:
                self.events.append({"shard": shard, "kind": kind})
                counters.increment(f"campaign_chaos_{kind}")
            else:
                # Nothing to hit (e.g. empty cache yet): refund the strike.
                self._budgets[kind] += 1

    def _strike(self, kind: str, client) -> bool:
        if kind == "drop_connection":
            client.kill_connection()
            return True
        if kind == "kill_worker":
            if self._server is None:
                return False
            pids = self._server.engine.worker_pids()
            if not pids:
                return False
            pid = pids[self._rng.randrange(len(pids))]
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:  # check: allow C003 — worker already gone
                return False
            return True
        # corrupt_cache: truncate one on-disk entry mid-JSON.
        if self._cache_dir is None:
            return False
        entries = sorted(self._cache_dir.glob("*.json"))
        if not entries:
            return False
        victim = entries[self._rng.randrange(len(entries))]
        try:
            data = victim.read_bytes()
            victim.write_bytes(data[: max(1, len(data) // 2)])
        except OSError:  # check: allow C003 — entry raced away; strike refunded
            return False
        return True


def corrupt_checkpoint(path: str | Path, seed: int = 0, lines: int = 1) -> int:
    """Garble up to ``lines`` shard lines of a checkpoint journal.

    Picks victims from a seeded stream; each is either bit-flipped in
    place or truncated mid-line (a torn tail), the two corruptions the
    checksum recovery must catch.  The header is never touched — a
    corrupt header is a refused journal, not a recoverable one.
    Returns the number of lines actually corrupted.
    """
    path = Path(path)
    rows = path.read_text(encoding="utf-8").splitlines()
    if len(rows) < 2:
        return 0
    rng = random.Random(seed)
    victims = rng.sample(range(1, len(rows)), min(lines, len(rows) - 1))
    for index in victims:
        line = rows[index]
        if rng.random() < 0.5 and len(line) > 8:
            cut = rng.randrange(1, len(line) // 2)
            rows[index] = line[:cut]
        else:
            pos = rng.randrange(len(line))
            rows[index] = line[:pos] + ("X" if line[pos] != "X" else "Y") + line[pos + 1:]
    path.write_text("\n".join(rows) + "\n", encoding="utf-8")
    return len(victims)
