"""Crash-safe shard journal for yield campaigns.

NDJSON, append-only.  Line 1 is a header binding the journal to one
campaign configuration digest; every following line is one completed
shard record wrapped with its own SHA-256 checksum::

    {"schema": "repro.campaign-ckpt/1", "config_digest": "..."}
    {"shard": 0, "record": {...}, "sha256": "..."}
    {"shard": 1, "record": {...}, "sha256": "..."}

Durability contract:

* the header is created atomically (temp file + fsync + rename + dir
  fsync), so a journal either exists with a valid header or not at all;
* each shard append is flushed and fsynced before :meth:`append`
  returns — a completed shard survives power loss;
* on open, lines that are torn (crash mid-append) or corrupted (bit
  rot, chaos harness) fail their checksum and are *dropped*; the shard
  is simply recomputed, which is safe because shard records are pure
  deterministic functions of (config, shard index).  Dropping can lose
  work but never samples — resumed campaigns are bit-identical;
* recovery compacts the journal (good lines only) through the same
  atomic-replace path, so a torn tail can never garble the next append.

A digest mismatch between the header and the caller's config raises
:class:`CheckpointError`: resuming a campaign under a different
configuration would silently mix incompatible samples.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..perf import counters

__all__ = ["CHECKPOINT_SCHEMA", "CheckpointError", "CheckpointJournal"]

#: Stamped into the journal header; bump when the line format changes.
CHECKPOINT_SCHEMA = "repro.campaign-ckpt/1"


class CheckpointError(RuntimeError):
    """The journal cannot be used for this campaign (digest mismatch)."""


def _record_digest(shard: int, record: dict) -> str:
    # The shard index is part of the hashed material so a valid record
    # line can never be spliced onto a different shard number.
    material = json.dumps(
        {"shard": shard, "record": record}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(material.encode()).hexdigest()


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


class CheckpointJournal:
    """One campaign's shard journal; also usable as a context manager."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = None

    # -- lifecycle ---------------------------------------------------------------
    def open(self, config_digest: str) -> dict[int, dict]:
        """Create or recover the journal; returns the completed shards.

        A fresh path gets a new header.  An existing journal is
        verified against ``config_digest`` (mismatch raises
        :class:`CheckpointError`), its shard lines are checksum-checked
        — torn or corrupt lines are counted in
        ``campaign_ckpt_dropped`` and recomputed by the caller — and the
        surviving lines are compacted back to disk before the journal
        reopens for appending.
        """
        if self._handle is not None:
            raise CheckpointError("journal is already open")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        records: dict[int, dict] = {}
        if self.path.exists():
            records = self._recover(config_digest)
        else:
            header = json.dumps(
                {"schema": CHECKPOINT_SCHEMA, "config_digest": config_digest},
                sort_keys=True,
            )
            _atomic_write(self.path, header + "\n")
        self._handle = open(self.path, "a", encoding="utf-8")
        return records

    def _recover(self, config_digest: str) -> dict[int, dict]:
        raw_lines = self.path.read_text(encoding="utf-8").split("\n")
        header = None
        try:
            header = json.loads(raw_lines[0]) if raw_lines[0] else None
        except ValueError:
            header = None
        if not isinstance(header, dict) or header.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"{self.path} is not a campaign checkpoint (bad or missing header)"
            )
        if header.get("config_digest") != config_digest:
            raise CheckpointError(
                f"{self.path} belongs to a different campaign configuration "
                f"(journal {str(header.get('config_digest'))[:12]}…, "
                f"campaign {config_digest[:12]}…)"
            )
        records: dict[int, dict] = {}
        good_lines = [raw_lines[0]]
        dropped = 0
        for line in raw_lines[1:]:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                shard = entry["shard"]
                record = entry["record"]
                if not isinstance(shard, int) or not isinstance(record, dict):
                    raise ValueError("malformed shard line")
                if entry["sha256"] != _record_digest(shard, record):
                    raise ValueError("checksum mismatch")
            except (ValueError, KeyError, TypeError):
                dropped += 1
                continue
            if shard not in records:
                good_lines.append(line)
            records[shard] = record
        if dropped:
            counters.increment("campaign_ckpt_dropped", dropped)
        # Always compact: removes torn tails and duplicate shard lines so
        # the next append lands on a clean line boundary.
        _atomic_write(self.path, "\n".join(good_lines) + "\n")
        return records

    def append(self, shard: int, record: dict) -> None:
        """Durably journal one completed shard (flushed + fsynced)."""
        if self._handle is None:
            raise CheckpointError("journal is not open")
        line = json.dumps(
            {"shard": shard, "record": record, "sha256": _record_digest(shard, record)},
            sort_keys=True,
        )
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        counters.increment("campaign_ckpt_appends")

    def close(self) -> None:
        """Release the append handle; safe to call any number of times."""
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
