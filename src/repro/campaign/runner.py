"""Streaming yield-campaign runner.

The unit of work is a *shard*: ``shard_size`` fault maps drawn from the
seeded stream ``random.Random(f"{seed}:shard{i}")``, validated (and
optionally remapped) in one ``validate_batch`` / ``map_batch`` request
against the campaign circuit's synthesized design.  A shard record is a
pure deterministic function of (config, shard index) — no timings, no
cache statistics — so any subset of shards can be recomputed at any
time and the merged report is bit-identical across restarts, resumes
and chaos.

``run_campaign`` streams shards through one or more client connections
(``streams``), journalling each completed shard to a
:class:`~repro.campaign.checkpoint.CheckpointJournal` so a SIGKILLed
campaign resumes with zero lost or duplicated samples.
"""

from __future__ import annotations

import hashlib
import json
import queue
import random
import threading
from dataclasses import dataclass, field
from pathlib import Path

from ..crossbar import design_from_json, fault_map_to_json, random_fault_map
from ..perf import counters
from ..robust import line_cover_level, provisioning_table
from .checkpoint import CheckpointJournal

__all__ = ["CAMPAIGN_SCHEMA", "CampaignConfig", "CampaignReport", "compute_shard", "run_campaign"]

#: Stamped into the config digest; bump when shard derivation changes.
CAMPAIGN_SCHEMA = "repro.campaign/1"


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign's samples and records.

    ``circuit_blif`` is the canonical BLIF of the circuit under test
    (the design is synthesized from it through the service, so the
    design itself need not be part of the digest).  The physical array
    sampled is the design's footprint plus ``spare_rows``/``spare_cols``
    spare lines; ``remap`` additionally drives failing maps through the
    defect-aware remapper (``map_batch``, deterministic greedy placer).
    """

    circuit: str
    circuit_blif: str
    samples: int = 1000
    shard_size: int = 100
    p_stuck_on: float = 0.002
    p_stuck_off: float = 0.02
    spare_rows: int = 0
    spare_cols: int = 0
    remap: bool = False
    seed: int = 0

    def __post_init__(self):
        if self.samples < 1:
            raise ValueError("a campaign needs at least one sample")
        if self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if self.spare_rows < 0 or self.spare_cols < 0:
            raise ValueError("spare line counts must be >= 0")
        if not (0.0 <= self.p_stuck_on <= 1.0 and 0.0 <= self.p_stuck_off <= 1.0):
            raise ValueError("fault probabilities must lie in [0, 1]")

    @classmethod
    def from_suite(cls, name: str, **knobs) -> "CampaignConfig":
        """Build a config for one benchmark-suite circuit by name."""
        from ..bench.suites import circuit
        from ..io import write_blif

        return cls(circuit=name, circuit_blif=write_blif(circuit(name)), **knobs)

    @property
    def num_shards(self) -> int:
        return (self.samples + self.shard_size - 1) // self.shard_size

    def shard_samples(self, shard: int) -> int:
        """How many fault maps shard ``shard`` holds (the last is short)."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} is outside 0..{self.num_shards - 1}")
        return min(self.shard_size, self.samples - shard * self.shard_size)

    def digest(self) -> str:
        """SHA-256 binding checkpoints to this exact configuration."""
        material = {
            "schema": CAMPAIGN_SCHEMA,
            "circuit": self.circuit,
            "circuit_blif": self.circuit_blif,
            "samples": self.samples,
            "shard_size": self.shard_size,
            "p_stuck_on": self.p_stuck_on,
            "p_stuck_off": self.p_stuck_off,
            "spare_rows": self.spare_rows,
            "spare_cols": self.spare_cols,
            "remap": self.remap,
            "seed": self.seed,
        }
        blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def shard_fault_maps(config: CampaignConfig, rows: int, cols: int, shard: int) -> list:
    """Draw shard ``shard``'s fault maps from its private RNG stream.

    Each shard owns the stream ``Random(f"{seed}:shard{i}")``, so shards
    are independently recomputable in any order — the property the
    checkpoint's drop-and-recompute recovery and bit-identical resume
    rest on.
    """
    rng = random.Random(f"{config.seed}:shard{shard}")
    return [
        random_fault_map(
            rows, cols,
            p_stuck_on=config.p_stuck_on, p_stuck_off=config.p_stuck_off,
            seed=rng,
        )
        for _ in range(config.shard_samples(shard))
    ]


def _circuit_param(config: CampaignConfig) -> dict:
    return {"format": "blif", "text": config.circuit_blif, "source": config.circuit}


def compute_shard(
    client,
    config: CampaignConfig,
    design_json: str,
    rows: int,
    cols: int,
    shard: int,
    timeout: float | None = None,
) -> dict:
    """One shard's deterministic record, via the service.

    ``rows``/``cols`` are the *design* footprint; maps are drawn on the
    physical array (footprint + spares) and *restricted* to the
    footprint for validation — the bare design occupies the top-left
    corner, the spare lines only matter to the remapper, which gets the
    full physical maps.  The record aggregates the functional verdicts
    into a per-fault-count yield curve, the greedy line-cover levels for
    the provisioning table, and (``remap`` mode) the remap outcomes of
    the distinct failing maps.
    """
    maps = shard_fault_maps(
        config, rows + config.spare_rows, cols + config.spare_cols, shard
    )
    footprint = [m.restricted(rows, cols) for m in maps]
    verdicts = client.result(
        "validate_batch",
        {
            "design_json": design_json,
            "circuit": _circuit_param(config),
            "fault_maps": [fault_map_to_json(m) for m in footprint],
        },
        timeout=timeout,
    )
    by_faults: dict[str, list[int]] = {}
    levels: dict[str, int] = {}
    functional = 0
    failing: dict[str, str] = {}  # full-map signature -> payload, insertion-ordered
    for fault_map, sub, verdict in zip(maps, footprint, verdicts["results"]):
        bucket = by_faults.setdefault(str(len(sub.faults)), [0, 0])
        bucket[0] += 1
        if verdict["ok"]:
            bucket[1] += 1
            functional += 1
        else:
            failing.setdefault(fault_map.signature(), fault_map_to_json(fault_map))
        level = line_cover_level(sub)
        levels[str(level)] = levels.get(str(level), 0) + 1
    record = {
        "samples": len(maps),
        "functional": functional,
        "distinct": verdicts["distinct"],
        "by_faults": by_faults,
        "levels": levels,
        "remap": None,
    }
    if config.remap and failing:
        outcomes = client.result(
            "map_batch",
            {
                "design_json": design_json,
                "circuit": _circuit_param(config),
                "fault_maps": list(failing.values()),
                "spare_rows": config.spare_rows,
                "spare_cols": config.spare_cols,
            },
            timeout=timeout,
        )
        stages: dict[str, int] = {}
        recovered = 0
        for outcome in outcomes["results"]:
            stages[outcome["stage"]] = stages.get(outcome["stage"], 0) + 1
            if outcome["ok"]:
                recovered += 1
        record["remap"] = {
            "attempted": len(failing),
            "recovered": recovered,
            "stages": stages,
        }
    return record


@dataclass
class CampaignReport:
    """The merged outcome of one campaign (all fields deterministic)."""

    circuit: str
    config_digest: str
    samples: int
    functional: int
    yield_fraction: float
    #: Sorted yield curve: one row per observed fault count.
    by_faults: list[dict] = field(default_factory=list)
    #: Cumulative recoverable fraction per spare-line budget.
    provisioning: list[dict] = field(default_factory=list)
    #: Remap tallies over distinct failing maps (``remap`` mode only).
    remap: dict | None = None
    #: Shard accounting for *this invocation* (resumed vs. computed).
    #: The only non-deterministic field — every other field is a pure
    #: function of the config; see :meth:`result_dict`.
    shards: dict = field(default_factory=dict)

    def result_dict(self) -> dict:
        """The deterministic portion of the report (no run accounting).

        This is the document the chaos harness and the resume tests
        assert bit-identical across uninterrupted, SIGKILL-resumed and
        chaos-harassed runs.
        """
        payload = self.as_dict()
        del payload["shards"]
        return payload

    def as_dict(self) -> dict:
        return {
            "circuit": self.circuit,
            "config_digest": self.config_digest,
            "samples": self.samples,
            "functional": self.functional,
            "yield_fraction": self.yield_fraction,
            "by_faults": self.by_faults,
            "provisioning": self.provisioning,
            "remap": self.remap,
            "shards": self.shards,
        }

    def render(self) -> str:
        """Fixed-width text summary for CLI output."""
        from ..robust import render_provisioning_table

        lines = [
            f"campaign: {self.circuit}  "
            f"samples={self.samples}  functional={self.functional}  "
            f"yield={self.yield_fraction:.4f}",
            "",
            f"{'faults':>6}  {'samples':>8}  {'functional':>10}  {'yield':>8}",
        ]
        for row in self.by_faults:
            lines.append(
                f"{row['faults']:>6}  {row['samples']:>8}  "
                f"{row['functional']:>10}  {row['yield']:>8.4f}"
            )
        lines += ["", "spare-line provisioning (greedy line-cover bound):"]
        lines.append(render_provisioning_table(self.provisioning))
        if self.remap is not None:
            stages = ", ".join(
                f"{name}={count}" for name, count in sorted(self.remap["stages"].items())
            )
            lines += [
                "",
                f"remap: attempted={self.remap['attempted']}  "
                f"recovered={self.remap['recovered']}  stages: {stages}",
            ]
        return "\n".join(lines)


def merge_records(config: CampaignConfig, records: dict[int, dict], shards_resumed: int) -> CampaignReport:
    """Fold per-shard records into the campaign report.

    Pure aggregation over sorted shard ids — the merge never depends on
    the order shards were *computed* in, only on their contents.
    """
    samples = functional = 0
    by_faults: dict[int, list[int]] = {}
    levels: dict[int, int] = {}
    remap_total: dict | None = None
    for shard in sorted(records):
        record = records[shard]
        samples += record["samples"]
        functional += record["functional"]
        for key, (total, good) in record["by_faults"].items():
            bucket = by_faults.setdefault(int(key), [0, 0])
            bucket[0] += total
            bucket[1] += good
        for key, count in record["levels"].items():
            levels[int(key)] = levels.get(int(key), 0) + count
        if record.get("remap") is not None:
            if remap_total is None:
                remap_total = {"attempted": 0, "recovered": 0, "stages": {}}
            remap_total["attempted"] += record["remap"]["attempted"]
            remap_total["recovered"] += record["remap"]["recovered"]
            for stage, count in record["remap"]["stages"].items():
                remap_total["stages"][stage] = (
                    remap_total["stages"].get(stage, 0) + count
                )
    curve = [
        {
            "faults": faults,
            "samples": total,
            "functional": good,
            "yield": good / total,
        }
        for faults, (total, good) in sorted(by_faults.items())
    ]
    return CampaignReport(
        circuit=config.circuit,
        config_digest=config.digest(),
        samples=samples,
        functional=functional,
        yield_fraction=functional / samples if samples else 0.0,
        by_faults=curve,
        provisioning=provisioning_table(levels) if levels else [],
        remap=remap_total,
        shards={
            "total": config.num_shards,
            "resumed": shards_resumed,
            "computed": len(records) - shards_resumed,
        },
    )


def run_campaign(
    config: CampaignConfig,
    client_factory,
    checkpoint: str | Path | None = None,
    streams: int = 1,
    max_shards: int | None = None,
    chaos=None,
    request_timeout: float | None = None,
) -> CampaignReport:
    """Run (or resume) one campaign end to end.

    ``client_factory`` is a zero-argument callable returning a connected
    :class:`~repro.service.client.ServiceClient`; each stream gets its
    own connection.  With a ``checkpoint`` path, completed shards are
    journalled and a rerun resumes from whatever survived.  ``chaos``
    (a :class:`~repro.campaign.chaos.ChaosMonkey`) gets a
    ``before_shard`` callback on every fresh shard.  ``max_shards``
    bounds this *invocation* — the campaign stops early with a partial
    checkpoint (used by crash/resume tests); the report then covers only
    the completed shards.
    """
    if streams < 1:
        raise ValueError("streams must be >= 1")
    client = client_factory()
    try:
        synth = client.result(
            "synth",
            {"circuit": _circuit_param(config), "validate": False},
            timeout=request_timeout,
        )
        design_json = synth["design_json"]
    finally:
        client.close()
    design = design_from_json(design_json)
    rows, cols = design.num_rows, design.num_cols

    journal = None
    records: dict[int, dict] = {}
    if checkpoint is not None:
        journal = CheckpointJournal(checkpoint)
        records = journal.open(config.digest())
    shards_resumed = len(records)
    counters.increment("campaign_shards_resumed", shards_resumed)

    todo = [s for s in range(config.num_shards) if s not in records]
    if max_shards is not None:
        todo = todo[:max_shards]

    try:
        if todo:
            pending: queue.Queue = queue.Queue()
            for shard in todo:
                pending.put(shard)
            lock = threading.Lock()
            failures: list[Exception] = []

            def worker() -> None:
                stream_client = client_factory()
                try:
                    while True:
                        try:
                            shard = pending.get_nowait()
                        except queue.Empty:
                            return
                        if failures:
                            return
                        if chaos is not None:
                            chaos.before_shard(shard, stream_client)
                        try:
                            record = compute_shard(
                                stream_client, config, design_json,
                                rows, cols, shard, timeout=request_timeout,
                            )
                        except Exception as exc:  # noqa: BLE001 — surfaced below
                            with lock:
                                failures.append(exc)
                            return
                        with lock:
                            records[shard] = record
                            if journal is not None:
                                journal.append(shard, record)
                            counters.increment("campaign_shards_computed")
                            counters.increment("campaign_samples", record["samples"])
                finally:
                    stream_client.close()

            threads = [
                threading.Thread(target=worker, name=f"campaign-{i}", daemon=True)
                for i in range(min(streams, len(todo)))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if failures:
                raise failures[0]
    finally:
        if journal is not None:
            journal.close()
    return merge_records(config, records, shards_resumed)
