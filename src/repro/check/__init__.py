"""``repro.check``: one static-analysis layer for the whole project.

A single diagnostics vocabulary (:mod:`~repro.check.diagnostics`) feeds
three analyzers — the netlist linter, the crossbar-design analyzer with
its semiperimeter lower-bound certificate, and the codebase self-lint —
plus the schema validators behind the JSON loaders and the functional-
validation bridge used by ``repro validate --json``.  The ``repro
check`` CLI and ``make check`` drive :func:`run_check`.
"""

from .design import (
    check_design,
    check_design_file,
    layered_semiperimeter_lower_bound,
    odd_cycle_packing,
    semiperimeter_lower_bound,
)
from .diagnostics import (
    DIAGNOSTICS_SCHEMA,
    RULES,
    Diagnostic,
    Report,
    Rule,
    Severity,
    Span,
    diag,
)
from .functional import validation_diagnostics
from .netlist_lint import (
    NETLIST_SUFFIXES,
    lint_blif_text,
    lint_file,
    lint_netlist,
    lint_pla_text,
    lint_verilog_text,
)
from .runner import UnknownInputError, collect_inputs, run_check
from .schema import (
    DESIGN_FORMAT,
    FAULTS_FORMAT,
    design_schema_diagnostics,
    fault_map_schema_diagnostics,
)
from .selflint import default_source_root, selflint_file, selflint_paths

__all__ = [
    "DIAGNOSTICS_SCHEMA",
    "RULES",
    "Diagnostic",
    "Report",
    "Rule",
    "Severity",
    "Span",
    "diag",
    "run_check",
    "collect_inputs",
    "UnknownInputError",
    "NETLIST_SUFFIXES",
    "lint_file",
    "lint_netlist",
    "lint_pla_text",
    "lint_blif_text",
    "lint_verilog_text",
    "check_design",
    "check_design_file",
    "semiperimeter_lower_bound",
    "layered_semiperimeter_lower_bound",
    "odd_cycle_packing",
    "design_schema_diagnostics",
    "fault_map_schema_diagnostics",
    "DESIGN_FORMAT",
    "FAULTS_FORMAT",
    "validation_diagnostics",
    "selflint_file",
    "selflint_paths",
    "default_source_root",
]
