"""Static analysis of crossbar designs.

Checks a :class:`~repro.crossbar.design.CrossbarDesign` — typically one
reloaded from JSON — without re-running synthesis:

======  ==============================================================
D001    schema violation (JSON inputs; see :mod:`repro.check.schema`)
D002    VH-labeling violation: a stitch joining two different nodes,
        a VH node without its stitch, or an edge cell looping a node
        to itself
D003    alignment violation: a non-constant output sensing the driven
        input wordline, or a disconnected input wordline
D004    a programmed memristor no input-output flow can ever use
D005    an unused (spare) line — informational
D006    line/label binding is not one-to-one (dimension bookkeeping
        breaks: R = #H + #VH, C = #V + #VH no longer hold)
D007    via inconsistency on a layered design: a node spanning more
        than two nanowire planes, non-adjacent planes, or two adjacent
        planes without the always-on via in the layer that joins them
L001    semiperimeter lower-bound certificate (planar) — informational
L002    the design's labeled semiperimeter beats the certified lower
        bound, or the certificate fails self-verification — either way
        the artifact cannot be a faithful planar design
L003    layered semiperimeter lower-bound certificate — informational
L004    a layered design's footprint beats its certified bound, or the
        layered certificate fails self-verification
======  ==============================================================

The planar bound certifies ``S >= n + OCT_lb`` (paper Lemma 1: the
semiperimeter is the node count plus the number of VH nodes, and the VH
set is an odd cycle transversal).  ``OCT_lb`` is the better of two
certificates: the vertex-cover LP bound on the Cartesian product
``P = G x K2`` minus ``n`` (Lemma 1's reduction; the all-halves point
makes this 0 whenever the LP is not forced higher, so it is usually the
weaker bound) and a greedy vertex-disjoint odd-cycle packing, since
every odd cycle must contain at least one VH node and disjoint cycles
need distinct ones.

The layered bound reuses ``OCT_lb`` unchanged — the parity argument
around an odd cycle is plane-independent, so the stitch set of *every*
K-layer labeling is still a transversal — and combines it with the
plane-capacity relaxation of :func:`repro.graphs.bounds.layered_capacity_bound`:
``n + OCT_lb`` wires must spread over ``K//2 + 1`` horizontal and
``(K+1)//2`` vertical nanowire planes with the ports pinned to plane 0.
At ``K = 1`` it degenerates to exactly the planar bound.

Both certificates carry their witnesses (packed odd cycles, per-core LP
fractional matchings) and are re-verified here, independently of the
solver that produced them, before L001/L003 is emitted — a forged
certificate is reported as L002/L004 naming the broken components.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..crossbar.design import CrossbarDesign, h_plane, v_plane
from ..graphs.bounds import (
    layered_capacity_bound,
    oct_certificate,
    odd_cycle_packing_witness,
    verify_layered_certificate,
    verify_semiperimeter_certificate,
)
from ..graphs.undirected import UGraph
from .diagnostics import Diagnostic, diag
from .schema import design_schema_diagnostics

__all__ = [
    "check_design",
    "check_design_file",
    "semiperimeter_lower_bound",
    "layered_semiperimeter_lower_bound",
    "odd_cycle_packing",
]


def check_design_file(path: str | Path) -> list[Diagnostic]:
    """Check one serialized design: schema first, then the analyzer."""
    path = Path(path)
    file = str(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [diag("D001", f"not valid JSON: {exc}", file=file)]
    diags = design_schema_diagnostics(payload, file=file)
    if diags:
        return diags
    from ..crossbar.serialize import design_from_json

    design = design_from_json(json.dumps(payload))
    return check_design(design, file=file)


def check_design(design: CrossbarDesign, file: str | None = None) -> list[Diagnostic]:
    """All static diagnostics for an in-memory design.

    Layered designs run the same checks per nanowire plane / memristor
    layer, plus D007 (via consistency), and receive the *layered*
    semiperimeter certificate (L003/L004) in place of the planar
    L001/L002 one: ``S = n + #VH`` is a planar identity, but the OCT
    transfer + plane-capacity bound certifies every K.
    """
    if design.num_layers > 1:
        diags = []
        diags.extend(_label_binding_checks_3d(design, file))
        diags.extend(_vh_checks_3d(design, file))
        diags.extend(_alignment_checks_3d(design, file))
        diags.extend(_reachability_checks_3d(design, file))
        diags.extend(_spare_line_checks_3d(design, file))
        diags.extend(_via_checks_3d(design, file))
        diags.extend(_lower_bound_checks_3d(design, file))
        return diags
    diags = []
    diags.extend(_label_binding_checks(design, file))
    diags.extend(_vh_checks(design, file))
    diags.extend(_alignment_checks(design, file))
    diags.extend(_reachability_checks(design, file))
    diags.extend(_spare_line_checks(design, file))
    diags.extend(_lower_bound_checks(design, file))
    return diags


# -- D006: line/label binding ---------------------------------------------------


def _label_binding_checks(design: CrossbarDesign, file: str | None) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for kind, labels in (("row", design.row_labels), ("col", design.col_labels)):
        by_node: dict[object, int] = {}
        for line, node in labels.items():
            if node in by_node:
                diags.append(
                    diag(
                        "D006",
                        f"node {node!r} labels both {kind} {by_node[node]} and "
                        f"{kind} {line}",
                        file=file, obj=f"{kind} {line}",
                    )
                )
            else:
                by_node[node] = line
    return diags


# -- D002: VH-labeling conformity ----------------------------------------------


def _vh_checks(design: CrossbarDesign, file: str | None) -> list[Diagnostic]:
    if not design.row_labels and not design.col_labels:
        return []
    diags: list[Diagnostic] = []
    row_of = {node: r for r, node in design.row_labels.items()}
    col_of = {node: c for c, node in design.col_labels.items()}

    stitched: set[object] = set()
    for r, c, lit in design.cells():
        rnode = design.row_labels.get(r)
        cnode = design.col_labels.get(c)
        if lit.is_constant():
            # An always-on cell is only ever a VH stitch: it must join
            # the wordline and bitline of the *same* node.
            if rnode is None or cnode is None or rnode != cnode:
                diags.append(
                    diag(
                        "D002",
                        f"always-on cell at ({r}, {c}) joins "
                        f"{_line_desc(rnode, 'row', r)} and "
                        f"{_line_desc(cnode, 'col', c)} instead of stitching "
                        "one VH node",
                        file=file, obj=f"cell ({r}, {c})",
                    )
                )
            else:
                stitched.add(rnode)
        else:
            if rnode is not None and rnode == cnode:
                diags.append(
                    diag(
                        "D002",
                        f"literal cell at ({r}, {c}) loops node {rnode!r} "
                        "to itself",
                        file=file, obj=f"cell ({r}, {c})",
                    )
                )

    for node in set(row_of) & set(col_of):
        if node not in stitched:
            diags.append(
                diag(
                    "D002",
                    f"VH node {node!r} (row {row_of[node]}, col {col_of[node]}) "
                    "has no always-on stitch cell",
                    file=file, obj=f"node {node!r}",
                )
            )
    return diags


def _line_desc(node, kind: str, index: int) -> str:
    if node is None:
        return f"unlabeled {kind} {index}"
    return f"{kind} {index} (node {node!r})"


# -- D003: alignment ------------------------------------------------------------


def _alignment_checks(design: CrossbarDesign, file: str | None) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for out, row in design.output_rows.items():
        if row == design.input_row and out not in design.constant_outputs:
            diags.append(
                diag(
                    "D003",
                    f"output {out!r} senses the driven input wordline "
                    f"{row} but is not declared constant",
                    file=file, obj=out,
                )
            )
    non_constant = [
        out for out in design.output_rows if out not in design.constant_outputs
    ]
    input_cells = sum(1 for r, _, _ in design.cells() if r == design.input_row)
    if non_constant and design.memristor_count and input_cells == 0:
        diags.append(
            diag(
                "D003",
                f"input wordline {design.input_row} carries no memristors, so "
                f"no output can ever read true",
                file=file, obj=f"row {design.input_row}",
            )
        )
    return diags


# -- D004: unreachable memristors -----------------------------------------------


def _reachability_checks(design: CrossbarDesign, file: str | None) -> list[Diagnostic]:
    """Cells that cannot lie on any input-to-output flow path.

    Best case for a cell is every programmed memristor conducting; if
    even then its component of the line-connectivity graph misses the
    input wordline or every output wordline, the cell can never carry
    (or gate) observable flow.
    """
    lines = UGraph()
    lines.add_node(("r", design.input_row))
    for row in design.output_rows.values():
        lines.add_node(("r", row))
    cells = list(design.cells())
    for r, c, _lit in cells:
        lines.add_edge(("r", r), ("c", c))

    components = lines.connected_components()
    component_of: dict[object, int] = {}
    for idx, comp in enumerate(components):
        for node in comp:
            component_of[node] = idx
    live = {
        idx
        for idx, comp in enumerate(components)
        if ("r", design.input_row) in comp
        and any(("r", row) in comp for row in design.output_rows.values())
    }

    diags: list[Diagnostic] = []
    for r, c, lit in cells:
        if component_of[("r", r)] not in live:
            diags.append(
                diag(
                    "D004",
                    f"memristor {lit} at ({r}, {c}) is disconnected from the "
                    "input-output flow network",
                    file=file, obj=f"cell ({r}, {c})",
                )
            )
    return diags


# -- D005: spare lines ----------------------------------------------------------


def _spare_line_checks(design: CrossbarDesign, file: str | None) -> list[Diagnostic]:
    used_rows = {design.input_row, *design.output_rows.values()}
    used_cols: set[int] = set()
    for r, c, _lit in design.cells():
        used_rows.add(r)
        used_cols.add(c)
    diags: list[Diagnostic] = []
    for r in range(design.num_rows):
        if r not in used_rows:
            diags.append(
                diag("D005", f"wordline {r} is unused (spare)", file=file, obj=f"row {r}")
            )
    for c in range(design.num_cols):
        if c not in used_cols:
            diags.append(
                diag("D005", f"bitline {c} is unused (spare)", file=file, obj=f"col {c}")
            )
    return diags


# -- layered designs: the same checks per plane, plus D007 ----------------------


def _node_planes(design: CrossbarDesign) -> dict[object, list[int]]:
    """Which nanowire planes each labeled node occupies, in plane order."""
    planes: dict[object, list[int]] = {}
    for p, labels in enumerate(design.plane_labels):
        for node in labels.values():
            planes.setdefault(node, []).append(p)
    return planes


def _label_binding_checks_3d(
    design: CrossbarDesign, file: str | None
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for p, labels in enumerate(design.plane_labels):
        by_node: dict[object, int] = {}
        for wire, node in labels.items():
            if node in by_node:
                diags.append(
                    diag(
                        "D006",
                        f"node {node!r} labels both wire {by_node[node]} and "
                        f"wire {wire} of plane {p}",
                        file=file, obj=f"plane {p} wire {wire}",
                    )
                )
            else:
                by_node[node] = wire
    return diags


def _vh_checks_3d(design: CrossbarDesign, file: str | None) -> list[Diagnostic]:
    if not any(design.plane_labels):
        return []
    diags: list[Diagnostic] = []
    for l, r, c, lit in design.cells3d():
        rnode = design.plane_labels[h_plane(l)].get(r)
        cnode = design.plane_labels[v_plane(l)].get(c)
        if lit.is_constant():
            if rnode is None or cnode is None or rnode != cnode:
                diags.append(
                    diag(
                        "D002",
                        f"always-on cell at layer {l} ({r}, {c}) joins "
                        f"{_line_desc(rnode, 'wire', r)} and "
                        f"{_line_desc(cnode, 'wire', c)} instead of stitching "
                        "one node across the layer",
                        file=file, obj=f"cell ({l}, {r}, {c})",
                    )
                )
        elif rnode is not None and rnode == cnode:
            diags.append(
                diag(
                    "D002",
                    f"literal cell at layer {l} ({r}, {c}) loops node "
                    f"{rnode!r} to itself",
                    file=file, obj=f"cell ({l}, {r}, {c})",
                )
            )
    return diags


def _via_checks_3d(design: CrossbarDesign, file: str | None) -> list[Diagnostic]:
    """D007: every multi-plane node is one via between adjacent planes."""
    if not any(design.plane_labels):
        return []
    wire_of = [
        {node: wire for wire, node in labels.items()}
        for labels in design.plane_labels
    ]
    vias: set[tuple[object, int]] = set()
    for l, r, c, lit in design.cells3d():
        if not lit.is_constant():
            continue
        rnode = design.plane_labels[h_plane(l)].get(r)
        if rnode is not None and rnode == design.plane_labels[v_plane(l)].get(c):
            vias.add((rnode, l))

    diags: list[Diagnostic] = []
    for node, planes in _node_planes(design).items():
        if len(planes) == 1:
            continue
        if len(planes) > 2:
            diags.append(
                diag(
                    "D007",
                    f"node {node!r} spans {len(planes)} nanowire planes "
                    f"({', '.join(map(str, planes))}); a stitched node may "
                    "occupy exactly two",
                    file=file, obj=f"node {node!r}",
                )
            )
            continue
        lo, hi = planes
        if hi - lo != 1:
            diags.append(
                diag(
                    "D007",
                    f"node {node!r} spans non-adjacent planes {lo} and {hi}; "
                    "no memristor layer can via them together",
                    file=file, obj=f"node {node!r}",
                )
            )
        elif (node, lo) not in vias:
            diags.append(
                diag(
                    "D007",
                    f"node {node!r} spans planes {lo} and {hi} but layer {lo} "
                    f"has no always-on via at its crosspoint "
                    f"({wire_of[h_plane(lo)][node]}, {wire_of[v_plane(lo)][node]})",
                    file=file, obj=f"node {node!r}",
                )
            )
    return diags


def _alignment_checks_3d(design: CrossbarDesign, file: str | None) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for out, row in design.output_rows.items():
        if row == design.input_row and out not in design.constant_outputs:
            diags.append(
                diag(
                    "D003",
                    f"output {out!r} senses the driven input wordline "
                    f"{row} but is not declared constant",
                    file=file, obj=out,
                )
            )
    non_constant = [
        out for out in design.output_rows if out not in design.constant_outputs
    ]
    # Plane 0 only borders memristor layer 0, so the driven input
    # wordline can reach the array only through layer-0 cells.
    input_cells = sum(
        1 for l, r, _c, _lit in design.cells3d()
        if l == 0 and r == design.input_row
    )
    if non_constant and design.memristor_count and input_cells == 0:
        diags.append(
            diag(
                "D003",
                f"input wordline {design.input_row} carries no memristors, so "
                f"no output can ever read true",
                file=file, obj=f"row {design.input_row}",
            )
        )
    return diags


def _reachability_checks_3d(
    design: CrossbarDesign, file: str | None
) -> list[Diagnostic]:
    lines = UGraph()
    lines.add_node((0, design.input_row))
    for row in design.output_rows.values():
        lines.add_node((0, row))
    cells = list(design.cells3d())
    for l, r, c, _lit in cells:
        lines.add_edge((h_plane(l), r), (v_plane(l), c))

    components = lines.connected_components()
    component_of: dict[object, int] = {}
    for idx, comp in enumerate(components):
        for node in comp:
            component_of[node] = idx
    live = {
        idx
        for idx, comp in enumerate(components)
        if (0, design.input_row) in comp
        and any((0, row) in comp for row in design.output_rows.values())
    }

    diags: list[Diagnostic] = []
    for l, r, c, lit in cells:
        if component_of[(h_plane(l), r)] not in live:
            diags.append(
                diag(
                    "D004",
                    f"memristor {lit} at layer {l} ({r}, {c}) is disconnected "
                    "from the input-output flow network",
                    file=file, obj=f"cell ({l}, {r}, {c})",
                )
            )
    return diags


def _spare_line_checks_3d(
    design: CrossbarDesign, file: str | None
) -> list[Diagnostic]:
    used: set[tuple[int, int]] = {(0, design.input_row)}
    used.update((0, row) for row in design.output_rows.values())
    for l, r, c, _lit in design.cells3d():
        used.add((h_plane(l), r))
        used.add((v_plane(l), c))
    diags: list[Diagnostic] = []
    for p, size in enumerate(design.plane_sizes):
        kind = "wordline" if p % 2 == 0 else "bitline"
        for wire in range(size):
            if (p, wire) not in used:
                diags.append(
                    diag(
                        "D005",
                        f"plane {p} {kind} {wire} is unused (spare)",
                        file=file, obj=f"plane {p} wire {wire}",
                    )
                )
    return diags


# -- L001..L004: the semiperimeter certificates ----------------------------------


def _lower_bound_checks(design: CrossbarDesign, file: str | None) -> list[Diagnostic]:
    graph = _implied_graph(design)
    if graph is None or len(graph) == 0:
        return []
    cert = semiperimeter_lower_bound(graph)
    failures = verify_semiperimeter_certificate(graph, cert)
    if failures:
        return [
            diag(
                "L002",
                "semiperimeter certificate failed self-verification "
                f"({'; '.join(failures)})",
                file=file, obj=design.name,
                failed_components=sorted({f.split(":", 1)[0] for f in failures}),
            )
        ]
    s_labeled = len(design.row_labels) + len(design.col_labels)
    diags = [
        diag(
            "L001",
            f"certified semiperimeter lower bound {cert['s_lb']} "
            f"(labeled S = {s_labeled}, gap {s_labeled - cert['s_lb']})",
            file=file, obj=design.name,
            **cert,
            s_labeled=s_labeled,
            gap=s_labeled - cert["s_lb"],
        )
    ]
    if s_labeled < cert["s_lb"]:
        diags.append(
            diag(
                "L002",
                f"labeled semiperimeter {s_labeled} is below the certified "
                f"lower bound {cert['s_lb']} — the artifact cannot be a "
                "faithful VH-labeled design",
                file=file, obj=design.name,
            )
        )
    return diags


def _port_nodes_3d(design: CrossbarDesign) -> set:
    """The nodes the design pins to plane-0 wordlines (input + outputs)."""
    rows = {design.input_row}
    rows.update(
        row
        for out, row in design.output_rows.items()
        if out not in design.constant_outputs
    )
    labels = design.plane_labels[0]
    return {labels[r] for r in rows if r in labels}


def _lower_bound_checks_3d(
    design: CrossbarDesign, file: str | None
) -> list[Diagnostic]:
    graph = _implied_graph_3d(design)
    if graph is None or len(graph) == 0:
        return []
    ports = len(_port_nodes_3d(design))
    layers = design.num_layers
    cert = layered_semiperimeter_lower_bound(graph, ports, layers)
    failures = verify_layered_certificate(graph, cert, ports, layers)
    if failures:
        return [
            diag(
                "L004",
                "layered semiperimeter certificate failed self-verification "
                f"({'; '.join(failures)})",
                file=file, obj=design.name,
                failed_components=sorted({f.split(":", 1)[0] for f in failures}),
            )
        ]
    s_labeled = max(
        len(labels) for labels in design.plane_labels[0::2]
    ) + max(len(labels) for labels in design.plane_labels[1::2])
    diags = [
        diag(
            "L003",
            f"certified {layers}-layer semiperimeter lower bound "
            f"{cert['s_lb']} (labeled S = {s_labeled}, "
            f"gap {s_labeled - cert['s_lb']})",
            file=file, obj=design.name,
            **cert,
            s_labeled=s_labeled,
            gap=s_labeled - cert["s_lb"],
        )
    ]
    if s_labeled < cert["s_lb"]:
        diags.append(
            diag(
                "L004",
                f"labeled {layers}-layer semiperimeter {s_labeled} is below "
                f"the certified lower bound {cert['s_lb']} — the artifact "
                "cannot be a faithful layered design",
                file=file, obj=design.name,
            )
        )
    return diags


def _implied_graph(design: CrossbarDesign) -> UGraph | None:
    """The BDD graph the design's labels and literal cells imply."""
    if not design.row_labels and not design.col_labels:
        return None
    graph = UGraph()
    for node in design.row_labels.values():
        graph.add_node(node)
    for node in design.col_labels.values():
        graph.add_node(node)
    for r, c, lit in design.cells():
        if lit.is_constant():
            continue
        rnode = design.row_labels.get(r)
        cnode = design.col_labels.get(c)
        if rnode is None or cnode is None or rnode == cnode:
            continue  # flagged by the D002/D006 checks
        graph.add_edge(rnode, cnode)
    return graph


def _implied_graph_3d(design: CrossbarDesign) -> UGraph | None:
    """The BDD graph a layered design's labels and literal cells imply."""
    if not any(design.plane_labels):
        return None
    graph = UGraph()
    for labels in design.plane_labels:
        for node in labels.values():
            graph.add_node(node)
    for l, r, c, lit in design.cells3d():
        if lit.is_constant():
            continue
        rnode = design.plane_labels[h_plane(l)].get(r)
        cnode = design.plane_labels[v_plane(l)].get(c)
        if rnode is None or cnode is None or rnode == cnode:
            continue  # flagged by the D002/D006 checks
        graph.add_edge(rnode, cnode)
    return graph


def semiperimeter_lower_bound(graph: UGraph) -> dict:
    """A provable lower bound on the semiperimeter of any planar mapping
    of ``graph``, with re-checkable witnesses.

    By Lemma 1, ``S = n + #VH`` and the VH set is an odd cycle
    transversal, so ``S >= n + OCT_lb`` for any valid lower bound on
    the transversal.  The bound composition (per-core LP + odd-cycle
    packing) lives in :func:`repro.graphs.bounds.oct_certificate`; this
    wrapper only adds the planar identity.

    Returns the certificate dict: the summary fields ``n``, ``cores``,
    ``lp_product``, ``lp_lb``, ``packing_lb``, ``oct_lb``, ``s_lb``
    plus the witnesses ``packing`` (explicit vertex-disjoint odd
    cycles) and ``lp_witnesses`` (per-core fractional matchings on the
    ``core x K2`` products), which let a consumer re-derive the bound
    without re-solving.
    """
    cert = oct_certificate(graph)
    cert["s_lb"] = cert["n"] + cert["oct_lb"]
    return cert


def layered_semiperimeter_lower_bound(
    graph: UGraph, ports: int, layers: int
) -> dict:
    """A provable lower bound on the footprint semiperimeter of any
    ``layers``-layer mapping of ``graph`` with ``ports`` plane-0 ports.

    The stitch set of every K-layer labeling is still an odd cycle
    transversal (parity around a cycle is plane-independent), so the
    2D ``oct_lb`` transfers; the plane-capacity relaxation then spreads
    the ``n + oct_lb`` wires over the fabric's nanowire planes.  At
    ``layers == 1`` this is exactly :func:`semiperimeter_lower_bound`.

    The certificate extends the OCT witnesses with the capacity fields
    (``layers``, ``even_planes``, ``odd_planes``, ``ports``,
    ``split_even``) checked by
    :func:`repro.graphs.bounds.verify_layered_certificate`.
    """
    cert = oct_certificate(graph)
    cert.update(
        layered_capacity_bound(cert["n"], cert["oct_lb"], ports, layers)
    )
    return cert


def odd_cycle_packing(graph: UGraph) -> int:
    """Greedy count of vertex-disjoint odd cycles.

    Each disjoint odd cycle forces a distinct transversal vertex, so the
    count lower-bounds the odd cycle transversal number.
    """
    return len(odd_cycle_packing_witness(graph))
