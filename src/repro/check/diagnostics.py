"""The diagnostics model shared by every ``repro check`` analyzer.

One vocabulary for everything static analysis can say about a netlist,
a crossbar design, or the codebase itself: a :class:`Diagnostic` is a
stable rule code plus a severity, a human message, an optional source
span (``file:line``) and an optional machine-readable payload.  A
:class:`Report` aggregates diagnostics, renders them as text or JSON,
and maps them onto the CLI exit-code contract (0 clean / 1 findings /
2 usage errors).

Rule codes are permanent API: tools and tests key on them, so codes are
never renumbered or reused.  The catalog lives in :data:`RULES`; use
:func:`diag` to construct diagnostics so unknown codes fail loudly.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "Severity",
    "Span",
    "Rule",
    "RULES",
    "Diagnostic",
    "Report",
    "diag",
    "DIAGNOSTICS_SCHEMA",
]

#: Schema marker carried by every JSON diagnostics document.
DIAGNOSTICS_SCHEMA = "repro.diagnostics/1"


class Severity(str, Enum):
    """How bad a diagnostic is.

    ``ERROR`` and ``WARNING`` are *findings* — they fail a check run
    (exit code 1).  ``INFO`` diagnostics carry certificates and metrics
    (for example the semiperimeter lower bound) and never fail a run.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Span:
    """A source location: file name plus optional 1-based line."""

    file: str | None = None
    line: int | None = None

    def __str__(self) -> str:
        if self.file is not None and self.line is not None:
            return f"{self.file}:{self.line}"
        if self.file is not None:
            return self.file
        if self.line is not None:
            return f"line {self.line}"
        return "<unknown>"

    def as_dict(self) -> dict:
        return {"file": self.file, "line": self.line}


@dataclass(frozen=True)
class Rule:
    """One catalog entry: a stable code with its default severity."""

    code: str
    severity: Severity
    title: str


def _catalog(*rules: tuple[str, Severity, str]) -> dict[str, Rule]:
    out: dict[str, Rule] = {}
    for code, severity, title in rules:
        if code in out:
            raise ValueError(f"duplicate rule code {code!r}")
        out[code] = Rule(code, severity, title)
    return out


#: The full rule-code catalog.  N = netlist, D = design, L = lower-bound
#: certificate, V = functional validation, C = codebase self-lint.
RULES: dict[str, Rule] = _catalog(
    # -- netlist linter ---------------------------------------------------------
    ("N000", Severity.ERROR, "file does not parse"),
    ("N001", Severity.ERROR, "combinational cycle"),
    ("N002", Severity.ERROR, "undriven net"),
    ("N003", Severity.ERROR, "multiply-driven net"),
    ("N004", Severity.ERROR, "primary output is never driven"),
    ("N005", Severity.WARNING, "unused primary input"),
    ("N006", Severity.ERROR, "duplicate declaration"),
    ("N007", Severity.WARNING, "redundant cube"),
    ("N008", Severity.ERROR, "contradictory cubes"),
    ("N009", Severity.WARNING, "constant output"),
    ("N010", Severity.WARNING, "dead logic"),
    # -- design analyzer --------------------------------------------------------
    ("D001", Severity.ERROR, "design schema violation"),
    ("D002", Severity.ERROR, "VH-labeling violation"),
    ("D003", Severity.ERROR, "alignment violation"),
    ("D004", Severity.WARNING, "unreachable memristor"),
    ("D005", Severity.INFO, "unused line"),
    ("D006", Severity.ERROR, "dimension inconsistency"),
    ("D007", Severity.ERROR, "via inconsistency on a layered design"),
    # -- semiperimeter lower-bound certificate ----------------------------------
    ("L001", Severity.INFO, "semiperimeter lower-bound certificate"),
    ("L002", Severity.ERROR, "semiperimeter below certified lower bound"),
    ("L003", Severity.INFO, "layered semiperimeter lower-bound certificate"),
    ("L004", Severity.ERROR, "layered semiperimeter below certified lower bound"),
    # -- functional validation (repro validate --json) --------------------------
    ("V001", Severity.ERROR, "design/circuit functional mismatch"),
    ("V002", Severity.ERROR, "functional mismatch under injected faults"),
    # -- codebase self-lint -----------------------------------------------------
    ("C001", Severity.ERROR, "lock acquired outside a with statement"),
    ("C002", Severity.ERROR, "bare except"),
    ("C003", Severity.ERROR, "silently swallowed I/O error"),
    ("C004", Severity.ERROR, "exit code outside the 0/1/2 contract"),
    ("C005", Severity.ERROR, "wall-clock time used for a duration"),
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding (or certificate) produced by an analyzer.

    ``obj`` names the object the diagnostic is about when no source
    span exists or the span alone is ambiguous — a net, a cell
    coordinate, a design name.  ``data`` is a JSON-serialisable payload
    for machine consumers (counterexamples, bounds, gap values).
    """

    code: str
    severity: Severity
    message: str
    span: Span = field(default_factory=Span)
    obj: str | None = None
    data: dict = field(default_factory=dict)

    @property
    def is_finding(self) -> bool:
        """Whether this diagnostic fails a check run."""
        return self.severity in (Severity.ERROR, Severity.WARNING)

    def render(self) -> str:
        """One text line: ``file:line: severity[CODE] message (obj)``."""
        where = str(self.span)
        if self.obj is not None:
            where = f"{where}: {self.obj}" if where != "<unknown>" else self.obj
        return f"{where}: {self.severity.value}[{self.code}] {self.message}"

    def as_dict(self) -> dict:
        payload = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "span": self.span.as_dict(),
            "obj": self.obj,
        }
        if self.data:
            payload["data"] = self.data
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Diagnostic":
        """Inverse of :meth:`as_dict` (service results carry dicts)."""
        span = payload.get("span") or {}
        return cls(
            code=payload["code"],
            severity=Severity(payload["severity"]),
            message=payload["message"],
            span=Span(span.get("file"), span.get("line")),
            obj=payload.get("obj"),
            data=dict(payload.get("data", {})),
        )


def diag(
    code: str,
    message: str,
    *,
    file: str | None = None,
    line: int | None = None,
    obj: str | None = None,
    severity: Severity | None = None,
    **data,
) -> Diagnostic:
    """Construct a diagnostic for a cataloged rule.

    The severity defaults to the rule's cataloged severity; unknown
    codes raise ``KeyError`` so analyzers cannot invent rules ad hoc.
    """
    rule = RULES[code]
    return Diagnostic(
        code=code,
        severity=severity or rule.severity,
        message=message,
        span=Span(file, line),
        obj=obj,
        data=dict(data),
    )


class Report:
    """An ordered collection of diagnostics with reporters attached."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = (), tool: str = "repro check"):
        self.tool = tool
        self.diagnostics: list[Diagnostic] = list(diagnostics)

    # -- collection --------------------------------------------------------------
    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    # -- queries -----------------------------------------------------------------
    def findings(self) -> list[Diagnostic]:
        """Errors and warnings only — what fails a run."""
        return [d for d in self.diagnostics if d.is_finding]

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def counts(self) -> dict[str, int]:
        out = {s.value: 0 for s in Severity}
        for d in self.diagnostics:
            out[d.severity.value] += 1
        return out

    @property
    def exit_code(self) -> int:
        """CLI contract: 0 clean, 1 findings (usage errors are the caller's 2)."""
        return 1 if self.findings() else 0

    # -- reporters ---------------------------------------------------------------
    def render_text(self, verbose: bool = False) -> str:
        """Human-readable report; INFO lines only with ``verbose``."""
        lines = [
            d.render()
            for d in self.diagnostics
            if verbose or d.severity is not Severity.INFO
        ]
        counts = self.counts()
        summary = (
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info"
        )
        lines.append(summary if not lines else f"-- {summary}")
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """The machine-readable document (shared with ``validate --json``)."""
        counts = self.counts()
        return {
            "schema": DIAGNOSTICS_SCHEMA,
            "tool": self.tool,
            "ok": not self.findings(),
            "summary": counts,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def render_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_payload(), indent=indent, sort_keys=False)
