"""Functional validation results as diagnostics (V-rules).

Bridges :class:`~repro.crossbar.validate.ValidationReport` — produced
by ``validate_design`` / ``validate_under_faults`` — into the shared
diagnostics vocabulary, so ``repro validate --json`` and the service's
``validate`` method speak the same schema as ``repro check``.
"""

from __future__ import annotations

from .diagnostics import Diagnostic, diag

__all__ = ["validation_diagnostics"]


def validation_diagnostics(
    validation: dict,
    *,
    design_name: str,
    circuit_name: str,
    file: str | None = None,
    under_faults: bool = False,
) -> list[Diagnostic]:
    """V001/V002 diagnostics for one validation-result dict.

    ``validation`` is the payload shape the job executor emits (keys
    ``ok``, ``checked``, ``exhaustive``, ``counterexample``,
    ``mismatched_outputs``).  A passing validation yields no
    diagnostics.
    """
    if validation["ok"]:
        return []
    code = "V002" if under_faults else "V001"
    condition = "under the injected faults " if under_faults else ""
    outputs = tuple(validation.get("mismatched_outputs") or ())
    return [
        diag(
            code,
            f"design {design_name!r} disagrees with circuit {circuit_name!r} "
            f"{condition}on outputs {outputs} "
            f"(counterexample {validation.get('counterexample')!r}, "
            f"{validation['checked']} assignments checked, "
            f"exhaustive={validation['exhaustive']})",
            file=file,
            obj=design_name,
            counterexample=validation.get("counterexample"),
            mismatched_outputs=list(outputs),
            checked=validation["checked"],
            exhaustive=validation["exhaustive"],
        )
    ]
