"""The netlist linter: structural diagnostics for PLA, BLIF and Verilog.

Works on the structural *scan* documents the readers produce
(:func:`repro.io.scan_pla` etc.), so semantic problems that would make
``read_*`` raise become diagnostics with exact ``file:line`` spans
instead of crashes.  Rules:

======  =========================================================
N000    file does not parse at all (structural syntax error)
N001    combinational cycle
N002    a gate/block reads a net nothing drives
N003    a net is driven more than once (or an input is driven)
N004    a primary output is never driven
N005    a primary input is never used (warning)
N006    the same name is declared twice
N007    a PLA cube is contained in another cube (warning)
N008    on-set and off-set cubes of an ``fr``-type PLA intersect
N009    a primary output is constant (warning)
N010    logic that no primary output depends on (warning)
======  =========================================================

Constant outputs (N009) are found by structural constant folding over
the built netlist, plus an exhaustive functional check when the input
count is small enough to enumerate cheaply.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from pathlib import Path

from ..circuits.netlist import Netlist
from ..io.blif import BlifDoc, BlifError, read_blif, scan_blif
from ..io.pla import PlaDoc, PlaError, read_pla, scan_pla
from ..io.verilog import VerilogDoc, VerilogError, read_verilog, scan_verilog
from .diagnostics import Diagnostic, diag

__all__ = [
    "lint_file",
    "lint_netlist",
    "lint_pla_text",
    "lint_blif_text",
    "lint_verilog_text",
    "NETLIST_SUFFIXES",
]

#: File suffixes the linter understands, mapped to their format key.
NETLIST_SUFFIXES = {
    ".pla": "pla",
    ".blif": "blif",
    ".v": "verilog",
    ".sv": "verilog",
    ".verilog": "verilog",
}

#: Inputs up to this count are checked exhaustively for constant outputs.
_EXHAUSTIVE_INPUT_LIMIT = 10


@dataclass(frozen=True)
class _Driver:
    """One driving site in the common structural model."""

    name: str
    line: int | None
    deps: tuple[str, ...]


# -- entry points ---------------------------------------------------------------


def lint_file(path: str | Path) -> list[Diagnostic]:
    """Lint one netlist file; the format is chosen by suffix."""
    path = Path(path)
    fmt = NETLIST_SUFFIXES.get(path.suffix.lower())
    if fmt is None:
        raise ValueError(f"unknown netlist format for {path.name!r}")
    text = path.read_text()
    source = str(path)
    if fmt == "pla":
        return lint_pla_text(text, source)
    if fmt == "blif":
        return lint_blif_text(text, source)
    return lint_verilog_text(text, source)


def lint_pla_text(text: str, source: str | None = None) -> list[Diagnostic]:
    try:
        doc = scan_pla(text, source=source)
    except PlaError as exc:
        return [_parse_failure(exc, source)]
    diags = _lint_pla_doc(doc)
    if not any(d.code != "N000" and d.severity.value == "error" for d in diags):
        diags.extend(_build_and_check(lambda: read_pla(text, source=source), source))
    return diags


def lint_blif_text(text: str, source: str | None = None) -> list[Diagnostic]:
    try:
        doc = scan_blif(text, source=source)
    except BlifError as exc:
        return [_parse_failure(exc, source)]
    diags = _lint_blif_doc(doc)
    if not any(d.severity.value == "error" for d in diags):
        diags.extend(_build_and_check(lambda: read_blif(text, source=source), source))
    return diags


def lint_verilog_text(text: str, source: str | None = None) -> list[Diagnostic]:
    try:
        doc = scan_verilog(text, source=source)
    except VerilogError as exc:
        return [_parse_failure(exc, source)]
    diags = _lint_verilog_doc(doc)
    if not any(d.severity.value == "error" for d in diags):
        diags.extend(_build_and_check(lambda: read_verilog(text, source=source), source))
    return diags


def lint_netlist(nl: Netlist, file: str | None = None) -> list[Diagnostic]:
    """Lint an in-memory netlist (generated or already parsed)."""
    inputs = [(name, nl.span("input", name)[1]) for name in nl.inputs]
    outputs = [(name, nl.span("output", name)[1]) for name in nl.outputs]
    drivers = [
        _Driver(g.output, nl.span("gate", g.output)[1], g.inputs) for g in nl.gates
    ]
    diags = _structural_checks(file, inputs, outputs, drivers)
    if not any(d.severity.value == "error" for d in diags):
        diags.extend(_constant_output_checks(nl, file))
    return diags


# -- parse failures -------------------------------------------------------------


def _parse_failure(exc: Exception, source: str | None) -> Diagnostic:
    line = getattr(exc, "line", None)
    return diag("N000", str(exc), file=source, line=line)


def _build_and_check(builder, source: str | None) -> list[Diagnostic]:
    """Run the full reader; residual errors become N000, successes N009."""
    try:
        nl = builder()
    except (PlaError, BlifError, VerilogError) as exc:
        return [_parse_failure(exc, source)]
    return _constant_output_checks(nl, source)


# -- the common structural model ------------------------------------------------


def _structural_checks(
    file: str | None,
    inputs: list[tuple[str, int | None]],
    outputs: list[tuple[str, int | None]],
    drivers: list[_Driver],
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []

    # N006: duplicate declarations.
    seen: dict[str, int | None] = {}
    for kind, decls in (("input", inputs), ("output", outputs)):
        kind_seen: set[str] = set()
        for name, line in decls:
            if name in kind_seen:
                diags.append(
                    diag(
                        "N006",
                        f"{kind} {name!r} is declared more than once",
                        file=file, line=line, obj=name,
                    )
                )
            kind_seen.add(name)
            seen.setdefault(name, line)

    # N003: multiple drivers, or a driver targeting a primary input.
    input_names = {name for name, _ in inputs}
    driven: dict[str, int | None] = {}
    for d in drivers:
        if d.name in input_names:
            diags.append(
                diag(
                    "N003",
                    f"net {d.name!r} is a primary input but is driven by a gate",
                    file=file, line=d.line, obj=d.name,
                )
            )
        elif d.name in driven:
            diags.append(
                diag(
                    "N003",
                    f"net {d.name!r} is driven more than once "
                    f"(first driver at line {driven[d.name]})",
                    file=file, line=d.line, obj=d.name,
                )
            )
        else:
            driven[d.name] = d.line
    known = input_names | set(driven)

    # N002: reads of nets nothing drives.
    reported_undriven: set[str] = set()
    for d in drivers:
        for dep in d.deps:
            if dep not in known and dep not in reported_undriven:
                reported_undriven.add(dep)
                diags.append(
                    diag(
                        "N002",
                        f"net {dep!r} is read by {d.name!r} but never driven",
                        file=file, line=d.line, obj=dep,
                    )
                )

    # N004: undriven primary outputs.
    for name, line in outputs:
        if name not in known:
            diags.append(
                diag(
                    "N004",
                    f"primary output {name!r} is never driven",
                    file=file, line=line, obj=name,
                )
            )

    # N001: cycles among drivers.
    diags.extend(_cycle_check(file, drivers))

    # Cone of influence for N005 / N010 (only meaningful with outputs,
    # and only once the netlist is otherwise structurally sound).
    if outputs and not diags:
        by_name = {d.name: d for d in drivers}
        cone: set[str] = set()
        stack = [name for name, _ in outputs]
        while stack:
            net = stack.pop()
            if net in cone:
                continue
            cone.add(net)
            d = by_name.get(net)
            if d is not None:
                stack.extend(d.deps)
        for name, line in inputs:
            if name not in cone:
                diags.append(
                    diag(
                        "N005",
                        f"primary input {name!r} is not used by any output",
                        file=file, line=line, obj=name,
                    )
                )
        for d in drivers:
            if d.name not in cone:
                diags.append(
                    diag(
                        "N010",
                        f"logic driving {d.name!r} feeds no primary output",
                        file=file, line=d.line, obj=d.name,
                    )
                )
    return diags


def _cycle_check(file: str | None, drivers: list[_Driver]) -> list[Diagnostic]:
    by_name: dict[str, _Driver] = {}
    for d in drivers:
        by_name.setdefault(d.name, d)
    state: dict[str, int] = {}  # 0 = visiting, 1 = done
    diags: list[Diagnostic] = []
    for root in by_name:
        if state.get(root) == 1:
            continue
        # Iterative DFS with an explicit path so the cycle can be named.
        path: list[str] = []
        stack: list[tuple[str, bool]] = [(root, False)]
        while stack:
            net, processed = stack.pop()
            if processed:
                state[net] = 1
                path.pop()
                continue
            if state.get(net) == 1:
                continue
            if state.get(net) == 0:
                cycle = path[path.index(net):] + [net]
                d = by_name[net]
                diags.append(
                    diag(
                        "N001",
                        "combinational cycle: " + " -> ".join(cycle),
                        file=file, line=d.line, obj=net,
                        cycle=cycle,
                    )
                )
                continue
            state[net] = 0
            path.append(net)
            stack.append((net, True))
            for dep in by_name.get(net, _Driver(net, None, ())).deps:
                if dep in by_name and state.get(dep) != 1:
                    stack.append((dep, False))
    return diags


# -- constant outputs (N009) ----------------------------------------------------


def _constant_output_checks(nl: Netlist, file: str | None) -> list[Diagnostic]:
    const = _fold_constants(nl)
    checked = dict(const)
    if len(nl.inputs) <= _EXHAUSTIVE_INPUT_LIMIT:
        checked.update(_exhaustive_constants(nl))
    diags = []
    for name in nl.outputs:
        if name in checked:
            value = checked[name]
            _, line = nl.span("output", name)
            diags.append(
                diag(
                    "N009",
                    f"primary output {name!r} is constant {int(value)}",
                    file=file, line=line, obj=name, value=value,
                )
            )
    return diags


def _fold_constants(nl: Netlist) -> dict[str, bool]:
    """Nets that are structurally constant, by folding through the DAG."""
    const: dict[str, bool] = {}
    for g in nl.topological_gates():
        vals = [const.get(i) for i in g.inputs]
        t = g.gate_type
        value: bool | None = None
        if t == "CONST0":
            value = False
        elif t == "CONST1":
            value = True
        elif t in ("AND", "NAND"):
            if any(v is False for v in vals):
                value = False
            elif all(v is True for v in vals):
                value = True
            if value is not None and t == "NAND":
                value = not value
        elif t in ("OR", "NOR"):
            if any(v is True for v in vals):
                value = True
            elif all(v is False for v in vals):
                value = False
            if value is not None and t == "NOR":
                value = not value
        elif t in ("XOR", "XNOR"):
            if all(v is not None for v in vals):
                acc = t == "XNOR"
                for v in vals:
                    acc ^= bool(v)
                value = acc
        elif t == "INV":
            if vals[0] is not None:
                value = not vals[0]
        elif t == "BUF":
            value = vals[0]
        elif t == "MUX":
            sel, a, b = vals
            if sel is True:
                value = a
            elif sel is False:
                value = b
            elif a is not None and a == b:
                value = a
        elif t == "MAJ":
            ones = sum(1 for v in vals if v is True)
            zeros = sum(1 for v in vals if v is False)
            if 2 * ones > len(vals):
                value = True
            elif 2 * zeros >= len(vals) + len(vals) % 2:
                value = False
        if value is not None:
            const[g.output] = value
    return const


def _exhaustive_constants(nl: Netlist) -> dict[str, bool]:
    """Outputs constant over all input assignments (small inputs only)."""
    candidates: dict[str, bool] = {}
    first = True
    for bits in itertools.product((False, True), repeat=len(nl.inputs)):
        env = dict(zip(nl.inputs, bits))
        out = nl.evaluate(env)
        if first:
            candidates = dict(out)
            first = False
        else:
            for name in list(candidates):
                if out[name] != candidates[name]:
                    del candidates[name]
            if not candidates:
                break
    return candidates


# -- PLA ------------------------------------------------------------------------


def _lint_pla_doc(doc: PlaDoc) -> list[Diagnostic]:
    file = doc.source
    in_names = doc.input_names()
    out_names = doc.output_names()
    inputs = [(n, doc.in_names_line) for n in in_names]
    outputs = [(n, doc.out_names_line) for n in out_names]

    # Cube arity / character problems make the cube list uninterpretable
    # for the cube-level rules; surface them as N000 and stop there.
    diags: list[Diagnostic] = []
    good_cubes = []
    for idx, cube in enumerate(doc.cubes):
        if len(cube.inputs) != doc.n_in or len(cube.outputs) != doc.n_out:
            diags.append(
                diag(
                    "N000",
                    f"cube {idx} has wrong arity: {cube.inputs} {cube.outputs}",
                    file=file, line=cube.line,
                )
            )
        elif not set(cube.inputs) <= set("01-") or not set(cube.outputs) <= set("014-~2"):
            diags.append(
                diag(
                    "N000",
                    f"cube {idx} has bad characters: {cube.inputs} {cube.outputs}",
                    file=file, line=cube.line,
                )
            )
        else:
            good_cubes.append(cube)

    # The two-level structure: every named output is one driver whose
    # fan-in is the set of inputs its cubes actually test.
    drivers = []
    for j, out in enumerate(out_names):
        deps = set()
        for cube in good_cubes:
            if cube.outputs[j] in ("1", "4"):
                deps.update(
                    in_names[i] for i, ch in enumerate(cube.inputs) if ch != "-"
                )
        drivers.append(_Driver(out, doc.out_names_line, tuple(sorted(deps))))
    diags.extend(_structural_checks(file, inputs, [], drivers))
    # Outputs are always driven in a PLA (empty on-set = constant 0), so
    # the output-side rules (N004) don't apply; N006 on outputs does.
    out_seen: set[str] = set()
    for name, line in outputs:
        if name in out_seen:
            diags.append(
                diag(
                    "N006",
                    f"output {name!r} is declared more than once",
                    file=file, line=line, obj=name,
                )
            )
        out_seen.add(name)

    diags.extend(_pla_cube_rules(doc, good_cubes, in_names, out_names))
    return diags


def _pla_cube_rules(
    doc: PlaDoc,
    cubes: list,
    in_names: list[str],
    out_names: list[str],
) -> list[Diagnostic]:
    file = doc.source
    diags: list[Diagnostic] = []

    def covers(a: str, b: str) -> bool:
        """Input part ``a`` covers ``b`` (every minterm of b is in a)."""
        return all(ca == "-" or ca == cb for ca, cb in zip(a, b))

    def intersects(a: str, b: str) -> bool:
        return all(ca == "-" or cb == "-" or ca == cb for ca, cb in zip(a, b))

    # N007: per-output containment.  A cube is redundant for output j if
    # another cube with a '1' there covers its input part.
    flagged: set[int] = set()
    for j, out in enumerate(out_names):
        on = [c for c in cubes if c.outputs[j] in ("1", "4")]
        for a in on:
            if a.line in flagged:
                continue
            for b in on:
                if a is b:
                    continue
                if covers(b.inputs, a.inputs) and not (
                    covers(a.inputs, b.inputs) and b.line > a.line
                ):
                    flagged.add(a.line)
                    diags.append(
                        diag(
                            "N007",
                            f"cube {a.inputs!r} for output {out!r} is covered by "
                            f"cube {b.inputs!r} at line {b.line}",
                            file=file, line=a.line, obj=out,
                        )
                    )
                    break

    # N008: in an fr-type PLA a '0' declares the off-set; an on-set cube
    # intersecting an off-set cube of the same output is a contradiction.
    if doc.kind == "fr":
        for j, out in enumerate(out_names):
            on = [c for c in cubes if c.outputs[j] in ("1", "4")]
            off = [c for c in cubes if c.outputs[j] == "0"]
            for a in on:
                for b in off:
                    if intersects(a.inputs, b.inputs):
                        diags.append(
                            diag(
                                "N008",
                                f"on-set cube {a.inputs!r} (line {a.line}) and "
                                f"off-set cube {b.inputs!r} (line {b.line}) for "
                                f"output {out!r} intersect",
                                file=file, line=a.line, obj=out,
                            )
                        )

    # N010: a cube that asserts no output at all is dead logic.  In a
    # cover with an ``r`` component (``fr``/``fdr``) a '0' declares
    # off-set membership, so only '-' outputs leave a cube inert there.
    asserting = {"1", "4"}
    if doc.kind is not None and "r" in doc.kind:
        asserting.add("0")
    for idx, cube in enumerate(cubes):
        if not any(ch in asserting for ch in cube.outputs):
            diags.append(
                diag(
                    "N010",
                    f"cube {cube.inputs!r} asserts no output",
                    file=file, line=cube.line,
                )
            )

    # N005: an input column that is '-' in every cube is unused.
    if cubes:
        for i, name in enumerate(in_names):
            if all(c.inputs[i] == "-" for c in cubes):
                diags.append(
                    diag(
                        "N005",
                        f"primary input {name!r} is not used by any cube",
                        file=file, line=doc.in_names_line, obj=name,
                    )
                )
    return diags


# -- BLIF -----------------------------------------------------------------------


def _lint_blif_doc(doc: BlifDoc) -> list[Diagnostic]:
    drivers = []
    diags: list[Diagnostic] = []
    for block in doc.blocks:
        if not block.signals:
            diags.append(
                diag(
                    "N000",
                    ".names block without signals",
                    file=doc.source, line=block.line,
                )
            )
            continue
        drivers.append(_Driver(block.output, block.line, block.sources))
    diags.extend(
        _structural_checks(doc.source, list(doc.inputs), list(doc.outputs), drivers)
    )
    return diags


# -- Verilog --------------------------------------------------------------------


def _lint_verilog_doc(doc: VerilogDoc) -> list[Diagnostic]:
    drivers = [_Driver(i.output, i.line, i.inputs) for i in doc.instances]
    return _structural_checks(
        doc.source, list(doc.inputs), list(doc.outputs), drivers
    )
