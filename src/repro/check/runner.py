"""The ``repro check`` driver: route inputs to the right analyzer.

Collects files from the given paths (directories are walked), then:

* ``.pla`` / ``.blif`` / ``.v`` / ``.sv`` / ``.verilog`` — netlist
  linter (:mod:`repro.check.netlist_lint`);
* ``.json`` — dispatched on the document's ``format`` marker to the
  design analyzer (:mod:`repro.check.design`) or the fault-map schema
  validator (:mod:`repro.check.schema`);
* with ``self_lint`` — the AST self-lint over the repro source tree
  (:mod:`repro.check.selflint`).

Files explicitly named with an unsupported suffix raise
:class:`UnknownInputError` (a CLI usage error, exit 2); unsupported
files inside a walked directory are silently skipped.
"""

from __future__ import annotations

import json
from pathlib import Path

from .design import check_design_file
from .diagnostics import Report, diag
from .netlist_lint import NETLIST_SUFFIXES, lint_file
from .schema import (
    DESIGN_FORMAT,
    DESIGN_FORMAT_3D,
    FAULTS_FORMAT,
    fault_map_schema_diagnostics,
)
from .selflint import default_source_root, selflint_paths

__all__ = ["run_check", "collect_inputs", "UnknownInputError"]

_CHECKABLE_SUFFIXES = set(NETLIST_SUFFIXES) | {".json"}


class UnknownInputError(ValueError):
    """An explicitly named input no analyzer understands (usage error)."""


def collect_inputs(paths) -> list[Path]:
    """Expand files/directories into the checkable file list."""
    files: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*"))
                if p.is_file() and p.suffix.lower() in _CHECKABLE_SUFFIXES
            )
        elif path.is_file():
            if path.suffix.lower() not in _CHECKABLE_SUFFIXES:
                raise UnknownInputError(
                    f"no analyzer for {path.name!r} (expected "
                    f"{'/'.join(sorted(_CHECKABLE_SUFFIXES))})"
                )
            files.append(path)
        else:
            raise UnknownInputError(f"no such file or directory: {path}")
    return files


def run_check(
    paths=(),
    *,
    self_lint: bool = False,
    src_root: str | Path | None = None,
) -> Report:
    """Run every applicable analyzer; returns the aggregate report."""
    report = Report(tool="repro check")
    for file in collect_inputs(paths):
        if file.suffix.lower() in NETLIST_SUFFIXES:
            report.extend(lint_file(file))
        else:
            report.extend(_check_json_file(file))
    if self_lint:
        root = Path(src_root) if src_root is not None else default_source_root()
        report.extend(selflint_paths([root]))
    return report


def _check_json_file(path: Path):
    file = str(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [diag("D001", f"not valid JSON: {exc}", file=file)]
    marker = payload.get("format") if isinstance(payload, dict) else None
    if marker == FAULTS_FORMAT:
        return fault_map_schema_diagnostics(payload, file=file)
    if marker in (DESIGN_FORMAT, DESIGN_FORMAT_3D):
        return check_design_file(path)
    return [
        diag(
            "D001",
            f"unrecognized document format {marker!r} (expected "
            f"{DESIGN_FORMAT!r}, {DESIGN_FORMAT_3D!r} or {FAULTS_FORMAT!r})",
            file=file,
        )
    ]
