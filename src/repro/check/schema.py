"""Schema validation for serialized crossbar designs and fault maps.

Operates on the *parsed JSON payload* (a plain dict) and reports every
problem it can find in one pass as ``D001`` diagnostics, instead of the
raise-on-first-problem style a loader needs.  ``repro check`` uses this
directly on ``.json`` inputs; :mod:`repro.crossbar.serialize` funnels
its loaders through it so a broken artifact lists all of its defects at
once.

This module deliberately imports nothing from :mod:`repro.crossbar` at
module level so the ``repro.check`` package stays importable in
stripped-down environments; the serializers import *us* lazily.
"""

from __future__ import annotations

from .diagnostics import Diagnostic, diag

__all__ = [
    "DESIGN_FORMAT",
    "FAULTS_FORMAT",
    "design_schema_diagnostics",
    "fault_map_schema_diagnostics",
]

DESIGN_FORMAT = "repro.crossbar/1"
FAULTS_FORMAT = "repro.faults/1"

_FAULT_KINDS = ("stuck_on", "stuck_off")


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def design_schema_diagnostics(payload, file: str | None = None) -> list[Diagnostic]:
    """Every schema problem in a ``repro.crossbar/1`` payload.

    The payload is the parsed JSON value; an empty result means
    :func:`repro.crossbar.serialize.design_from_json` will accept it.
    """
    def bad(message: str, obj: str | None = None) -> Diagnostic:
        return diag("D001", message, file=file, obj=obj)

    if not isinstance(payload, dict):
        return [bad(f"design document must be a JSON object, got {type(payload).__name__}")]
    diags: list[Diagnostic] = []
    if payload.get("format") != DESIGN_FORMAT:
        diags.append(
            bad(
                f"not a serialized crossbar design: format is "
                f"{payload.get('format')!r}, expected {DESIGN_FORMAT!r}"
            )
        )
    if not isinstance(payload.get("name"), str):
        diags.append(bad("field 'name' must be a string", obj="name"))

    rows, cols = payload.get("rows"), payload.get("cols")
    if not _is_int(rows) or rows < 1:
        diags.append(bad("field 'rows' must be a positive integer", obj="rows"))
        rows = None
    if not _is_int(cols) or cols < 0:
        diags.append(bad("field 'cols' must be a non-negative integer", obj="cols"))
        cols = None

    input_row = payload.get("input_row")
    if not _is_int(input_row):
        diags.append(bad("field 'input_row' must be an integer", obj="input_row"))
    elif rows is not None and not (0 <= input_row < rows):
        diags.append(
            bad(f"input_row {input_row} outside the {rows} wordlines", obj="input_row")
        )

    output_rows = payload.get("output_rows")
    if not isinstance(output_rows, dict):
        diags.append(bad("field 'output_rows' must be an object", obj="output_rows"))
        output_rows = {}
    for out, row in output_rows.items():
        if not _is_int(row):
            diags.append(bad(f"output {out!r} row must be an integer", obj=out))
        elif rows is not None and not (0 <= row < rows):
            diags.append(
                bad(f"output {out!r} row {row} outside the {rows} wordlines", obj=out)
            )

    constant_outputs = payload.get("constant_outputs", {})
    if not isinstance(constant_outputs, dict):
        diags.append(
            bad("field 'constant_outputs' must be an object", obj="constant_outputs")
        )
    else:
        for out, value in constant_outputs.items():
            if not isinstance(value, bool):
                diags.append(
                    bad(f"constant output {out!r} value must be a boolean", obj=out)
                )
            if isinstance(output_rows, dict) and out in output_rows:
                diags.append(
                    bad(f"output {out!r} is both sensed and constant", obj=out)
                )

    cells = payload.get("cells")
    if not isinstance(cells, list):
        diags.append(bad("field 'cells' must be an array", obj="cells"))
        cells = []
    seen_cells: dict[tuple[int, int], int] = {}
    for idx, cell in enumerate(cells):
        where = f"cells[{idx}]"
        if not isinstance(cell, dict):
            diags.append(bad(f"{where} must be an object", obj=where))
            continue
        r, c = cell.get("row"), cell.get("col")
        if not _is_int(r) or not _is_int(c):
            diags.append(bad(f"{where} needs integer 'row' and 'col'", obj=where))
            continue
        if rows is not None and cols is not None and not (0 <= r < rows and 0 <= c < cols):
            diags.append(
                bad(f"{where} at ({r}, {c}) outside the {rows}x{cols} array", obj=where)
            )
        if (r, c) in seen_cells:
            diags.append(
                bad(
                    f"{where} re-programs cell ({r}, {c}) "
                    f"(first at cells[{seen_cells[(r, c)]}])",
                    obj=where,
                )
            )
        else:
            seen_cells[(r, c)] = idx
        var = cell.get("var")
        if var is not None and not isinstance(var, str):
            diags.append(bad(f"{where} 'var' must be a string or null", obj=where))
        if not isinstance(cell.get("positive"), bool):
            diags.append(bad(f"{where} 'positive' must be a boolean", obj=where))

    for field, limit in (("row_labels", rows), ("col_labels", cols)):
        labels = payload.get(field, {})
        if not isinstance(labels, dict):
            diags.append(bad(f"field {field!r} must be an object", obj=field))
            continue
        for key in labels:
            try:
                index = int(key)
            except (TypeError, ValueError):
                diags.append(
                    bad(f"{field} key {key!r} is not an integer line index", obj=field)
                )
                continue
            if limit is not None and not (0 <= index < limit):
                diags.append(
                    bad(f"{field} key {index} outside the {limit} lines", obj=field)
                )
    return diags


def fault_map_schema_diagnostics(payload, file: str | None = None) -> list[Diagnostic]:
    """Every schema problem in a ``repro.faults/1`` payload."""
    def bad(message: str, obj: str | None = None) -> Diagnostic:
        return diag("D001", message, file=file, obj=obj)

    if not isinstance(payload, dict):
        return [bad(f"fault map document must be a JSON object, got {type(payload).__name__}")]
    diags: list[Diagnostic] = []
    if payload.get("format") != FAULTS_FORMAT:
        diags.append(
            bad(
                f"not a serialized fault map: format is "
                f"{payload.get('format')!r}, expected {FAULTS_FORMAT!r}"
            )
        )
    rows, cols = payload.get("rows"), payload.get("cols")
    if not _is_int(rows) or rows < 1:
        diags.append(bad("field 'rows' must be a positive integer", obj="rows"))
        rows = None
    if not _is_int(cols) or cols < 1:
        diags.append(bad("field 'cols' must be a positive integer", obj="cols"))
        cols = None

    faults = payload.get("faults")
    if not isinstance(faults, list):
        diags.append(bad("field 'faults' must be an array", obj="faults"))
        faults = []
    seen: dict[tuple[int, int], str] = {}
    for idx, fault in enumerate(faults):
        where = f"faults[{idx}]"
        if not isinstance(fault, dict):
            diags.append(bad(f"{where} must be an object", obj=where))
            continue
        r, c, kind = fault.get("row"), fault.get("col"), fault.get("kind")
        if not _is_int(r) or not _is_int(c):
            diags.append(bad(f"{where} needs integer 'row' and 'col'", obj=where))
            continue
        if kind not in _FAULT_KINDS:
            diags.append(
                bad(f"{where} has unknown fault kind {kind!r}", obj=where)
            )
        if rows is not None and cols is not None and not (0 <= r < rows and 0 <= c < cols):
            diags.append(
                bad(f"{where} at ({r}, {c}) outside the {rows}x{cols} array", obj=where)
            )
        prev = seen.get((r, c))
        if prev is not None and prev != kind:
            diags.append(
                bad(f"{where} conflicts with earlier fault at ({r}, {c})", obj=where)
            )
        seen.setdefault((r, c), kind if isinstance(kind, str) else "")
    return diags
