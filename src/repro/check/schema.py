"""Schema validation for serialized crossbar designs and fault maps.

Operates on the *parsed JSON payload* (a plain dict) and reports every
problem it can find in one pass as ``D001`` diagnostics, instead of the
raise-on-first-problem style a loader needs.  ``repro check`` uses this
directly on ``.json`` inputs; :mod:`repro.crossbar.serialize` funnels
its loaders through it so a broken artifact lists all of its defects at
once.

This module deliberately imports nothing from :mod:`repro.crossbar` at
module level so the ``repro.check`` package stays importable in
stripped-down environments; the serializers import *us* lazily.
"""

from __future__ import annotations

from .diagnostics import Diagnostic, diag

__all__ = [
    "DESIGN_FORMAT",
    "DESIGN_FORMAT_3D",
    "FAULTS_FORMAT",
    "design_schema_diagnostics",
    "fault_map_schema_diagnostics",
]

DESIGN_FORMAT = "repro.crossbar/1"
DESIGN_FORMAT_3D = "repro.crossbar/2"
FAULTS_FORMAT = "repro.faults/1"

_FAULT_KINDS = ("stuck_on", "stuck_off")


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def design_schema_diagnostics(payload, file: str | None = None) -> list[Diagnostic]:
    """Every schema problem in a serialized crossbar design payload.

    Dispatches on the format marker: ``repro.crossbar/1`` is the planar
    schema, ``repro.crossbar/2`` the layered one.  The payload is the
    parsed JSON value; an empty result means
    :func:`repro.crossbar.serialize.design_from_json` will accept it.
    """
    def bad(message: str, obj: str | None = None) -> Diagnostic:
        return diag("D001", message, file=file, obj=obj)

    if not isinstance(payload, dict):
        return [bad(f"design document must be a JSON object, got {type(payload).__name__}")]
    if payload.get("format") == DESIGN_FORMAT_3D:
        return _design_3d_schema_diagnostics(payload, file)
    diags: list[Diagnostic] = []
    if payload.get("format") != DESIGN_FORMAT:
        diags.append(
            bad(
                f"not a serialized crossbar design: format is "
                f"{payload.get('format')!r}, expected {DESIGN_FORMAT!r} "
                f"or {DESIGN_FORMAT_3D!r}"
            )
        )
    if not isinstance(payload.get("name"), str):
        diags.append(bad("field 'name' must be a string", obj="name"))

    rows, cols = payload.get("rows"), payload.get("cols")
    if not _is_int(rows) or rows < 1:
        diags.append(bad("field 'rows' must be a positive integer", obj="rows"))
        rows = None
    if not _is_int(cols) or cols < 0:
        diags.append(bad("field 'cols' must be a non-negative integer", obj="cols"))
        cols = None

    input_row = payload.get("input_row")
    if not _is_int(input_row):
        diags.append(bad("field 'input_row' must be an integer", obj="input_row"))
    elif rows is not None and not (0 <= input_row < rows):
        diags.append(
            bad(f"input_row {input_row} outside the {rows} wordlines", obj="input_row")
        )

    output_rows = payload.get("output_rows")
    if not isinstance(output_rows, dict):
        diags.append(bad("field 'output_rows' must be an object", obj="output_rows"))
        output_rows = {}
    for out, row in output_rows.items():
        if not _is_int(row):
            diags.append(bad(f"output {out!r} row must be an integer", obj=out))
        elif rows is not None and not (0 <= row < rows):
            diags.append(
                bad(f"output {out!r} row {row} outside the {rows} wordlines", obj=out)
            )

    constant_outputs = payload.get("constant_outputs", {})
    if not isinstance(constant_outputs, dict):
        diags.append(
            bad("field 'constant_outputs' must be an object", obj="constant_outputs")
        )
    else:
        for out, value in constant_outputs.items():
            if not isinstance(value, bool):
                diags.append(
                    bad(f"constant output {out!r} value must be a boolean", obj=out)
                )
            if isinstance(output_rows, dict) and out in output_rows:
                diags.append(
                    bad(f"output {out!r} is both sensed and constant", obj=out)
                )

    cells = payload.get("cells")
    if not isinstance(cells, list):
        diags.append(bad("field 'cells' must be an array", obj="cells"))
        cells = []
    seen_cells: dict[tuple[int, int], int] = {}
    for idx, cell in enumerate(cells):
        where = f"cells[{idx}]"
        if not isinstance(cell, dict):
            diags.append(bad(f"{where} must be an object", obj=where))
            continue
        r, c = cell.get("row"), cell.get("col")
        if not _is_int(r) or not _is_int(c):
            diags.append(bad(f"{where} needs integer 'row' and 'col'", obj=where))
            continue
        if rows is not None and cols is not None and not (0 <= r < rows and 0 <= c < cols):
            diags.append(
                bad(f"{where} at ({r}, {c}) outside the {rows}x{cols} array", obj=where)
            )
        if (r, c) in seen_cells:
            diags.append(
                bad(
                    f"{where} re-programs cell ({r}, {c}) "
                    f"(first at cells[{seen_cells[(r, c)]}])",
                    obj=where,
                )
            )
        else:
            seen_cells[(r, c)] = idx
        var = cell.get("var")
        if var is not None and not isinstance(var, str):
            diags.append(bad(f"{where} 'var' must be a string or null", obj=where))
        if not isinstance(cell.get("positive"), bool):
            diags.append(bad(f"{where} 'positive' must be a boolean", obj=where))

    for field, limit in (("row_labels", rows), ("col_labels", cols)):
        labels = payload.get(field, {})
        if not isinstance(labels, dict):
            diags.append(bad(f"field {field!r} must be an object", obj=field))
            continue
        for key in labels:
            try:
                index = int(key)
            except (TypeError, ValueError):
                diags.append(
                    bad(f"{field} key {key!r} is not an integer line index", obj=field)
                )
                continue
            if limit is not None and not (0 <= index < limit):
                diags.append(
                    bad(f"{field} key {index} outside the {limit} lines", obj=field)
                )
    return diags


def _design_3d_schema_diagnostics(payload: dict, file: str | None) -> list[Diagnostic]:
    """Every schema problem in a ``repro.crossbar/2`` (layered) payload.

    Reports every 3D-shape problem in one pass: a bad layer count, wire
    planes that disagree with it, the declared footprint disagreeing
    with the plane sizes, cells outside their layer's planes, ports off
    the bottom plane.
    """
    def bad(message: str, obj: str | None = None) -> Diagnostic:
        return diag("D001", message, file=file, obj=obj)

    diags: list[Diagnostic] = []
    if not isinstance(payload.get("name"), str):
        diags.append(bad("field 'name' must be a string", obj="name"))

    layers = payload.get("layers")
    if not _is_int(layers) or layers < 1:
        diags.append(
            bad("field 'layers' must be an integer >= 1 (memristor layer count)", obj="layers")
        )
        layers = None

    plane_sizes = payload.get("plane_sizes")
    if not isinstance(plane_sizes, list) or not all(_is_int(s) for s in plane_sizes):
        diags.append(
            bad("field 'plane_sizes' must be an array of integers", obj="plane_sizes")
        )
        plane_sizes = None
    else:
        if any(s < 0 for s in plane_sizes):
            diags.append(bad("plane sizes must be non-negative", obj="plane_sizes"))
            plane_sizes = None
        elif layers is not None and len(plane_sizes) != layers + 1:
            diags.append(
                bad(
                    f"{layers} memristor layers need {layers + 1} nanowire planes, "
                    f"got {len(plane_sizes)} plane sizes",
                    obj="plane_sizes",
                )
            )
            plane_sizes = None
        elif plane_sizes[0] < 1:
            diags.append(
                bad("plane 0 needs at least one wordline (the ports live there)", obj="plane_sizes")
            )
            plane_sizes = None

    rows, cols = payload.get("rows"), payload.get("cols")
    if plane_sizes is not None:
        want_rows = max(plane_sizes[0::2])
        want_cols = max(plane_sizes[1::2], default=0)
        if "rows" in payload and rows != want_rows:
            diags.append(
                bad(
                    f"field 'rows' is {rows!r} but the widest horizontal plane "
                    f"has {want_rows} wires",
                    obj="rows",
                )
            )
        if "cols" in payload and cols != want_cols:
            diags.append(
                bad(
                    f"field 'cols' is {cols!r} but the widest vertical plane "
                    f"has {want_cols} wires",
                    obj="cols",
                )
            )

    plane0 = plane_sizes[0] if plane_sizes is not None else None
    input_row = payload.get("input_row")
    if not _is_int(input_row):
        diags.append(bad("field 'input_row' must be an integer", obj="input_row"))
    elif plane0 is not None and not (0 <= input_row < plane0):
        diags.append(
            bad(
                f"input_row {input_row} outside plane 0 ({plane0} wordlines)",
                obj="input_row",
            )
        )

    output_rows = payload.get("output_rows")
    if not isinstance(output_rows, dict):
        diags.append(bad("field 'output_rows' must be an object", obj="output_rows"))
        output_rows = {}
    for out, row in output_rows.items():
        if not _is_int(row):
            diags.append(bad(f"output {out!r} row must be an integer", obj=out))
        elif plane0 is not None and not (0 <= row < plane0):
            diags.append(
                bad(
                    f"output {out!r} row {row} outside plane 0 ({plane0} wordlines)",
                    obj=out,
                )
            )

    constant_outputs = payload.get("constant_outputs", {})
    if not isinstance(constant_outputs, dict):
        diags.append(
            bad("field 'constant_outputs' must be an object", obj="constant_outputs")
        )
    else:
        for out, value in constant_outputs.items():
            if not isinstance(value, bool):
                diags.append(
                    bad(f"constant output {out!r} value must be a boolean", obj=out)
                )
            if isinstance(output_rows, dict) and out in output_rows:
                diags.append(
                    bad(f"output {out!r} is both sensed and constant", obj=out)
                )

    cells = payload.get("cells")
    if not isinstance(cells, list):
        diags.append(bad("field 'cells' must be an array", obj="cells"))
        cells = []
    seen_cells: dict[tuple[int, int, int], int] = {}
    for idx, cell in enumerate(cells):
        where = f"cells[{idx}]"
        if not isinstance(cell, dict):
            diags.append(bad(f"{where} must be an object", obj=where))
            continue
        l, r, c = cell.get("layer"), cell.get("row"), cell.get("col")
        if not _is_int(l) or not _is_int(r) or not _is_int(c):
            diags.append(
                bad(f"{where} needs integer 'layer', 'row' and 'col'", obj=where)
            )
            continue
        if layers is not None and not (0 <= l < layers):
            diags.append(
                bad(f"{where} layer {l} outside the {layers} memristor layers", obj=where)
            )
        elif plane_sizes is not None and 0 <= l < len(plane_sizes) - 1:
            h = l if l % 2 == 0 else l + 1
            v = l + 1 if l % 2 == 0 else l
            if not (0 <= r < plane_sizes[h] and 0 <= c < plane_sizes[v]):
                diags.append(
                    bad(
                        f"{where} at layer {l} ({r}, {c}) outside its "
                        f"{plane_sizes[h]}x{plane_sizes[v]} wire planes",
                        obj=where,
                    )
                )
        if (l, r, c) in seen_cells:
            diags.append(
                bad(
                    f"{where} re-programs cell ({l}, {r}, {c}) "
                    f"(first at cells[{seen_cells[(l, r, c)]}])",
                    obj=where,
                )
            )
        else:
            seen_cells[(l, r, c)] = idx
        var = cell.get("var")
        if var is not None and not isinstance(var, str):
            diags.append(bad(f"{where} 'var' must be a string or null", obj=where))
        if not isinstance(cell.get("positive"), bool):
            diags.append(bad(f"{where} 'positive' must be a boolean", obj=where))

    plane_labels = payload.get("plane_labels", [])
    if not isinstance(plane_labels, list) or not all(
        isinstance(p, dict) for p in plane_labels
    ):
        diags.append(
            bad("field 'plane_labels' must be an array of objects", obj="plane_labels")
        )
    else:
        if plane_sizes is not None and len(plane_labels) > len(plane_sizes):
            diags.append(
                bad(
                    f"{len(plane_labels)} plane_labels entries for "
                    f"{len(plane_sizes)} planes",
                    obj="plane_labels",
                )
            )
        for plane, labels in enumerate(plane_labels):
            limit = (
                plane_sizes[plane]
                if plane_sizes is not None and plane < len(plane_sizes)
                else None
            )
            for key in labels:
                try:
                    index = int(key)
                except (TypeError, ValueError):
                    diags.append(
                        bad(
                            f"plane_labels[{plane}] key {key!r} is not an integer "
                            "wire index",
                            obj="plane_labels",
                        )
                    )
                    continue
                if limit is not None and not (0 <= index < limit):
                    diags.append(
                        bad(
                            f"plane_labels[{plane}] key {index} outside the "
                            f"{limit} wires",
                            obj="plane_labels",
                        )
                    )

    meta = payload.get("meta", {})
    if not isinstance(meta, dict):
        diags.append(bad("field 'meta' must be an object", obj="meta"))
    else:
        for key, value in meta.items():
            if not isinstance(key, str):
                diags.append(bad(f"meta key {key!r} must be a string", obj="meta"))
            elif not isinstance(value, (int, float, str, bool)) and value is not None:
                diags.append(
                    bad(
                        f"meta[{key!r}] must be a scalar (got "
                        f"{type(value).__name__})",
                        obj="meta",
                    )
                )
    return diags


def fault_map_schema_diagnostics(payload, file: str | None = None) -> list[Diagnostic]:
    """Every schema problem in a ``repro.faults/1`` payload."""
    def bad(message: str, obj: str | None = None) -> Diagnostic:
        return diag("D001", message, file=file, obj=obj)

    if not isinstance(payload, dict):
        return [bad(f"fault map document must be a JSON object, got {type(payload).__name__}")]
    diags: list[Diagnostic] = []
    if payload.get("format") != FAULTS_FORMAT:
        diags.append(
            bad(
                f"not a serialized fault map: format is "
                f"{payload.get('format')!r}, expected {FAULTS_FORMAT!r}"
            )
        )
    rows, cols = payload.get("rows"), payload.get("cols")
    if not _is_int(rows) or rows < 1:
        diags.append(bad("field 'rows' must be a positive integer", obj="rows"))
        rows = None
    if not _is_int(cols) or cols < 1:
        diags.append(bad("field 'cols' must be a positive integer", obj="cols"))
        cols = None
    layers = payload.get("layers", 1)
    if not _is_int(layers) or layers < 1:
        diags.append(
            bad("field 'layers' must be an integer >= 1 (memristor layer count)", obj="layers")
        )
        layers = None

    faults = payload.get("faults")
    if not isinstance(faults, list):
        diags.append(bad("field 'faults' must be an array", obj="faults"))
        faults = []
    seen: dict[tuple[int, int, int], str] = {}
    for idx, fault in enumerate(faults):
        where = f"faults[{idx}]"
        if not isinstance(fault, dict):
            diags.append(bad(f"{where} must be an object", obj=where))
            continue
        r, c, kind = fault.get("row"), fault.get("col"), fault.get("kind")
        if not _is_int(r) or not _is_int(c):
            diags.append(bad(f"{where} needs integer 'row' and 'col'", obj=where))
            continue
        layer = fault.get("layer", 0)
        if not _is_int(layer) or layer < 0:
            diags.append(
                bad(f"{where} 'layer' must be a non-negative integer", obj=where)
            )
            continue
        if kind not in _FAULT_KINDS:
            diags.append(
                bad(f"{where} has unknown fault kind {kind!r}", obj=where)
            )
        if layers is not None and layer >= layers:
            diags.append(
                bad(
                    f"{where} at layer {layer} outside the {layers}-layer array",
                    obj=where,
                )
            )
        if rows is not None and cols is not None and not (0 <= r < rows and 0 <= c < cols):
            diags.append(
                bad(f"{where} at ({r}, {c}) outside the {rows}x{cols} array", obj=where)
            )
        prev = seen.get((layer, r, c))
        if prev is not None and prev != kind:
            diags.append(
                bad(f"{where} conflicts with earlier fault at ({r}, {c})", obj=where)
            )
        seen.setdefault((layer, r, c), kind if isinstance(kind, str) else "")
    return diags
