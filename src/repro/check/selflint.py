"""Self-lint: AST rules the repro codebase holds itself to.

Five rules, chosen because each class of defect has bitten flow-style
services before and none is caught by the test suite directly:

======  ==============================================================
C001    a lock/semaphore ``.acquire()`` call outside a ``with`` —
        an exception between acquire and release deadlocks the service
C002    a bare ``except:`` — swallows ``KeyboardInterrupt`` and
        ``SystemExit`` along with everything else
C003    an OS/socket/subprocess error caught and silently dropped
        (handler body is only ``pass``/``...``/``continue``)
C004    an explicit exit code outside the CLI's 0/1/2 contract
C005    a ``time.time()`` call — wall-clock jumps under NTP slew, so
        durations (retry/campaign/perf timing) must use
        ``time.monotonic()`` or ``time.perf_counter()``; true
        wall-clock sites annotate ``check: allow C005``
======  ==============================================================

A finding on a line whose source contains ``check: allow CXXX`` is
suppressed — the annotation marks the (rare) sites where swallowing is
the intended behaviour, e.g. best-effort cache cleanup.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .diagnostics import Diagnostic, diag

__all__ = ["selflint_file", "selflint_paths", "default_source_root"]

#: Exception names whose silent swallowing is an I/O bug (C003).
_IO_EXCEPTIONS = {
    "OSError",
    "IOError",
    "EnvironmentError",
    "FileNotFoundError",
    "PermissionError",
    "TimeoutError",
    "ConnectionError",
    "ConnectionResetError",
    "ConnectionRefusedError",
    "BrokenPipeError",
    "InterruptedError",
    "Exception",
    "BaseException",
    "error",  # socket.error
    "timeout",  # socket.timeout
    "SubprocessError",
    "CalledProcessError",
    "TimeoutExpired",
}

_ALLOWED_EXIT_CODES = (0, 1, 2)


def default_source_root() -> Path:
    """The package's own source tree (what ``make check`` self-lints)."""
    return Path(__file__).resolve().parent.parent


def selflint_paths(paths) -> list[Diagnostic]:
    """Lint every ``.py`` file under the given files/directories."""
    diags: list[Diagnostic] = []
    for path in paths:
        path = Path(path)
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            diags.extend(selflint_file(file))
    return diags


def selflint_file(path: str | Path) -> list[Diagnostic]:
    path = Path(path)
    text = path.read_text()
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return [diag("N000", f"does not parse: {exc.msg}", file=str(path), line=exc.lineno)]
    lines = text.splitlines()
    checker = _Checker(str(path))
    checker.visit(tree)
    return [d for d in checker.diags if not _suppressed(d, lines)]


def _suppressed(d: Diagnostic, lines: list[str]) -> bool:
    if d.span.line is None or not (1 <= d.span.line <= len(lines)):
        return False
    return f"check: allow {d.code}" in lines[d.span.line - 1]


class _Checker(ast.NodeVisitor):
    def __init__(self, file: str):
        self.file = file
        self.diags: list[Diagnostic] = []
        self._with_items: list[ast.expr] = []

    # -- C001 -------------------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        self._with_items.extend(item.context_expr for item in node.items)
        self.generic_visit(node)
        del self._with_items[-len(node.items):]

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "acquire"
            and not any(expr is node for expr in self._with_items)
        ):
            self.diags.append(
                diag(
                    "C001",
                    "lock acquired imperatively; use 'with' so errors release it",
                    file=self.file, line=node.lineno,
                )
            )
        self._check_exit_call(node)
        self._check_wall_clock_call(node)
        self.generic_visit(node)

    # -- C005 -------------------------------------------------------------------
    def _check_wall_clock_call(self, node: ast.Call) -> None:
        func = node.func
        is_wall_clock = (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        )
        if is_wall_clock:
            self.diags.append(
                diag(
                    "C005",
                    "time.time() is wall clock; use time.monotonic() for "
                    "durations, or annotate 'check: allow C005' if wall-clock "
                    "time is intended",
                    file=self.file, line=node.lineno,
                )
            )

    # -- C002 / C003 ------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.diags.append(
                diag(
                    "C002",
                    "bare 'except:' also catches KeyboardInterrupt and SystemExit",
                    file=self.file, line=node.lineno,
                )
            )
        elif self._swallows(node) and self._catches_io(node.type):
            self.diags.append(
                diag(
                    "C003",
                    f"{ast.unparse(node.type)} caught and silently dropped; "
                    "log it or annotate 'check: allow C003'",
                    file=self.file, line=node.lineno,
                )
            )
        self.generic_visit(node)

    @staticmethod
    def _swallows(node: ast.ExceptHandler) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Pass) or isinstance(stmt, ast.Continue):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or `...`
            return False
        return True

    @classmethod
    def _catches_io(cls, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Tuple):
            return any(cls._catches_io(e) for e in expr.elts)
        name = None
        if isinstance(expr, ast.Name):
            name = expr.id
        elif isinstance(expr, ast.Attribute):
            name = expr.attr
        return name in _IO_EXCEPTIONS

    # -- C004 -------------------------------------------------------------------
    def _check_exit_call(self, node: ast.Call) -> None:
        func = node.func
        is_exit = (
            isinstance(func, ast.Attribute)
            and func.attr in ("exit", "_exit")
            and isinstance(func.value, ast.Name)
            and func.value.id in ("sys", "os")
        ) or (isinstance(func, ast.Name) and func.id == "exit")
        if not is_exit:
            return
        self._check_exit_code(node.args[0] if node.args else None, node.lineno)

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if (
            isinstance(exc, ast.Call)
            and isinstance(exc.func, ast.Name)
            and exc.func.id == "SystemExit"
        ):
            self._check_exit_code(exc.args[0] if exc.args else None, node.lineno)
        self.generic_visit(node)

    def _check_exit_code(self, arg: ast.expr | None, lineno: int) -> None:
        # Only constant integers are decidable statically; strings exit
        # with code 1 by definition and variables are out of scope.
        if (
            isinstance(arg, ast.Constant)
            and isinstance(arg.value, int)
            and not isinstance(arg.value, bool)
            and arg.value not in _ALLOWED_EXIT_CODES
        ):
            self.diags.append(
                diag(
                    "C004",
                    f"exit code {arg.value} is outside the 0 (clean) / "
                    "1 (findings) / 2 (usage) contract",
                    file=self.file, line=lineno,
                )
            )
