"""Coding/decoding benchmark circuits.

The ISCAS85 circuits c499/c1355 are single-error-correcting (SEC) code
circuits; this module provides genuine ECC and code-converter netlists
in the same family:

* Hamming(7,4) encoder and decoder (with single-error correction),
* binary <-> Gray code converters,
* BCD to seven-segment decoder.

All generators come with exact semantics that the tests verify
end-to-end (encode -> corrupt one bit -> decode recovers the data).
"""

from __future__ import annotations

from .netlist import Netlist

__all__ = [
    "hamming74_encoder",
    "hamming74_decoder",
    "binary_to_gray",
    "gray_to_binary",
    "bcd_to_7seg",
]


def hamming74_encoder(name: str | None = None) -> Netlist:
    """Hamming(7,4) encoder: data d0..d3 -> codeword c0..c6.

    Codeword layout (1-indexed positions): p1 p2 d1 p3 d2 d3 d4 with
    even parity; here c0..c6 map to positions 1..7 and d0..d3 to
    d1..d4.
    """
    nl = Netlist(name or "hamming74_enc", inputs=[f"d{i}" for i in range(4)],
                 outputs=[f"c{i}" for i in range(7)])
    # Positions: c0=p1, c1=p2, c2=d0, c3=p3, c4=d1, c5=d2, c6=d3.
    nl.add_gate("c2", "BUF", ["d0"])
    nl.add_gate("c4", "BUF", ["d1"])
    nl.add_gate("c5", "BUF", ["d2"])
    nl.add_gate("c6", "BUF", ["d3"])
    nl.add_gate("c0", "XOR", ["d0", "d1", "d3"])  # p1 covers 3,5,7
    nl.add_gate("c1", "XOR", ["d0", "d2", "d3"])  # p2 covers 3,6,7
    nl.add_gate("c3", "XOR", ["d1", "d2", "d3"])  # p3 covers 5,6,7
    nl.check()
    return nl


def hamming74_decoder(name: str | None = None) -> Netlist:
    """Hamming(7,4) decoder with single-error correction.

    Inputs c0..c6 (possibly with one flipped bit); outputs the corrected
    data bits q0..q3 plus the three syndrome bits s0..s2.
    """
    ins = [f"c{i}" for i in range(7)]
    outs = [f"q{i}" for i in range(4)] + [f"s{i}" for i in range(3)]
    nl = Netlist(name or "hamming74_dec", inputs=ins, outputs=outs)
    # Syndrome: s0 checks positions 1,3,5,7 -> c0,c2,c4,c6 etc.
    nl.add_gate("s0", "XOR", ["c0", "c2", "c4", "c6"])
    nl.add_gate("s1", "XOR", ["c1", "c2", "c5", "c6"])
    nl.add_gate("s2", "XOR", ["c3", "c4", "c5", "c6"])
    # Error position = s2 s1 s0 (binary, 1-indexed); flip that bit.
    inv = {}
    for j, s in enumerate(["s0", "s1", "s2"]):
        inv[s] = nl.add_gate(f"n{s}", "INV", [s])
    # err_k high when syndrome == k (k = 1..7).
    for k in range(1, 8):
        lits = []
        for j, s in enumerate(["s0", "s1", "s2"]):
            lits.append(s if (k >> j) & 1 else inv[s])
        nl.add_gate(f"err{k}", "AND", lits)
    # Data positions: d0@3, d1@5, d2@6, d3@7.
    for q, pos, c in (("q0", 3, "c2"), ("q1", 5, "c4"), ("q2", 6, "c5"), ("q3", 7, "c6")):
        nl.add_gate(q, "XOR", [c, f"err{pos}"])
    nl.check()
    return nl


def binary_to_gray(n: int, name: str | None = None) -> Netlist:
    """``n``-bit binary to Gray code: g_i = b_i ^ b_{i+1}."""
    if n < 1:
        raise ValueError("need n >= 1")
    ins = [f"b{i}" for i in range(n)]
    outs = [f"g{i}" for i in range(n)]
    nl = Netlist(name or f"bin2gray{n}", inputs=ins, outputs=outs)
    for i in range(n - 1):
        nl.add_gate(f"g{i}", "XOR", [f"b{i}", f"b{i + 1}"])
    nl.add_gate(f"g{n - 1}", "BUF", [f"b{n - 1}"])
    nl.check()
    return nl


def gray_to_binary(n: int, name: str | None = None) -> Netlist:
    """``n``-bit Gray to binary: b_i = g_i ^ g_{i+1} ^ ... ^ g_{n-1}."""
    if n < 1:
        raise ValueError("need n >= 1")
    ins = [f"g{i}" for i in range(n)]
    outs = [f"b{i}" for i in range(n)]
    nl = Netlist(name or f"gray2bin{n}", inputs=ins, outputs=outs)
    nl.add_gate(f"b{n - 1}", "BUF", [f"g{n - 1}"])
    prev = f"g{n - 1}"
    for i in range(n - 2, -1, -1):
        prev = nl.add_gate(f"x{i}", "XOR", [f"g{i}", prev])
        nl.add_gate(f"b{i}", "BUF", [prev])
    nl.check()
    return nl


#: Segment patterns for digits 0-9 (a..g, 1 = lit), then don't-care-free
#: blank for 10-15.
_SEGMENTS = {
    0: "1111110", 1: "0110000", 2: "1101101", 3: "1111001", 4: "0110011",
    5: "1011011", 6: "1011111", 7: "1110000", 8: "1111111", 9: "1111011",
}


def bcd_to_7seg(name: str | None = None) -> Netlist:
    """BCD (4-bit) to seven-segment decoder; digits > 9 blank the display."""
    ins = [f"b{i}" for i in range(4)]
    outs = [f"seg_{s}" for s in "abcdefg"]
    nl = Netlist(name or "bcd7seg", inputs=ins, outputs=outs)
    inv = [nl.add_gate(f"nb{i}", "INV", [f"b{i}"]) for i in range(4)]
    digit = []
    for value in range(10):
        lits = [ins[i] if (value >> i) & 1 else inv[i] for i in range(4)]
        digit.append(nl.add_gate(f"is{value}", "AND", lits))
    for si, seg in enumerate("abcdefg"):
        terms = [digit[v] for v in range(10) if _SEGMENTS[v][si] == "1"]
        nl.add_gate(f"seg_{seg}", "OR", terms)
    nl.check()
    return nl
