"""Formal combinational equivalence checking.

BDD-based CEC: compile both netlists into one shared manager (canonical
form) and compare root ids.  Returns a counterexample assignment when
the circuits differ — the library's internal oracle for the optimizer,
the I/O round-trips and the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from .netlist import Netlist

__all__ = ["EquivalenceResult", "check_equivalence"]


@dataclass
class EquivalenceResult:
    """Outcome of a combinational equivalence check."""

    equivalent: bool
    #: Output where the first difference was found (None when equivalent).
    failing_output: str | None = None
    #: A distinguishing input assignment (None when equivalent).
    counterexample: dict[str, bool] | None = None

    def __bool__(self) -> bool:
        return self.equivalent


def check_equivalence(
    a: Netlist,
    b: Netlist,
    output_map: dict[str, str] | None = None,
) -> EquivalenceResult:
    """Prove ``a`` and ``b`` compute the same functions, or refute.

    The circuits must share primary input names.  ``output_map`` maps
    outputs of ``a`` to outputs of ``b`` (defaults to identical names).
    Complete: always returns a definite answer (BDDs are canonical).
    """
    if set(a.inputs) != set(b.inputs):
        raise ValueError(
            f"input sets differ: {sorted(set(a.inputs) ^ set(b.inputs))}"
        )
    mapping = output_map or {out: out for out in a.outputs}
    for out_a, out_b in mapping.items():
        if out_a not in a.outputs:
            raise ValueError(f"{out_a!r} is not an output of {a.name}")
        if out_b not in b.outputs:
            raise ValueError(f"{out_b!r} is not an output of {b.name}")

    # Imported lazily: repro.bdd itself depends on repro.circuits.
    from ..bdd import BDD, build_sbdd
    from ..bdd.ordering import static_order

    manager = BDD(static_order(a))
    sbdd_a = build_sbdd(a, manager=manager)
    sbdd_b = build_sbdd(b, manager=manager)

    for out_a, out_b in mapping.items():
        fa, fb = sbdd_a.roots[out_a], sbdd_b.roots[out_b]
        if fa == fb:
            continue
        # Differ: xor is satisfiable; extract a witness.
        diff = manager.apply_xor(fa, fb)
        witness = manager.pick_sat(diff)
        assert witness is not None
        full = {name: False for name in a.inputs}
        full.update(witness)
        return EquivalenceResult(
            equivalent=False, failing_output=out_a, counterexample=full
        )
    return EquivalenceResult(equivalent=True)
