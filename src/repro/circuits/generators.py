"""Synthetic benchmark circuit generators.

The paper evaluates COMPACT on ISCAS85 and the EPFL control benchmarks.
Those files are not redistributable here, so this module generates the
same *families* of circuits from scratch, at parameterisable sizes:

* EPFL-control-like: decoder (``dec``), priority encoder (``priority``),
  round-robin arbiter (``arbiter``), prefix-match router (``router``),
  bus-controller command logic (``i2c``-like), integer-to-float converter
  (``int2float``), and seeded two-level control tables (``cavlc``/``ctrl``
  stand-ins).
* ISCAS85-like arithmetic: the exact classic ``c17``, ripple-carry adders,
  comparators, ALU slices, parity/ECC trees (``c499`` flavour), array
  multipliers and mux trees.

Every generator returns a checked :class:`~repro.circuits.netlist.Netlist`
whose semantics is independently testable (e.g. the adder really adds).
"""

from __future__ import annotations

import random

from .netlist import Netlist

__all__ = [
    "c17",
    "decoder",
    "priority_encoder",
    "round_robin_arbiter",
    "router_lookup",
    "i2c_control",
    "int2float",
    "random_control",
    "ripple_carry_adder",
    "comparator",
    "alu_slice",
    "parity_tree",
    "array_multiplier",
    "mux_tree",
    "majority_voter",
    "random_netlist",
]


def _bits(name: str, n: int) -> list[str]:
    return [f"{name}{i}" for i in range(n)]


def c17() -> Netlist:
    """The classic ISCAS85 c17 benchmark (6 NAND gates, 5 in, 2 out)."""
    nl = Netlist("c17", inputs=["G1", "G2", "G3", "G6", "G7"], outputs=["G22", "G23"])
    nl.add_gate("G10", "NAND", ["G1", "G3"])
    nl.add_gate("G11", "NAND", ["G3", "G6"])
    nl.add_gate("G16", "NAND", ["G2", "G11"])
    nl.add_gate("G19", "NAND", ["G11", "G7"])
    nl.add_gate("G22", "NAND", ["G10", "G16"])
    nl.add_gate("G23", "NAND", ["G16", "G19"])
    nl.check()
    return nl


def decoder(n: int, name: str | None = None) -> Netlist:
    """``n``-to-``2^n`` line decoder (the EPFL ``dec`` circuit family).

    Output ``d<i>`` is high iff the input word equals ``i``.
    """
    if n < 1:
        raise ValueError("decoder needs n >= 1")
    ins = _bits("a", n)
    outs = [f"d{i}" for i in range(2**n)]
    nl = Netlist(name or f"dec{n}", inputs=ins, outputs=outs)
    inv = []
    for i, a in enumerate(ins):
        inv.append(nl.add_gate(f"na{i}", "INV", [a]))
    for code in range(2**n):
        terms = []
        for bit in range(n):
            terms.append(ins[bit] if (code >> bit) & 1 else inv[bit])
        nl.add_gate(f"d{code}", "AND", terms)
    nl.check()
    return nl


def priority_encoder(n: int, name: str | None = None) -> Netlist:
    """``n``-request priority encoder (the EPFL ``priority`` family).

    Input ``r0`` has the highest priority.  Outputs are ``valid`` plus the
    binary index (LSB first) of the highest-priority asserted request.
    """
    if n < 2:
        raise ValueError("priority encoder needs n >= 2")
    ins = _bits("r", n)
    width = (n - 1).bit_length()
    outs = ["valid"] + [f"y{j}" for j in range(width)]
    nl = Netlist(name or f"priority{n}", inputs=ins, outputs=outs)

    # blocked_i = r_0 | ... | r_{i-1}; grant_i = r_i & ~blocked_i
    grants = [ins[0]]
    prev_any = ins[0]
    for i in range(1, n):
        nb = nl.add_gate(f"nblk{i}", "INV", [prev_any])
        grants.append(nl.add_gate(f"g{i}", "AND", [ins[i], nb]))
        if i < n - 1:
            prev_any = nl.add_gate(f"any{i}", "OR", [prev_any, ins[i]])
    nl.add_gate("valid", "OR", list(ins))
    for j in range(width):
        sources = [grants[i] for i in range(n) if (i >> j) & 1]
        if sources:
            nl.add_gate(f"y{j}", "OR", sources)
        else:
            nl.add_gate(f"y{j}", "CONST0", [])
    nl.check()
    return nl


def round_robin_arbiter(n: int, name: str | None = None) -> Netlist:
    """Combinational round-robin arbiter (EPFL ``arbiter`` flavour).

    Inputs: ``n`` request lines and ``log2 n`` pointer bits selecting the
    highest-priority requester.  Outputs: ``n`` one-hot grant lines plus
    an ``ack``.  Priority rotates with the pointer: requester ``p`` is
    highest, then ``p+1`` (mod n), etc.
    """
    if n < 2 or n & (n - 1):
        raise ValueError("arbiter size must be a power of two >= 2")
    width = n.bit_length() - 1
    reqs = _bits("r", n)
    ptr = _bits("p", width)
    outs = [f"gnt{i}" for i in range(n)] + ["ack"]
    nl = Netlist(name or f"arbiter{n}", inputs=reqs + ptr, outputs=outs)

    # ptr_is[k]: pointer equals k (one-hot decode of the pointer).
    pinv = [nl.add_gate(f"np{j}", "INV", [ptr[j]]) for j in range(width)]
    ptr_is = []
    for k in range(n):
        lits = [ptr[j] if (k >> j) & 1 else pinv[j] for j in range(width)]
        ptr_is.append(nl.add_gate(f"ptr_is{k}", "AND", lits))

    # For each pointer value k, fixed-priority chain over the rotation
    # (k, k+1, ..., k+n-1); gnt_i = OR_k [ ptr_is_k & grant-under-k_i ].
    grant_terms: list[list[str]] = [[] for _ in range(n)]
    for k in range(n):
        order = [(k + d) % n for d in range(n)]
        prev_any: str | None = None
        for rank, i in enumerate(order):
            if rank == 0:
                g = nl.add_gate(f"g_{k}_{i}", "AND", [ptr_is[k], reqs[i]])
            else:
                nb = nl.add_gate(f"nb_{k}_{rank}", "INV", [prev_any])  # type: ignore[list-item]
                g = nl.add_gate(f"g_{k}_{i}", "AND", [ptr_is[k], reqs[i], nb])
            grant_terms[i].append(g)
            if rank == 0:
                prev_any = reqs[i]
            elif rank < n - 1:
                prev_any = nl.add_gate(f"anyk{k}_{rank}", "OR", [prev_any, reqs[i]])  # type: ignore[list-item]
    for i in range(n):
        nl.add_gate(f"gnt{i}", "OR", grant_terms[i])
    nl.add_gate("ack", "OR", list(reqs))
    nl.check()
    return nl


def router_lookup(addr_bits: int, n_rules: int, seed: int = 7, name: str | None = None) -> Netlist:
    """Prefix-match routing table (EPFL ``router`` flavour).

    A deterministic, seeded set of ``n_rules`` (prefix, length) rules is
    generated; output ``m<i>`` asserts when the address matches rule ``i``
    and no longer (more specific) rule also matches — a longest-prefix
    match with ties broken by rule index.  A ``hit`` output asserts when
    any rule matches.
    """
    rng = random.Random(seed)
    ins = _bits("a", addr_bits)
    outs = [f"m{i}" for i in range(n_rules)] + ["hit"]
    nl = Netlist(name or f"router{addr_bits}x{n_rules}", inputs=ins, outputs=outs)
    inv = [nl.add_gate(f"na{j}", "INV", [a]) for j, a in enumerate(ins)]

    rules: list[tuple[int, int]] = []  # (value, prefix_len)
    seen = set()
    while len(rules) < n_rules:
        length = rng.randint(1, addr_bits)
        value = rng.getrandbits(length)
        if (value, length) in seen:
            continue
        seen.add((value, length))
        rules.append((value, length))

    raw = []
    for i, (value, length) in enumerate(rules):
        lits = []
        for bit in range(length):
            # Prefix compares the most-significant `length` bits.
            pos = addr_bits - 1 - bit
            lits.append(ins[pos] if (value >> (length - 1 - bit)) & 1 else inv[pos])
        raw.append(nl.add_gate(f"raw{i}", "AND", lits))

    for i, (_, length) in enumerate(rules):
        # Suppressed by any strictly longer matching rule (or earlier equal-length).
        better = [
            raw[j]
            for j, (_, lj) in enumerate(rules)
            if lj > length or (lj == length and j < i)
        ]
        if better:
            anyb = nl.add_gate(f"anyb{i}", "OR", better)
            nb = nl.add_gate(f"nob{i}", "INV", [anyb])
            nl.add_gate(f"m{i}", "AND", [raw[i], nb])
        else:
            nl.add_gate(f"m{i}", "BUF", [raw[i]])
    nl.add_gate("hit", "OR", raw)
    nl.check()
    return nl


def i2c_control(n_state: int = 4, n_cond: int = 6, seed: int = 11, name: str | None = None) -> Netlist:
    """Bus-controller command/next-state logic (EPFL ``i2c`` flavour).

    Inputs are ``n_state`` state bits and ``n_cond`` condition signals;
    outputs are the next-state bits and a handful of control strobes.
    The transition table is a deterministic, seeded function built from
    muxes so the logic has the narrow, control-dominated structure of the
    real ``i2c`` core.
    """
    rng = random.Random(seed)
    state = _bits("s", n_state)
    cond = _bits("c", n_cond)
    outs = [f"ns{i}" for i in range(n_state)] + ["start", "stop", "wr", "acko"]
    nl = Netlist(name or "i2c_ctrl", inputs=state + cond, outputs=outs)

    # Per-state condition selection: each next-state bit muxes between two
    # seeded condition expressions depending on a state predicate.
    def cond_term(tag: str) -> str:
        k = rng.randint(1, 3)
        picks = rng.sample(range(n_cond), k)
        lits = []
        for p in picks:
            if rng.random() < 0.5:
                lits.append(nl.add_gate(nl.fresh_net(f"nc_{tag}_"), "INV", [cond[p]]))
            else:
                lits.append(cond[p])
        return nl.add_gate(nl.fresh_net(f"ct_{tag}_"), "AND" if rng.random() < 0.6 else "OR", lits)

    for i in range(n_state):
        sel_bits = rng.sample(range(n_state), 2)
        sel = nl.add_gate(nl.fresh_net(f"sel{i}_"), "XOR", [state[sel_bits[0]], state[sel_bits[1]]])
        t_true = cond_term(f"{i}t")
        t_false = cond_term(f"{i}f")
        nl.add_gate(f"ns{i}", "MUX", [sel, t_true, t_false])

    for strobe in ("start", "stop", "wr", "acko"):
        sbits = rng.sample(range(n_state), 2)
        cpick = rng.randrange(n_cond)
        st = nl.add_gate(nl.fresh_net(f"{strobe}_st_"), "AND", [state[sbits[0]], state[sbits[1]]])
        nl.add_gate(strobe, "AND" if rng.random() < 0.5 else "OR", [st, cond[cpick]])
    nl.check()
    return nl


def int2float(in_bits: int = 11, exp_bits: int = 4, man_bits: int = 3, name: str | None = None) -> Netlist:
    """Unsigned integer to tiny floating-point converter (``int2float``).

    The output is ``exp_bits`` of exponent and ``man_bits`` of mantissa:
    ``exp`` is the position of the leading one (0 when the input is 0),
    and ``man`` holds the bits immediately below the leading one, left
    aligned.  Built from a leading-one detector plus mux selection —
    the same structure as the EPFL ``int2float`` circuit.
    """
    if 2**exp_bits < in_bits:
        raise ValueError("exponent field too narrow for the input width")
    ins = _bits("x", in_bits)
    outs = [f"e{j}" for j in range(exp_bits)] + [f"f{j}" for j in range(man_bits)]
    nl = Netlist(name or f"int2float{in_bits}", inputs=ins, outputs=outs)
    inv = [nl.add_gate(f"nx{i}", "INV", [x]) for i, x in enumerate(ins)]

    # lead[p]: bit p is the most significant set bit.
    lead = []
    for p in range(in_bits):
        lits = [ins[p]] + [inv[q] for q in range(p + 1, in_bits)]
        if len(lits) == 1:
            lead.append(nl.add_gate(f"lead{p}", "BUF", [ins[p]]))
        else:
            lead.append(nl.add_gate(f"lead{p}", "AND", lits))

    for j in range(exp_bits):
        srcs = [lead[p] for p in range(in_bits) if (p >> j) & 1]
        if srcs:
            nl.add_gate(f"e{j}", "OR", srcs)
        else:
            nl.add_gate(f"e{j}", "CONST0", [])
    for j in range(man_bits):
        # Mantissa bit j is input bit (p - 1 - j) when the leading one is at p.
        terms = []
        for p in range(in_bits):
            src = p - 1 - j
            if src >= 0:
                terms.append(nl.add_gate(f"mt{j}_{p}", "AND", [lead[p], ins[src]]))
        if terms:
            nl.add_gate(f"f{j}", "OR", terms)
        else:
            nl.add_gate(f"f{j}", "CONST0", [])
    nl.check()
    return nl


def random_control(
    name: str,
    n_inputs: int,
    n_outputs: int,
    n_cubes: int,
    seed: int,
    literals: tuple[int, int] = (2, 5),
) -> Netlist:
    """Seeded two-level (PLA-style) control logic.

    Generates ``n_cubes`` random product terms over the inputs and wires a
    random subset of them into each output's OR plane — the canonical
    shape of flat control tables such as ``cavlc`` and ``ctrl``.
    Deterministic for a given seed.
    """
    rng = random.Random(seed)
    ins = _bits("i", n_inputs)
    outs = [f"o{j}" for j in range(n_outputs)]
    nl = Netlist(name, inputs=ins, outputs=outs)
    inv = [nl.add_gate(f"ni{i}", "INV", [x]) for i, x in enumerate(ins)]

    cubes = []
    for c in range(n_cubes):
        k = rng.randint(literals[0], min(literals[1], n_inputs))
        picks = rng.sample(range(n_inputs), k)
        lits = [ins[p] if rng.random() < 0.5 else inv[p] for p in picks]
        cubes.append(nl.add_gate(f"cube{c}", "AND", lits))

    for j in range(n_outputs):
        k = rng.randint(1, max(1, n_cubes // 2))
        picks = rng.sample(range(n_cubes), k)
        nl.add_gate(f"o{j}", "OR", [cubes[p] for p in picks])
    nl.check()
    return nl


def ripple_carry_adder(n: int, name: str | None = None) -> Netlist:
    """``n``-bit ripple-carry adder: a + b + cin -> sum, cout."""
    if n < 1:
        raise ValueError("adder needs n >= 1")
    a, b = _bits("a", n), _bits("b", n)
    outs = [f"s{i}" for i in range(n)] + ["cout"]
    nl = Netlist(name or f"rca{n}", inputs=a + b + ["cin"], outputs=outs)
    carry = "cin"
    for i in range(n):
        p = nl.add_gate(f"p{i}", "XOR", [a[i], b[i]])
        nl.add_gate(f"s{i}", "XOR", [p, carry])
        g = nl.add_gate(f"g{i}", "AND", [a[i], b[i]])
        t = nl.add_gate(f"t{i}", "AND", [p, carry])
        carry = nl.add_gate(f"c{i + 1}", "OR", [g, t])
    nl.add_gate("cout", "BUF", [carry])
    nl.check()
    return nl


def comparator(n: int, name: str | None = None) -> Netlist:
    """``n``-bit magnitude comparator: outputs ``lt``, ``eq``, ``gt``."""
    a, b = _bits("a", n), _bits("b", n)
    nl = Netlist(name or f"cmp{n}", inputs=a + b, outputs=["lt", "eq", "gt"])
    eq_bits = []
    for i in range(n):
        eq_bits.append(nl.add_gate(f"eqb{i}", "XNOR", [a[i], b[i]]))
    # gt = OR_i ( a_i & ~b_i & eq on all higher bits )
    gt_terms, lt_terms = [], []
    for i in range(n - 1, -1, -1):
        nb = nl.add_gate(f"nb{i}", "INV", [b[i]])
        na = nl.add_gate(f"na{i}", "INV", [a[i]])
        higher = [eq_bits[j] for j in range(i + 1, n)]
        gt_terms.append(nl.add_gate(f"gtt{i}", "AND", [a[i], nb] + higher))
        lt_terms.append(nl.add_gate(f"ltt{i}", "AND", [na, b[i]] + higher))
    nl.add_gate("gt", "OR", gt_terms)
    nl.add_gate("lt", "OR", lt_terms)
    nl.add_gate("eq", "AND", eq_bits)
    nl.check()
    return nl


def alu_slice(n: int, name: str | None = None) -> Netlist:
    """Small ``n``-bit ALU: op selects among ADD, AND, OR, XOR.

    Inputs: ``a``, ``b`` (n bits each) and 2 op bits; outputs ``y`` (n
    bits) plus carry-out for the ADD case.
    """
    a, b = _bits("a", n), _bits("b", n)
    op = _bits("op", 2)
    outs = [f"y{i}" for i in range(n)] + ["cout"]
    nl = Netlist(name or f"alu{n}", inputs=a + b + op, outputs=outs)

    carry = nl.add_gate("c0", "CONST0", [])
    add_bits = []
    for i in range(n):
        p = nl.add_gate(f"p{i}", "XOR", [a[i], b[i]])
        add_bits.append(nl.add_gate(f"add{i}", "XOR", [p, carry]))
        g = nl.add_gate(f"g{i}", "AND", [a[i], b[i]])
        t = nl.add_gate(f"t{i}", "AND", [p, carry])
        carry = nl.add_gate(f"c{i + 1}", "OR", [g, t])
    nl.add_gate("cout", "BUF", [carry])

    for i in range(n):
        andv = nl.add_gate(f"andv{i}", "AND", [a[i], b[i]])
        orv = nl.add_gate(f"orv{i}", "OR", [a[i], b[i]])
        xorv = nl.add_gate(f"xorv{i}", "XOR", [a[i], b[i]])
        lo = nl.add_gate(f"lo{i}", "MUX", [op[0], andv, add_bits[i]])
        hi = nl.add_gate(f"hi{i}", "MUX", [op[0], xorv, orv])
        nl.add_gate(f"y{i}", "MUX", [op[1], hi, lo])
    nl.check()
    return nl


def parity_tree(n: int, name: str | None = None) -> Netlist:
    """``n``-input XOR (parity) tree — the ECC flavour of c499/c1355."""
    ins = _bits("x", n)
    nl = Netlist(name or f"parity{n}", inputs=ins, outputs=["par"])
    layer = list(ins)
    lvl = 0
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(nl.add_gate(f"x{lvl}_{i // 2}", "XOR", [layer[i], layer[i + 1]]))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
        lvl += 1
    nl.add_gate("par", "BUF", [layer[0]])
    nl.check()
    return nl


def array_multiplier(n: int, name: str | None = None) -> Netlist:
    """``n x n`` array multiplier producing a ``2n``-bit product."""
    a, b = _bits("a", n), _bits("b", n)
    outs = [f"p{i}" for i in range(2 * n)]
    nl = Netlist(name or f"mult{n}", inputs=a + b, outputs=outs)

    # Partial products.
    pp = [[nl.add_gate(f"pp{i}_{j}", "AND", [a[i], b[j]]) for j in range(n)] for i in range(n)]

    # Column-wise carry-save reduction with full adders.
    cols: list[list[str]] = [[] for _ in range(2 * n)]
    for i in range(n):
        for j in range(n):
            cols[i + j].append(pp[i][j])
    fa = 0
    for col in range(2 * n):
        while len(cols[col]) > 1:
            if len(cols[col]) >= 3:
                x, y, z = cols[col].pop(), cols[col].pop(), cols[col].pop()
                s = nl.add_gate(f"fs{fa}", "XOR", [x, y, z])
                c = nl.add_gate(f"fc{fa}", "MAJ", [x, y, z])
            else:
                x, y = cols[col].pop(), cols[col].pop()
                s = nl.add_gate(f"hs{fa}", "XOR", [x, y])
                c = nl.add_gate(f"hc{fa}", "AND", [x, y])
            fa += 1
            cols[col].append(s)
            if col + 1 < 2 * n:
                cols[col + 1].append(c)
        if cols[col]:
            nl.add_gate(f"p{col}", "BUF", [cols[col][0]])
        else:
            # Top column may be empty when no carry reaches it.
            nl.add_gate(f"p{col}", "CONST0", [])
    nl.check()
    return nl


def mux_tree(sel_bits: int, name: str | None = None) -> Netlist:
    """``2^k``-to-1 multiplexer tree with ``k`` select lines."""
    n = 2**sel_bits
    data = _bits("d", n)
    sel = _bits("s", sel_bits)
    nl = Netlist(name or f"mux{n}", inputs=data + sel, outputs=["y"])
    layer = list(data)
    for level in range(sel_bits):
        nxt = []
        for i in range(0, len(layer), 2):
            nxt.append(nl.add_gate(f"m{level}_{i // 2}", "MUX", [sel[level], layer[i + 1], layer[i]]))
        layer = nxt
    nl.add_gate("y", "BUF", [layer[0]])
    nl.check()
    return nl


def majority_voter(n: int, name: str | None = None) -> Netlist:
    """``n``-input majority voter (n odd), e.g. TMR logic."""
    if n % 2 == 0 or n < 3:
        raise ValueError("majority voter needs odd n >= 3")
    ins = _bits("v", n)
    nl = Netlist(name or f"voter{n}", inputs=ins, outputs=["maj"])
    nl.add_gate("maj", "MAJ", ins)
    nl.check()
    return nl


def random_netlist(
    n_inputs: int,
    n_gates: int,
    n_outputs: int,
    seed: int,
    name: str | None = None,
) -> Netlist:
    """Seeded random AIG-style netlist for property-based testing."""
    rng = random.Random(seed)
    ins = _bits("i", n_inputs)
    nl = Netlist(name or f"rand_{seed}", inputs=ins)
    nets = list(ins)
    for g in range(n_gates):
        gate_type = rng.choice(["AND", "OR", "NAND", "NOR", "XOR", "INV", "MUX"])
        if gate_type == "INV":
            srcs = [rng.choice(nets)]
        elif gate_type == "MUX":
            srcs = [rng.choice(nets) for _ in range(3)]
        else:
            k = rng.randint(2, 3)
            srcs = [rng.choice(nets) for _ in range(k)]
        nets.append(nl.add_gate(f"g{g}", gate_type, srcs))
    pool = nets[n_inputs:] or nets
    for j in range(n_outputs):
        nl.add_gate(f"o{j}", "BUF", [rng.choice(pool)])
        nl.add_output(f"o{j}")
    nl.check()
    return nl
