"""Gate-level combinational netlists.

A :class:`Netlist` is a named DAG of logic gates over primary inputs,
mirroring what a BLIF/Verilog structural description contains.  It is the
unit the BDD compiler consumes and the synthetic benchmark generators
produce.

Nets are identified by name.  Every gate drives exactly one net; primary
inputs are nets driven by the environment.  Primary outputs name existing
nets.  The class enforces acyclicity and single drivers at construction
time (``check()``) and supports evaluation, per-output expression
extraction, and simple structural statistics.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from ..expr import FALSE, TRUE, And, Expr, Ite, Not, Or, Var, Xor

__all__ = ["Gate", "Netlist", "NetlistError", "GATE_TYPES"]

#: Supported gate types.  Symmetric types accept arbitrary fan-in >= 1,
#: INV/BUF take exactly one input, MUX takes (sel, then, else) in order,
#: MAJ takes an odd number of inputs, CONST0/CONST1 take none.
GATE_TYPES = frozenset(
    {
        "AND",
        "OR",
        "NAND",
        "NOR",
        "XOR",
        "XNOR",
        "INV",
        "BUF",
        "MUX",
        "MAJ",
        "CONST0",
        "CONST1",
    }
)


class NetlistError(ValueError):
    """Raised for structurally invalid netlists."""


@dataclass(frozen=True)
class Gate:
    """One logic gate: ``output = type(inputs...)``."""

    output: str
    gate_type: str
    inputs: tuple[str, ...]

    def __post_init__(self):
        if self.gate_type not in GATE_TYPES:
            raise NetlistError(f"unknown gate type {self.gate_type!r}")
        arity = len(self.inputs)
        if self.gate_type in ("INV", "BUF") and arity != 1:
            raise NetlistError(f"{self.gate_type} gate {self.output!r} needs 1 input, got {arity}")
        if self.gate_type == "MUX" and arity != 3:
            raise NetlistError(f"MUX gate {self.output!r} needs 3 inputs (sel, then, else)")
        if self.gate_type == "MAJ" and (arity < 3 or arity % 2 == 0):
            raise NetlistError(f"MAJ gate {self.output!r} needs an odd fan-in >= 3")
        if self.gate_type in ("CONST0", "CONST1") and arity != 0:
            raise NetlistError(f"{self.gate_type} gate {self.output!r} takes no inputs")
        if self.gate_type in ("AND", "OR", "NAND", "NOR", "XOR", "XNOR") and arity < 1:
            raise NetlistError(f"{self.gate_type} gate {self.output!r} needs at least 1 input")

    def evaluate(self, values: Mapping[str, bool]) -> bool:
        """Evaluate the gate given values of its input nets."""
        ins = [bool(values[i]) for i in self.inputs]
        t = self.gate_type
        if t == "AND":
            return all(ins)
        if t == "OR":
            return any(ins)
        if t == "NAND":
            return not all(ins)
        if t == "NOR":
            return not any(ins)
        if t == "XOR":
            acc = False
            for v in ins:
                acc ^= v
            return acc
        if t == "XNOR":
            acc = True
            for v in ins:
                acc ^= v
            return acc
        if t == "INV":
            return not ins[0]
        if t == "BUF":
            return ins[0]
        if t == "MUX":
            return ins[1] if ins[0] else ins[2]
        if t == "MAJ":
            return sum(ins) * 2 > len(ins)
        if t == "CONST0":
            return False
        if t == "CONST1":
            return True
        raise AssertionError(f"unhandled gate type {t}")

    def expr(self, operands: Sequence[Expr]) -> Expr:
        """Build the gate function as an expression over ``operands``."""
        t = self.gate_type
        if t == "AND":
            return And(*operands)
        if t == "OR":
            return Or(*operands)
        if t == "NAND":
            return Not(And(*operands))
        if t == "NOR":
            return Not(Or(*operands))
        if t == "XOR":
            return Xor(*operands)
        if t == "XNOR":
            return Not(Xor(*operands))
        if t == "INV":
            return Not(operands[0])
        if t == "BUF":
            return operands[0]
        if t == "MUX":
            return Ite(operands[0], operands[1], operands[2])
        if t == "MAJ":
            terms = []
            n = len(operands)
            need = n // 2 + 1
            # Majority as OR over AND of all `need`-subsets; fine for fan-in 3/5.
            import itertools

            for combo in itertools.combinations(range(n), need):
                terms.append(And(*[operands[i] for i in combo]))
            return Or(*terms)
        if t == "CONST0":
            return FALSE
        if t == "CONST1":
            return TRUE
        raise AssertionError(f"unhandled gate type {t}")


def _apply_gate_vector(gate: Gate, ins, zero, one, neg):
    """Apply ``gate`` elementwise to vectorized net values.

    Works for both boolean vectors (one entry per assignment) and packed
    uint64 truth tables (64 assignments per word): both support ``&``,
    ``|``, ``^``; negation goes through ``neg`` so the packed form can
    keep its tail invariant (:func:`repro.bitset.bit_not`).
    """
    t = gate.gate_type
    if t in ("AND", "NAND"):
        acc = ins[0]
        for v in ins[1:]:
            acc = acc & v
        return neg(acc) if t == "NAND" else acc.copy()
    if t in ("OR", "NOR"):
        acc = ins[0]
        for v in ins[1:]:
            acc = acc | v
        return neg(acc) if t == "NOR" else acc.copy()
    if t in ("XOR", "XNOR"):
        acc = ins[0]
        for v in ins[1:]:
            acc = acc ^ v
        return neg(acc) if t == "XNOR" else acc.copy()
    if t == "INV":
        return neg(ins[0])
    if t == "BUF":
        return ins[0].copy()
    if t == "MUX":
        return (ins[0] & ins[1]) | (neg(ins[0]) & ins[2])
    if t == "MAJ":
        import itertools

        need = len(ins) // 2 + 1
        acc = zero
        for combo in itertools.combinations(range(len(ins)), need):
            term = ins[combo[0]]
            for i in combo[1:]:
                term = term & ins[i]
            acc = acc | term
        return acc
    if t == "CONST0":
        return zero.copy()
    if t == "CONST1":
        return one.copy()
    raise AssertionError(f"unhandled gate type {t}")


class Netlist:
    """A combinational gate-level netlist.

    Parameters
    ----------
    name:
        Circuit name (used in reports and file writers).
    inputs:
        Primary input net names, in declaration order.
    outputs:
        Primary output net names; each must be a primary input or be
        driven by a gate once construction finishes.
    """

    def __init__(self, name: str, inputs: Iterable[str] = (), outputs: Iterable[str] = ()):
        self.name = name
        self.inputs: list[str] = list(inputs)
        self.outputs: list[str] = list(outputs)
        self.gates: list[Gate] = []
        self._driver: dict[str, Gate] = {}
        #: Source spans for diagnostics: ``(kind, name) -> (file, line)``
        #: with kind one of ``"input"``, ``"output"``, ``"gate"``.
        #: Populated by the file readers; empty for generated netlists.
        self.spans: dict[tuple[str, str], tuple[str | None, int | None]] = {}

    def span(self, kind: str, name: str) -> tuple[str | None, int | None]:
        """The source span of a declaration, or ``(None, None)``."""
        return self.spans.get((kind, name), (None, None))

    # -- construction --------------------------------------------------------
    def add_input(self, name: str) -> str:
        if name in self.inputs:
            raise NetlistError(f"duplicate input {name!r}")
        if name in self._driver:
            raise NetlistError(f"net {name!r} already driven by a gate")
        self.inputs.append(name)
        return name

    def add_output(self, name: str) -> str:
        self.outputs.append(name)
        return name

    def add_gate(self, output: str, gate_type: str, inputs: Sequence[str] = ()) -> str:
        """Add a gate driving net ``output``; returns the output net name."""
        if output in self._driver:
            raise NetlistError(f"net {output!r} already driven")
        if output in self.inputs:
            raise NetlistError(f"net {output!r} is a primary input")
        gate = Gate(output, gate_type, tuple(inputs))
        self.gates.append(gate)
        self._driver[output] = gate
        return output

    def fresh_net(self, prefix: str = "n") -> str:
        """Return a net name not yet used in the netlist."""
        used = set(self.inputs) | set(self._driver)
        i = len(self._driver)
        while f"{prefix}{i}" in used:
            i += 1
        return f"{prefix}{i}"

    # -- structure -----------------------------------------------------------
    def driver(self, net: str) -> Gate | None:
        """The gate driving ``net``, or None for primary inputs."""
        return self._driver.get(net)

    def nets(self) -> list[str]:
        """All nets: inputs first, then gate outputs in insertion order."""
        return self.inputs + [g.output for g in self.gates]

    def check(self) -> None:
        """Validate the netlist; raises :class:`NetlistError` on problems."""
        known = set(self.inputs)
        for gate in self.topological_gates():
            for net in gate.inputs:
                if net not in known and net not in self._driver:
                    raise NetlistError(f"gate {gate.output!r} reads undriven net {net!r}")
            known.add(gate.output)
        for out in self.outputs:
            if out not in known:
                raise NetlistError(f"output {out!r} is not driven")

    def topological_gates(self) -> list[Gate]:
        """Gates in topological order; raises on combinational cycles."""
        order: list[Gate] = []
        state: dict[str, int] = {}  # 0 = visiting, 1 = done

        for root in [g.output for g in self.gates]:
            if state.get(root) == 1:
                continue
            stack = [(root, False)]
            while stack:
                net, processed = stack.pop()
                gate = self._driver.get(net)
                if gate is None:
                    continue
                if processed:
                    state[net] = 1
                    order.append(gate)
                    continue
                mark = state.get(net)
                if mark == 1:
                    continue
                if mark == 0:
                    raise NetlistError(f"combinational cycle through net {net!r}")
                state[net] = 0
                stack.append((net, True))
                for src in gate.inputs:
                    if state.get(src) != 1:
                        stack.append((src, False))
        return order

    # -- semantics -----------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, bool]) -> dict[str, bool]:
        """Simulate the netlist; returns values of the primary outputs."""
        values: dict[str, bool] = {}
        for name in self.inputs:
            try:
                values[name] = bool(assignment[name])
            except KeyError:
                raise KeyError(f"assignment missing primary input {name!r}") from None
        for gate in self.topological_gates():
            values[gate.output] = gate.evaluate(values)
        return {out: values[out] for out in self.outputs}

    def evaluate_batch(self, matrix, inputs: Sequence[str]) -> dict:
        """Simulate under each assignment row of a boolean matrix.

        ``matrix`` is shaped (num_assignments, len(inputs)); column ``j``
        holds the values of ``inputs[j]``.  Returns one boolean vector
        per primary output; row ``k`` agrees with :meth:`evaluate` on the
        corresponding assignment dict.
        """
        import numpy as np

        matrix = np.asarray(matrix, dtype=bool)
        names = list(inputs)
        if matrix.ndim != 2 or matrix.shape[1] != len(names):
            raise ValueError(
                f"matrix must be 2-D (num_assignments, {len(names)}), "
                f"got shape {matrix.shape}"
            )
        column = {name: j for j, name in enumerate(names)}
        values: dict[str, np.ndarray] = {}
        for name in self.inputs:
            j = column.get(name)
            if j is None:
                raise KeyError(f"assignment missing primary input {name!r}")
            values[name] = matrix[:, j]
        neg = np.logical_not
        zero = np.zeros(matrix.shape[0], dtype=bool)
        one = np.ones(matrix.shape[0], dtype=bool)
        for gate in self.topological_gates():
            values[gate.output] = _apply_gate_vector(
                gate, [values[i] for i in gate.inputs], zero, one, neg
            )
        return {out: values[out].copy() for out in self.outputs}

    def evaluate_bitset(self, inputs: Sequence[str]) -> dict:
        """Full truth table per output as packed uint64 words.

        Simulates the whole ``2**len(inputs)`` assignment space in one
        pass, 64 assignments per machine word; see :mod:`repro.bitset`
        for the assignment-index bit convention.
        """
        from .. import bitset

        names = list(inputs)
        n = len(names)
        position = {name: n - 1 - j for j, name in enumerate(names)}
        values: dict[str, object] = {}
        for name in self.inputs:
            pos = position.get(name)
            if pos is None:
                raise KeyError(f"assignment missing primary input {name!r}")
            values[name] = bitset.variable_mask(pos, n)
        zero = bitset.zeros(n)
        one = bitset.ones(n)

        def neg(table):
            return bitset.bit_not(table, n)

        for gate in self.topological_gates():
            values[gate.output] = _apply_gate_vector(
                gate, [values[i] for i in gate.inputs], zero, one, neg
            )
        return {out: values[out].copy() for out in self.outputs}

    def output_expressions(self) -> dict[str, Expr]:
        """Flatten each primary output into an expression over the inputs.

        Shared logic is shared in the returned expression DAGs (the same
        ``Expr`` object appears in several outputs), but printed sizes can
        still be exponential; intended for small circuits and testing.
        The BDD compiler works directly on the netlist instead.
        """
        exprs: dict[str, Expr] = {name: Var(name) for name in self.inputs}
        for gate in self.topological_gates():
            exprs[gate.output] = gate.expr([exprs[i] for i in gate.inputs])
        return {out: exprs[out] for out in self.outputs}

    # -- statistics ----------------------------------------------------------
    def num_gates(self) -> int:
        return len(self.gates)

    def stats(self) -> dict[str, int]:
        """Simple structural statistics (used by reports)."""
        depth: dict[str, int] = {name: 0 for name in self.inputs}
        for gate in self.topological_gates():
            depth[gate.output] = 1 + max((depth[i] for i in gate.inputs), default=0)
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "gates": len(self.gates),
            "depth": max((depth[o] for o in self.outputs), default=0),
        }

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, gates={len(self.gates)})"
        )
