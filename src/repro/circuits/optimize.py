"""Netlist clean-up passes.

Light structural optimizations applied before BDD construction, in the
spirit of what ABC does for the paper's flow:

* **constant propagation** — CONST0/CONST1 folded through gates;
* **buffer sweeping** — BUF chains collapsed to their sources;
* **structural hashing (strash)** — identical (type, inputs) gates
  merged, with input sorting for symmetric gates;
* **dead-logic removal** — gates not in any output cone dropped.

:func:`optimize` runs them to a fixpoint and returns an equivalent
netlist over the same primary inputs/outputs.
"""

from __future__ import annotations

from .netlist import Netlist

__all__ = ["optimize", "sweep_buffers", "propagate_constants", "strash", "remove_dead"]

_SYMMETRIC = {"AND", "OR", "NAND", "NOR", "XOR", "XNOR", "MAJ"}


def _rebuild(netlist: Netlist, replace: dict[str, str], drop: set[str]) -> Netlist:
    """Copy the netlist applying net substitutions and gate drops."""

    def resolve(net: str) -> str:
        seen = set()
        while net in replace:
            if net in seen:  # pragma: no cover - substitutions are acyclic
                break
            seen.add(net)
            net = replace[net]
        return net

    out = Netlist(netlist.name, inputs=list(netlist.inputs), outputs=list(netlist.outputs))
    for gate in netlist.topological_gates():
        if gate.output in drop or gate.output in replace:
            continue
        out.add_gate(gate.output, gate.gate_type, [resolve(i) for i in gate.inputs])
    # Outputs replaced by another net get a BUF to keep their name.
    for out_name in netlist.outputs:
        target = resolve(out_name)
        if target != out_name and out.driver(out_name) is None and out_name not in out.inputs:
            out.add_gate(out_name, "BUF", [target])
    return out


def sweep_buffers(netlist: Netlist) -> Netlist:
    """Collapse BUF gates into their sources (output BUFs are kept)."""
    replace: dict[str, str] = {}
    outputs = set(netlist.outputs)
    for gate in netlist.gates:
        if gate.gate_type == "BUF" and gate.output not in outputs:
            replace[gate.output] = gate.inputs[0]
    return _rebuild(netlist, replace, set())


def propagate_constants(netlist: Netlist) -> Netlist:
    """Fold constants through the netlist (one full forward pass)."""
    const: dict[str, bool] = {}
    replace: dict[str, str] = {}
    drop: set[str] = set()
    new_gates: list[tuple[str, str, list[str]]] = []
    outputs = set(netlist.outputs)

    def known(net: str) -> bool | None:
        return const.get(net)

    for gate in netlist.topological_gates():
        t = gate.gate_type
        ins = list(gate.inputs)
        vals = [known(i) for i in ins]

        if t == "CONST0":
            const[gate.output] = False
            continue
        if t == "CONST1":
            const[gate.output] = True
            continue
        if all(v is not None for v in vals) and t not in ("BUF",):
            const[gate.output] = gate.evaluate(dict(zip(ins, vals)))  # type: ignore[arg-type]
            continue

        if t == "AND" and any(v is False for v in vals):
            const[gate.output] = False
            continue
        if t == "OR" and any(v is True for v in vals):
            const[gate.output] = True
            continue
        if t == "NAND" and any(v is False for v in vals):
            const[gate.output] = True
            continue
        if t == "NOR" and any(v is True for v in vals):
            const[gate.output] = False
            continue
        if t in ("AND", "OR", "NAND", "NOR"):
            live = [i for i, v in zip(ins, vals) if v is None]
            if len(live) < len(ins):
                if not live:  # all identities folded
                    const[gate.output] = gate.evaluate(dict(zip(ins, vals)))  # type: ignore[arg-type]
                    continue
                if len(live) == 1 and t in ("AND", "OR"):
                    replace[gate.output] = live[0]
                    continue
                if len(live) == 1 and t in ("NAND", "NOR"):
                    new_gates.append((gate.output, "INV", live))
                    continue
                new_gates.append((gate.output, t, live))
                continue
        if t in ("XOR", "XNOR"):
            parity = t == "XNOR"
            live = []
            for i, v in zip(ins, vals):
                if v is None:
                    live.append(i)
                else:
                    parity ^= v
            if not live:
                const[gate.output] = parity
                continue
            if len(live) == 1:
                if parity:
                    new_gates.append((gate.output, "INV", live))
                else:
                    replace[gate.output] = live[0]
                continue
            new_gates.append((gate.output, "XNOR" if parity else "XOR", live))
            continue
        if t == "MUX" and vals[0] is not None:
            replace[gate.output] = ins[1] if vals[0] else ins[2]
            continue
        if t == "INV" and vals[0] is not None:
            const[gate.output] = not vals[0]
            continue
        if t == "BUF" and vals[0] is not None:
            const[gate.output] = vals[0]
            continue
        new_gates.append((gate.output, t, ins))

    out = Netlist(netlist.name, inputs=list(netlist.inputs), outputs=list(netlist.outputs))

    def resolve(net: str) -> str:
        seen = set()
        while net in replace and net not in seen:
            seen.add(net)
            net = replace[net]
        return net

    # Materialise constants still referenced (as outputs or gate inputs).
    needed_consts: dict[str, bool] = {}

    def use(net: str) -> str:
        net = resolve(net)
        if net in const:
            needed_consts[net] = const[net]
        return net

    pending = []
    for name, t, ins in new_gates:
        pending.append((name, t, [use(i) for i in ins]))
    for out_name in netlist.outputs:
        use(out_name)

    for net, value in needed_consts.items():
        out.add_gate(net, "CONST1" if value else "CONST0", [])
    for name, t, ins in pending:
        out.add_gate(name, t, ins)
    for out_name in netlist.outputs:
        target = resolve(out_name)
        if target != out_name and out.driver(out_name) is None and out_name not in out.inputs:
            out.add_gate(out_name, "BUF", [target])
    return out


def strash(netlist: Netlist) -> Netlist:
    """Structural hashing: merge gates with identical (type, inputs)."""
    canon: dict[tuple, str] = {}
    replace: dict[str, str] = {}
    outputs = set(netlist.outputs)

    def resolve(net: str) -> str:
        while net in replace:
            net = replace[net]
        return net

    for gate in netlist.topological_gates():
        ins = tuple(resolve(i) for i in gate.inputs)
        if gate.gate_type in _SYMMETRIC:
            key = (gate.gate_type, tuple(sorted(ins)))
        else:
            key = (gate.gate_type, ins)
        existing = canon.get(key)
        if existing is not None and gate.output not in outputs:
            replace[gate.output] = existing
        elif existing is not None:
            # Keep the output name but reuse the computed net.
            replace[gate.output] = existing
        else:
            canon[key] = gate.output
    return _rebuild(netlist, replace, set())


def remove_dead(netlist: Netlist) -> Netlist:
    """Drop gates outside every output cone."""
    live: set[str] = set()
    stack = list(netlist.outputs)
    while stack:
        net = stack.pop()
        if net in live:
            continue
        live.add(net)
        gate = netlist.driver(net)
        if gate is not None:
            stack.extend(gate.inputs)
    out = Netlist(netlist.name, inputs=list(netlist.inputs), outputs=list(netlist.outputs))
    for gate in netlist.topological_gates():
        if gate.output in live:
            out.add_gate(gate.output, gate.gate_type, list(gate.inputs))
    return out


def optimize(netlist: Netlist, max_passes: int = 8) -> Netlist:
    """Run all passes to a fixpoint (bounded by ``max_passes``)."""
    current = netlist
    for _ in range(max_passes):
        before = current.num_gates()
        current = propagate_constants(current)
        current = sweep_buffers(current)
        current = strash(current)
        current = remove_dead(current)
        if current.num_gates() >= before:
            break
    current.check()
    return current
