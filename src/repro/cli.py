"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
synth
    Synthesize a crossbar from a Verilog/BLIF/PLA file (or an
    expression with ``--expr``); print metrics and optionally the
    rendered crossbar, a JSON artifact, or a SPICE deck.
report
    Circuit and (S)BDD statistics for a file.
validate
    Re-check a saved design JSON against its source circuit.
map
    Defect-aware remapping: place a saved design around the stuck-at
    defects in a fault map (permute -> spares escalation, verified).
faults
    Generate a random stuck-at fault map JSON for a physical array.
bench
    Run one of the paper's experiments (table1..table4, fig9..fig13),
    the perf harness, or the naive-vs-remapped ``yield`` comparison.

Malformed input files (circuit, design JSON, fault map) exit with code
2 and a one-line message on stderr — never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .bdd import build_sbdd
from .core import Compact
from .crossbar import design_from_json, design_to_json, measure, to_spice_netlist, validate_design
from .io import read_blif, read_pla, read_verilog

__all__ = ["main", "build_parser"]

_READERS = {
    ".v": read_verilog,
    ".verilog": read_verilog,
    ".blif": read_blif,
    ".pla": read_pla,
}


def _usage_error(message: str) -> SystemExit:
    """One-line failure for malformed user input: stderr + exit code 2."""
    print(f"repro: error: {message}", file=sys.stderr)
    return SystemExit(2)


def load_circuit(path: str, fmt: str = "auto"):
    """Read a circuit file by extension (or forced format).

    Malformed or unreadable files exit with code 2 and a one-line
    message (parser errors carry ``file:line:`` context).
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise _usage_error(f"cannot read {path!r}: {exc.strerror or exc}") from exc
    if fmt != "auto":
        reader = {"verilog": read_verilog, "blif": read_blif, "pla": read_pla}[fmt]
    else:
        suffix = Path(path).suffix.lower()
        reader = _READERS.get(suffix)
        if reader is None:
            raise _usage_error(
                f"cannot infer format of {path!r} (use --format verilog|blif|pla)"
            )
    try:
        return reader(text, source=path)
    except ValueError as exc:
        # PlaError/BlifError/VerilogError and netlist semantic errors.
        raise _usage_error(str(exc)) from exc


def _load_design(path: str):
    try:
        return design_from_json(Path(path).read_text())
    except OSError as exc:
        raise _usage_error(f"cannot read {path!r}: {exc.strerror or exc}") from exc
    except (ValueError, KeyError, TypeError) as exc:
        raise _usage_error(f"{path}: not a valid design JSON ({exc})") from exc


def _load_fault_map(path: str):
    from .crossbar import fault_map_from_json

    try:
        return fault_map_from_json(Path(path).read_text())
    except OSError as exc:
        raise _usage_error(f"cannot read {path!r}: {exc.strerror or exc}") from exc
    except (ValueError, KeyError, TypeError) as exc:
        raise _usage_error(f"{path}: not a valid fault map ({exc})") from exc


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COMPACT: flow-based crossbar synthesis (DATE 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synth", help="synthesize a crossbar design")
    src = synth.add_mutually_exclusive_group(required=True)
    src.add_argument("circuit", nargs="?", help="Verilog/BLIF/PLA file")
    src.add_argument("--expr", help="Boolean expression, e.g. '(a & b) | c'")
    synth.add_argument("--format", default="auto", choices=["auto", "verilog", "blif", "pla"])
    synth.add_argument("--gamma", type=float, default=0.5)
    synth.add_argument("--method", default="auto", choices=["auto", "mip", "oct", "heuristic"])
    synth.add_argument("--backend", default="highs", choices=["highs", "bnb"])
    synth.add_argument("--time-limit", type=float, default=60.0)
    synth.add_argument("--no-validate", action="store_true", help="skip the equivalence check")
    synth.add_argument("--render", action="store_true", help="print the crossbar grid")
    synth.add_argument("--json", metavar="PATH", help="write the design as JSON")
    synth.add_argument("--spice", metavar="PATH", help="write a SPICE deck (all-ones assignment)")

    report = sub.add_parser("report", help="circuit + BDD statistics")
    report.add_argument("circuit")
    report.add_argument("--format", default="auto", choices=["auto", "verilog", "blif", "pla"])

    validate = sub.add_parser("validate", help="check a saved design JSON")
    validate.add_argument("design", help="design JSON produced by synth --json")
    validate.add_argument("--circuit", required=True, help="source circuit file")
    validate.add_argument("--format", default="auto", choices=["auto", "verilog", "blif", "pla"])

    remap_p = sub.add_parser(
        "map", help="defect-aware remapping of a design onto a faulty array"
    )
    remap_p.add_argument("design", help="design JSON produced by synth --json")
    remap_p.add_argument("--circuit", required=True, help="source circuit file")
    remap_p.add_argument("--format", default="auto", choices=["auto", "verilog", "blif", "pla"])
    remap_p.add_argument("--fault-map", required=True, metavar="PATH",
                         help="fault map JSON (see 'repro faults')")
    remap_p.add_argument("--spare-rows", type=int, default=None, metavar="N",
                         help="cap on spare rows used (default: all the array offers)")
    remap_p.add_argument("--spare-cols", type=int, default=None, metavar="N")
    remap_p.add_argument("--method", default="auto", choices=["auto", "greedy", "milp"])
    remap_p.add_argument("--time-limit", type=float, default=10.0, metavar="SECONDS",
                         help="MILP fallback budget per stage")
    remap_p.add_argument("--seed", type=int, default=0)
    remap_p.add_argument("--resynthesize", action="store_true",
                         help="escalate to re-synthesis under alternative variable orders")
    remap_p.add_argument("--json", metavar="PATH", help="write the remapped design as JSON")
    remap_p.add_argument("--render", action="store_true", help="print the remapped grid")

    faults_p = sub.add_parser("faults", help="generate a random stuck-at fault map")
    faults_p.add_argument("rows", type=int, help="physical array rows")
    faults_p.add_argument("cols", type=int, help="physical array columns")
    faults_p.add_argument("--p-stuck-on", type=float, default=0.002)
    faults_p.add_argument("--p-stuck-off", type=float, default=0.02)
    faults_p.add_argument("--seed", type=int, default=0)
    faults_p.add_argument("--out", metavar="PATH", help="write here instead of stdout")

    bench = sub.add_parser("bench", help="run one paper experiment or the perf harness")
    bench.add_argument(
        "experiment",
        nargs="?",
        default="perf",
        choices=[
            "table1", "table2", "table3", "table4",
            "fig9", "fig10", "fig11", "fig12", "fig13",
            "perf", "yield",
        ],
        help="paper table/figure, 'perf' (default) for the perf baseline harness, "
             "or 'yield' for the naive-vs-remapped fault-recovery comparison",
    )
    bench.add_argument("--tier", default=None, choices=[None, "fast", "full"])
    bench.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="perf harness parallelism: one circuit per worker process",
    )
    bench.add_argument(
        "--perf-json", metavar="PATH",
        help="write the perf baseline (e.g. BENCH_compact.json); perf experiment only",
    )
    bench.add_argument(
        "--circuits", metavar="NAMES",
        help="comma-separated suite circuit subset for the perf harness",
    )
    bench.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="per-circuit labeling budget for the perf harness",
    )
    bench.add_argument(
        "--trials", type=int, default=20, metavar="N",
        help="yield experiment: fault maps sampled per circuit",
    )
    bench.add_argument("--p-stuck-on", type=float, default=0.002,
                       help="yield experiment: per-cell stuck-on probability")
    bench.add_argument("--p-stuck-off", type=float, default=0.02,
                       help="yield experiment: per-cell stuck-off probability")
    bench.add_argument("--spare-rows", type=int, default=2,
                       help="yield experiment: spare rows on the physical array")
    bench.add_argument("--spare-cols", type=int, default=2,
                       help="yield experiment: spare columns on the physical array")
    bench.add_argument("--seed", type=int, default=0,
                       help="yield experiment: Monte-Carlo seed")
    bench.add_argument("--resynthesize", action="store_true",
                       help="yield experiment: escalate to re-synthesis on failure")
    return parser


def _cmd_synth(args) -> int:
    if args.expr:
        from .expr import parse as parse_expr

        expr = parse_expr(args.expr)
        compact = Compact(
            gamma=args.gamma, method=args.method,
            backend=args.backend, time_limit=args.time_limit,
        )
        result = compact.synthesize_expr(expr, name="f")
        inputs = sorted(expr.variables())
        reference = lambda env: {"f": expr.evaluate(env)}  # noqa: E731
    else:
        netlist = load_circuit(args.circuit, args.format)
        compact = Compact(
            gamma=args.gamma, method=args.method,
            backend=args.backend, time_limit=args.time_limit,
        )
        result = compact.synthesize_netlist(netlist)
        inputs = netlist.inputs
        reference = netlist.evaluate

    design = result.design
    metrics = measure(design)
    print(f"design     : {design.name}")
    print(f"crossbar   : {metrics.rows} x {metrics.cols}")
    print(f"semiperim. : {metrics.semiperimeter}")
    print(f"max dim    : {metrics.max_dimension}")
    print(f"area       : {metrics.area}")
    print(f"memristors : {metrics.memristors} ({metrics.literals} literals)")
    print(f"delay      : {metrics.delay_steps} steps")
    print(f"BDD nodes  : {result.bdd_graph.num_nodes} "
          f"(VH labels: {result.labeling.vh_count})")
    print(f"optimal    : {result.optimal}")
    print(f"synth time : {result.synthesis_time:.3f} s")

    if not args.no_validate:
        report = validate_design(design, reference, inputs)
        status = "OK" if report.ok else f"FAILED at {report.counterexample}"
        print(f"validation : {status} ({report.checked} assignments, "
              f"exhaustive={report.exhaustive})")
        if not report.ok:
            return 1

    if args.render:
        print()
        print(design.render())
    if args.json:
        Path(args.json).write_text(design_to_json(design, indent=2))
        print(f"wrote {args.json}")
    if args.spice:
        env = {name: True for name in inputs}
        Path(args.spice).write_text(to_spice_netlist(design, env))
        print(f"wrote {args.spice}")
    return 0


def _cmd_report(args) -> int:
    netlist = load_circuit(args.circuit, args.format)
    stats = netlist.stats()
    sbdd = build_sbdd(netlist)
    print(f"circuit : {netlist.name}")
    for key, value in stats.items():
        print(f"{key:8s}: {value}")
    print(f"SBDD    : {sbdd.node_count()} nodes, {sbdd.edge_count()} edges")
    return 0


def _cmd_validate(args) -> int:
    design = _load_design(args.design)
    netlist = load_circuit(args.circuit, args.format)
    report = validate_design(design, netlist.evaluate, netlist.inputs)
    if report.ok:
        print(f"OK: {design.name} matches {netlist.name} "
              f"({report.checked} assignments)")
        return 0
    print(f"MISMATCH at {report.counterexample} on {report.mismatched_outputs}")
    return 1


def _cmd_map(args) -> int:
    from .crossbar import measure as _measure
    from .robust import RemapFailure, remap, synthesize_fault_tolerant

    design = _load_design(args.design)
    netlist = load_circuit(args.circuit, args.format)
    fault_map = _load_fault_map(args.fault_map)
    try:
        if args.resynthesize:
            ft = synthesize_fault_tolerant(
                netlist, fault_map,
                max_spare_rows=args.spare_rows, max_spare_cols=args.spare_cols,
                method=args.method, time_limit=args.time_limit, seed=args.seed,
            )
            result = ft.remap
            if ft.resynthesized:
                print(f"resynthesized with variable order {ft.order}")
        else:
            result = remap(
                design, fault_map, netlist.evaluate, netlist.inputs,
                max_spare_rows=args.spare_rows, max_spare_cols=args.spare_cols,
                method=args.method, time_limit=args.time_limit, seed=args.seed,
            )
    except RemapFailure as exc:
        print(f"remap failed: {exc.diagnosis.summary()}", file=sys.stderr)
        return 1
    except ValueError as exc:
        raise _usage_error(str(exc)) from exc

    metrics = _measure(result.design)
    print(f"design     : {result.design.name}")
    print(f"array      : {fault_map.rows} x {fault_map.cols} "
          f"({len(fault_map.faults)} faults, density {fault_map.density:.4f})")
    print(f"crossbar   : {metrics.rows} x {metrics.cols}")
    print(f"stage      : {result.stage} ({result.method})")
    print(f"spares     : {result.spare_rows_used} rows, {result.spare_cols_used} cols")
    print(f"displaced  : {result.displacement} lines")
    print(f"validation : OK ({result.report.checked} assignments, "
          f"exhaustive={result.report.exhaustive})")
    if args.render:
        print()
        print(result.design.render())
    if args.json:
        Path(args.json).write_text(design_to_json(result.design, indent=2))
        print(f"wrote {args.json}")
    return 0


def _cmd_faults(args) -> int:
    from .crossbar import fault_map_to_json, random_fault_map

    if args.rows <= 0 or args.cols <= 0:
        raise _usage_error("rows and cols must be positive")
    fault_map = random_fault_map(
        args.rows, args.cols,
        p_stuck_on=args.p_stuck_on, p_stuck_off=args.p_stuck_off, seed=args.seed,
    )
    payload = fault_map_to_json(fault_map, indent=2)
    if args.out:
        Path(args.out).write_text(payload)
        print(f"wrote {args.out} ({len(fault_map.faults)} faults)")
    else:
        print(payload)
    return 0


def _cmd_bench(args) -> int:
    from . import bench as b

    if args.experiment == "perf":
        return _cmd_bench_perf(args)
    if args.experiment == "yield":
        return _cmd_bench_yield(args)

    runner = {
        "table1": lambda: b.table1_properties(args.tier),
        "table2": lambda: b.table2_gamma(args.tier),
        "table3": lambda: b.table3_sbdd_vs_robdds(args.tier),
        "table4": lambda: b.table4_vs_prior(args.tier),
        "fig9": lambda: b.fig9_pareto(),
        "fig10": lambda: b.fig10_convergence(),
        "fig11": lambda: b.fig11_gaps(),
        "fig12": lambda: b.fig12_power_delay(tier=args.tier),
        "fig13": lambda: b.fig13_vs_magic(tier=args.tier),
    }[args.experiment]
    table, _data = runner()
    print(table.render())
    return 0


def _cmd_bench_perf(args) -> int:
    from .perf.harness import (
        DEFAULT_TIME_LIMIT,
        render_perf_table,
        run_perf_suite,
        write_bench_json,
    )

    names = None
    if args.circuits:
        names = [n.strip() for n in args.circuits.split(",") if n.strip()]
    payload = run_perf_suite(
        tier=args.tier,
        jobs=max(1, args.jobs),
        names=names,
        time_limit=args.time_limit if args.time_limit is not None else DEFAULT_TIME_LIMIT,
    )
    print(render_perf_table(payload).render())
    if args.perf_json:
        path = write_bench_json(args.perf_json, payload)
        print(f"wrote {path}")
    return 0


def _cmd_bench_yield(args) -> int:
    from .robust import render_yield_table, yield_comparison

    names = None
    if args.circuits:
        names = [n.strip() for n in args.circuits.split(",") if n.strip()]
    try:
        results = yield_comparison(
            tier=args.tier,
            names=names,
            trials=args.trials,
            p_stuck_on=args.p_stuck_on,
            p_stuck_off=args.p_stuck_off,
            spare_rows=args.spare_rows,
            spare_cols=args.spare_cols,
            seed=args.seed,
            time_limit=args.time_limit if args.time_limit is not None else 5.0,
            resynthesize=args.resynthesize,
        )
    except ValueError as exc:
        raise _usage_error(str(exc)) from exc
    print(render_yield_table(results).render())
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "synth": _cmd_synth,
        "report": _cmd_report,
        "validate": _cmd_validate,
        "map": _cmd_map,
        "faults": _cmd_faults,
        "bench": _cmd_bench,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
