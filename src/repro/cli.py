"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
synth
    Synthesize a crossbar from a Verilog/BLIF/PLA file (or an
    expression with ``--expr``); print metrics and optionally the
    rendered crossbar, a JSON artifact, or a SPICE deck.
report
    Circuit and (S)BDD statistics for a file.
validate
    Re-check a saved design JSON against its source circuit.
bench
    Run one of the paper's experiments (table1..table4, fig9..fig13)
    and print the resulting table.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .bdd import build_sbdd
from .core import Compact
from .crossbar import design_from_json, design_to_json, measure, to_spice_netlist, validate_design
from .io import read_blif, read_pla, read_verilog

__all__ = ["main", "build_parser"]

_READERS = {
    ".v": read_verilog,
    ".verilog": read_verilog,
    ".blif": read_blif,
    ".pla": read_pla,
}


def load_circuit(path: str, fmt: str = "auto"):
    """Read a circuit file by extension (or forced format)."""
    text = Path(path).read_text()
    if fmt != "auto":
        reader = {"verilog": read_verilog, "blif": read_blif, "pla": read_pla}[fmt]
        return reader(text)
    suffix = Path(path).suffix.lower()
    reader = _READERS.get(suffix)
    if reader is None:
        raise SystemExit(
            f"cannot infer format of {path!r} (use --format verilog|blif|pla)"
        )
    return reader(text)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COMPACT: flow-based crossbar synthesis (DATE 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synth", help="synthesize a crossbar design")
    src = synth.add_mutually_exclusive_group(required=True)
    src.add_argument("circuit", nargs="?", help="Verilog/BLIF/PLA file")
    src.add_argument("--expr", help="Boolean expression, e.g. '(a & b) | c'")
    synth.add_argument("--format", default="auto", choices=["auto", "verilog", "blif", "pla"])
    synth.add_argument("--gamma", type=float, default=0.5)
    synth.add_argument("--method", default="auto", choices=["auto", "mip", "oct", "heuristic"])
    synth.add_argument("--backend", default="highs", choices=["highs", "bnb"])
    synth.add_argument("--time-limit", type=float, default=60.0)
    synth.add_argument("--no-validate", action="store_true", help="skip the equivalence check")
    synth.add_argument("--render", action="store_true", help="print the crossbar grid")
    synth.add_argument("--json", metavar="PATH", help="write the design as JSON")
    synth.add_argument("--spice", metavar="PATH", help="write a SPICE deck (all-ones assignment)")

    report = sub.add_parser("report", help="circuit + BDD statistics")
    report.add_argument("circuit")
    report.add_argument("--format", default="auto", choices=["auto", "verilog", "blif", "pla"])

    validate = sub.add_parser("validate", help="check a saved design JSON")
    validate.add_argument("design", help="design JSON produced by synth --json")
    validate.add_argument("--circuit", required=True, help="source circuit file")
    validate.add_argument("--format", default="auto", choices=["auto", "verilog", "blif", "pla"])

    bench = sub.add_parser("bench", help="run one paper experiment or the perf harness")
    bench.add_argument(
        "experiment",
        nargs="?",
        default="perf",
        choices=[
            "table1", "table2", "table3", "table4",
            "fig9", "fig10", "fig11", "fig12", "fig13",
            "perf",
        ],
        help="paper table/figure, or 'perf' (default) for the perf baseline harness",
    )
    bench.add_argument("--tier", default=None, choices=[None, "fast", "full"])
    bench.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="perf harness parallelism: one circuit per worker process",
    )
    bench.add_argument(
        "--perf-json", metavar="PATH",
        help="write the perf baseline (e.g. BENCH_compact.json); perf experiment only",
    )
    bench.add_argument(
        "--circuits", metavar="NAMES",
        help="comma-separated suite circuit subset for the perf harness",
    )
    bench.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="per-circuit labeling budget for the perf harness",
    )
    return parser


def _cmd_synth(args) -> int:
    if args.expr:
        from .expr import parse as parse_expr

        expr = parse_expr(args.expr)
        compact = Compact(
            gamma=args.gamma, method=args.method,
            backend=args.backend, time_limit=args.time_limit,
        )
        result = compact.synthesize_expr(expr, name="f")
        inputs = sorted(expr.variables())
        reference = lambda env: {"f": expr.evaluate(env)}  # noqa: E731
    else:
        netlist = load_circuit(args.circuit, args.format)
        compact = Compact(
            gamma=args.gamma, method=args.method,
            backend=args.backend, time_limit=args.time_limit,
        )
        result = compact.synthesize_netlist(netlist)
        inputs = netlist.inputs
        reference = netlist.evaluate

    design = result.design
    metrics = measure(design)
    print(f"design     : {design.name}")
    print(f"crossbar   : {metrics.rows} x {metrics.cols}")
    print(f"semiperim. : {metrics.semiperimeter}")
    print(f"max dim    : {metrics.max_dimension}")
    print(f"area       : {metrics.area}")
    print(f"memristors : {metrics.memristors} ({metrics.literals} literals)")
    print(f"delay      : {metrics.delay_steps} steps")
    print(f"BDD nodes  : {result.bdd_graph.num_nodes} "
          f"(VH labels: {result.labeling.vh_count})")
    print(f"optimal    : {result.optimal}")
    print(f"synth time : {result.synthesis_time:.3f} s")

    if not args.no_validate:
        report = validate_design(design, reference, inputs)
        status = "OK" if report.ok else f"FAILED at {report.counterexample}"
        print(f"validation : {status} ({report.checked} assignments, "
              f"exhaustive={report.exhaustive})")
        if not report.ok:
            return 1

    if args.render:
        print()
        print(design.render())
    if args.json:
        Path(args.json).write_text(design_to_json(design, indent=2))
        print(f"wrote {args.json}")
    if args.spice:
        env = {name: True for name in inputs}
        Path(args.spice).write_text(to_spice_netlist(design, env))
        print(f"wrote {args.spice}")
    return 0


def _cmd_report(args) -> int:
    netlist = load_circuit(args.circuit, args.format)
    stats = netlist.stats()
    sbdd = build_sbdd(netlist)
    print(f"circuit : {netlist.name}")
    for key, value in stats.items():
        print(f"{key:8s}: {value}")
    print(f"SBDD    : {sbdd.node_count()} nodes, {sbdd.edge_count()} edges")
    return 0


def _cmd_validate(args) -> int:
    design = design_from_json(Path(args.design).read_text())
    netlist = load_circuit(args.circuit, args.format)
    report = validate_design(design, netlist.evaluate, netlist.inputs)
    if report.ok:
        print(f"OK: {design.name} matches {netlist.name} "
              f"({report.checked} assignments)")
        return 0
    print(f"MISMATCH at {report.counterexample} on {report.mismatched_outputs}")
    return 1


def _cmd_bench(args) -> int:
    from . import bench as b

    if args.experiment == "perf":
        return _cmd_bench_perf(args)

    runner = {
        "table1": lambda: b.table1_properties(args.tier),
        "table2": lambda: b.table2_gamma(args.tier),
        "table3": lambda: b.table3_sbdd_vs_robdds(args.tier),
        "table4": lambda: b.table4_vs_prior(args.tier),
        "fig9": lambda: b.fig9_pareto(),
        "fig10": lambda: b.fig10_convergence(),
        "fig11": lambda: b.fig11_gaps(),
        "fig12": lambda: b.fig12_power_delay(tier=args.tier),
        "fig13": lambda: b.fig13_vs_magic(tier=args.tier),
    }[args.experiment]
    table, _data = runner()
    print(table.render())
    return 0


def _cmd_bench_perf(args) -> int:
    from .perf.harness import (
        DEFAULT_TIME_LIMIT,
        render_perf_table,
        run_perf_suite,
        write_bench_json,
    )

    names = None
    if args.circuits:
        names = [n.strip() for n in args.circuits.split(",") if n.strip()]
    payload = run_perf_suite(
        tier=args.tier,
        jobs=max(1, args.jobs),
        names=names,
        time_limit=args.time_limit if args.time_limit is not None else DEFAULT_TIME_LIMIT,
    )
    print(render_perf_table(payload).render())
    if args.perf_json:
        path = write_bench_json(args.perf_json, payload)
        print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "synth": _cmd_synth,
        "report": _cmd_report,
        "validate": _cmd_validate,
        "bench": _cmd_bench,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
