"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
synth
    Synthesize a crossbar from a Verilog/BLIF/PLA file (or an
    expression with ``--expr``); print metrics and optionally the
    rendered crossbar, a JSON artifact, or a SPICE deck.
report
    Circuit and (S)BDD statistics for a file.
validate
    Re-check a saved design JSON against its source circuit (optionally
    under a fault map, and as a diagnostics JSON document).
check
    Static analysis with stable rule codes: lint netlist files, analyze
    saved design JSONs (schema, VH labeling, reachability, semiperimeter
    lower-bound certificate) and self-lint the repro source tree.
    Exit 0 clean, 1 findings, 2 usage errors.
map
    Defect-aware remapping: place a saved design around the stuck-at
    defects in a fault map (permute -> spares escalation, verified).
faults
    Generate a random stuck-at fault map JSON for a physical array.
serve
    Run the persistent synthesis service (cache + worker pool) on a
    Unix or TCP socket until SIGTERM.
client
    Send ``synth``/``map``/``validate``/``ping``/``stats`` requests to
    a running service; results are byte-identical to single-shot runs.
bench
    Run one of the paper's experiments (table1..table4, fig9..fig13),
    the perf harness, the naive-vs-remapped ``yield`` comparison, or
    the ``service`` trace-replay benchmark.

``synth``, ``map`` and ``validate`` execute through
:mod:`repro.service.jobs` — the same code path service workers run —
so a request answered by ``repro client`` renders exactly the payload
a single-shot invocation would.

Malformed input files (circuit, design JSON, fault map) exit with code
2 and a one-line message on stderr — never a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .bdd import build_sbdd
from .io import read_blif, read_pla, read_verilog

__all__ = ["main", "build_parser"]

_READERS = {
    ".v": read_verilog,
    ".verilog": read_verilog,
    ".blif": read_blif,
    ".pla": read_pla,
}

_FORMAT_BY_SUFFIX = {
    ".v": "verilog",
    ".verilog": "verilog",
    ".blif": "blif",
    ".pla": "pla",
}

#: Error codes that mean "the request itself was wrong" (CLI exit 2).
_USAGE_ERROR_CODES = frozenset({"parse_error", "bad_request", "protocol_error"})


def _usage_error(message: str) -> SystemExit:
    """One-line failure for malformed user input: stderr + exit code 2."""
    print(f"repro: error: {message}", file=sys.stderr)
    return SystemExit(2)


def load_circuit(path: str, fmt: str = "auto"):
    """Read a circuit file by extension (or forced format).

    Malformed or unreadable files exit with code 2 and a one-line
    message (parser errors carry ``file:line:`` context).
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise _usage_error(f"cannot read {path!r}: {exc.strerror or exc}") from exc
    if fmt != "auto":
        reader = {"verilog": read_verilog, "blif": read_blif, "pla": read_pla}[fmt]
    else:
        suffix = Path(path).suffix.lower()
        reader = _READERS.get(suffix)
        if reader is None:
            raise _usage_error(
                f"cannot infer format of {path!r} (use --format verilog|blif|pla)"
            )
    try:
        return reader(text, source=path)
    except ValueError as exc:
        # PlaError/BlifError/VerilogError and netlist semantic errors.
        raise _usage_error(str(exc)) from exc


def _read_file(path: str) -> str:
    try:
        return Path(path).read_text()
    except OSError as exc:
        raise _usage_error(f"cannot read {path!r}: {exc.strerror or exc}") from exc


def _circuit_params(path: str, fmt: str = "auto") -> dict:
    """Read a circuit file into a service request ``circuit`` object.

    The file is read locally (the service never touches the caller's
    filesystem); parse errors surface from the job executor with
    ``file:line`` context via the ``source`` field.
    """
    if fmt == "auto":
        fmt = _FORMAT_BY_SUFFIX.get(Path(path).suffix.lower())
        if fmt is None:
            raise _usage_error(
                f"cannot infer format of {path!r} (use --format verilog|blif|pla)"
            )
    return {"text": _read_file(path), "format": fmt, "source": path}


def _design_params(path: str) -> str:
    """Read a design JSON artifact, validating it client-side first."""
    from .crossbar import design_from_json

    text = _read_file(path)
    try:
        design_from_json(text)
    except (ValueError, KeyError, TypeError) as exc:
        raise _usage_error(f"{path}: not a valid design JSON ({exc})") from exc
    return text


def _fault_map_params(path: str) -> str:
    from .crossbar import fault_map_from_json

    text = _read_file(path)
    try:
        fault_map_from_json(text)
    except (ValueError, KeyError, TypeError) as exc:
        raise _usage_error(f"{path}: not a valid fault map ({exc})") from exc
    return text


# -- payload rendering (shared by single-shot commands and `repro client`) --------


def format_synth_report(result: dict, include_time: bool = True) -> list[str]:
    """The ``repro synth`` summary lines for one synth result payload.

    ``repro client synth`` renders the same payload with
    ``include_time=False``: the wall-clock line is the one field a
    cached response cannot reproduce byte-for-byte.
    """
    metrics = result["metrics"]
    layers = metrics.get("layers", 1)
    lines = [f"design     : {result['design_name']}"]
    if layers > 1:
        lines.append(
            f"crossbar   : {metrics['rows']} x {metrics['cols']} footprint, "
            f"{layers} layers"
        )
    else:
        lines.append(f"crossbar   : {metrics['rows']} x {metrics['cols']}")
    lines += [
        f"semiperim. : {metrics['semiperimeter']}",
        f"max dim    : {metrics['max_dimension']}",
        f"area       : {metrics['area']}",
        f"memristors : {metrics['memristors']} ({metrics['literals']} literals)",
    ]
    if layers > 1:
        lines.append(f"vias       : {metrics.get('vias', 0)}")
    lines += [
        f"delay      : {metrics['delay_steps']} steps",
        f"BDD nodes  : {result['bdd_nodes']} (VH labels: {result['vh_count']})",
        f"optimal    : {result['optimal']}",
    ]
    if include_time:
        lines.append(f"synth time : {result['synth_time_s']:.3f} s")
    validation = result.get("validation")
    if validation is not None:
        status = "OK" if validation["ok"] else f"FAILED at {validation['counterexample']}"
        lines.append(
            f"validation : {status} ({validation['checked']} assignments, "
            f"exhaustive={validation['exhaustive']})"
        )
    return lines


def format_map_report(result: dict) -> list[str]:
    """The ``repro map`` summary lines for one map result payload."""
    array, metrics, validation = result["array"], result["metrics"], result["validation"]
    lines = []
    if result.get("resynthesized"):
        lines.append(f"resynthesized with variable order {tuple(result['order'])}")
    lines += [
        f"design     : {result['design_name']}",
        f"array      : {array['rows']} x {array['cols']} "
        f"({array['faults']} faults, density {array['density']:.4f})",
        f"crossbar   : {metrics['rows']} x {metrics['cols']}",
        f"stage      : {result['stage']} ({result['method']})",
        f"spares     : {result['spare_rows_used']} rows, {result['spare_cols_used']} cols",
        f"displaced  : {result['displacement']} lines",
        f"validation : OK ({validation['checked']} assignments, "
        f"exhaustive={validation['exhaustive']})",
    ]
    return lines


def _execute_or_exit(method: str, params: dict) -> dict:
    """Run one request through the job executor; exit 2 on usage errors.

    Returns the result payload; operational failures (``remap_failed``
    and friends) come back as ``{"__error__": {...}}`` for the caller
    to handle.
    """
    from .service import jobs as service_jobs

    payload = service_jobs.execute(method, params)
    if payload["ok"]:
        return payload["result"]
    error = payload["error"]
    if error["code"] in _USAGE_ERROR_CODES:
        raise _usage_error(error["message"])
    return {"__error__": error}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COMPACT: flow-based crossbar synthesis (DATE 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synth", help="synthesize a crossbar design")
    src = synth.add_mutually_exclusive_group(required=True)
    src.add_argument("circuit", nargs="?", help="Verilog/BLIF/PLA file")
    src.add_argument("--expr", help="Boolean expression, e.g. '(a & b) | c'")
    synth.add_argument("--format", default="auto", choices=["auto", "verilog", "blif", "pla"])
    synth.add_argument("--gamma", type=float, default=0.5)
    synth.add_argument("--method", default="auto", choices=["auto", "mip", "oct", "heuristic"])
    synth.add_argument("--backend", default="highs", choices=["highs", "bnb"])
    synth.add_argument("--time-limit", type=float, default=60.0)
    synth.add_argument("--layers", type=int, default=1, metavar="K",
                       help="memristor layers in the target crossbar (default 1)")
    synth.add_argument("--plane-method", default="auto",
                       choices=["auto", "fold", "milp", "decomposed-milp"],
                       help="plane-assignment solver for --layers >= 2 "
                            "(decomposed-milp lifts the exact-solve size limit)")
    synth.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker threads for the decomposed labeling solve",
    )
    synth.add_argument("--no-validate", action="store_true", help="skip the equivalence check")
    synth.add_argument("--render", action="store_true", help="print the crossbar grid")
    synth.add_argument("--json", metavar="PATH", help="write the design as JSON")
    synth.add_argument("--spice", metavar="PATH", help="write a SPICE deck (all-ones assignment)")

    report = sub.add_parser("report", help="circuit + BDD statistics")
    report.add_argument("circuit")
    report.add_argument("--format", default="auto", choices=["auto", "verilog", "blif", "pla"])

    validate = sub.add_parser("validate", help="check a saved design JSON")
    validate.add_argument("design", help="design JSON produced by synth --json")
    validate.add_argument("--circuit", required=True, help="source circuit file")
    validate.add_argument("--format", default="auto", choices=["auto", "verilog", "blif", "pla"])
    validate.add_argument("--fault-map", metavar="PATH",
                          help="also validate under the stuck-at faults in this map")
    validate.add_argument("--json", action="store_true",
                          help="emit the diagnostics JSON document instead of text")

    check_p = sub.add_parser(
        "check", help="static analysis: netlists, design JSONs, the codebase"
    )
    check_p.add_argument(
        "paths", nargs="*",
        help="netlist files (.pla/.blif/.v), design/fault-map JSONs, or "
             "directories to walk; default with no paths: --self",
    )
    check_p.add_argument("--self", action="store_true", dest="self_lint",
                         help="AST-lint the repro source tree itself")
    check_p.add_argument("--src", metavar="PATH",
                         help="source tree for --self (default: the installed package)")
    check_p.add_argument("--json", action="store_true",
                         help="emit the diagnostics JSON document instead of text")
    check_p.add_argument("--verbose", action="store_true",
                         help="include info-level diagnostics (certificates) in text output")

    remap_p = sub.add_parser(
        "map", help="defect-aware remapping of a design onto a faulty array"
    )
    remap_p.add_argument("design", help="design JSON produced by synth --json")
    remap_p.add_argument("--circuit", required=True, help="source circuit file")
    remap_p.add_argument("--format", default="auto", choices=["auto", "verilog", "blif", "pla"])
    remap_p.add_argument("--fault-map", required=True, metavar="PATH",
                         help="fault map JSON (see 'repro faults')")
    remap_p.add_argument("--spare-rows", type=int, default=None, metavar="N",
                         help="cap on spare rows used (default: all the array offers)")
    remap_p.add_argument("--spare-cols", type=int, default=None, metavar="N")
    remap_p.add_argument("--method", default="auto", choices=["auto", "greedy", "milp"])
    remap_p.add_argument("--time-limit", type=float, default=10.0, metavar="SECONDS",
                         help="MILP fallback budget per stage")
    remap_p.add_argument("--seed", type=int, default=0)
    remap_p.add_argument("--resynthesize", action="store_true",
                         help="escalate to re-synthesis under alternative variable orders")
    remap_p.add_argument("--json", metavar="PATH", help="write the remapped design as JSON")
    remap_p.add_argument("--render", action="store_true", help="print the remapped grid")

    faults_p = sub.add_parser("faults", help="generate a random stuck-at fault map")
    faults_p.add_argument("rows", type=int, help="physical array rows")
    faults_p.add_argument("cols", type=int, help="physical array columns")
    faults_p.add_argument("--p-stuck-on", type=float, default=0.002)
    faults_p.add_argument("--p-stuck-off", type=float, default=0.02)
    faults_p.add_argument("--seed", type=int, default=0)
    faults_p.add_argument("--out", metavar="PATH", help="write here instead of stdout")

    serve_p = sub.add_parser(
        "serve", help="run the persistent synthesis service until SIGTERM"
    )
    serve_p.add_argument("--socket", metavar="PATH", help="Unix socket to listen on")
    serve_p.add_argument("--tcp", metavar="HOST:PORT", help="TCP address to listen on")
    serve_p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: os.cpu_count())",
    )
    serve_p.add_argument("--queue-size", type=int, default=64, metavar="N",
                         help="max active jobs before 'overloaded' rejections")
    serve_p.add_argument("--job-timeout", type=float, default=None, metavar="SECONDS",
                         help="per-job budget; overdue workers are cancelled")
    serve_p.add_argument("--cache-dir", metavar="PATH",
                         help="persist cached results here (default: memory only)")
    serve_p.add_argument("--cache-size", type=int, default=256, metavar="N",
                         help="in-memory LRU capacity; 0 disables caching")
    serve_p.add_argument("--cache-shards", type=int, default=8, metavar="N",
                         help="independently locked cache shards (default 8)")
    serve_p.add_argument("--remote-dir", metavar="PATH",
                         help="shared-directory remote cache tier: nodes pointed at "
                              "the same directory share one result space")
    serve_p.add_argument("--front", default="async", choices=["async", "threaded"],
                         help="socket front: asyncio multiplexer (default) or the "
                              "classic thread-per-connection server")
    serve_p.add_argument("--drain-timeout", type=float, default=30.0, metavar="SECONDS",
                         help="how long a graceful shutdown waits for in-flight jobs")

    client_p = sub.add_parser(
        "client", help="send requests to a running synthesis service"
    )
    client_p.add_argument("--socket", metavar="PATH", help="Unix socket of the server")
    client_p.add_argument("--tcp", metavar="HOST:PORT", help="TCP address of the server")
    client_p.add_argument("--timeout", type=float, default=300.0, metavar="SECONDS",
                          help="transport timeout per request")
    csub = client_p.add_subparsers(dest="client_command", required=True)

    c_synth = csub.add_parser("synth", help="synthesize via the service")
    c_src = c_synth.add_mutually_exclusive_group(required=True)
    c_src.add_argument("circuit", nargs="?", help="Verilog/BLIF/PLA file")
    c_src.add_argument("--expr", help="Boolean expression, e.g. '(a & b) | c'")
    c_synth.add_argument("--format", default="auto", choices=["auto", "verilog", "blif", "pla"])
    c_synth.add_argument("--gamma", type=float, default=0.5)
    c_synth.add_argument("--method", default="auto", choices=["auto", "mip", "oct", "heuristic"])
    c_synth.add_argument("--backend", default="highs", choices=["highs", "bnb"])
    c_synth.add_argument("--time-limit", type=float, default=60.0)
    c_synth.add_argument("--layers", type=int, default=1, metavar="K",
                         help="memristor layers in the target crossbar (default 1)")
    c_synth.add_argument("--plane-method", default="auto",
                         choices=["auto", "fold", "milp", "decomposed-milp"],
                         help="plane-assignment solver for --layers >= 2")
    c_synth.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker threads for the decomposed labeling solve (server side)",
    )
    c_synth.add_argument("--no-validate", action="store_true")
    c_synth.add_argument("--render", action="store_true")
    c_synth.add_argument("--json", metavar="PATH", help="write the design as JSON")

    c_map = csub.add_parser("map", help="defect-aware remap via the service")
    c_map.add_argument("design", help="design JSON produced by synth --json")
    c_map.add_argument("--circuit", required=True)
    c_map.add_argument("--format", default="auto", choices=["auto", "verilog", "blif", "pla"])
    c_map.add_argument("--fault-map", required=True, metavar="PATH")
    c_map.add_argument("--spare-rows", type=int, default=None, metavar="N")
    c_map.add_argument("--spare-cols", type=int, default=None, metavar="N")
    c_map.add_argument("--method", default="auto", choices=["auto", "greedy", "milp"])
    c_map.add_argument("--time-limit", type=float, default=10.0, metavar="SECONDS")
    c_map.add_argument("--seed", type=int, default=0)
    c_map.add_argument("--resynthesize", action="store_true")
    c_map.add_argument("--json", metavar="PATH")
    c_map.add_argument("--render", action="store_true")

    c_validate = csub.add_parser("validate", help="check a design JSON via the service")
    c_validate.add_argument("design")
    c_validate.add_argument("--circuit", required=True)
    c_validate.add_argument("--format", default="auto", choices=["auto", "verilog", "blif", "pla"])
    c_validate.add_argument("--fault-map", metavar="PATH",
                            help="also validate under the stuck-at faults in this map")
    c_validate.add_argument("--json", action="store_true",
                            help="emit the diagnostics JSON document instead of text")

    csub.add_parser("ping", help="liveness check")
    csub.add_parser("stats", help="server, engine and cache statistics (JSON)")

    camp = sub.add_parser(
        "campaign",
        help="fleet-scale yield campaign: sample fault maps, batch-validate "
             "through the service, emit yield curve + provisioning table",
    )
    camp.add_argument("circuit", help="benchmark-suite circuit name (e.g. c17, rca8)")
    camp.add_argument("--samples", type=int, default=1000, metavar="N",
                      help="fault maps to sample (default: 1000)")
    camp.add_argument("--shard-size", type=int, default=100, metavar="N",
                      help="fault maps per batch request / checkpoint unit")
    camp.add_argument("--p-stuck-on", type=float, default=0.002)
    camp.add_argument("--p-stuck-off", type=float, default=0.02)
    camp.add_argument("--spare-rows", type=int, default=0, metavar="N",
                      help="spare rows on the sampled physical array")
    camp.add_argument("--spare-cols", type=int, default=0, metavar="N",
                      help="spare columns on the sampled physical array")
    camp.add_argument("--remap", action="store_true",
                      help="also drive failing maps through the defect-aware remapper")
    camp.add_argument("--seed", type=int, default=0)
    camp.add_argument("--checkpoint", metavar="PATH",
                      help="crash-safe shard journal; rerun with the same path to resume")
    camp.add_argument("--streams", type=int, default=2, metavar="N",
                      help="concurrent client connections")
    camp.add_argument("--socket", metavar="PATH",
                      help="Unix socket of a running server (default: in-process server)")
    camp.add_argument("--tcp", metavar="HOST:PORT",
                      help="TCP address of a running server (default: in-process server)")
    camp.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="worker processes for the in-process server")
    camp.add_argument("--timeout", type=float, default=300.0, metavar="SECONDS",
                      help="per-request deadline")
    camp.add_argument("--json", action="store_true",
                      help="emit the full report as JSON instead of tables")

    bench = sub.add_parser("bench", help="run one paper experiment or the perf harness")
    bench.add_argument(
        "experiment",
        nargs="?",
        default="perf",
        choices=[
            "table1", "table2", "table3", "table4",
            "fig9", "fig10", "fig11", "fig12", "fig13",
            "perf", "yield", "service", "campaign",
        ],
        help="paper table/figure, 'perf' (default) for the perf baseline harness, "
             "'yield' for the naive-vs-remapped fault-recovery comparison, "
             "'service' for the synthesis-service trace replay, or 'campaign' "
             "for the clean-vs-chaos yield-campaign harness",
    )
    bench.add_argument("--tier", default=None, choices=[None, "fast", "full"])
    bench.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the perf harness / service benchmark "
             "(default: os.cpu_count())",
    )
    bench.add_argument(
        "--solver-jobs", type=int, default=1, metavar="N",
        help="worker threads for the labeling solve inside each circuit "
             "(decomposed cyclic cores / kernel components); perf experiment only",
    )
    bench.add_argument(
        "--perf-json", metavar="PATH",
        help="write the perf baseline (e.g. BENCH_compact.json); with 'service "
             "--load' instead merge the load report into an existing baseline",
    )
    bench.add_argument(
        "--layer-sweep", metavar="K1,K2,...", dest="layer_sweep",
        help="also run the semiperimeter-vs-layer-count sweep at these "
             "memristor layer counts (e.g. 1,2,3); perf experiment only",
    )
    bench.add_argument(
        "--circuits", metavar="NAMES",
        help="comma-separated suite circuit subset for the perf harness",
    )
    bench.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="per-circuit labeling budget for the perf harness",
    )
    bench.add_argument(
        "--trials", type=int, default=20, metavar="N",
        help="yield experiment: fault maps sampled per circuit",
    )
    bench.add_argument("--p-stuck-on", type=float, default=0.002,
                       help="yield experiment: per-cell stuck-on probability")
    bench.add_argument("--p-stuck-off", type=float, default=0.02,
                       help="yield experiment: per-cell stuck-off probability")
    bench.add_argument("--spare-rows", type=int, default=2,
                       help="yield experiment: spare rows on the physical array")
    bench.add_argument("--spare-cols", type=int, default=2,
                       help="yield experiment: spare columns on the physical array")
    bench.add_argument("--seed", type=int, default=0,
                       help="yield experiment: Monte-Carlo seed")
    bench.add_argument("--resynthesize", action="store_true",
                       help="yield experiment: escalate to re-synthesis on failure")
    bench.add_argument("--requests", type=int, default=200, metavar="N",
                       help="service experiment: trace length")
    bench.add_argument("--repeat-rate", type=float, default=0.5, metavar="R",
                       help="service experiment: fraction of repeated requests")
    bench.add_argument("--clients", type=int, default=4, metavar="N",
                       help="service experiment: concurrent client connections")
    bench.add_argument("--trace", metavar="PATH",
                       help="service experiment: replay this recorded trace JSON")
    bench.add_argument("--load", metavar="MIX", default=None,
                       choices=[None, "cached", "synth-heavy", "validate-heavy",
                                "fault-storm"],
                       help="service experiment: run the fleet load generator with "
                            "this mix instead of the trace replay")
    bench.add_argument("--connections", type=int, default=64, metavar="N",
                       help="load generator: concurrent connections")
    bench.add_argument("--requests-per-conn", type=int, default=50, metavar="N",
                       help="load generator: requests per connection")
    bench.add_argument("--pipeline", type=int, default=8, metavar="N",
                       help="load generator: frames kept in flight per connection")
    bench.add_argument("--node-count", type=int, default=1, metavar="N",
                       help="load generator: in-process service nodes sharing one "
                            "remote cache tier")
    bench.add_argument("--front", default="async",
                       choices=["async", "threaded", "both"],
                       help="load generator: which socket front to drive; 'both' "
                            "runs threaded then async and reports the speedup")
    bench.add_argument("--rps-floor", type=float, default=None, metavar="RPS",
                       help="load generator: exit 1 when throughput lands below "
                            "this floor (CI regression gate)")
    bench.add_argument("--max-error-rate", type=float, default=None, metavar="R",
                       help="load generator: exit 1 when the error rate exceeds "
                            "this fraction")
    bench.add_argument("--socket", metavar="PATH",
                       help="service experiment: replay against this running server")
    bench.add_argument("--tcp", metavar="HOST:PORT",
                       help="service experiment: replay against this running server")
    bench.add_argument("--samples", type=int, default=200, metavar="N",
                       help="campaign experiment: fault maps sampled")
    bench.add_argument("--shard-size", type=int, default=25, metavar="N",
                       help="campaign experiment: fault maps per shard")
    bench.add_argument("--chaos", action="store_true",
                       help="campaign experiment: rerun under injected worker kills, "
                            "dropped connections and corrupted cache/checkpoint files, "
                            "asserting a bit-identical report")
    return parser


def _synth_params(args) -> dict:
    params: dict = {
        "gamma": args.gamma,
        "method": args.method,
        "backend": args.backend,
        "time_limit": args.time_limit,
        "solver_jobs": max(1, args.jobs),
        "validate": not args.no_validate,
        "layers": args.layers,
        "plane_method": args.plane_method,
    }
    if args.expr:
        params["expr"] = args.expr
    else:
        params["circuit"] = _circuit_params(args.circuit, args.format)
    return params


def _finish_synth(result: dict, args, include_time: bool) -> int:
    """Render a synth result payload and write requested artifacts."""
    print("\n".join(format_synth_report(result, include_time=include_time)))
    validation = result.get("validation")
    rc = 1 if validation is not None and not validation["ok"] else 0
    if args.render:
        from .crossbar import design_from_json

        print()
        print(design_from_json(result["design_json"]).render())
    if args.json:
        Path(args.json).write_text(result["design_json"])
        print(f"wrote {args.json}")
    if getattr(args, "spice", None):
        from .crossbar import design_from_json, to_spice_netlist

        env = {name: True for name in result["inputs"]}
        design = design_from_json(result["design_json"])
        Path(args.spice).write_text(to_spice_netlist(design, env))
        print(f"wrote {args.spice}")
    return rc


def _cmd_synth(args) -> int:
    result = _execute_or_exit("synth", _synth_params(args))
    if "__error__" in result:
        print(f"repro: error: {result['__error__']['message']}", file=sys.stderr)
        return 1
    return _finish_synth(result, args, include_time=True)


def _cmd_report(args) -> int:
    netlist = load_circuit(args.circuit, args.format)
    stats = netlist.stats()
    sbdd = build_sbdd(netlist)
    print(f"circuit : {netlist.name}")
    for key, value in stats.items():
        print(f"{key:8s}: {value}")
    print(f"SBDD    : {sbdd.node_count()} nodes, {sbdd.edge_count()} edges")
    return 0


def _validate_params(args) -> dict:
    params = {
        "design_json": _design_params(args.design),
        "circuit": _circuit_params(args.circuit, args.format),
    }
    if getattr(args, "fault_map", None):
        params["fault_map"] = _fault_map_params(args.fault_map)
    return params


def _finish_validate(result: dict, args=None) -> int:
    if args is not None and getattr(args, "json", False):
        from .check import Diagnostic, Report

        report = Report(
            (Diagnostic.from_dict(d) for d in result.get("diagnostics", [])),
            tool="repro validate",
        )
        print(report.render_json())
        return report.exit_code
    validation = result["validation"]
    rc = 0
    if validation["ok"]:
        print(f"OK: {result['design_name']} matches {result['circuit_name']} "
              f"({validation['checked']} assignments)")
    else:
        print(f"MISMATCH at {validation['counterexample']} "
              f"on {tuple(validation['mismatched_outputs'])}")
        rc = 1
    under_faults = result.get("validation_under_faults")
    if under_faults is not None:
        if under_faults["ok"]:
            print(f"OK under faults ({under_faults['checked']} assignments)")
        else:
            print(f"MISMATCH under faults at {under_faults['counterexample']} "
                  f"on {tuple(under_faults['mismatched_outputs'])}")
            rc = 1
    return rc


def _cmd_validate(args) -> int:
    result = _execute_or_exit("validate", _validate_params(args))
    if "__error__" in result:
        print(f"repro: error: {result['__error__']['message']}", file=sys.stderr)
        return 1
    return _finish_validate(result, args)


def _cmd_check(args) -> int:
    from .check import UnknownInputError, run_check

    self_lint = args.self_lint or not args.paths
    try:
        report = run_check(args.paths, self_lint=self_lint, src_root=args.src)
    except UnknownInputError as exc:
        raise _usage_error(str(exc)) from exc
    if args.json:
        print(report.render_json())
    else:
        print(report.render_text(verbose=args.verbose))
    return report.exit_code


def _map_params(args) -> dict:
    return {
        "design_json": _design_params(args.design),
        "circuit": _circuit_params(args.circuit, args.format),
        "fault_map": _fault_map_params(args.fault_map),
        "spare_rows": args.spare_rows,
        "spare_cols": args.spare_cols,
        "method": args.method,
        "time_limit": args.time_limit,
        "seed": args.seed,
        "resynthesize": args.resynthesize,
    }


def _finish_map(result: dict, args) -> int:
    """Render a map result payload; handles the remap-failed error."""
    if "__error__" in result:
        error = result["__error__"]
        prefix = "remap failed" if error["code"] == "remap_failed" else "repro: error"
        print(f"{prefix}: {error['message']}", file=sys.stderr)
        return 1
    print("\n".join(format_map_report(result)))
    if args.render:
        from .crossbar import design_from_json

        print()
        print(design_from_json(result["design_json"]).render())
    if args.json:
        Path(args.json).write_text(result["design_json"])
        print(f"wrote {args.json}")
    return 0


def _cmd_map(args) -> int:
    return _finish_map(_execute_or_exit("map", _map_params(args)), args)


def _cmd_faults(args) -> int:
    from .crossbar import fault_map_to_json, random_fault_map

    if args.rows <= 0 or args.cols <= 0:
        raise _usage_error("rows and cols must be positive")
    fault_map = random_fault_map(
        args.rows, args.cols,
        p_stuck_on=args.p_stuck_on, p_stuck_off=args.p_stuck_off, seed=args.seed,
    )
    payload = fault_map_to_json(fault_map, indent=2)
    if args.out:
        Path(args.out).write_text(payload)
        print(f"wrote {args.out} ({len(fault_map.faults)} faults)")
    else:
        print(payload)
    return 0


def _cmd_bench(args) -> int:
    from . import bench as b

    if args.experiment == "perf":
        return _cmd_bench_perf(args)
    if args.experiment == "yield":
        return _cmd_bench_yield(args)
    if args.experiment == "service":
        return _cmd_bench_service(args)
    if args.experiment == "campaign":
        return _cmd_bench_campaign(args)

    runner = {
        "table1": lambda: b.table1_properties(args.tier),
        "table2": lambda: b.table2_gamma(args.tier),
        "table3": lambda: b.table3_sbdd_vs_robdds(args.tier),
        "table4": lambda: b.table4_vs_prior(args.tier),
        "fig9": lambda: b.fig9_pareto(),
        "fig10": lambda: b.fig10_convergence(),
        "fig11": lambda: b.fig11_gaps(),
        "fig12": lambda: b.fig12_power_delay(tier=args.tier),
        "fig13": lambda: b.fig13_vs_magic(tier=args.tier),
    }[args.experiment]
    table, _data = runner()
    print(table.render())
    return 0


def _cmd_bench_perf(args) -> int:
    from .perf.harness import (
        DEFAULT_TIME_LIMIT,
        render_layer_sweep_table,
        render_perf_table,
        run_layer_sweep,
        run_perf_suite,
        write_bench_json,
    )

    names = None
    if args.circuits:
        names = [n.strip() for n in args.circuits.split(",") if n.strip()]
    time_limit = args.time_limit if args.time_limit is not None else DEFAULT_TIME_LIMIT
    payload = run_perf_suite(
        tier=args.tier,
        jobs=_resolve_jobs(args.jobs),
        names=names,
        time_limit=time_limit,
        solver_jobs=max(1, args.solver_jobs),
    )
    print(render_perf_table(payload).render())
    if args.layer_sweep:
        try:
            layers = tuple(
                int(k.strip()) for k in args.layer_sweep.split(",") if k.strip()
            )
        except ValueError:
            raise _usage_error(
                f"--layer-sweep wants comma-separated integers, got {args.layer_sweep!r}"
            ) from None
        try:
            payload["layer_sweep"] = run_layer_sweep(
                names=names,
                tier=args.tier,
                layers=layers,
                jobs=_resolve_jobs(args.jobs),
                time_limit=time_limit,
            )
        except ValueError as exc:
            raise _usage_error(str(exc)) from exc
        print()
        print(render_layer_sweep_table(payload["layer_sweep"]).render())
    if args.perf_json:
        path = write_bench_json(args.perf_json, payload)
        print(f"wrote {path}")
    return 0


def _cmd_bench_yield(args) -> int:
    from .robust import render_yield_table, yield_comparison

    names = None
    if args.circuits:
        names = [n.strip() for n in args.circuits.split(",") if n.strip()]
    try:
        results = yield_comparison(
            tier=args.tier,
            names=names,
            trials=args.trials,
            p_stuck_on=args.p_stuck_on,
            p_stuck_off=args.p_stuck_off,
            spare_rows=args.spare_rows,
            spare_cols=args.spare_cols,
            seed=args.seed,
            time_limit=args.time_limit if args.time_limit is not None else 5.0,
            resynthesize=args.resynthesize,
        )
    except ValueError as exc:
        raise _usage_error(str(exc)) from exc
    print(render_yield_table(results).render())
    return 0


def _resolve_jobs(jobs: int | None) -> int:
    """``--jobs`` resolution: explicit value, else every core."""
    if jobs is not None:
        return max(1, jobs)
    return os.cpu_count() or 1


def _parse_address_or_exit(socket_path: str | None, tcp: str | None):
    from .service import parse_address

    try:
        return parse_address(socket_path, tcp)
    except ValueError as exc:
        raise _usage_error(str(exc)) from exc


def _cmd_serve(args) -> int:
    from .service import DirectoryRemoteTier, ServiceServer, ThreadedServiceServer

    address = _parse_address_or_exit(args.socket, args.tcp)
    if args.cache_size < 0:
        raise _usage_error("--cache-size must be >= 0")
    if args.cache_shards < 1:
        raise _usage_error("--cache-shards must be >= 1")
    remote = DirectoryRemoteTier(args.remote_dir) if args.remote_dir else None
    server_cls = ServiceServer if args.front == "async" else ThreadedServiceServer
    try:
        server = server_cls(
            address,
            jobs=_resolve_jobs(args.jobs),
            queue_size=args.queue_size,
            job_timeout=args.job_timeout,
            cache_dir=args.cache_dir,
            cache_size=args.cache_size,
            cache_shards=args.cache_shards,
            remote_tier=remote,
            drain_timeout=args.drain_timeout,
        )
    except ValueError as exc:
        raise _usage_error(str(exc)) from exc
    try:
        server.start()
    except OSError as exc:
        raise _usage_error(f"cannot bind {args.socket or args.tcp}: {exc}") from exc
    print(f"repro service listening on {server.describe_address()} "
          f"({args.front} front, {server.engine.max_workers} workers, "
          f"cache={'on' if server.cache else 'off'}"
          f"{', remote tier' if remote else ''})")
    try:
        server.serve_until_signal()
    finally:
        server.stop()
    print("repro service drained")
    return 0


def _cmd_client(args) -> int:
    import json as json_mod

    from .service import ServiceClient, ServiceClientError, ServiceUnavailable

    address = _parse_address_or_exit(args.socket, args.tcp)
    builders = {
        "synth": lambda: ("synth", _synth_params(args)),
        "map": lambda: ("map", _map_params(args)),
        "validate": lambda: ("validate", _validate_params(args)),
        "ping": lambda: ("ping", {}),
        "stats": lambda: ("stats", {}),
    }
    method, params = builders[args.client_command]()
    try:
        if address[0] == "unix":
            client = ServiceClient(socket_path=address[1], timeout=args.timeout)
        else:
            client = ServiceClient(tcp=(address[1], address[2]), timeout=args.timeout)
    except ServiceUnavailable as exc:
        raise _usage_error(str(exc)) from exc
    with client:
        try:
            result = client.result(method, params)
        except ServiceUnavailable as exc:
            raise _usage_error(str(exc)) from exc
        except ServiceClientError as exc:
            if exc.code in _USAGE_ERROR_CODES:
                raise _usage_error(exc.message) from exc
            if method == "map" and exc.code == "remap_failed":
                print(f"remap failed: {exc.message}", file=sys.stderr)
            else:
                print(f"repro: service error: {exc.code}: {exc.message}",
                      file=sys.stderr)
            return 1
    if method == "ping":
        print("pong")
        return 0
    if method == "stats":
        print(json_mod.dumps(result, indent=2, sort_keys=True))
        return 0
    if method == "synth":
        return _finish_synth(result, args, include_time=False)
    if method == "map":
        return _finish_map(result, args)
    return _finish_validate(result, args)


def _cmd_campaign(args) -> int:
    import contextlib
    import json as json_mod

    from .campaign import CampaignConfig, CheckpointError, run_campaign
    from .service import RetryPolicy, ServiceClient, ServiceClientError, ServiceUnavailable

    try:
        config = CampaignConfig.from_suite(
            args.circuit,
            samples=args.samples, shard_size=args.shard_size,
            p_stuck_on=args.p_stuck_on, p_stuck_off=args.p_stuck_off,
            spare_rows=args.spare_rows, spare_cols=args.spare_cols,
            remap=args.remap, seed=args.seed,
        )
    except (KeyError, ValueError) as exc:
        raise _usage_error(str(exc).strip('"')) from exc
    if args.streams < 1:
        raise _usage_error("--streams must be >= 1")
    retry = RetryPolicy(seed=args.seed)
    with contextlib.ExitStack() as stack:
        if args.socket or args.tcp:
            address = _parse_address_or_exit(args.socket, args.tcp)
        else:
            from .service import ServiceServer

            server = stack.enter_context(ServiceServer(
                ("tcp", "127.0.0.1", 0), jobs=_resolve_jobs(args.jobs)
            ))
            address = server.address

        def client_factory() -> ServiceClient:
            if address[0] == "unix":
                return ServiceClient(
                    socket_path=address[1], timeout=args.timeout, retry=retry
                )
            return ServiceClient(
                tcp=(address[1], address[2]), timeout=args.timeout, retry=retry
            )

        try:
            report = run_campaign(
                config, client_factory,
                checkpoint=args.checkpoint, streams=args.streams,
                request_timeout=args.timeout,
            )
        except CheckpointError as exc:
            raise _usage_error(str(exc)) from exc
        except ServiceUnavailable as exc:
            raise _usage_error(str(exc)) from exc
        except ServiceClientError as exc:
            if exc.code in _USAGE_ERROR_CODES:
                raise _usage_error(exc.message) from exc
            print(f"repro: service error: {exc.code}: {exc.message}", file=sys.stderr)
            return 1
    if args.json:
        print(json_mod.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def _cmd_bench_campaign(args) -> int:
    from .campaign.bench import run_campaign_bench

    try:
        summary = run_campaign_bench(
            circuit=(args.circuits.split(",")[0].strip() if args.circuits else "c17"),
            samples=args.samples, shard_size=args.shard_size,
            p_stuck_on=args.p_stuck_on, p_stuck_off=args.p_stuck_off,
            spare_rows=args.spare_rows, spare_cols=args.spare_cols,
            seed=args.seed, chaos=args.chaos,
        )
    except (KeyError, ValueError) as exc:
        raise _usage_error(str(exc).strip('"')) from exc
    print(
        f"campaign bench: {summary['circuit']}  samples={summary['samples']}  "
        f"yield={summary['yield_fraction']:.4f}"
    )
    if not args.chaos:
        return 0
    tally: dict[str, int] = {}
    for event in summary["chaos_events"]:
        tally[event["kind"]] = tally.get(event["kind"], 0) + 1
    struck = ", ".join(f"{k}={v}" for k, v in sorted(tally.items())) or "none"
    print(f"chaos: strikes: {struck}; "
          f"checkpoint lines corrupted={summary['checkpoint_lines_corrupted']}")
    if summary["match"]:
        print("match: OK — chaos report is bit-identical to the clean run")
        return 0
    print("match: FAILED — chaos run diverged from the clean run", file=sys.stderr)
    return 1


def _cmd_bench_service(args) -> int:
    if args.load:
        return _cmd_bench_service_load(args)
    from .service.bench import render_service_table, run_service_bench

    connect = None
    if args.socket or args.tcp:
        connect = _parse_address_or_exit(args.socket, args.tcp)
    try:
        payload = run_service_bench(
            requests=args.requests,
            repeat_rate=args.repeat_rate,
            clients=args.clients,
            jobs=_resolve_jobs(args.jobs),
            seed=args.seed,
            connect=connect,
            trace_path=args.trace,
        )
    except (ValueError, OSError) as exc:
        raise _usage_error(str(exc)) from exc
    print(render_service_table(payload).render())
    return 0


def _cmd_bench_service_load(args) -> int:
    """The fleet load generator path of ``repro bench service --load``."""
    import json as json_mod

    from .service.loadgen import compare_fronts, render_load_table, run_load

    connects = None
    if args.socket or args.tcp:
        connects = [_parse_address_or_exit(args.socket, args.tcp)]
    try:
        if args.front == "both":
            if connects is not None:
                raise _usage_error("--front both starts its own servers; "
                                   "drop --socket/--tcp")
            block = compare_fronts(
                mix=args.load, connections=args.connections,
                requests_per_conn=args.requests_per_conn,
                pipeline=args.pipeline, jobs=args.jobs, seed=args.seed,
            )
            gated = block["async"]
            print(render_load_table(block["threaded"]).render())
            print()
            print(render_load_table(gated).render())
            print(f"\nasync over threaded: {block['speedup_rps']:.2f}x RPS")
        else:
            block = gated = run_load(
                mix=args.load, connections=args.connections,
                requests_per_conn=args.requests_per_conn,
                pipeline=args.pipeline, node_count=args.node_count,
                front=args.front, jobs=args.jobs, seed=args.seed,
                connects=connects,
            )
            print(render_load_table(gated).render())
    except (ValueError, OSError) as exc:
        raise _usage_error(str(exc)) from exc

    if args.perf_json:
        from .perf import validate_bench_payload

        path = Path(args.perf_json)
        payload = json_mod.loads(path.read_text())
        payload["service_load"] = block
        validate_bench_payload(payload)
        path.write_text(json_mod.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")

    failures = []
    if args.rps_floor is not None and gated["rps"] < args.rps_floor:
        failures.append(
            f"throughput {gated['rps']:.1f} req/s is below the "
            f"{args.rps_floor:g} req/s floor"
        )
    if args.max_error_rate is not None and gated["error_rate"] > args.max_error_rate:
        failures.append(
            f"error rate {gated['error_rate']:.4f} exceeds the "
            f"{args.max_error_rate:g} ceiling"
        )
    for failure in failures:
        print(f"repro: bench service: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "synth": _cmd_synth,
        "report": _cmd_report,
        "validate": _cmd_validate,
        "check": _cmd_check,
        "map": _cmd_map,
        "faults": _cmd_faults,
        "serve": _cmd_serve,
        "client": _cmd_client,
        "campaign": _cmd_campaign,
        "bench": _cmd_bench,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
