"""COMPACT core: pre-processing, VH-labeling, crossbar mapping, facade."""

from .compact import Compact, CompactResult
from .constrained import ConstraintInfeasibleError, label_constrained
from .klabel import KLabel, KLabeling, assign_planes, lift_labeling
from .labeling import Label, LabelingError, VHLabeling
from .mapping import map_to_crossbar
from .mapping3d import map_to_crossbar3d
from .preprocess import BddGraph, preprocess
from .semiperimeter import label_heuristic, label_min_semiperimeter
from .tiling import TiledDesign, partition_outputs, tile_netlist
from .weighted import build_vh_model, label_weighted

__all__ = [
    "Compact",
    "CompactResult",
    "label_constrained",
    "ConstraintInfeasibleError",
    "TiledDesign",
    "partition_outputs",
    "tile_netlist",
    "Label",
    "VHLabeling",
    "LabelingError",
    "KLabel",
    "KLabeling",
    "assign_planes",
    "lift_labeling",
    "map_to_crossbar3d",
    "preprocess",
    "BddGraph",
    "label_min_semiperimeter",
    "label_heuristic",
    "label_weighted",
    "build_vh_model",
    "map_to_crossbar",
]
