"""The COMPACT framework facade.

Ties the full pipeline together (Figure 3 of the paper):

    netlist/exprs --> (S)BDD --> graph pre-processing --> VH-labeling
                  --> crossbar mapping --> CrossbarDesign

Typical use::

    from repro import Compact
    from repro.circuits import priority_encoder

    result = Compact(gamma=0.5).synthesize_netlist(priority_encoder(16))
    print(result.design.semiperimeter, result.design.max_dimension)
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from ..bdd import SBDD, build_sbdd, sbdd_from_exprs
from ..circuits.netlist import Netlist
from ..crossbar.design import CrossbarDesign
from ..expr import Expr
from ..perf import StageTimer
from .klabel import PLANE_METHODS, KLabeling, assign_planes
from .labeling import VHLabeling
from .mapping import map_to_crossbar
from .mapping3d import map_to_crossbar3d
from .preprocess import BddGraph, preprocess
from .semiperimeter import label_heuristic, label_min_semiperimeter
from .weighted import label_weighted

__all__ = ["Compact", "CompactResult"]


@dataclass
class CompactResult:
    """Everything COMPACT produced for one function."""

    design: CrossbarDesign
    labeling: VHLabeling | KLabeling
    bdd_graph: BddGraph
    sbdd: SBDD
    #: Per-stage wall-clock seconds: bdd, preprocess, labeling, mapping.
    times: dict[str, float] = field(default_factory=dict)
    #: Perf snapshot: op-cache stats, peak table size, reorder swaps.
    perf: dict = field(default_factory=dict)

    @property
    def synthesis_time(self) -> float:
        return sum(self.times.values())

    @property
    def optimal(self) -> bool:
        return bool(self.labeling.meta.get("optimal", False))

    @property
    def variable_order(self) -> tuple[str, ...]:
        """The BDD variable order the design was synthesized under.

        The fault-tolerant pipeline (:mod:`repro.robust.pipeline`)
        records this per attempt: different orders produce structurally
        different crossbars, which is what lets re-synthesis route
        around fault maps that block the default design.
        """
        return self.sbdd.manager.var_order


class Compact:
    """COMPACT synthesis flow with the paper's knobs.

    Parameters
    ----------
    gamma:
        Weight of the semiperimeter vs the maximum dimension in the
        objective ``gamma*S + (1-gamma)*D`` (paper default 0.5).
    alignment:
        Force the outputs and the input feed onto wordlines (Eq. 7;
        the paper includes these constraints by default).
    method:
        ``"mip"`` (Method B, exact for any gamma), ``"oct"`` (Method A,
        minimal semiperimeter — the gamma=1 special case), ``"heuristic"``
        (greedy OCT, for scalability), or ``"auto"`` (``oct`` when
        gamma == 1; otherwise ``oct`` first, returned outright when its
        result is provably optimal for every gamma — minimal ``S`` with
        ``D == ceil(S/2)`` — else ``mip``, warm-started by it).
    backend:
        MILP backend: ``"highs"`` (fast) or ``"bnb"`` (pure Python,
        records convergence traces).
    time_limit:
        Wall-clock budget in seconds for the labeling solve.
    jobs:
        Worker threads for the decomposed OCT/vertex-cover solves
        (independent cyclic cores and kernel components in parallel).
    layers:
        Memristor layers in the target crossbar (FLOW-3D style).  The
        default 1 is the paper's planar flow; ``layers >= 2`` stacks the
        design over ``layers + 1`` alternating nanowire planes, reusing
        the 2D labeling as the stitch/bipartition stage and folding its
        sides across same-orientation planes, which can only shrink the
        footprint semiperimeter.
    plane_method:
        Stage-2 plane-assignment solver for ``layers >= 2``:
        ``"auto"`` (fold + the exact MILP on graphs up to
        :data:`~repro.core.klabel.MILP_NODE_LIMIT` nodes), ``"fold"``
        (heuristic only), ``"milp"`` (monolithic MILP regardless of
        size) or ``"decomposed-milp"`` (kernelized MILP — lifts the
        node-count ceiling).  Ignored for planar synthesis.
    """

    def __init__(
        self,
        gamma: float = 0.5,
        alignment: bool = True,
        method: str = "auto",
        backend: str = "highs",
        time_limit: float | None = None,
        jobs: int = 1,
        layers: int = 1,
        plane_method: str = "auto",
    ):
        if method not in ("auto", "mip", "oct", "heuristic"):
            raise ValueError(f"unknown method {method!r}")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must lie in [0, 1]")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if not isinstance(layers, int) or layers < 1:
            raise ValueError("layers must be an integer >= 1")
        if plane_method not in PLANE_METHODS:
            raise ValueError(
                f"plane_method must be one of {'/'.join(PLANE_METHODS)}, "
                f"got {plane_method!r}"
            )
        self.gamma = gamma
        self.alignment = alignment
        self.method = method
        self.backend = backend
        self.time_limit = time_limit
        self.jobs = jobs
        self.layers = layers
        self.plane_method = plane_method

    # -- entry points ------------------------------------------------------------
    def synthesize_netlist(
        self,
        netlist: Netlist,
        order: Sequence[str] | None = None,
    ) -> CompactResult:
        """Synthesize a crossbar for a gate-level netlist (via an SBDD)."""
        timer = StageTimer()
        with timer.stage("bdd"):
            sbdd = build_sbdd(netlist, order=order)
        result = self.synthesize_sbdd(sbdd)
        result.times["bdd"] = timer.times["bdd"]
        return result

    def synthesize_expr(
        self,
        expr: Expr | Mapping[str, Expr],
        order: Sequence[str] | None = None,
        name: str = "f",
    ) -> CompactResult:
        """Synthesize a crossbar for one expression or a dict of them."""
        exprs = {name: expr} if isinstance(expr, Expr) else dict(expr)
        timer = StageTimer()
        with timer.stage("bdd"):
            sbdd = sbdd_from_exprs(exprs, order=order, name=name)
        result = self.synthesize_sbdd(sbdd)
        result.times["bdd"] = timer.times["bdd"]
        return result

    def synthesize_bdd_graph(
        self, bdd_graph: BddGraph, name: str = "design"
    ) -> tuple[CrossbarDesign, VHLabeling | KLabeling, dict[str, float]]:
        """Label and map an already-preprocessed BDD graph.

        Used for non-SBDD representations (e.g. the merged per-output
        ROBDD graph of prior work in the Table III comparison).  Returns
        ``(design, labeling, stage_times)``.
        """
        timer = StageTimer()
        design, labeling = self._label_and_map(bdd_graph, name, timer)
        return design, labeling, timer.times

    def synthesize_sbdd(self, sbdd: SBDD) -> CompactResult:
        """Synthesize a crossbar for an already-built (S)BDD."""
        timer = StageTimer()

        with timer.stage("preprocess"):
            bdd_graph = preprocess(sbdd)
        design, labeling = self._label_and_map(bdd_graph, sbdd.name, timer)

        manager = sbdd.manager
        perf = {
            "bdd_table_size": manager.table_size(),
            "sbdd_nodes": sbdd.node_count(),
            "cache": manager.cache_stats(),
            "reorder_swaps": manager.swap_count,
        }
        return CompactResult(
            design=design,
            labeling=labeling,
            bdd_graph=bdd_graph,
            sbdd=sbdd,
            times=timer.times,
            perf=perf,
        )

    def _label_and_map(
        self, bdd_graph: BddGraph, name: str, timer: StageTimer
    ) -> tuple[CrossbarDesign, VHLabeling | KLabeling]:
        """The labeling + mapping tail, planar or layered per ``self.layers``.

        The layered flow is the two-stage solve: the configured 2D
        labeling finds the stitch set and side bipartition (its exact
        OCT is still exact for every layer count — odd cycles force
        stitches regardless of which plane each node lands on), then
        :func:`~repro.core.klabel.assign_planes` spreads each side over
        the same-orientation planes.
        """
        with timer.stage("labeling"):
            labeling: VHLabeling | KLabeling = self.label(bdd_graph)
            if self.layers > 1:
                labeling = assign_planes(
                    bdd_graph,
                    labeling,
                    self.layers,
                    gamma=self.gamma,
                    alignment=self.alignment,
                    method=self.method,
                    backend=self.backend,
                    time_limit=self.time_limit,
                    plane_method=self.plane_method,
                )
        with timer.stage("mapping"):
            if self.layers > 1:
                design: CrossbarDesign = map_to_crossbar3d(
                    bdd_graph, labeling, name=name
                )
            else:
                design = map_to_crossbar(bdd_graph, labeling, name=name)
        return design, labeling

    # -- labeling dispatch ---------------------------------------------------------
    def label(self, bdd_graph: BddGraph, trace_callback=None) -> VHLabeling:
        """Run the configured VH-labeling method on a BDD graph."""
        if len(bdd_graph.graph) == 0:
            return VHLabeling({}, meta={"method": "empty", "optimal": True})

        if self.method == "heuristic":
            return label_heuristic(bdd_graph, alignment=self.alignment)

        if self.method == "oct" or (self.method == "auto" and self.gamma == 1.0):
            labeling = label_min_semiperimeter(
                bdd_graph,
                alignment=self.alignment,
                backend=self.backend,
                time_limit=self.time_limit,
                trace_callback=trace_callback,
                jobs=self.jobs,
            )
            if self.method == "auto" and labeling.meta.get("promoted_ports"):
                # Alignment conflicts forced extra VH labels; the Eq. 7 MIP
                # handles those constraints exactly — keep the better one.
                exact = label_weighted(
                    bdd_graph,
                    gamma=1.0,
                    alignment=self.alignment,
                    backend=self.backend,
                    time_limit=self.time_limit,
                    warm_start=labeling,
                )
                if exact.semiperimeter < labeling.semiperimeter:
                    return exact
            return labeling

        warm = None
        if self.method == "auto":
            warm = label_min_semiperimeter(
                bdd_graph, alignment=self.alignment, backend=self.backend,
                time_limit=self.time_limit, jobs=self.jobs,
            )
            # All-gamma shortcut: every labeling satisfies S >= S_min and
            # D >= ceil(S/2) (rows + cols = S).  A proven-minimal S with
            # D == ceil(S/2) therefore minimizes gamma*S + (1-gamma)*D
            # for every gamma, and any optimal weighted solution attains
            # exactly these S and D — the Eq. 4 MIP cannot improve on it.
            if (
                warm.meta.get("optimal")
                and not warm.meta.get("promoted_ports")
                and warm.max_dimension <= (warm.semiperimeter + 1) // 2
            ):
                return warm
        return label_weighted(
            bdd_graph,
            gamma=self.gamma,
            alignment=self.alignment,
            backend=self.backend,
            time_limit=self.time_limit,
            warm_start=warm if self.backend == "bnb" else None,
            trace_callback=trace_callback,
        )
