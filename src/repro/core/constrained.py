"""Row/column-constrained synthesis.

Section III of the paper notes that the formulation trivially extends to
*specified* constraints on the rows and columns: COMPACT then either
generates a valid design within the given budget or reports that the
constraints are infeasible.  This module implements that extension on
top of the Eq. 4 MIP: add ``R <= max_rows`` and ``C <= max_cols`` and
minimize the usual weighted objective inside the box.
"""

from __future__ import annotations

from ..milp import SolveStatus, sum_expr
from .labeling import VHLabeling
from .preprocess import BddGraph
from .weighted import build_vh_model

__all__ = ["ConstraintInfeasibleError", "label_constrained"]


class ConstraintInfeasibleError(ValueError):
    """No valid VH-labeling exists within the requested row/column box."""


def label_constrained(
    bdd_graph: BddGraph,
    max_rows: int | None = None,
    max_cols: int | None = None,
    gamma: float = 0.5,
    alignment: bool = True,
    backend: str = "highs",
    time_limit: float | None = None,
) -> VHLabeling:
    """VH-labeling under hard row/column budgets.

    Raises :class:`ConstraintInfeasibleError` when the budgets cannot be
    met (e.g. fewer rows than outputs + input under alignment, or a box
    too small for the connection constraints).
    """
    if max_rows is not None and max_rows < 0:
        raise ValueError("max_rows must be non-negative")
    if max_cols is not None and max_cols < 0:
        raise ValueError("max_cols must be non-negative")

    model, node_vars, _d = build_vh_model(bdd_graph, gamma, alignment)
    rows_expr = sum_expr(xh for _xv, xh in node_vars.values())
    cols_expr = sum_expr(xv for xv, _xh in node_vars.values())
    if max_rows is not None:
        model.add_constraint(rows_expr <= max_rows, name="max_rows")
    if max_cols is not None:
        model.add_constraint(cols_expr <= max_cols, name="max_cols")

    sol = model.solve(backend=backend, time_limit=time_limit)
    if sol.status in (SolveStatus.INFEASIBLE, SolveStatus.NO_SOLUTION):
        raise ConstraintInfeasibleError(
            f"no valid design with rows <= {max_rows} and cols <= {max_cols}"
        )

    from .labeling import Label

    labels: dict[int, Label] = {}
    for i, (xv, xh) in node_vars.items():
        has_v = sol.int_value(xv) == 1
        has_h = sol.int_value(xh) == 1
        labels[i] = Label.VH if (has_v and has_h) else (Label.V if has_v else Label.H)

    return VHLabeling(
        labels,
        meta={
            "method": "constrained",
            "gamma": gamma,
            "max_rows": max_rows,
            "max_cols": max_cols,
            "optimal": sol.is_optimal,
            "objective": sol.objective,
            "runtime": sol.runtime,
        },
    )
