"""K-layer labeling: the FLOW-3D generalization of VH-labeling.

A crossbar with K memristor layers sandwiches K+1 nanowire planes,
numbered 0..K bottom-up; even planes run horizontally (wordlines), odd
planes vertically (bitlines), and the memristors of layer ``l`` can only
join a wire on plane ``l`` to one on plane ``l+1``.  A node label is a
plane assignment:

* ``H`` at layer ``m`` — one horizontal wire on plane ``2m``;
* ``V`` at layer ``m`` — one vertical wire on plane ``2m+1``;
* ``VH`` at layer ``l`` — wires on planes ``l`` and ``l+1``, stitched by
  an always-on via in memristor layer ``l``.

An edge is realizable iff its endpoints own wires on *adjacent* planes.
Around any cycle the ±1 plane steps must cancel, so odd cycles force a
two-plane (VH) node each, exactly as in 2D: the minimum stitch set is
still the aligned odd cycle transversal, and the exact OCT machinery of
the planar solver carries over to every K unchanged.  K-labeling
therefore solves in two stages:

1. the existing exact/heuristic 2D labeling fixes the stitch set and the
   H/V bipartition (:class:`~repro.core.labeling.VHLabeling`);
2. a *plane assignment* spreads the wires over the K+1 planes —
   :func:`assign_planes` runs a zigzag-fold heuristic (provably valid
   and never worse than the planar solution) refined by a greedy load
   rebalance, plus an exact MILP: monolithic on small graphs
   (``plane_method="auto"``/``"milp"``), or kernelized —
   port-forcing, distance-based domain pruning and a per-component
   split — past :data:`MILP_NODE_LIMIT` (``plane_method="decomposed-milp"``).

Every result is measured against two independent capacity bounds from
:mod:`repro.graphs.bounds`: the fixed-split bound certifies the *plane
assignment* (``plane_optimal``), and the layered bound over all stitch
counts certifies the *joint* labeling (``optimal``) — so exactness for
K >= 2 is a checked certificate, not a solver claim.

The footprint the paper's metrics see is the largest horizontal plane by
the largest vertical plane, so ``S`` for K >= 2 is at most the planar
``S`` and usually smaller.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field

from ..graphs.bounds import fixed_split_capacity_bound, layered_capacity_bound
from .labeling import Label, LabelingError, VHLabeling
from .preprocess import BddGraph

__all__ = [
    "KLabel",
    "KLabeling",
    "lift_labeling",
    "assign_planes",
    "MILP_NODE_LIMIT",
    "PLANE_METHODS",
    "stitch_lower_bound",
]

#: Stage-2 solver selection accepted by :func:`assign_planes`.
PLANE_METHODS = ("auto", "fold", "milp", "decomposed-milp")

#: Largest pure-graph node count handed to the exact plane-assignment
#: MILP; bigger graphs keep the zigzag-fold heuristic result.
MILP_NODE_LIMIT = 240


@dataclass(frozen=True, order=True)
class KLabel:
    """One node's placement: orientation plus memristor-layer index.

    For ``VH`` the layer is the memristor layer holding the stitch via
    (wires on planes ``layer`` and ``layer+1``); for pure ``H``/``V`` it
    counts same-orientation planes bottom-up (wire on plane ``2*layer``
    resp. ``2*layer+1``).
    """

    orientation: Label
    layer: int

    def __post_init__(self):
        if self.layer < 0:
            raise ValueError(f"negative layer in {self!r}")

    @property
    def planes(self) -> tuple[int, ...]:
        """The nanowire plane(s) this label's wires occupy."""
        if self.orientation is Label.VH:
            return (self.layer, self.layer + 1)
        if self.orientation is Label.H:
            return (2 * self.layer,)
        return (2 * self.layer + 1,)

    @property
    def stitch_layer(self) -> int | None:
        """The memristor layer of the VH via, or None for pure labels."""
        return self.layer if self.orientation is Label.VH else None

    def has_plane0(self) -> bool:
        """Whether one of the wires is a bottom-plane wordline (a port slot)."""
        return 0 in self.planes

    def compatible(self, other: "KLabel") -> bool:
        """Whether an edge between nodes so labeled is realizable."""
        return any(
            abs(p - q) == 1 for p in self.planes for q in other.planes
        )

    def __str__(self) -> str:
        return f"{self.orientation.value}@{self.layer}"


def _label_for_planes(planes: tuple[int, ...]) -> KLabel:
    """The :class:`KLabel` occupying exactly ``planes`` (1 or 2, adjacent)."""
    if len(planes) == 2:
        lo, hi = min(planes), max(planes)
        if hi != lo + 1:
            raise ValueError(f"stitched planes {planes} are not adjacent")
        return KLabel(Label.VH, lo)
    (p,) = planes
    if p % 2 == 0:
        return KLabel(Label.H, p // 2)
    return KLabel(Label.V, p // 2)


@dataclass
class KLabeling:
    """A K-layer labeling of a :class:`~repro.core.preprocess.BddGraph`.

    ``meta`` merges the stage-1 (stitch-set) solver diagnostics with the
    plane-assignment stage's: ``stitch_optimal`` / ``plane_optimal``
    report per-stage exactness, and ``optimal`` is True only when the
    achieved objective meets the certified layered capacity bound
    (``certified_s_lb`` / ``certified_gap``) — stage-wise optimality
    alone does not certify the joint optimum.
    """

    num_layers: int
    labels: dict[int, KLabel]
    meta: dict = field(default_factory=dict)

    # -- size metrics ---------------------------------------------------------
    @property
    def plane_loads(self) -> tuple[int, ...]:
        """Wires per nanowire plane (planes 0..K)."""
        loads = [0] * (self.num_layers + 1)
        for lab in self.labels.values():
            for p in lab.planes:
                loads[p] += 1
        return tuple(loads)

    @property
    def rows(self) -> int:
        """Wordlines of the widest horizontal plane (the footprint rows)."""
        loads = self.plane_loads
        return max(loads[0::2], default=0)

    @property
    def cols(self) -> int:
        """Bitlines of the widest vertical plane (the footprint cols)."""
        loads = self.plane_loads
        return max(loads[1::2], default=0)

    @property
    def semiperimeter(self) -> int:
        return self.rows + self.cols

    @property
    def max_dimension(self) -> int:
        return max(self.rows, self.cols)

    @property
    def vh_count(self) -> int:
        """Stitched (two-plane) nodes — each costs one always-on via."""
        return sum(
            1 for lab in self.labels.values() if lab.orientation is Label.VH
        )

    def objective(self, gamma: float) -> float:
        """The paper's weighted objective on the 3D footprint."""
        return gamma * self.semiperimeter + (1.0 - gamma) * self.max_dimension

    # -- validity ----------------------------------------------------------------
    def validate(self, bdd_graph: BddGraph, alignment: bool = True) -> None:
        """Raise :class:`LabelingError` unless the K-labeling is valid."""
        graph = bdd_graph.graph
        top = self.num_layers
        for v in graph.nodes():
            lab = self.labels.get(v)
            if lab is None:
                raise LabelingError(f"node {v} has no label")
            if max(lab.planes) > top:
                raise LabelingError(
                    f"node {v} label {lab} needs plane {max(lab.planes)} but "
                    f"a {top}-layer crossbar only has planes 0..{top}"
                )
        for u, v in graph.edges():
            if not self.labels[u].compatible(self.labels[v]):
                raise LabelingError(
                    f"edge ({u}, {v}) joins non-adjacent planes "
                    f"{self.labels[u]} - {self.labels[v]}"
                )
        if alignment:
            for port in bdd_graph.port_nodes():
                if not self.labels[port].has_plane0():
                    raise LabelingError(
                        f"port node {port} must own a plane-0 wordline (alignment)"
                    )

    def is_valid(self, bdd_graph: BddGraph, alignment: bool = True) -> bool:
        try:
            self.validate(bdd_graph, alignment=alignment)
        except LabelingError:
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"KLabeling(K={self.num_layers}, R={self.rows}, C={self.cols}, "
            f"S={self.semiperimeter}, D={self.max_dimension}, VH={self.vh_count})"
        )


def lift_labeling(labeling: VHLabeling, num_layers: int = 1) -> KLabeling:
    """Embed a planar labeling into a K-layer fabric on planes {0, 1}.

    The trivial lift: every wire stays on the bottom wordline/bitline
    planes, so rows, cols and every cell coordinate match the 2D design
    exactly.  For ``num_layers == 1`` this *is* the K-labeling problem's
    whole feasible space (three labels, all at layer 0).
    """
    if num_layers < 1:
        raise ValueError(f"num_layers must be >= 1, got {num_layers}")
    labels = {v: KLabel(lab, 0) for v, lab in labeling.labels.items()}
    meta = dict(labeling.meta)
    meta["stitch_optimal"] = bool(labeling.meta.get("optimal", False))
    return KLabeling(num_layers, labels, meta)


# -- stage 2: plane assignment ---------------------------------------------------


def stitch_lower_bound(labeling: VHLabeling) -> int:
    """A sound lower bound on the stitch count of *any* valid K-labeling.

    The stitch set of every K-layer labeling is an (aligned) odd cycle
    transversal — parity around a cycle is plane-independent — so the
    stage-1 solver's bound transfers to every K.  When stage 1 proved
    its stitch set optimal the achieved count is exact; otherwise the
    solver's reported lower bound (if any) is used.
    """
    if labeling.meta.get("optimal"):
        return sum(
            1 for lab in labeling.labels.values() if lab is Label.VH
        )
    lower = labeling.meta.get("oct_lower_bound")
    if lower is None:
        return 0
    return max(0, math.ceil(lower - 1e-9))


def assign_planes(
    bdd_graph: BddGraph,
    labeling: VHLabeling,
    num_layers: int,
    gamma: float = 0.5,
    alignment: bool = True,
    method: str = "auto",
    backend: str = "highs",
    time_limit: float | None = None,
    plane_method: str = "auto",
) -> KLabeling:
    """Spread a planar labeling's wires over ``num_layers`` layers.

    The stitch set and H/V bipartition of ``labeling`` are kept (they
    stay optimal for every K, see the module docstring); only the plane
    of each wire is chosen.  Runs the zigzag fold plus greedy rebalance
    always; ``plane_method`` selects the refinement:

    * ``"auto"`` — the monolithic exact MILP (warm-checked against the
      fold) when the graph fits :data:`MILP_NODE_LIMIT` and ``method``
      is not ``"heuristic"``;
    * ``"milp"`` — the monolithic MILP regardless of size;
    * ``"decomposed-milp"`` — the kernelized MILP (port forcing,
      distance-pruned domains, per-component split), which lifts the
      node-count ceiling;
    * ``"fold"`` — the heuristic alone.

    The result never has a larger footprint than the planar design, and
    its meta carries the capacity certificates: ``plane_s_lb`` (fixed
    H/V split), ``certified_s_lb`` / ``certified_gap`` (over all stitch
    counts >= the certified minimum), with ``plane_optimal`` and
    ``optimal`` set whenever the achieved footprint meets them.
    """
    if num_layers < 1:
        raise ValueError(f"num_layers must be >= 1, got {num_layers}")
    if plane_method not in PLANE_METHODS:
        raise ValueError(
            f"plane_method must be one of {'/'.join(PLANE_METHODS)}, "
            f"got {plane_method!r}"
        )
    started = time.perf_counter()
    n = len(bdd_graph.graph)
    ports = len(bdd_graph.port_nodes()) if alignment else 0
    k_lb = stitch_lower_bound(labeling)
    if num_layers == 1 or n == 0:
        out = lift_labeling(labeling, num_layers)
        cap = layered_capacity_bound(n, k_lb, ports, num_layers)
        out.meta.update(
            {
                "num_layers": num_layers,
                "plane_method": "lift",
                "plane_optimal": True,
                "optimal": bool(labeling.meta.get("optimal", False)),
                "certified_s_lb": cap["s_lb"],
                "certified_gap": out.semiperimeter - cap["s_lb"],
            }
        )
        return out

    folded = _zigzag_fold(bdd_graph, labeling, num_layers, alignment)
    _rebalance(bdd_graph, folded, alignment)
    best = folded
    chosen = "fold"
    plane_optimal = False

    run_monolithic = plane_method == "milp" or (
        plane_method == "auto"
        and method != "heuristic"
        and n <= MILP_NODE_LIMIT
    )
    exact = None
    if run_monolithic:
        exact = _plane_milp(
            bdd_graph, labeling, num_layers, gamma, alignment,
            backend=backend, time_limit=time_limit, warm=folded,
        )
        exact_tag = "milp"
    elif plane_method == "decomposed-milp":
        exact = _plane_milp_decomposed(
            bdd_graph, labeling, num_layers, gamma, alignment,
            backend=backend, time_limit=time_limit, warm=folded,
        )
        exact_tag = "decomposed-milp"
    if exact is not None:
        milp_labeling, milp_optimal = exact
        plane_optimal = milp_optimal
        if milp_labeling.objective(gamma) < best.objective(gamma) - 1e-9:
            best = milp_labeling
            chosen = exact_tag
        elif milp_optimal:
            # The fold already attains the exact optimum; keep it
            # (deterministic tie-break) but record the certificate.
            chosen = f"fold+{exact_tag}-certified"

    # Certify against the fixed-split capacity bound: with the H/V
    # bipartition frozen by stage 1, every plane assignment has
    # R >= max(ceil(E/P_even), ports) and C >= ceil(O/P_odd).
    even_wires = sum(
        1 for lab in labeling.labels.values() if lab is not Label.V
    )
    odd_wires = sum(
        1 for lab in labeling.labels.values() if lab is not Label.H
    )
    plane_s_lb, plane_d_lb = fixed_split_capacity_bound(
        even_wires, odd_wires, ports, num_layers
    )
    split_obj_lb = gamma * plane_s_lb + (1.0 - gamma) * plane_d_lb
    if not plane_optimal and best.objective(gamma) <= split_obj_lb + 1e-9:
        plane_optimal = True
        chosen = f"{chosen}+capacity-certified"

    # Joint certificate: the layered capacity bound over every stitch
    # count the graph admits (L003's bound).  Meeting it proves the
    # two-stage result is optimal among *all* valid K-labelings.
    cap = layered_capacity_bound(n, k_lb, ports, num_layers, gamma=gamma)

    best.validate(bdd_graph, alignment=alignment)
    meta = dict(labeling.meta)
    meta.update(
        {
            "num_layers": num_layers,
            "plane_method": chosen,
            "plane_optimal": plane_optimal,
            "stitch_optimal": bool(labeling.meta.get("optimal", False)),
            "optimal": best.objective(gamma) <= cap["obj_lb"] + 1e-9,
            "plane_s_lb": plane_s_lb,
            "certified_s_lb": cap["s_lb"],
            "certified_gap": best.semiperimeter - cap["s_lb"],
            "plane_seconds": time.perf_counter() - started,
        }
    )
    best.meta = meta
    return best


def _zigzag_fold(
    bdd_graph: BddGraph,
    labeling: VHLabeling,
    num_layers: int,
    alignment: bool,
) -> KLabeling:
    """Valid plane assignment by folding BFS depth into the plane range.

    Stitched nodes stay on planes (0, 1).  On the *pure* subgraph
    (stitched nodes removed — what remains is bipartite between H and V)
    every node gets ``d(v)``, the least pinned offset plus hop distance,
    where pins are: ports at 0, V-neighbors of stitched nodes at 1,
    H-neighbors at 2.  Every pin's offset has the parity of its side, so
    ``d`` alternates parity along edges while moving by at most 1 —
    i.e. exactly by 1.  Folding ``d`` with the period-2K zigzag keeps
    both properties inside 0..K, so every edge lands on adjacent planes;
    ports get d = 0 and stay on plane 0.
    """
    graph = bdd_graph.graph
    labels = labeling.labels
    ports = set(bdd_graph.port_nodes()) if alignment else set()

    pure = [v for v in graph.nodes() if labels[v] is not Label.VH]
    pure_set = set(pure)
    pins: dict[int, int] = {}
    for v in pure:
        if v in ports:
            pins[v] = 0
    for v in graph.nodes():
        if labels[v] is not Label.VH:
            continue
        for u in graph.neighbors(v):
            if u not in pure_set:
                continue
            if labels[u] is Label.V:
                pins[u] = min(pins.get(u, 1), 1)
            else:
                pins.setdefault(u, 2)

    # Components the pins never reach still need an anchor; seed each
    # with its smallest node at that node's side parity.
    dist: dict[int, int] = {}
    heap: list[tuple[int, int]] = []
    for comp in _pure_components(graph, pure_set):
        if not any(u in pins for u in comp):
            rep = min(comp)
            pins[rep] = 0 if labels[rep] is Label.H else 1
    for v, g in pins.items():
        heap.append((g, v))
    heapq.heapify(heap)
    while heap:
        d, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        for u in graph.neighbors(v):
            if u in pure_set and u not in dist:
                heapq.heappush(heap, (d + 1, u))

    period = 2 * num_layers
    out: dict[int, KLabel] = {}
    for v in graph.nodes():
        lab = labels[v]
        if lab is Label.VH:
            out[v] = KLabel(Label.VH, 0)
            continue
        z = dist[v] % period
        plane = z if z <= num_layers else period - z
        out[v] = _label_for_planes((plane,))
    return KLabeling(num_layers, out)


def _pure_components(graph, pure_set: set[int]) -> list[list[int]]:
    """Connected components of the stitch-free subgraph."""
    seen: set[int] = set()
    comps: list[list[int]] = []
    for start in sorted(pure_set):
        if start in seen:
            continue
        comp = [start]
        seen.add(start)
        frontier = [start]
        while frontier:
            v = frontier.pop()
            for u in graph.neighbors(v):
                if u in pure_set and u not in seen:
                    seen.add(u)
                    comp.append(u)
                    frontier.append(u)
        comps.append(comp)
    return comps


def _rebalance(bdd_graph: BddGraph, klabeling: KLabeling, alignment: bool) -> None:
    """Greedy footprint shrink: move single-plane wires off the widest planes.

    Moving a wordline between even planes never touches the bitline
    count and vice versa, so each accepted move strictly shrinks the
    sorted load vector of its side — termination is guaranteed.  Ports
    are pinned to plane 0 and stitched nodes stay put (their two planes
    would move together; the MILP handles that exactly).
    """
    graph = bdd_graph.graph
    labels = klabeling.labels
    ports = set(bdd_graph.port_nodes()) if alignment else set()
    top = klabeling.num_layers

    def movable_to(v: int, plane: int) -> bool:
        return all(
            any(abs(plane - q) == 1 for q in labels[u].planes)
            for u in graph.neighbors(v)
        )

    for parity in (0, 1):
        side_planes = list(range(parity, top + 1, 2))
        if len(side_planes) < 2:
            continue
        changed = True
        while changed:
            changed = False
            loads = [0] * (top + 1)
            for lab in labels.values():
                for p in lab.planes:
                    loads[p] += 1
            worst = max(side_planes, key=lambda p: (loads[p], -p))
            movers = sorted(
                v
                for v, lab in labels.items()
                if lab.orientation is not Label.VH
                and lab.planes == (worst,)
                and v not in ports
            )
            for v in movers:
                targets = sorted(
                    (loads[p], p)
                    for p in side_planes
                    if p != worst and loads[p] + 1 < loads[worst]
                    and movable_to(v, p)
                )
                if targets:
                    _, dest = targets[0]
                    labels[v] = _label_for_planes((dest,))
                    changed = True
                    break


def _plane_milp(
    bdd_graph: BddGraph,
    labeling: VHLabeling,
    num_layers: int,
    gamma: float,
    alignment: bool,
    backend: str,
    time_limit: float | None,
    warm: KLabeling,
):
    """Exact plane assignment for the fixed stitch set; None on failure.

    One binary per (node, allowed label); incompatible label pairs are
    forbidden edge by edge; R/C bound every horizontal/vertical plane
    load and D bounds both, reproducing the paper's Eq. 4 objective on
    the 3D footprint.  Returns ``(labeling, proved_optimal)``.
    """
    from ..milp.model import Model, sum_expr

    graph = bdd_graph.graph
    labels = labeling.labels
    ports = set(bdd_graph.port_nodes()) if alignment else set()

    def allowed(v: int) -> list[KLabel]:
        lab = labels[v]
        if lab is Label.VH:
            options = [KLabel(Label.VH, l) for l in range(num_layers)]
        elif lab is Label.H:
            options = [
                KLabel(Label.H, m) for m in range(num_layers // 2 + 1)
            ]
        else:
            options = [
                KLabel(Label.V, m) for m in range((num_layers + 1) // 2)
            ]
        if v in ports:
            options = [o for o in options if o.has_plane0()]
        return options

    model = Model("plane-assign")
    x: dict[tuple[int, KLabel], object] = {}
    choices: dict[int, list[KLabel]] = {}
    for v in sorted(graph.nodes()):
        opts = allowed(v)
        choices[v] = opts
        for o in opts:
            x[(v, o)] = model.add_binary(f"x_{v}_{o}")
        model.add_constraint(sum_expr(x[(v, o)] for o in opts) == 1)

    for u, v in graph.edges():
        for lu in choices[u]:
            for lv in choices[v]:
                if not lu.compatible(lv):
                    model.add_constraint(x[(u, lu)] + x[(v, lv)] <= 1)

    r_var = model.add_integer("R", lb=0)
    c_var = model.add_integer("C", lb=0)
    d_var = model.add_integer("D", lb=0)
    for plane in range(num_layers + 1):
        load = sum_expr(
            x[(v, o)]
            for v, opts in choices.items()
            for o in opts
            if plane in o.planes
        )
        bound = r_var if plane % 2 == 0 else c_var
        model.add_constraint(load - bound <= 0)
    model.add_constraint(d_var - r_var >= 0)
    model.add_constraint(d_var - c_var >= 0)
    model.minimize(gamma * (r_var + c_var) + (1.0 - gamma) * d_var)

    initial = None
    if backend == "bnb":
        initial = {var.name: 0.0 for var in model.variables}
        for v, lab in warm.labels.items():
            initial[f"x_{v}_{lab}"] = 1.0
        initial["R"] = float(warm.rows)
        initial["C"] = float(warm.cols)
        initial["D"] = float(warm.max_dimension)

    try:
        solution = model.solve(
            backend=backend, time_limit=time_limit, initial_solution=initial
        )
    except Exception:
        return None
    if solution.status not in ("optimal", "feasible"):
        return None
    chosen: dict[int, KLabel] = {}
    for v, opts in choices.items():
        picks = [o for o in opts if solution.int_value(f"x_{v}_{o}") == 1]
        if len(picks) != 1:
            return None
        chosen[v] = picks[0]
    result = KLabeling(num_layers, chosen)
    if not result.is_valid(bdd_graph, alignment=alignment):
        return None
    return result, solution.is_optimal


def _plane_milp_decomposed(
    bdd_graph: BddGraph,
    labeling: VHLabeling,
    num_layers: int,
    gamma: float,
    alignment: bool,
    backend: str,
    time_limit: float | None,
    warm: KLabeling,
):
    """Kernelized exact plane assignment; None on failure.

    The PR 5 core/kernel treatment applied to stage 2, which lifts the
    :data:`MILP_NODE_LIMIT` ceiling of the monolithic model:

    * *forced assignments* — a port's domain collapses to its only
      plane-0 option (``H@0`` or ``VH@0``), a singleton the presolve
      eliminates;
    * *domain pruning* — along an edge the lowest occupied plane rises
      by at most 2 (the neighbor's highest wire is at most its lowest
      plus one, and the edge adds one), so a node at hop distance ``d``
      from a port can be restricted to labels whose lowest plane is at
      most ``2 d`` without cutting any feasible assignment;
    * *decomposition* — the pruned model splits over the connected
      components of the BDD graph; per-plane loads, and hence the
      footprint, compose by maxima across components.

    Returns ``(labeling, proved_optimal)``.  Optimality composes only
    for a single component (the usual case — every node reaches the
    terminal); multi-component results report False and rely on the
    caller's capacity certificate.
    """
    from ..milp.model import Model, sum_expr
    from ..perf import counters

    graph = bdd_graph.graph
    labels = labeling.labels
    ports = set(bdd_graph.port_nodes()) if alignment else set()

    # Hop distance from the pinned (plane-0) port set, for the pruning.
    dist: dict[int, int] = {p: 0 for p in ports}
    frontier = sorted(ports)
    while frontier:
        nxt: list[int] = []
        for v in frontier:
            for u in graph.neighbors(v):
                if u not in dist:
                    dist[u] = dist[v] + 1
                    nxt.append(u)
        frontier = sorted(nxt)

    def allowed(v: int) -> list[KLabel]:
        lab = labels[v]
        if lab is Label.VH:
            options = [KLabel(Label.VH, l) for l in range(num_layers)]
        elif lab is Label.H:
            options = [KLabel(Label.H, m) for m in range(num_layers // 2 + 1)]
        else:
            options = [KLabel(Label.V, m) for m in range((num_layers + 1) // 2)]
        if v in ports:
            options = [o for o in options if o.has_plane0()]
        elif v in dist:
            ceiling = 2 * dist[v]
            options = [o for o in options if min(o.planes) <= ceiling]
        return options

    components = graph.connected_components()
    counters.increment("plane_milp_components", len(components))
    merged: dict[int, KLabel] = {}
    all_optimal = True
    for comp in sorted(components, key=lambda c: min(c)):
        nodes = sorted(comp)
        model = Model("plane-assign-kernel")
        x: dict[tuple[int, KLabel], object] = {}
        choices: dict[int, list[KLabel]] = {}
        for v in nodes:
            opts = allowed(v)
            if not opts:
                return None
            choices[v] = opts
            for o in opts:
                x[(v, o)] = model.add_binary(f"x_{v}_{o}")
            model.add_constraint(sum_expr(x[(v, o)] for o in opts) == 1)
        for u, v in graph.edges():
            if u not in choices or v not in choices:
                continue
            for lu in choices[u]:
                for lv in choices[v]:
                    if not lu.compatible(lv):
                        model.add_constraint(x[(u, lu)] + x[(v, lv)] <= 1)

        r_var = model.add_integer("R", lb=0)
        c_var = model.add_integer("C", lb=0)
        d_var = model.add_integer("D", lb=0)
        for plane in range(num_layers + 1):
            load = sum_expr(
                x[(v, o)]
                for v, opts in choices.items()
                for o in opts
                if plane in o.planes
            )
            bound = r_var if plane % 2 == 0 else c_var
            model.add_constraint(load - bound <= 0)
        model.add_constraint(d_var - r_var >= 0)
        model.add_constraint(d_var - c_var >= 0)
        model.minimize(gamma * (r_var + c_var) + (1.0 - gamma) * d_var)

        initial = None
        if backend == "bnb":
            initial = {var.name: 0.0 for var in model.variables}
            loads = [0] * (num_layers + 1)
            for v in nodes:
                lab = warm.labels[v]
                initial[f"x_{v}_{lab}"] = 1.0
                for p in lab.planes:
                    loads[p] += 1
            initial["R"] = float(max(loads[0::2], default=0))
            initial["C"] = float(max(loads[1::2], default=0))
            initial["D"] = float(max(initial["R"], initial["C"]))

        try:
            solution = model.solve(
                backend=backend, time_limit=time_limit,
                initial_solution=initial,
            )
        except Exception:
            return None
        if solution.status not in ("optimal", "feasible"):
            return None
        for v, opts in choices.items():
            picks = [o for o in opts if solution.int_value(f"x_{v}_{o}") == 1]
            if len(picks) != 1:
                return None
            merged[v] = picks[0]
        all_optimal = all_optimal and solution.is_optimal

    result = KLabeling(num_layers, merged)
    if not result.is_valid(bdd_graph, alignment=alignment):
        return None
    # A max-based objective does not decompose additively, so composed
    # multi-component solutions are not certified here.
    return result, all_optimal and len(components) == 1
