"""The VH-labeling problem (paper Section V-B).

A labeling assigns each node of the BDD graph one of ``V`` (bitline),
``H`` (wordline) or ``VH`` (both).  It is valid when no edge joins two
pure-``V`` or two pure-``H`` nodes — the crossbar connection constraint —
and, under alignment, every root and the terminal carries an ``H``.

The labeling fixes every size metric before any mapping happens:
``R = #H + #VH``, ``C = #V + #VH``, ``S = R + C = n + #VH``,
``D = max(R, C)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .preprocess import BddGraph

__all__ = ["Label", "VHLabeling", "LabelingError"]


class Label(str, Enum):
    """Node placement: vertical bitline, horizontal wordline, or both."""

    V = "V"
    H = "H"
    VH = "VH"

    def has_row(self) -> bool:
        return self in (Label.H, Label.VH)

    def has_col(self) -> bool:
        return self in (Label.V, Label.VH)


class LabelingError(ValueError):
    """Raised when a labeling violates the crossbar constraints."""


@dataclass
class VHLabeling:
    """A VH-labeling of a :class:`~repro.core.preprocess.BddGraph`.

    ``meta`` carries solver diagnostics (optimality flag, runtime,
    convergence trace) so experiment harnesses can report them.
    """

    labels: dict[int, Label]
    meta: dict = field(default_factory=dict)

    # -- size metrics ---------------------------------------------------------
    @property
    def rows(self) -> int:
        return sum(1 for lab in self.labels.values() if lab.has_row())

    @property
    def cols(self) -> int:
        return sum(1 for lab in self.labels.values() if lab.has_col())

    @property
    def semiperimeter(self) -> int:
        return self.rows + self.cols

    @property
    def max_dimension(self) -> int:
        return max(self.rows, self.cols)

    @property
    def vh_count(self) -> int:
        return sum(1 for lab in self.labels.values() if lab is Label.VH)

    def objective(self, gamma: float) -> float:
        """The paper's weighted objective ``gamma*S + (1-gamma)*D``."""
        return gamma * self.semiperimeter + (1.0 - gamma) * self.max_dimension

    # -- validity ----------------------------------------------------------------
    def validate(self, bdd_graph: BddGraph, alignment: bool = True) -> None:
        """Raise :class:`LabelingError` unless the labeling is valid.

        Checks label coverage, the connection constraints on every edge,
        and (optionally) the alignment constraints of Eq. 7.
        """
        graph = bdd_graph.graph
        for v in graph.nodes():
            if v not in self.labels:
                raise LabelingError(f"node {v} has no label")
        for u, v in graph.edges():
            lu, lv = self.labels[u], self.labels[v]
            if lu is Label.V and lv is Label.V:
                raise LabelingError(f"edge ({u}, {v}) joins two bitlines (V-V)")
            if lu is Label.H and lv is Label.H:
                raise LabelingError(f"edge ({u}, {v}) joins two wordlines (H-H)")
        if alignment:
            for port in bdd_graph.port_nodes():
                if not self.labels[port].has_row():
                    raise LabelingError(
                        f"port node {port} must lie on a wordline (alignment)"
                    )

    def is_valid(self, bdd_graph: BddGraph, alignment: bool = True) -> bool:
        try:
            self.validate(bdd_graph, alignment=alignment)
        except LabelingError:
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"VHLabeling(R={self.rows}, C={self.cols}, S={self.semiperimeter}, "
            f"D={self.max_dimension}, VH={self.vh_count})"
        )
