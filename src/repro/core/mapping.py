"""Crossbar mapping: bind a labeled BDD graph to a crossbar design.

Section V-C of the paper.  Node assignment places every H/VH node on a
wordline and every V/VH node on a bitline; VH nodes get an always-on
memristor stitching their wordline to their bitline.  Edge assignment
programs each graph edge's literal at the crosspoint of its endpoints'
wordline and bitline.

Row ordering realises the alignment convention: the 1-terminal (input
port) is the bottom-most wordline and the output roots are the top-most
wordlines.  Constant outputs are realised physically: a constant-true
output senses the driven input wordline itself, a constant-false output
senses a dedicated unconnected wordline.
"""

from __future__ import annotations

from ..crossbar.design import CrossbarDesign
from ..crossbar.literals import ON, Lit
from .labeling import Label, LabelingError, VHLabeling
from .preprocess import BddGraph

__all__ = ["map_to_crossbar"]


def map_to_crossbar(
    bdd_graph: BddGraph,
    labeling: VHLabeling,
    name: str = "design",
    validate: bool = True,
) -> CrossbarDesign:
    """Bind ``bdd_graph`` to a crossbar according to ``labeling``."""
    if validate:
        labeling.validate(bdd_graph, alignment=True)

    graph = bdd_graph.graph
    labels = labeling.labels
    terminal = bdd_graph.terminal

    # --- node assignment: choose row/column indices ---------------------------
    root_nodes: list[int] = []
    seen: set[int] = set()
    for out in bdd_graph.roots.values():
        if out not in seen:
            seen.add(out)
            root_nodes.append(out)

    middle = sorted(
        v
        for v in graph.nodes()
        if labels[v].has_row() and v not in seen and v != terminal
    )

    row_of: dict[int, int] = {}
    next_row = 0
    for v in root_nodes:  # outputs: top-most wordlines
        row_of[v] = next_row
        next_row += 1
    for v in middle:
        row_of[v] = next_row
        next_row += 1
    if terminal is not None and terminal not in row_of:
        row_of[terminal] = next_row  # input: bottom-most wordline
        next_row += 1

    # Degenerate case: no 1-terminal in the graph (every output constant)
    # still needs a driven input wordline.
    synthetic_input_row: int | None = None
    if terminal is None:
        synthetic_input_row = next_row
        next_row += 1

    false_row: int | None = None
    if any(value is False for value in bdd_graph.constant_outputs.values()):
        false_row = next_row
        next_row += 1
    num_rows = max(next_row, 1)

    col_of: dict[int, int] = {}
    for v in sorted(graph.nodes()):
        if labels[v].has_col():
            col_of[v] = len(col_of)
    num_cols = len(col_of)

    # --- ports ------------------------------------------------------------------
    if terminal is not None:
        input_row = row_of[terminal]
    else:
        assert synthetic_input_row is not None
        input_row = synthetic_input_row
    output_rows: dict[str, int] = {}
    for out, root in bdd_graph.roots.items():
        output_rows[out] = row_of[root]
    for out, value in bdd_graph.constant_outputs.items():
        if value:
            output_rows[out] = input_row
        else:
            assert false_row is not None
            output_rows[out] = false_row

    design = CrossbarDesign(
        name,
        num_rows=num_rows,
        num_cols=num_cols,
        input_row=input_row,
        output_rows=output_rows,
    )
    for v, r in row_of.items():
        design.row_labels[r] = v
    for v, c in col_of.items():
        design.col_labels[c] = v

    # --- VH stitches ---------------------------------------------------------------
    for v, lab in labels.items():
        if lab is Label.VH:
            design.set_cell(row_of[v], col_of[v], ON)

    # --- edge assignment --------------------------------------------------------------
    for u, v in graph.edges():
        lit = graph.edge_data(u, v)
        assert isinstance(lit, Lit)
        if labels[u].has_row() and labels[v].has_col():
            design.set_cell(row_of[u], col_of[v], lit)
        elif labels[v].has_row() and labels[u].has_col():
            design.set_cell(row_of[v], col_of[u], lit)
        else:  # pragma: no cover - excluded by VHLabeling.validate
            raise LabelingError(
                f"edge ({u}, {v}) cannot be realised: labels "
                f"{labels[u].value}-{labels[v].value}"
            )
    return design
