"""3D crossbar mapping: bind a K-labeled BDD graph to a layered design.

The layered twin of :mod:`repro.core.mapping`.  Node assignment gives
every label's plane(s) a wire on the matching nanowire plane; stitched
nodes get an always-on via in the memristor layer between their two
planes; each graph edge's literal lands at the crosspoint of its
endpoints' adjacent wires, in the lowest memristor layer that realizes
it.

Plane 0 keeps the planar alignment convention bit for bit — output
roots on the top-most wordlines, the 1-terminal (input port) at the
bottom, constant outputs realised physically — so a 1-layer run of this
mapper reproduces :func:`~repro.core.mapping.map_to_crossbar` exactly
(cell for cell, label for label), which is what the layers=1 parity
suite pins down.
"""

from __future__ import annotations

from ..crossbar.design import CrossbarDesign3D, h_plane, v_plane
from ..crossbar.literals import ON, Lit
from .klabel import KLabeling
from .labeling import LabelingError
from .preprocess import BddGraph

__all__ = ["map_to_crossbar3d"]


def map_to_crossbar3d(
    bdd_graph: BddGraph,
    klabeling: KLabeling,
    name: str = "design",
    validate: bool = True,
) -> CrossbarDesign3D:
    """Bind ``bdd_graph`` to a layered crossbar according to ``klabeling``."""
    if validate:
        klabeling.validate(bdd_graph, alignment=True)

    graph = bdd_graph.graph
    labels = klabeling.labels
    terminal = bdd_graph.terminal
    num_planes = klabeling.num_layers + 1

    # --- node assignment: one wire index per occupied plane -------------------
    # Plane 0 replicates the 2D row order: dedup'd roots first, sorted
    # middle nodes, then the terminal; every other plane is sorted.
    root_nodes: list[int] = []
    seen: set[int] = set()
    for out in bdd_graph.roots.values():
        if out not in seen:
            seen.add(out)
            root_nodes.append(out)

    on_plane: list[list[int]] = [[] for _ in range(num_planes)]
    for v in graph.nodes():
        for p in labels[v].planes:
            on_plane[p].append(v)

    index_of: list[dict[int, int]] = [{} for _ in range(num_planes)]
    middle = sorted(
        v for v in on_plane[0] if v not in seen and v != terminal
    )
    next_row = 0
    for v in root_nodes:  # outputs: top-most wordlines of the bottom plane
        index_of[0][v] = next_row
        next_row += 1
    for v in middle:
        index_of[0][v] = next_row
        next_row += 1
    if terminal is not None and terminal not in index_of[0]:
        index_of[0][terminal] = next_row  # input: bottom-most wordline
        next_row += 1

    # Degenerate case: no 1-terminal (every output constant) still
    # needs a driven input wordline on the bottom plane.
    synthetic_input_row: int | None = None
    if terminal is None:
        synthetic_input_row = next_row
        next_row += 1

    false_row: int | None = None
    if any(value is False for value in bdd_graph.constant_outputs.values()):
        false_row = next_row
        next_row += 1

    plane_sizes = [0] * num_planes
    plane_sizes[0] = max(next_row, 1)
    for p in range(1, num_planes):
        for v in sorted(on_plane[p]):
            index_of[p][v] = len(index_of[p])
        plane_sizes[p] = len(index_of[p])

    # --- ports ------------------------------------------------------------------
    if terminal is not None:
        input_row = index_of[0][terminal]
    else:
        assert synthetic_input_row is not None
        input_row = synthetic_input_row
    output_rows: dict[str, int] = {}
    for out, root in bdd_graph.roots.items():
        output_rows[out] = index_of[0][root]
    for out, value in bdd_graph.constant_outputs.items():
        if value:
            output_rows[out] = input_row
        else:
            assert false_row is not None
            output_rows[out] = false_row

    design = CrossbarDesign3D(
        name,
        plane_sizes=plane_sizes,
        input_row=input_row,
        output_rows=output_rows,
    )
    for p in range(num_planes):
        for v, idx in index_of[p].items():
            design.plane_labels[p][idx] = v

    # --- stitch vias ----------------------------------------------------------------
    for v, lab in labels.items():
        layer = lab.stitch_layer
        if layer is not None:
            r = index_of[h_plane(layer)][v]
            c = index_of[v_plane(layer)][v]
            design.set_cell3(layer, r, c, ON)

    # --- edge assignment --------------------------------------------------------------
    for u, v in graph.edges():
        lit = graph.edge_data(u, v)
        assert isinstance(lit, Lit)
        candidates = sorted(
            (min(p, q), p % 2 != 0, p, q)
            for p in labels[u].planes
            for q in labels[v].planes
            if abs(p - q) == 1
        )
        if not candidates:  # pragma: no cover - excluded by KLabeling.validate
            raise LabelingError(
                f"edge ({u}, {v}) cannot be realised: labels "
                f"{labels[u]} - {labels[v]}"
            )
        # Lowest memristor layer first; on a tie, u supplies the
        # wordline (the planar mapper's orientation preference).
        layer, _u_is_v, p, q = candidates[0]
        if p % 2 == 0:
            r, c = index_of[p][u], index_of[q][v]
        else:
            r, c = index_of[q][v], index_of[p][u]
        design.set_cell3(layer, r, c, lit)

    # Carry the stage-2 certificate into the artifact so serialized
    # designs keep their provenance (schema v2 meta block).
    design.meta = {
        key: klabeling.meta[key]
        for key in (
            "plane_method",
            "plane_optimal",
            "optimal",
            "plane_s_lb",
            "certified_s_lb",
            "certified_gap",
        )
        if key in klabeling.meta
    }
    return design
