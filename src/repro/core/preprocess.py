"""Graph pre-processing: (S)BDD -> undirected labeled graph.

Section V-A of the paper: drop the 0-terminal (flow-based computing only
captures the '1' output) and turn every remaining BDD node/edge into a
node/edge of an undirected graph.  Each edge carries the literal of the
BDD decision it realises: ``x`` for a then-edge out of an ``x`` node,
``~x`` for an else-edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bdd import FALSE_ID, TRUE_ID
from ..bdd.sbdd import SBDD
from ..crossbar.literals import Lit
from ..graphs import UGraph

__all__ = ["BddGraph", "preprocess"]


@dataclass
class BddGraph:
    """The undirected view of an SBDD that COMPACT labels and maps.

    Attributes
    ----------
    graph:
        Undirected graph; nodes are BDD node ids (0-terminal removed),
        edge data are :class:`~repro.crossbar.literals.Lit` literals.
    roots:
        Output name -> BDD node id, for the non-constant outputs whose
        root survives pre-processing.
    terminal:
        The 1-terminal's node id, or None when unreachable (all outputs
        constant false).
    constant_outputs:
        Outputs whose function is constant: name -> bool.
    """

    graph: UGraph
    roots: dict[str, int]
    terminal: int | None
    constant_outputs: dict[str, bool] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.graph)

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges()

    def port_nodes(self) -> set[int]:
        """Nodes that must land on wordlines: roots plus the terminal."""
        ports = set(self.roots.values())
        if self.terminal is not None:
            ports.add(self.terminal)
        return ports


def preprocess(sbdd: SBDD) -> BddGraph:
    """Convert ``sbdd`` into its :class:`BddGraph` (paper Section V-A)."""
    m = sbdd.manager
    graph = UGraph()
    roots: dict[str, int] = {}
    constant_outputs: dict[str, bool] = {}

    reachable = sbdd.reachable()
    terminal = TRUE_ID if TRUE_ID in reachable else None

    for name, root in sbdd.roots.items():
        if root == TRUE_ID:
            constant_outputs[name] = True
        elif root == FALSE_ID:
            constant_outputs[name] = False
        else:
            roots[name] = root

    # A reachable 1-terminal with no non-constant output can only come
    # from a constant-true root; nothing to map then.
    if not roots:
        return BddGraph(UGraph(), {}, None, constant_outputs)

    for n in reachable:
        if n in (FALSE_ID, TRUE_ID):
            continue
        graph.add_node(n)
        var = m.var_of(n)
        low, high = m.low(n), m.high(n)
        if low != FALSE_ID:
            graph.add_edge(n, low, Lit(var, False))
        if high != FALSE_ID:
            graph.add_edge(n, high, Lit(var, True))

    # The terminal may be isolated in degenerate cases; keep it a node.
    if terminal is not None:
        graph.add_node(terminal)
    return BddGraph(graph, roots, terminal, constant_outputs)
