"""Method A: VH-labeling with minimal semiperimeter (Section VI-A).

Minimizing the number of VH labels is the odd cycle transversal problem:
the nodes outside a minimum OCT induce the largest bipartite subgraph,
whose 2-coloring provides the V/H labels.  The OCT itself is found
through a minimum vertex cover of ``G □ K2`` (Lemma 1).

Two refinements on top of the plain reduction:

* **orientation** — each connected component of the bipartite remainder
  can flip its two color classes independently; flips are chosen to
  satisfy the alignment pins (ports on wordlines) and then to balance
  rows against columns, the free improvement of Figure 6.
* **alignment repair** — when two ports end up in opposite color classes
  of the same component, no flip can put both on wordlines; the
  conflicting ports are promoted to VH (Eq. 7 allows ``x_i^V`` to also
  be set), which keeps validity at the smallest local cost.
"""

from __future__ import annotations

from ..graphs import OctResult, greedy_oct, odd_cycle_transversal
from .labeling import Label, VHLabeling
from .preprocess import BddGraph

__all__ = ["label_min_semiperimeter", "label_heuristic"]


def label_min_semiperimeter(
    bdd_graph: BddGraph,
    alignment: bool = True,
    backend: str = "highs",
    time_limit: float | None = None,
    trace_callback=None,
    algorithm: str = "vertex_cover",
) -> VHLabeling:
    """Solve the VH-labeling problem for minimal semiperimeter.

    ``algorithm`` selects the exact OCT engine: ``"vertex_cover"`` is
    the paper's Lemma 1 pipeline (minimum vertex cover of ``G □ K2``,
    ILP-backed); ``"compression"`` runs the Reed–Smith–Vetta iterative
    compression (FPT in the transversal size, useful when the optimum
    is small and the ILP struggles).  Exact either way; with a
    ``time_limit`` the vertex-cover search may stop early and the
    result is valid but possibly non-minimal — ``meta['optimal']``
    reports which.
    """
    if algorithm == "vertex_cover":
        oct_result = odd_cycle_transversal(
            bdd_graph.graph,
            backend=backend,
            time_limit=time_limit,
            trace_callback=trace_callback,
        )
    elif algorithm == "compression":
        from ..graphs import oct_iterative_compression

        oct_result = oct_iterative_compression(bdd_graph.graph)
    else:
        raise ValueError(f"unknown OCT algorithm {algorithm!r}")
    return _labeling_from_oct(bdd_graph, oct_result, alignment)


def label_heuristic(bdd_graph: BddGraph, alignment: bool = True) -> VHLabeling:
    """Fast heuristic labeling (greedy OCT), for scalability mode."""
    oct_result = greedy_oct(bdd_graph.graph)
    return _labeling_from_oct(bdd_graph, oct_result, alignment)


def _labeling_from_oct(
    bdd_graph: BddGraph, oct_result: OctResult, alignment: bool
) -> VHLabeling:
    graph = bdd_graph.graph
    oct_set = set(oct_result.oct_set)
    coloring = dict(oct_result.coloring)
    ports = bdd_graph.port_nodes() if alignment else set()

    # Promote ports whose component cannot orient them onto wordlines.
    bipartite = graph.subgraph(set(graph.nodes()) - oct_set)
    components = bipartite.connected_components()
    promoted: set[int] = set()
    flips: list[tuple[set, int]] = []  # (component, color that becomes H)

    for comp in components:
        comp_ports = ports & comp
        colors = {coloring[p] for p in comp_ports}
        if len(colors) <= 1:
            flips.append((comp, colors.pop() if colors else -1))
            continue
        # Conflict: ports on both sides.  Promote the minority side's
        # ports to VH; the remaining side becomes the H class.
        side0 = [p for p in comp_ports if coloring[p] == 0]
        side1 = [p for p in comp_ports if coloring[p] == 1]
        if len(side0) <= len(side1):
            promoted.update(side0)
            flips.append((comp, 1))
        else:
            promoted.update(side1)
            flips.append((comp, 0))

    oct_set |= promoted

    # Balance rows vs columns with the undecided components (Figure 6):
    # process the decided flips first, then greedily orient free
    # components to shrink whichever side currently dominates.
    labels: dict[int, Label] = {v: Label.VH for v in oct_set}
    rows = cols = len(oct_set)
    free: list[tuple[set, dict[int, int]]] = []

    for comp, h_color in flips:
        comp_colors = {v: coloring[v] for v in comp if v not in oct_set}
        if h_color == -1:
            free.append((comp, comp_colors))
            continue
        for v, c in comp_colors.items():
            if c == h_color:
                labels[v] = Label.H
                rows += 1
            else:
                labels[v] = Label.V
                cols += 1

    # Largest free components first so the balancing is most effective.
    free.sort(key=lambda item: -len(item[1]))
    for _comp, comp_colors in free:
        n0 = sum(1 for c in comp_colors.values() if c == 0)
        n1 = len(comp_colors) - n0
        # Option A: color 0 -> H (rows += n0, cols += n1); option B: flipped.
        if max(rows + n0, cols + n1) <= max(rows + n1, cols + n0):
            h_color = 0
        else:
            h_color = 1
        for v, c in comp_colors.items():
            if c == h_color:
                labels[v] = Label.H
                rows += 1
            else:
                labels[v] = Label.V
                cols += 1

    labeling = VHLabeling(
        labels,
        meta={
            "method": "oct",
            "optimal": oct_result.optimal and not promoted,
            "oct_size": len(oct_result.oct_set),
            "promoted_ports": len(promoted),
            "runtime": oct_result.runtime,
            "trace": oct_result.trace,
        },
    )
    return labeling
