"""Method A: VH-labeling with minimal semiperimeter (Section VI-A).

Minimizing the number of VH labels is the odd cycle transversal problem:
the nodes outside a minimum OCT induce the largest bipartite subgraph,
whose 2-coloring provides the V/H labels.  The OCT itself is found
through a minimum vertex cover of ``G □ K2`` (Lemma 1), decomposed into
per-cyclic-core solves (:mod:`repro.graphs.decompose`).

Two refinements on top of the plain reduction:

* **orientation** — each connected component of the bipartite remainder
  can flip its two color classes independently; flips are chosen to
  satisfy the alignment pins (ports on wordlines) and then to balance
  rows against columns exactly (a subset-sum choice over the free
  components), the free improvement of Figure 6.
* **alignment** — the exact vertex-cover engine handles Eq. 7 directly:
  :func:`repro.graphs.oct.aligned_odd_cycle_transversal` finds the
  minimum transversal among labelings that can put every surviving port
  on a wordline, so its ``optimal`` flag covers the aligned problem.
  The inexact engines (greedy, iterative compression) still repair
  afterwards: ports stuck in opposite color classes of one component
  are promoted to VH (Eq. 7 allows ``x_i^V`` to also be set), which
  keeps validity at the smallest local cost.
"""

from __future__ import annotations

import time

from ..graphs import (
    OctResult,
    aligned_odd_cycle_transversal,
    greedy_oct,
    odd_cycle_transversal,
)
from .labeling import Label, VHLabeling
from .preprocess import BddGraph

__all__ = ["label_min_semiperimeter", "label_heuristic"]


def label_min_semiperimeter(
    bdd_graph: BddGraph,
    alignment: bool = True,
    backend: str = "highs",
    time_limit: float | None = None,
    trace_callback=None,
    algorithm: str = "vertex_cover",
    jobs: int = 1,
) -> VHLabeling:
    """Solve the VH-labeling problem for minimal semiperimeter.

    ``algorithm`` selects the exact OCT engine: ``"vertex_cover"`` is
    the paper's Lemma 1 pipeline (minimum vertex cover of ``G □ K2``,
    ILP-backed, solved per cyclic core and alignment-exact);
    ``"compression"`` runs the Reed–Smith–Vetta iterative compression
    (FPT in the transversal size, useful when the optimum is small and
    the ILP struggles), with alignment repaired by port promotion.
    ``jobs > 1`` lets the vertex-cover engine solve independent cores
    and kernel components in parallel threads.  With a ``time_limit``
    the vertex-cover search may stop early and the result is valid but
    possibly non-minimal — ``meta['optimal']`` reports which.
    """
    t0 = time.perf_counter()
    exact_alignment = False
    if algorithm == "vertex_cover":
        if alignment:
            oct_result = aligned_odd_cycle_transversal(
                bdd_graph.graph,
                bdd_graph.port_nodes(),
                backend=backend,
                time_limit=time_limit,
                trace_callback=trace_callback,
                jobs=jobs,
            )
            # The transversal is minimal over aligned labelings, so the
            # repair step below never fires when the solve completed.
            exact_alignment = oct_result.optimal
        else:
            oct_result = odd_cycle_transversal(
                bdd_graph.graph,
                backend=backend,
                time_limit=time_limit,
                trace_callback=trace_callback,
                jobs=jobs,
            )
    elif algorithm == "compression":
        from ..graphs import oct_iterative_compression

        oct_result = oct_iterative_compression(bdd_graph.graph)
    else:
        raise ValueError(f"unknown OCT algorithm {algorithm!r}")
    oct_seconds = time.perf_counter() - t0
    return _labeling_from_oct(
        bdd_graph, oct_result, alignment,
        exact_alignment=exact_alignment, oct_seconds=oct_seconds,
    )


def label_heuristic(bdd_graph: BddGraph, alignment: bool = True) -> VHLabeling:
    """Fast heuristic labeling (greedy OCT), for scalability mode."""
    t0 = time.perf_counter()
    oct_result = greedy_oct(bdd_graph.graph)
    oct_seconds = time.perf_counter() - t0
    return _labeling_from_oct(
        bdd_graph, oct_result, alignment, oct_seconds=oct_seconds
    )


def _labeling_from_oct(
    bdd_graph: BddGraph,
    oct_result: OctResult,
    alignment: bool,
    exact_alignment: bool = False,
    oct_seconds: float = 0.0,
) -> VHLabeling:
    t0 = time.perf_counter()
    graph = bdd_graph.graph
    oct_set = set(oct_result.oct_set)
    coloring = dict(oct_result.coloring)
    ports = bdd_graph.port_nodes() if alignment else set()

    # Promote ports whose component cannot orient them onto wordlines.
    # (Never fires after a completed aligned exact solve: its coloring
    # already has one port color class per component.)
    bipartite = graph.subgraph(set(graph.nodes()) - oct_set)
    components = bipartite.connected_components()
    promoted: set[int] = set()
    flips: list[tuple[set, int]] = []  # (component, color that becomes H)

    for comp in components:
        comp_ports = ports & comp
        colors = {coloring[p] for p in comp_ports}
        if len(colors) <= 1:
            flips.append((comp, colors.pop() if colors else -1))
            continue
        # Conflict: ports on both sides.  Promote the minority side's
        # ports to VH; the remaining side becomes the H class.
        side0 = [p for p in comp_ports if coloring[p] == 0]
        side1 = [p for p in comp_ports if coloring[p] == 1]
        if len(side0) <= len(side1):
            promoted.update(side0)
            flips.append((comp, 1))
        else:
            promoted.update(side1)
            flips.append((comp, 0))

    oct_set |= promoted

    # Balance rows vs columns with the undecided components (Figure 6):
    # process the decided flips first, then orient the free components.
    labels: dict[int, Label] = {v: Label.VH for v in oct_set}
    rows = cols = len(oct_set)
    free: list[dict[int, int]] = []

    for comp, h_color in flips:
        comp_colors = {v: coloring[v] for v in comp if v not in oct_set}
        if h_color == -1:
            free.append(comp_colors)
            continue
        for v, c in comp_colors.items():
            if c == h_color:
                labels[v] = Label.H
                rows += 1
            else:
                labels[v] = Label.V
                cols += 1

    for comp_colors, h_color in zip(free, _balance_free(rows, cols, free)):
        for v, c in comp_colors.items():
            if c == h_color:
                labels[v] = Label.H
            else:
                labels[v] = Label.V

    labeling = VHLabeling(
        labels,
        meta={
            "method": "oct",
            "optimal": oct_result.optimal and not promoted,
            "exact_alignment": exact_alignment,
            "oct_size": len(oct_result.oct_set),
            "oct_lower_bound": oct_result.lower_bound,
            "promoted_ports": len(promoted),
            "runtime": oct_result.runtime,
            "stage_seconds": {
                "oct": oct_seconds,
                "orient": time.perf_counter() - t0,
            },
            "trace": oct_result.trace,
        },
    )
    return labeling


def _balance_free(rows: int, cols: int, free: list[dict[int, int]]) -> list[int]:
    """Exact row/column balancing over the free components.

    Each port-free component may map its color class 0 to either H
    (rows) or V (columns); choosing orientations to minimize the final
    ``max(rows, cols)`` is a subset-sum problem over the class sizes,
    solved with a bitset DP (one Python-int shift per component).
    Returns the H color per component, aligned with ``free``.
    """
    if not free:
        return []
    sizes = [
        (sum(1 for c in comp.values() if c == 0),
         sum(1 for c in comp.values() if c == 1))
        for comp in free
    ]
    total = rows + cols + sum(n0 + n1 for n0, n1 in sizes)

    # stages[i] = bitset of achievable row counts before component i.
    stages = []
    bits = 1 << rows
    for n0, n1 in sizes:
        stages.append(bits)
        bits = (bits << n0) | (bits << n1)

    best_rows = None
    best_obj = None
    probe = bits
    while probe:
        r = (probe & -probe).bit_length() - 1
        obj = max(r, total - r)
        if best_obj is None or obj < best_obj or (obj == best_obj and r < best_rows):
            best_obj, best_rows = obj, r
        probe &= probe - 1

    choices = [0] * len(sizes)
    target = best_rows
    for i in range(len(sizes) - 1, -1, -1):
        n0, n1 = sizes[i]
        if target >= n0 and (stages[i] >> (target - n0)) & 1:
            choices[i] = 0  # class 0 -> H contributes n0 rows
            target -= n0
        else:
            choices[i] = 1
            target -= n1
    return choices
