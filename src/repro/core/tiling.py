"""Multi-tile synthesis under fixed crossbar dimensions.

Manufactured crossbars come in fixed sizes (the paper's Section III
notes COMPACT extends to hard row/column constraints; CONTRA assumes a
128x128 array).  When one function does not fit a tile, its outputs
must be split across several tiles.  This module implements that flow:

1. outputs are grouped greedily (largest BDD cone first, first-fit on
   the existing tiles, exploiting shared logic inside each tile);
2. each group is synthesized with
   :func:`repro.core.constrained.label_constrained` so the tile budget
   is a *hard* guarantee, not an estimate;
3. the result is a :class:`TiledDesign` that evaluates like a single
   design and reports aggregate metrics.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from ..bdd import SBDD, build_sbdd
from ..circuits.netlist import Netlist
from ..crossbar.design import CrossbarDesign
from .constrained import ConstraintInfeasibleError, label_constrained
from .mapping import map_to_crossbar
from .preprocess import BddGraph, preprocess

__all__ = ["TiledDesign", "partition_outputs", "tile_netlist"]


@dataclass
class TiledDesign:
    """A function realised as several fixed-size crossbar tiles."""

    name: str
    tiles: list[CrossbarDesign]
    output_tile: dict[str, int]  # output name -> tile index
    max_rows: int
    max_cols: int
    meta: dict = field(default_factory=dict)

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    @property
    def total_area(self) -> int:
        return sum(t.area for t in self.tiles)

    @property
    def total_semiperimeter(self) -> int:
        return sum(t.semiperimeter for t in self.tiles)

    @property
    def delay_steps(self) -> int:
        """Tiles are programmed in parallel: the slowest tile dominates."""
        return max((t.delay_steps for t in self.tiles), default=0)

    def evaluate(self, assignment: Mapping[str, bool]) -> dict[str, bool]:
        out: dict[str, bool] = {}
        for tile in self.tiles:
            out.update(tile.evaluate(assignment))
        return out

    def __repr__(self) -> str:
        return (
            f"TiledDesign({self.name!r}, tiles={self.num_tiles} "
            f"@ <= {self.max_rows}x{self.max_cols}, area={self.total_area})"
        )


def _group_graph(sbdd: SBDD, outputs: Sequence[str]) -> BddGraph:
    """The BDD graph restricted to a subset of the SBDD's outputs."""
    sub = SBDD(sbdd.manager, {o: sbdd.roots[o] for o in outputs}, name=sbdd.name)
    return preprocess(sub)


def partition_outputs(
    sbdd: SBDD,
    max_rows: int,
    max_cols: int,
    gamma: float = 0.5,
    backend: str = "highs",
    time_limit: float | None = 30.0,
) -> TiledDesign:
    """Split an SBDD's outputs over fixed-size tiles (first-fit greedy).

    Raises :class:`ConstraintInfeasibleError` when some single output
    alone does not fit a tile.
    """
    manager = sbdd.manager
    # Largest cones first gives the classic first-fit-decreasing packing.
    order = sorted(
        sbdd.roots,
        key=lambda o: -manager.node_count([sbdd.roots[o]]),
    )

    groups: list[list[str]] = []
    labelings: list = []

    for out in order:
        placed = False
        for gi, group in enumerate(groups):
            candidate = group + [out]
            graph = _group_graph(sbdd, candidate)
            if graph.num_nodes > max_rows + max_cols:
                continue  # cheap necessary bound: S >= n
            try:
                labeling = label_constrained(
                    graph, max_rows=max_rows, max_cols=max_cols,
                    gamma=gamma, backend=backend, time_limit=time_limit,
                )
            except ConstraintInfeasibleError:
                continue
            groups[gi] = candidate
            labelings[gi] = labeling
            placed = True
            break
        if not placed:
            graph = _group_graph(sbdd, [out])
            try:
                labeling = label_constrained(
                    graph, max_rows=max_rows, max_cols=max_cols,
                    gamma=gamma, backend=backend, time_limit=time_limit,
                )
            except ConstraintInfeasibleError as exc:
                raise ConstraintInfeasibleError(
                    f"output {out!r} alone does not fit a "
                    f"{max_rows}x{max_cols} tile"
                ) from exc
            groups.append([out])
            labelings.append(labeling)

    tiles: list[CrossbarDesign] = []
    output_tile: dict[str, int] = {}
    for gi, (group, labeling) in enumerate(zip(groups, labelings)):
        graph = _group_graph(sbdd, group)
        design = map_to_crossbar(graph, labeling, name=f"{sbdd.name}:tile{gi}")
        if design.num_rows > max_rows or design.num_cols > max_cols:
            # Constant-false outputs add one physical row; re-check.
            raise ConstraintInfeasibleError(
                f"tile {gi} exceeded the budget after mapping "
                f"({design.num_rows}x{design.num_cols})"
            )
        tiles.append(design)
        for out in group:
            output_tile[out] = gi

    return TiledDesign(
        name=sbdd.name,
        tiles=tiles,
        output_tile=output_tile,
        max_rows=max_rows,
        max_cols=max_cols,
        meta={"gamma": gamma, "groups": [list(g) for g in groups]},
    )


def tile_netlist(
    netlist: Netlist,
    max_rows: int,
    max_cols: int,
    gamma: float = 0.5,
    backend: str = "highs",
    time_limit: float | None = 30.0,
) -> TiledDesign:
    """Convenience wrapper: netlist -> SBDD -> tiled design.

    Constant outputs are synthesized into the first tile's graph by the
    normal mapping rules (a constant-false output consumes one row of
    slack, which :func:`partition_outputs` re-checks after mapping).
    """
    sbdd = build_sbdd(netlist)
    constant = {
        out for out, root in sbdd.roots.items()
        if sbdd.manager.is_terminal(root)
    }
    live = {o: r for o, r in sbdd.roots.items() if o not in constant}
    if not live:
        graph = preprocess(sbdd)
        labeling = label_constrained(
            graph, max_rows=max_rows, max_cols=max_cols, gamma=gamma,
            backend=backend, time_limit=time_limit,
        )
        design = map_to_crossbar(graph, labeling, name=netlist.name)
        return TiledDesign(netlist.name, [design], {o: 0 for o in sbdd.roots},
                           max_rows, max_cols)

    tiled = partition_outputs(
        SBDD(sbdd.manager, live, name=netlist.name),
        max_rows=max_rows, max_cols=max_cols,
        gamma=gamma, backend=backend, time_limit=time_limit,
    )
    if constant:
        # Realise constant outputs on their own tiny tile.
        const_sbdd = SBDD(
            sbdd.manager, {o: sbdd.roots[o] for o in constant}, name="const"
        )
        graph = preprocess(const_sbdd)
        from .labeling import VHLabeling

        design = map_to_crossbar(graph, VHLabeling({}), name=f"{netlist.name}:const")
        tiled.tiles.append(design)
        for out in constant:
            tiled.output_tile[out] = len(tiled.tiles) - 1
    return tiled
