"""Method B: VH-labeling by MIP over the weighted objective (Section VI-B).

The formulation is Eq. 4 of the paper.  For every node ``i`` two binaries
``x_i^V`` and ``x_i^H`` say whether the node occupies a bitline and/or a
wordline; for every edge ``(i, j)`` a helper binary ``x_ij`` orients the
memristor connection as V-H or H-V:

    min   gamma * S + (1 - gamma) * D
    s.t.  S  = sum_i (x_i^V + x_i^H)
          R  = sum_i x_i^H,   C = sum_i x_i^V
          D >= R,  D >= C
          x_i^V + x_j^H >= 2 - 2 x_ij      for (i, j) in E
          x_i^H + x_j^V >= 2 x_ij          for (i, j) in E
          x_i^V + x_i^H >= 1               every node occupies a line
          x_i^H  = 1                       for roots/terminal (alignment, Eq. 7)

(The paper's Eq. 4 prints ``R = sum x^V``; consistent with Eq. 3 and the
text, rows are wordlines, so we read ``R = sum x^H``.)
"""

from __future__ import annotations

from ..milp import Model, SolveStatus, sum_expr
from .labeling import Label, VHLabeling
from .preprocess import BddGraph

__all__ = ["label_weighted", "build_vh_model"]


def build_vh_model(
    bdd_graph: BddGraph, gamma: float, alignment: bool = True
) -> tuple[Model, dict[int, tuple], object]:
    """Construct the Eq. 4 MIP.  Returns ``(model, node_vars, D_var)``."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must lie in [0, 1]")
    graph = bdd_graph.graph
    model = Model(f"vh_gamma{gamma:g}")
    nodes = sorted(graph.nodes())
    n = len(nodes)

    xv = {i: model.add_binary(f"v_{i}") for i in nodes}
    xh = {i: model.add_binary(f"h_{i}") for i in nodes}
    d_var = model.add_integer("D", 0, n)

    rows_expr = sum_expr(xh.values())
    cols_expr = sum_expr(xv.values())
    model.add_constraint(d_var - rows_expr >= 0, name="D>=R")
    model.add_constraint(d_var - cols_expr >= 0, name="D>=C")

    for i in nodes:
        model.add_constraint(xv[i] + xh[i] >= 1, name=f"occupy_{i}")

    for u, v in graph.edges():
        e = model.add_binary(f"e_{u}_{v}")
        model.add_constraint(xv[u] + xh[v] + 2 * e >= 2, name=f"vh_{u}_{v}")
        model.add_constraint(xh[u] + xv[v] - 2 * e >= 0, name=f"hv_{u}_{v}")

    if alignment:
        for port in bdd_graph.port_nodes():
            model.add_constraint(xh[port] >= 1, name=f"align_{port}")

    model.minimize(gamma * (rows_expr + cols_expr) + (1.0 - gamma) * d_var)
    return model, {i: (xv[i], xh[i]) for i in nodes}, d_var


def label_weighted(
    bdd_graph: BddGraph,
    gamma: float = 0.5,
    alignment: bool = True,
    backend: str = "highs",
    time_limit: float | None = None,
    warm_start: VHLabeling | None = None,
    trace_callback=None,
) -> VHLabeling:
    """Solve the VH-labeling problem for ``gamma*S + (1-gamma)*D``.

    ``warm_start`` (typically a Method-A labeling) seeds the B&B backend
    with a feasible incumbent; ignored by the HiGHS backend.
    """
    model, node_vars, _ = build_vh_model(bdd_graph, gamma, alignment)

    initial = None
    if warm_start is not None and backend == "bnb":
        initial = _warm_values(bdd_graph, warm_start, model)

    sol = model.solve(
        backend=backend,
        time_limit=time_limit,
        initial_solution=initial,
        trace_callback=trace_callback,
    )
    if sol.status in (SolveStatus.INFEASIBLE, SolveStatus.NO_SOLUTION):
        if warm_start is not None:
            out = VHLabeling(dict(warm_start.labels), meta=dict(warm_start.meta))
            out.meta.update({"method": "mip", "optimal": False, "fallback": "warm_start"})
            return out
        raise RuntimeError(
            f"VH MIP terminated without a solution ({sol.status}); the "
            "all-VH labeling is always feasible, so this indicates the "
            "time limit preempted the root relaxation"
        )

    labels: dict[int, Label] = {}
    for i, (xv, xh) in node_vars.items():
        has_v = sol.int_value(xv) == 1
        has_h = sol.int_value(xh) == 1
        if has_v and has_h:
            labels[i] = Label.VH
        elif has_v:
            labels[i] = Label.V
        else:
            labels[i] = Label.H

    return VHLabeling(
        labels,
        meta={
            "method": "mip",
            "gamma": gamma,
            "optimal": sol.is_optimal,
            "objective": sol.objective,
            "bound": sol.bound,
            "gap": sol.gap,
            "runtime": sol.runtime,
            "nodes_explored": sol.nodes_explored,
            "trace": sol.trace,
        },
    )


def _warm_values(
    bdd_graph: BddGraph, labeling: VHLabeling, model: Model
) -> dict[str, float]:
    """Encode a labeling as a feasible assignment of the Eq. 4 MIP."""
    values: dict[str, float] = {}
    labels = labeling.labels
    for i, lab in labels.items():
        values[f"v_{i}"] = 1.0 if lab.has_col() else 0.0
        values[f"h_{i}"] = 1.0 if lab.has_row() else 0.0
    for u, v in bdd_graph.graph.edges():
        # x_ij = 1 selects the H-V orientation (u on a wordline).
        if labels[u].has_row() and labels[v].has_col():
            values[f"e_{u}_{v}"] = 1.0
        else:
            values[f"e_{u}_{v}"] = 0.0
    values["D"] = float(labeling.max_dimension)
    return values
