"""Crossbar model: designs, literals, evaluation, validation, metrics."""

from .analog import AnalogParams, AnalogResult, simulate
from .batch import assignments_to_matrix, batch_evaluate, bitset_evaluate
from .analysis import DesignAnalysis, analyze_design, conducting_depths
from .design import CrossbarDesign, CrossbarDesign3D, h_plane, v_plane
from .faults import (
    STUCK_OFF,
    STUCK_ON,
    Fault,
    FaultMap,
    critical_cells,
    evaluate_with_faults,
    is_functional_under_faults,
    random_fault_map,
    yield_estimate,
)
from .literals import OFF, ON, Lit
from .metrics import DesignMetrics, measure
from .programming import ProgrammingSchedule, ProgrammingStep, schedule_sequence
from .serialize import (
    design_from_json,
    design_to_json,
    fault_map_from_json,
    fault_map_to_json,
)
from .spice import to_spice_netlist
from .validate import ValidationReport, validate_design, validate_under_faults
from .variation import (
    VariationParams,
    VariationReport,
    simulate_with_variation,
    variation_sweep,
)

__all__ = [
    "ProgrammingSchedule",
    "ProgrammingStep",
    "schedule_sequence",
    "VariationParams",
    "VariationReport",
    "simulate_with_variation",
    "variation_sweep",
    "batch_evaluate",
    "bitset_evaluate",
    "assignments_to_matrix",
    "design_to_json",
    "design_from_json",
    "fault_map_to_json",
    "fault_map_from_json",
    "to_spice_netlist",
    "DesignAnalysis",
    "analyze_design",
    "conducting_depths",
    "Fault",
    "FaultMap",
    "STUCK_ON",
    "STUCK_OFF",
    "evaluate_with_faults",
    "is_functional_under_faults",
    "critical_cells",
    "yield_estimate",
    "random_fault_map",
    "CrossbarDesign",
    "CrossbarDesign3D",
    "h_plane",
    "v_plane",
    "Lit",
    "ON",
    "OFF",
    "simulate",
    "AnalogParams",
    "AnalogResult",
    "validate_design",
    "validate_under_faults",
    "ValidationReport",
    "measure",
    "DesignMetrics",
]
