"""Resistive analog model of a flow-based crossbar (SPICE stand-in).

The paper verifies its designs with SPICE simulations and the memristor
model of [33].  Offline, this module solves the same physics at the DC
operating point: the programmed crossbar is a linear resistive network
(memristors are fixed at R_on or R_off once programmed), the input
wordline is driven at ``v_in``, and every output wordline is loaded by a
sense resistor to ground.  Modified nodal analysis over the sparse
conductance matrix yields all line voltages exactly.

An output senses logic '1' when its voltage exceeds ``threshold * v_in``.
With the default 10^6 on/off ratio, true sneak paths (a few hundred
series R_on) and leakage-only meshes are separated by orders of
magnitude, mirroring what the SPICE verification establishes.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from .design import CrossbarDesign

__all__ = ["AnalogParams", "AnalogResult", "simulate"]


@dataclass(frozen=True)
class AnalogParams:
    """Electrical parameters of the crossbar model."""

    r_on: float = 1e3  # low-resistance (programmed '1' / true literal) [ohm]
    r_off: float = 1e9  # high-resistance state [ohm]
    r_sense: float = 1e6  # sense resistor at each output wordline [ohm]
    v_in: float = 1.0  # drive voltage [V]
    threshold: float = 0.5  # logic-high threshold as a fraction of v_in


@dataclass
class AnalogResult:
    """Voltages and logic readout of one analog evaluation."""

    outputs: dict[str, bool]
    voltages: dict[str, float]  # output name -> sensed voltage [V]
    row_voltages: np.ndarray
    col_voltages: np.ndarray
    input_current: float  # current delivered by the source [A]


def simulate(
    design: CrossbarDesign,
    assignment: Mapping[str, bool],
    params: AnalogParams = AnalogParams(),
) -> AnalogResult:
    """DC nodal analysis of ``design`` programmed with ``assignment``.

    Every wordline and bitline is a circuit node; each crosspoint
    contributes ``1/r_on`` or ``1/r_off`` between its row and column.
    The input row is eliminated as a Dirichlet node at ``v_in``; output
    rows see ``1/r_sense`` to ground.
    """
    R, C = design.num_rows, design.num_cols
    n = R + C  # node ids: rows 0..R-1, cols R..R+C-1
    g_on, g_off = 1.0 / params.r_on, 1.0 / params.r_off
    g_sense = 1.0 / params.r_sense

    on_cells = design.program(assignment)

    # One conductance per crosspoint, assembled as flat arrays.
    cells = list(design.cells())
    cell_i = np.array([r for r, _c, _l in cells], dtype=np.intp)
    cell_j = np.array([c for _r, c, _l in cells], dtype=np.intp) + R
    g = np.where(
        np.array([(r, c) in on_cells for r, c, _l in cells], dtype=bool),
        g_on,
        g_off,
    )

    diag = np.bincount(cell_i, weights=g, minlength=n) + np.bincount(
        cell_j, weights=g, minlength=n
    )
    np.add.at(diag, np.fromiter(design.output_rows.values(), dtype=np.intp), g_sense)

    # Cells on the driven input row become right-hand-side sources
    # (Dirichlet elimination); all others contribute off-diagonals.
    driven = cell_i == design.input_row
    rhs = np.zeros(n)
    rhs += np.bincount(cell_j[driven], weights=g[driven], minlength=n) * params.v_in
    fi, fj, fg = cell_i[~driven], cell_j[~driven], g[~driven]

    # Drop the input-row node: every node above it shifts down one slot.
    m = n - 1
    keep = np.concatenate(
        [np.arange(design.input_row), np.arange(design.input_row + 1, n)]
    )

    def remap(nodes: np.ndarray) -> np.ndarray:
        return nodes - (nodes > design.input_row)

    d = diag[keep]
    rr = np.concatenate([remap(fi), remap(fj), np.arange(m)])
    cc = np.concatenate([remap(fj), remap(fi), np.arange(m)])
    dd = np.concatenate([-fg, -fg, np.where(d > 0, d, 1.0)])  # float isolated nodes

    G = sparse.csr_matrix((dd, (rr, cc)), shape=(m, m))
    b = rhs[keep]
    v = spsolve(G.tocsc(), b)

    volt = np.zeros(n)
    volt[design.input_row] = params.v_in
    volt[keep] = v

    # Source current: sum of currents into the network from the input row.
    input_current = float(np.sum(g[driven] * (params.v_in - volt[cell_j[driven]])))

    voltages = {}
    outputs = {}
    for out, row in design.output_rows.items():
        voltages[out] = float(volt[row])
        outputs[out] = bool(volt[row] > params.threshold * params.v_in)
    outputs.update(design.constant_outputs)

    return AnalogResult(
        outputs=outputs,
        voltages=voltages,
        row_voltages=volt[:R],
        col_voltages=volt[R:],
        input_current=input_current,
    )
