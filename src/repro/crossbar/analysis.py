"""Design-quality analytics for synthesized crossbars.

Quantifies what the paper's SPICE sign-off establishes qualitatively:

* **utilization** — programmed fraction of the crosspoint grid;
* **sneak-path depth** — the hop count of the shortest conducting path
  per output (each hop is one memristor in series, the first-order
  predictor of the sensed voltage);
* **analog margins** — the worst-case separation between sensed-high
  and sensed-low voltages over sampled assignments, i.e. how much
  device variation the threshold can absorb.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from .analog import AnalogParams, simulate
from .design import CrossbarDesign

__all__ = ["DesignAnalysis", "analyze_design", "conducting_depths"]


@dataclass
class DesignAnalysis:
    """Aggregated quality report for one design."""

    name: str
    utilization: float
    #: Max over (assignment, output) of the shortest conducting path, in
    #: memristor hops (None when no output ever conducts).
    worst_path_depth: int | None
    #: Lowest voltage ever sensed as logic high (fraction of v_in).
    min_high_voltage: float | None
    #: Highest voltage ever sensed as logic low (fraction of v_in).
    max_low_voltage: float | None
    assignments_checked: int
    per_output_depth: dict[str, int | None] = field(default_factory=dict)

    @property
    def margin(self) -> float | None:
        """Separation min_high − max_low (fraction of v_in)."""
        if self.min_high_voltage is None or self.max_low_voltage is None:
            return None
        return self.min_high_voltage - self.max_low_voltage


def conducting_depths(
    design: CrossbarDesign, assignment: Mapping[str, bool]
) -> dict[str, int | None]:
    """Shortest conducting path (in memristor hops) to each output.

    BFS over the row/column connectivity graph; a hop traverses one
    low-resistance cell.  ``None`` when the output is unreachable under
    this assignment.
    """
    on_cells = design.program(assignment)
    row_adj: dict[int, list[int]] = {}
    col_adj: dict[int, list[int]] = {}
    for r, c in on_cells:
        row_adj.setdefault(r, []).append(c)
        col_adj.setdefault(c, []).append(r)

    dist_rows = {design.input_row: 0}
    dist_cols: dict[int, int] = {}
    frontier_rows = [design.input_row]
    depth = 0
    while frontier_rows:
        next_rows: list[int] = []
        for r in frontier_rows:
            for c in row_adj.get(r, ()):
                if c not in dist_cols:
                    dist_cols[c] = dist_rows[r] + 1
                    for r2 in col_adj.get(c, ()):
                        if r2 not in dist_rows:
                            dist_rows[r2] = dist_cols[c] + 1
                            next_rows.append(r2)
        frontier_rows = next_rows
        depth += 1

    return {
        out: dist_rows.get(row) for out, row in design.output_rows.items()
    }


def analyze_design(
    design: CrossbarDesign,
    inputs: Sequence[str],
    params: AnalogParams = AnalogParams(),
    exhaustive_limit: int = 10,
    samples: int = 64,
    seed: int = 0,
    analog: bool = True,
) -> DesignAnalysis:
    """Sweep assignments and aggregate utilization/depth/margin metrics."""
    names = list(inputs)
    if len(names) <= exhaustive_limit:
        envs = [
            dict(zip(names, bits))
            for bits in itertools.product([False, True], repeat=len(names))
        ]
    else:
        rng = random.Random(seed)
        envs = [
            {n: bool(rng.getrandbits(1)) for n in names} for _ in range(samples)
        ]

    worst_depth: int | None = None
    per_output: dict[str, int | None] = {out: None for out in design.output_rows}
    min_high: float | None = None
    max_low: float | None = None

    # One vectorized fixpoint covers the logical sweep; only the analog
    # solves (one sparse system per assignment) remain per-env.
    if analog:
        from .batch import assignments_to_matrix, batch_evaluate

        logical_batch = batch_evaluate(
            design, names, assignments_to_matrix(envs, names)
        )
    for k, env in enumerate(envs):
        depths = conducting_depths(design, env)
        for out, d in depths.items():
            if d is not None:
                if per_output[out] is None or d > per_output[out]:
                    per_output[out] = d
                if worst_depth is None or d > worst_depth:
                    worst_depth = d
        if analog:
            result = simulate(design, env, params)
            for out, values in logical_batch.items():
                if out not in result.voltages:
                    continue
                v = result.voltages[out] / params.v_in
                if values[k]:
                    min_high = v if min_high is None else min(min_high, v)
                else:
                    max_low = v if max_low is None else max(max_low, v)

    cells = design.num_rows * design.num_cols
    return DesignAnalysis(
        name=design.name,
        utilization=design.memristor_count / cells if cells else 0.0,
        worst_path_depth=worst_depth,
        min_high_voltage=min_high,
        max_low_voltage=max_low,
        assignments_checked=len(envs),
        per_output_depth=per_output,
    )
