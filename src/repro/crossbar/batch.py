"""Vectorized batch evaluation of crossbar designs.

Evaluating one assignment is a BFS; evaluating thousands (Monte-Carlo
validation, yield analysis, test benches) is much faster as a bit-
parallel fixpoint over numpy boolean arrays: one row/column reachability
matrix for *all* assignments at once, iterated until no assignment
learns a new line.  :func:`bitset_evaluate` goes one step further and
runs the *whole* ``2**n`` assignment space as packed uint64 words — 64
assignments per machine word — which is what exhaustive validation uses.

Both fixpoints scatter-OR cell contributions into their target lines.
``np.logical_or.at`` does that directly but falls into the notoriously
slow ``ufunc.at`` path; instead the cell list is sorted by target once
(:func:`_scatter_plan`) and each iteration reduces contiguous segments
with ``reduceat`` — pure vectorized code on the hot loop.

Stuck-at faults are applied by masking the ``on`` matrix: a stuck-off
cell's column is forced False, a stuck-on cell's forced True, and a
stuck-on fault at an unprogrammed crosspoint appends an always-on cell.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from .. import bitset
from .design import CrossbarDesign, h_plane, v_plane
from .literals import ON, Lit

__all__ = ["batch_evaluate", "bitset_evaluate", "assignments_to_matrix"]


def assignments_to_matrix(
    assignments: Sequence[Mapping[str, bool]], names: Sequence[str]
) -> np.ndarray:
    """Stack assignment dicts into a (num_assignments, num_vars) array.

    Raises :class:`ValueError` naming the offending variable (and the
    assignment index) when an assignment is missing one of ``names``.
    """
    out = np.zeros((len(assignments), len(names)), dtype=bool)
    for i, env in enumerate(assignments):
        for j, name in enumerate(names):
            try:
                out[i, j] = bool(env[name])
            except KeyError:
                raise ValueError(
                    f"assignment {i} is missing variable {name!r} "
                    f"(has: {', '.join(sorted(env)) or 'nothing'})"
                ) from None
    return out


def _scatter_plan(
    indices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sorted-segment plan for OR-scattering cell values into lines.

    Returns ``(order, starts, targets)``: permuting by ``order`` groups
    equal indices contiguously, ``starts`` marks each group's first slot
    (``reduceat`` boundaries) and ``targets`` the line each group feeds.
    The plan depends only on cell positions, so the fixpoint loops
    compute it once and reuse it every iteration.
    """
    order = np.argsort(indices, kind="stable")
    sorted_idx = indices[order]
    starts = np.flatnonzero(np.r_[True, sorted_idx[1:] != sorted_idx[:-1]])
    return order, starts, sorted_idx[starts]


def _faulted_cells(
    design: CrossbarDesign, faults
) -> tuple[list[tuple[int, int, int, Lit]], list[bool | None]]:
    """The cell list and per-cell forced conduction after stuck-at faults.

    Mirrors :func:`repro.crossbar.faults.evaluate_with_faults`: the last
    fault at a crosspoint wins, a stuck-on fault at an unprogrammed site
    appends an always-on cell, and a stuck-off fault there is inert.
    Cells carry their full ``(layer, row, col)`` coordinate (layer 0 on
    planar designs); ``forced[i]`` is None for healthy cells, else the
    forced state.
    """
    from .faults import STUCK_ON, _check_fault_bounds

    _check_fault_bounds(design, faults)
    cells = list(design.cells3d())
    index = {(l, r, c): i for i, (l, r, c, _lit) in enumerate(cells)}
    forced: list[bool | None] = [None] * len(cells)
    for fault in faults:
        site = (fault.layer, fault.row, fault.col)
        i = index.get(site)
        if fault.kind == STUCK_ON:
            if i is None:
                index[site] = len(cells)
                cells.append((fault.layer, fault.row, fault.col, ON))
                forced.append(True)
            else:
                forced[i] = True
        elif i is not None:
            forced[i] = False
    return cells, forced


def _wire_geometry(
    design: CrossbarDesign, cells: list[tuple[int, int, int, Lit]]
) -> tuple[list[int], list[int], int, int]:
    """Global wordline/bitline indices for each cell, plus the space sizes.

    The layered fixpoint runs over *one* horizontal and *one* vertical
    wire space: the horizontal wire ``(plane 2k, r)`` gets global id
    ``k * num_rows + r`` and the vertical wire ``(plane 2k+1, c)`` gets
    ``k * num_cols + c``.  On a 1-layer design the ids collapse to the
    plain row/column indices, so the planar sweep is untouched — the
    inter-layer adjacency of a K-layer design is carried entirely by its
    upper-layer cells scattering into higher wire blocks.  Ports always
    live on plane 0, so output rows keep their ids verbatim.
    """
    if design.num_layers == 1:
        h_ids = [r for _l, r, _c, _lit in cells]
        v_ids = [c for _l, _r, c, _lit in cells]
        return h_ids, v_ids, design.num_rows, max(design.num_cols, 1)
    h_stride = design.num_rows
    v_stride = max(design.num_cols, 1)
    h_ids = [(h_plane(l) // 2) * h_stride + r for l, r, _c, _lit in cells]
    v_ids = [(v_plane(l) // 2) * v_stride + c for l, _r, c, _lit in cells]
    num_even = design.num_layers // 2 + 1
    num_odd = (design.num_layers + 1) // 2
    return h_ids, v_ids, num_even * h_stride, max(num_odd * v_stride, 1)


def batch_evaluate(
    design: CrossbarDesign,
    inputs: Sequence[str],
    matrix: np.ndarray,
    faults=None,
) -> dict[str, np.ndarray]:
    """Evaluate every output for every assignment row of ``matrix``.

    ``matrix`` is boolean, shaped (num_assignments, len(inputs)).
    Returns output name -> boolean vector of length num_assignments.
    Matches :meth:`CrossbarDesign.evaluate` exactly (tested property);
    with ``faults``, matches
    :func:`repro.crossbar.faults.evaluate_with_faults`.
    """
    matrix = np.asarray(matrix, dtype=bool)
    if matrix.ndim != 2:
        raise ValueError(
            f"matrix for design {design.name!r} must be 2-D "
            f"(num_assignments, {len(inputs)}), got shape {matrix.shape}"
        )
    if matrix.shape[1] != len(inputs):
        raise ValueError(
            f"matrix for design {design.name!r} has {matrix.shape[1]} columns "
            f"but {len(inputs)} inputs were named ({', '.join(inputs)})"
        )
    m = matrix.shape[0]
    col_index = {name: j for j, name in enumerate(inputs)}

    if faults:
        cells, forced = _faulted_cells(design, faults)
    else:
        cells, forced = list(design.cells3d()), None
    on = np.zeros((m, len(cells)), dtype=bool)
    for i, (_l, _r, _c, lit) in enumerate(cells):
        if forced is not None and forced[i] is not None:
            on[:, i] = forced[i]
        elif lit.var is None:
            on[:, i] = lit.positive
        else:
            j = col_index.get(lit.var)
            if j is None:
                # KeyError, not ValueError: scalar ``design.evaluate``
                # raises KeyError for a missing input, and the service
                # layer classifies on that distinction.
                raise KeyError(
                    f"design {design.name!r} reads variable {lit.var!r} "
                    f"which is not among the {len(inputs)} named inputs"
                )
            on[:, i] = matrix[:, j] if lit.positive else ~matrix[:, j]

    h_ids, v_ids, num_h, num_v = _wire_geometry(design, cells)
    rows = np.zeros((m, num_h), dtype=bool)
    cols = np.zeros((m, num_v), dtype=bool)
    rows[:, design.input_row] = True

    if cells:
        cell_rows = np.array(h_ids, dtype=np.intp)
        cell_cols = np.array(v_ids, dtype=np.intp)
        c_order, c_starts, c_targets = _scatter_plan(cell_cols)
        r_order, r_starts, r_targets = _scatter_plan(cell_rows)
        while True:
            # Columns reachable through one conducting cell from reached
            # rows, then rows reachable back through the new columns.
            contrib = rows[:, cell_rows] & on
            new_cols = cols.copy()
            new_cols[:, c_targets] |= np.logical_or.reduceat(
                contrib[:, c_order], c_starts, axis=1
            )
            back = new_cols[:, cell_cols] & on
            new_rows = rows.copy()
            new_rows[:, r_targets] |= np.logical_or.reduceat(
                back[:, r_order], r_starts, axis=1
            )
            if np.array_equal(new_rows, rows) and np.array_equal(new_cols, cols):
                break
            rows, cols = new_rows, new_cols

    result: dict[str, np.ndarray] = {}
    for out, row in design.output_rows.items():
        result[out] = rows[:, row].copy()
    for out, value in design.constant_outputs.items():
        result[out] = np.full(m, bool(value))
    return result


def bitset_evaluate(
    design: CrossbarDesign,
    inputs: Sequence[str],
    faults=None,
) -> dict[str, np.ndarray]:
    """Evaluate every output over *all* ``2**len(inputs)`` assignments.

    Returns output name -> packed uint64 truth table (64 assignments
    per word; see :mod:`repro.bitset` for the bit convention).  The
    fixpoint is the same row/column reachability iteration as
    :func:`batch_evaluate`, but one array cell carries 64 assignments,
    so exhaustive validation runs at word speed.
    """
    names = list(inputs)
    n = len(names)
    position = {name: n - 1 - j for j, name in enumerate(names)}
    if faults:
        cells, forced = _faulted_cells(design, faults)
    else:
        cells, forced = list(design.cells3d()), None
    words = bitset.num_words(n)
    on = np.zeros((len(cells), words), dtype=np.uint64)
    for i, (_l, _r, _c, lit) in enumerate(cells):
        if forced is not None and forced[i] is not None:
            if forced[i]:
                on[i] = bitset.ones(n)
        elif lit.var is None:
            if lit.positive:
                on[i] = bitset.ones(n)
        else:
            pos = position.get(lit.var)
            if pos is None:
                # KeyError for parity with scalar ``design.evaluate``.
                raise KeyError(
                    f"design {design.name!r} reads variable {lit.var!r} "
                    f"which is not among the {n} named inputs"
                )
            mask = bitset.variable_mask(pos, n)
            on[i] = mask if lit.positive else bitset.bit_not(mask, n)

    h_ids, v_ids, num_h, num_v = _wire_geometry(design, cells)
    rows = np.zeros((num_h, words), dtype=np.uint64)
    cols = np.zeros((num_v, words), dtype=np.uint64)
    rows[design.input_row] = bitset.ones(n)

    if cells:
        cell_rows = np.array(h_ids, dtype=np.intp)
        cell_cols = np.array(v_ids, dtype=np.intp)
        c_order, c_starts, c_targets = _scatter_plan(cell_cols)
        r_order, r_starts, r_targets = _scatter_plan(cell_rows)
        while True:
            contrib = rows[cell_rows] & on
            new_cols = cols.copy()
            new_cols[c_targets] |= np.bitwise_or.reduceat(
                contrib[c_order], c_starts, axis=0
            )
            back = new_cols[cell_cols] & on
            new_rows = rows.copy()
            new_rows[r_targets] |= np.bitwise_or.reduceat(
                back[r_order], r_starts, axis=0
            )
            if np.array_equal(new_rows, rows) and np.array_equal(new_cols, cols):
                break
            rows, cols = new_rows, new_cols

    result: dict[str, np.ndarray] = {}
    for out, row in design.output_rows.items():
        result[out] = rows[row].copy()
    for out, value in design.constant_outputs.items():
        result[out] = bitset.ones(n) if value else bitset.zeros(n)
    return result
