"""Vectorized batch evaluation of crossbar designs.

Evaluating one assignment is a BFS; evaluating thousands (Monte-Carlo
validation, yield analysis, test benches) is much faster as a bit-
parallel fixpoint over numpy boolean arrays: one row/column reachability
matrix for *all* assignments at once, iterated until no assignment
learns a new line.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from .design import CrossbarDesign

__all__ = ["batch_evaluate", "assignments_to_matrix"]


def assignments_to_matrix(
    assignments: Sequence[Mapping[str, bool]], names: Sequence[str]
) -> np.ndarray:
    """Stack assignment dicts into a (num_assignments, num_vars) array.

    Raises :class:`ValueError` naming the offending variable (and the
    assignment index) when an assignment is missing one of ``names``.
    """
    out = np.zeros((len(assignments), len(names)), dtype=bool)
    for i, env in enumerate(assignments):
        for j, name in enumerate(names):
            try:
                out[i, j] = bool(env[name])
            except KeyError:
                raise ValueError(
                    f"assignment {i} is missing variable {name!r} "
                    f"(has: {', '.join(sorted(env)) or 'nothing'})"
                ) from None
    return out


def batch_evaluate(
    design: CrossbarDesign,
    inputs: Sequence[str],
    matrix: np.ndarray,
) -> dict[str, np.ndarray]:
    """Evaluate every output for every assignment row of ``matrix``.

    ``matrix`` is boolean, shaped (num_assignments, len(inputs)).
    Returns output name -> boolean vector of length num_assignments.
    Matches :meth:`CrossbarDesign.evaluate` exactly (tested property).
    """
    matrix = np.asarray(matrix, dtype=bool)
    if matrix.ndim != 2:
        raise ValueError(
            f"matrix for design {design.name!r} must be 2-D "
            f"(num_assignments, {len(inputs)}), got shape {matrix.shape}"
        )
    if matrix.shape[1] != len(inputs):
        raise ValueError(
            f"matrix for design {design.name!r} has {matrix.shape[1]} columns "
            f"but {len(inputs)} inputs were named ({', '.join(inputs)})"
        )
    m = matrix.shape[0]
    col_index = {name: j for j, name in enumerate(inputs)}

    cells = list(design.cells())
    on = np.zeros((m, len(cells)), dtype=bool)
    for i, (_r, _c, lit) in enumerate(cells):
        if lit.var is None:
            on[:, i] = lit.positive
        else:
            j = col_index.get(lit.var)
            if j is None:
                raise ValueError(
                    f"design {design.name!r} reads variable {lit.var!r} "
                    f"which is not among the {len(inputs)} named inputs"
                )
            on[:, i] = matrix[:, j] if lit.positive else ~matrix[:, j]

    rows = np.zeros((m, design.num_rows), dtype=bool)
    cols = np.zeros((m, max(design.num_cols, 1)), dtype=bool)
    rows[:, design.input_row] = True

    cell_rows = np.array([r for r, _c, _l in cells], dtype=int)
    cell_cols = np.array([c for _r, c, _l in cells], dtype=int)

    while True:
        # Columns reachable through one conducting cell from reached rows.
        if cells:
            contrib = rows[:, cell_rows] & on
            new_cols = cols.copy()
            np.logical_or.at(new_cols, (slice(None), cell_cols), contrib)
            back = new_cols[:, cell_cols] & on
            new_rows = rows.copy()
            np.logical_or.at(new_rows, (slice(None), cell_rows), back)
        else:
            new_cols, new_rows = cols, rows
        if np.array_equal(new_rows, rows) and np.array_equal(new_cols, cols):
            break
        rows, cols = new_rows, new_cols

    result: dict[str, np.ndarray] = {}
    for out, row in design.output_rows.items():
        result[out] = rows[:, row].copy()
    for out, value in design.constant_outputs.items():
        result[out] = np.full(m, bool(value))
    return result
