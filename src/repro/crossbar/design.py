"""Crossbar designs for flow-based computing.

A :class:`CrossbarDesign` is the artifact COMPACT synthesizes: a grid of
programmed memristor cells, an input port (the bottom-most wordline,
where ``V_in`` is applied) and one output port per function output (a
wordline with a sense resistor).  Evaluation is by sneak-path
connectivity: an output reads true iff a path of low-resistance
memristors connects it to the input wordline.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from .literals import OFF, Lit

__all__ = ["CrossbarDesign", "CrossbarDesign3D", "h_plane", "v_plane"]


def h_plane(layer: int) -> int:
    """The horizontal (wordline) nanowire plane memristor ``layer`` touches.

    A 3D crossbar with K memristor layers sandwiches K+1 nanowire
    planes, numbered 0..K bottom-up; even planes run horizontally, odd
    planes vertically.  Layer ``l`` sits between planes ``l`` and
    ``l+1`` — exactly one of which is even.
    """
    return layer if layer % 2 == 0 else layer + 1


def v_plane(layer: int) -> int:
    """The vertical (bitline) nanowire plane memristor ``layer`` touches."""
    return layer + 1 if layer % 2 == 0 else layer


class CrossbarDesign:
    """A programmed memristor crossbar with input/output ports.

    Parameters
    ----------
    name:
        Design name (usually the circuit name).
    num_rows, num_cols:
        Wordline and bitline counts.
    input_row:
        Row index where the evaluation voltage is applied.
    output_rows:
        Mapping from output name to the sensed row index.
    constant_outputs:
        Outputs that are constant functions and have no sensed row
        (value reported directly by :meth:`evaluate`).
    """

    #: Memristor layer count.  The planar design has exactly one;
    #: :class:`CrossbarDesign3D` overrides this with a property.
    num_layers: int = 1

    def __init__(
        self,
        name: str,
        num_rows: int,
        num_cols: int,
        input_row: int,
        output_rows: Mapping[str, int],
        constant_outputs: Mapping[str, bool] | None = None,
    ):
        if num_rows < 1:
            raise ValueError("a crossbar needs at least one wordline")
        if not (0 <= input_row < num_rows):
            raise ValueError("input row out of range")
        for out, row in output_rows.items():
            if not (0 <= row < num_rows):
                raise ValueError(f"output {out!r} row {row} out of range")
        self.name = name
        self.num_rows = num_rows
        self.num_cols = num_cols
        self.input_row = input_row
        self.output_rows = dict(output_rows)
        self.constant_outputs = dict(constant_outputs or {})
        self._cells: dict[tuple[int, int], Lit] = {}
        #: Optional annotations: which BDD node each line realises.
        self.row_labels: dict[int, object] = {}
        self.col_labels: dict[int, object] = {}

    # -- programming ------------------------------------------------------------
    def set_cell(self, row: int, col: int, lit: Lit) -> None:
        """Program one crosspoint; re-programming a cell is an error."""
        if not (0 <= row < self.num_rows and 0 <= col < self.num_cols):
            raise IndexError(f"cell ({row}, {col}) outside {self.num_rows}x{self.num_cols}")
        existing = self._cells.get((row, col))
        if existing is not None and existing != lit:
            raise ValueError(
                f"cell ({row}, {col}) already programmed with {existing} (new: {lit})"
            )
        if lit != OFF:
            self._cells[(row, col)] = lit

    def cell(self, row: int, col: int) -> Lit:
        """The programmed literal at a crosspoint (OFF if untouched)."""
        return self._cells.get((row, col), OFF)

    def cells(self) -> Iterable[tuple[int, int, Lit]]:
        """All non-OFF cells as ``(row, col, literal)``."""
        for (r, c), lit in self._cells.items():
            yield r, c, lit

    # -- layered view (uniform across 2D and 3D designs) --------------------------
    @property
    def plane_sizes(self) -> tuple[int, ...]:
        """Wire count per nanowire plane, bottom-up (here: rows, cols)."""
        return (self.num_rows, self.num_cols)

    @property
    def plane_labels(self) -> list[dict[int, object]]:
        """Per-plane line/node annotations (here: row then col labels)."""
        return [self.row_labels, self.col_labels]

    def set_cell3(self, layer: int, row: int, col: int, lit: Lit) -> None:
        """Program one crosspoint by full ``(layer, row, col)`` coordinate."""
        if layer != 0:
            raise IndexError(f"layer {layer} outside this 1-layer crossbar")
        self.set_cell(row, col, lit)

    def cell3(self, layer: int, row: int, col: int) -> Lit:
        """The programmed literal at a ``(layer, row, col)`` crosspoint."""
        if layer != 0:
            raise IndexError(f"layer {layer} outside this 1-layer crossbar")
        return self.cell(row, col)

    def cells3d(self) -> Iterable[tuple[int, int, int, Lit]]:
        """All non-OFF cells as ``(layer, row, col, literal)``.

        The layered twin of :meth:`cells`; yields the cells in the same
        order, so code ported from ``cells()`` to ``cells3d()`` sees an
        identical sequence on planar designs.
        """
        for (r, c), lit in self._cells.items():
            yield 0, r, c, lit

    # -- metrics (the paper's hardware-utilisation quantities) --------------------
    @property
    def semiperimeter(self) -> int:
        """Rows + columns (the paper's ``S``)."""
        return self.num_rows + self.num_cols

    @property
    def max_dimension(self) -> int:
        """max(rows, columns) (the paper's ``D``)."""
        return max(self.num_rows, self.num_cols)

    @property
    def area(self) -> int:
        """Rows x columns."""
        return self.num_rows * self.num_cols

    @property
    def memristor_count(self) -> int:
        """Programmed (non-'0') crosspoints, including stitch '1' cells."""
        return len(self._cells)

    @property
    def literal_count(self) -> int:
        """Variable-carrying cells — the paper's power proxy vs CONTRA."""
        return sum(1 for lit in self._cells.values() if not lit.is_constant())

    @property
    def via_count(self) -> int:
        """Always-on stitch cells (inter-plane vias on layered designs)."""
        return sum(
            1 for lit in self._cells.values()
            if lit.is_constant() and lit.positive
        )

    @property
    def delay_steps(self) -> int:
        """Evaluation time steps: one write per wordline plus one read."""
        return self.num_rows + 1

    # -- evaluation -----------------------------------------------------------------
    def program(self, assignment: Mapping[str, bool]) -> set[tuple[int, int]]:
        """Crosspoints in the low-resistive state under ``assignment``."""
        return {
            rc for rc, lit in self._cells.items() if lit.evaluate(assignment)
        }

    def evaluate(self, assignment: Mapping[str, bool]) -> dict[str, bool]:
        """Flow-based evaluation of every output under ``assignment``.

        Breadth-first search over the row/column bipartite connectivity
        graph induced by the low-resistance cells, starting at the input
        wordline.
        """
        return self.flow_outputs(self.program(assignment))

    def flow_outputs(self, on_cells: set[tuple[int, int]]) -> dict[str, bool]:
        """Output values given the set of conducting crosspoints.

        The fault evaluator shares this with :meth:`evaluate`: it edits
        the conducting set (shorting stuck-on sites, clearing stuck-off
        ones) before running the same flow search.
        """
        row_adj: dict[int, list[int]] = {}
        col_adj: dict[int, list[int]] = {}
        for r, c in on_cells:
            row_adj.setdefault(r, []).append(c)
            col_adj.setdefault(c, []).append(r)

        reached_rows = {self.input_row}
        reached_cols: set[int] = set()
        frontier_rows = [self.input_row]
        while frontier_rows:
            next_rows: list[int] = []
            for r in frontier_rows:
                for c in row_adj.get(r, ()):
                    if c not in reached_cols:
                        reached_cols.add(c)
                        for r2 in col_adj.get(c, ()):
                            if r2 not in reached_rows:
                                reached_rows.add(r2)
                                next_rows.append(r2)
            frontier_rows = next_rows

        result = {
            out: row in reached_rows for out, row in self.output_rows.items()
        }
        result.update(self.constant_outputs)
        return result

    # -- remapping ------------------------------------------------------------------
    def permuted(
        self,
        row_map: Mapping[int, int],
        col_map: Mapping[int, int],
        num_rows: int | None = None,
        num_cols: int | None = None,
        name: str | None = None,
    ) -> "CrossbarDesign":
        """A copy with wordlines/bitlines relocated onto a physical array.

        ``row_map``/``col_map`` send every logical line of this design to
        a distinct physical line; ``num_rows``/``num_cols`` (default: this
        design's dimensions) may be larger, leaving spare lines
        unprogrammed.  Used by :mod:`repro.robust` to route around
        stuck-at defects.
        """
        num_rows = self.num_rows if num_rows is None else num_rows
        num_cols = self.num_cols if num_cols is None else num_cols
        for kind, mapping, logical, physical in (
            ("row", row_map, self.num_rows, num_rows),
            ("column", col_map, self.num_cols, num_cols),
        ):
            missing = [i for i in range(logical) if i not in mapping]
            if missing:
                raise ValueError(f"{kind} map misses logical {kind}s {missing}")
            images = [mapping[i] for i in range(logical)]
            if len(set(images)) != len(images):
                raise ValueError(f"{kind} map is not injective")
            bad = [i for i in images if not (0 <= i < physical)]
            if bad:
                raise ValueError(f"{kind} map targets out-of-range lines {bad}")

        out = CrossbarDesign(
            name if name is not None else self.name,
            num_rows=num_rows,
            num_cols=num_cols,
            input_row=row_map[self.input_row],
            output_rows={o: row_map[r] for o, r in self.output_rows.items()},
            constant_outputs=self.constant_outputs,
        )
        for r, c, lit in self.cells():
            out.set_cell(row_map[r], col_map[c], lit)
        out.row_labels = {row_map[r]: v for r, v in self.row_labels.items() if r in row_map}
        out.col_labels = {col_map[c]: v for c, v in self.col_labels.items() if c in col_map}
        return out

    # -- presentation ---------------------------------------------------------------
    def to_grid(self) -> list[list[str]]:
        """The design as a row-major grid of cell strings ('0' for OFF)."""
        return [
            [str(self.cell(r, c)) for c in range(self.num_cols)]
            for r in range(self.num_rows)
        ]

    def render(self) -> str:
        """ASCII rendering with port markers, for docs and debugging."""
        grid = self.to_grid()
        width = max((len(s) for row in grid for s in row), default=1)
        out_marks = {row: name for name, row in self.output_rows.items()}
        lines = []
        for r, row in enumerate(grid):
            marks = []
            if r == self.input_row:
                marks.append("<- Vin")
            if r in out_marks:
                marks.append(f"-> {out_marks[r]}")
            body = " ".join(s.rjust(width) for s in row)
            suffix = ("  " + ", ".join(marks)) if marks else ""
            lines.append(body + suffix)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"CrossbarDesign({self.name!r}, {self.num_rows}x{self.num_cols}, "
            f"S={self.semiperimeter}, D={self.max_dimension}, "
            f"memristors={self.memristor_count})"
        )


class CrossbarDesign3D(CrossbarDesign):
    """A K-layer memristor crossbar (the FLOW-3D fabric).

    K memristor layers sandwich K+1 nanowire planes; even planes run
    horizontally, odd planes vertically, and the cells of layer ``l``
    join a wire on plane ``l`` to one on plane ``l+1``.  Cells are
    addressed ``(layer, row, col)`` where ``row`` indexes the wordline
    on :func:`h_plane` of the layer and ``col`` the bitline on
    :func:`v_plane`.  The chip footprint — and therefore the
    semiperimeter the paper minimizes — is set by the *largest*
    horizontal and vertical planes, which is why spreading wires over
    more planes shrinks ``S``.

    The input port and all output ports live on plane 0 (the bottom
    wordline plane), matching the 2D alignment convention.
    """

    def __init__(
        self,
        name: str,
        plane_sizes: Iterable[int],
        input_row: int,
        output_rows: Mapping[str, int],
        constant_outputs: Mapping[str, bool] | None = None,
    ):
        sizes = tuple(int(s) for s in plane_sizes)
        if len(sizes) < 2:
            raise ValueError(
                "a 3D crossbar needs at least two nanowire planes (one memristor layer)"
            )
        if any(s < 0 for s in sizes):
            raise ValueError(f"negative plane size in {sizes}")
        if sizes[0] < 1:
            raise ValueError("plane 0 needs at least one wordline (the ports live there)")
        if not (0 <= input_row < sizes[0]):
            raise ValueError(f"input row {input_row} outside plane 0 ({sizes[0]} wires)")
        for out, row in output_rows.items():
            if not (0 <= row < sizes[0]):
                raise ValueError(
                    f"output {out!r} row {row} outside plane 0 ({sizes[0]} wires)"
                )
        super().__init__(
            name,
            num_rows=max(sizes[0::2]),
            num_cols=max(sizes[1::2], default=0),
            input_row=input_row,
            output_rows=output_rows,
            constant_outputs=constant_outputs,
        )
        self._plane_sizes = sizes
        self._cells3d: dict[tuple[int, int, int], Lit] = {}
        self._plane_labels: list[dict[int, object]] = [{} for _ in sizes]
        #: Synthesis provenance (certificate bounds, solver flags) — a
        #: plain scalar dict carried through JSON round-trips; empty
        #: for hand-built designs.
        self.meta: dict = {}
        # The 2D label dicts alias planes 0/1 so generic row/col
        # introspection keeps working on the bottom layer.
        self.row_labels = self._plane_labels[0]
        self.col_labels = self._plane_labels[1]

    # -- geometry ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:  # type: ignore[override]
        return len(self._plane_sizes) - 1

    @property
    def plane_sizes(self) -> tuple[int, ...]:
        return self._plane_sizes

    @property
    def plane_labels(self) -> list[dict[int, object]]:
        return self._plane_labels

    def _check_site(self, layer: int, row: int, col: int) -> None:
        if not (0 <= layer < self.num_layers):
            raise IndexError(f"layer {layer} outside this {self.num_layers}-layer crossbar")
        rows = self._plane_sizes[h_plane(layer)]
        cols = self._plane_sizes[v_plane(layer)]
        if not (0 <= row < rows and 0 <= col < cols):
            raise IndexError(
                f"cell ({layer}, {row}, {col}) outside the layer's "
                f"{rows}x{cols} wire planes"
            )

    # -- programming ------------------------------------------------------------
    def set_cell3(self, layer: int, row: int, col: int, lit: Lit) -> None:
        self._check_site(layer, row, col)
        existing = self._cells3d.get((layer, row, col))
        if existing is not None and existing != lit:
            raise ValueError(
                f"cell ({layer}, {row}, {col}) already programmed with "
                f"{existing} (new: {lit})"
            )
        if lit != OFF:
            self._cells3d[(layer, row, col)] = lit

    def cell3(self, layer: int, row: int, col: int) -> Lit:
        self._check_site(layer, row, col)
        return self._cells3d.get((layer, row, col), OFF)

    def cells3d(self) -> Iterable[tuple[int, int, int, Lit]]:
        for (l, r, c), lit in self._cells3d.items():
            yield l, r, c, lit

    def set_cell(self, row: int, col: int, lit: Lit) -> None:
        raise TypeError(
            f"design {self.name!r} has {self.num_layers} memristor layers; "
            "use set_cell3(layer, row, col, lit)"
        )

    def cell(self, row: int, col: int) -> Lit:
        raise TypeError(
            f"design {self.name!r} has {self.num_layers} memristor layers; "
            "use cell3(layer, row, col)"
        )

    def cells(self) -> Iterable[tuple[int, int, Lit]]:
        raise TypeError(
            f"design {self.name!r} has {self.num_layers} memristor layers; "
            "iterate cells3d() so no layer is silently dropped"
        )

    # -- metrics ------------------------------------------------------------------
    @property
    def memristor_count(self) -> int:
        return len(self._cells3d)

    @property
    def literal_count(self) -> int:
        return sum(1 for lit in self._cells3d.values() if not lit.is_constant())

    @property
    def via_count(self) -> int:
        """Always-on cells stitching one node's wires on adjacent planes."""
        return sum(1 for lit in self._cells3d.values() if lit.is_constant() and lit.positive)

    @property
    def delay_steps(self) -> int:
        """One write per wordline (over every horizontal plane) plus one read."""
        return sum(self._plane_sizes[0::2]) + 1

    # -- evaluation -----------------------------------------------------------------
    def program(self, assignment: Mapping[str, bool]) -> set[tuple[int, int, int]]:  # type: ignore[override]
        """Conducting crosspoints (``(layer, row, col)``) under ``assignment``."""
        return {
            site for site, lit in self._cells3d.items() if lit.evaluate(assignment)
        }

    def flow_outputs(self, on_cells: set[tuple[int, int, int]]) -> dict[str, bool]:  # type: ignore[override]
        """Output values given the conducting sites, by wire-level BFS.

        Wires are ``(plane, index)`` pairs; each conducting cell joins
        its layer's horizontal and vertical wire, which is also how flow
        crosses between layers (through wires shared via stitches).
        """
        adj: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for l, r, c in on_cells:
            hw = (h_plane(l), r)
            vw = (v_plane(l), c)
            adj.setdefault(hw, []).append(vw)
            adj.setdefault(vw, []).append(hw)

        source = (0, self.input_row)
        reached = {source}
        frontier = [source]
        while frontier:
            nxt: list[tuple[int, int]] = []
            for wire in frontier:
                for other in adj.get(wire, ()):
                    if other not in reached:
                        reached.add(other)
                        nxt.append(other)
            frontier = nxt

        result = {
            out: (0, row) in reached for out, row in self.output_rows.items()
        }
        result.update(self.constant_outputs)
        return result

    # -- remapping ------------------------------------------------------------------
    def permuted(self, row_map, col_map, num_rows=None, num_cols=None, name=None):
        raise ValueError(
            f"design {self.name!r} has {self.num_layers} memristor layers; "
            "defect-aware line permutation is only defined for planar designs"
        )

    # -- presentation ---------------------------------------------------------------
    def to_grid(self) -> list[list[str]]:
        raise TypeError(
            f"design {self.name!r} has {self.num_layers} memristor layers; "
            "use to_grids() for the per-layer view"
        )

    def to_grids(self) -> list[list[list[str]]]:
        """One row-major grid of cell strings per memristor layer."""
        grids = []
        for l in range(self.num_layers):
            rows = self._plane_sizes[h_plane(l)]
            cols = self._plane_sizes[v_plane(l)]
            grids.append(
                [[str(self.cell3(l, r, c)) for c in range(cols)] for r in range(rows)]
            )
        return grids

    def render(self) -> str:
        """ASCII rendering, one block per layer, ports marked on layer 0."""
        grids = self.to_grids()
        width = max((len(s) for g in grids for row in g for s in row), default=1)
        out_marks: dict[int, list[str]] = {}
        for name, row in self.output_rows.items():
            out_marks.setdefault(row, []).append(f"-> {name}")
        blocks = []
        for l, grid in enumerate(grids):
            lines = [f"layer {l} (planes {l}|{l + 1}):"]
            for r, row in enumerate(grid):
                marks = []
                if h_plane(l) == 0:
                    if r == self.input_row:
                        marks.append("<- Vin")
                    marks.extend(out_marks.get(r, ()))
                body = " ".join(s.rjust(width) for s in row)
                suffix = ("  " + ", ".join(marks)) if marks else ""
                lines.append(body + suffix)
            blocks.append("\n".join(lines))
        return "\n\n".join(blocks)

    def __repr__(self) -> str:
        planes = "x".join(str(s) for s in self._plane_sizes)
        return (
            f"CrossbarDesign3D({self.name!r}, layers={self.num_layers}, "
            f"planes={planes}, footprint {self.num_rows}x{self.num_cols}, "
            f"S={self.semiperimeter}, memristors={self.memristor_count})"
        )
