"""Crossbar designs for flow-based computing.

A :class:`CrossbarDesign` is the artifact COMPACT synthesizes: a grid of
programmed memristor cells, an input port (the bottom-most wordline,
where ``V_in`` is applied) and one output port per function output (a
wordline with a sense resistor).  Evaluation is by sneak-path
connectivity: an output reads true iff a path of low-resistance
memristors connects it to the input wordline.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from .literals import OFF, Lit

__all__ = ["CrossbarDesign"]


class CrossbarDesign:
    """A programmed memristor crossbar with input/output ports.

    Parameters
    ----------
    name:
        Design name (usually the circuit name).
    num_rows, num_cols:
        Wordline and bitline counts.
    input_row:
        Row index where the evaluation voltage is applied.
    output_rows:
        Mapping from output name to the sensed row index.
    constant_outputs:
        Outputs that are constant functions and have no sensed row
        (value reported directly by :meth:`evaluate`).
    """

    def __init__(
        self,
        name: str,
        num_rows: int,
        num_cols: int,
        input_row: int,
        output_rows: Mapping[str, int],
        constant_outputs: Mapping[str, bool] | None = None,
    ):
        if num_rows < 1:
            raise ValueError("a crossbar needs at least one wordline")
        if not (0 <= input_row < num_rows):
            raise ValueError("input row out of range")
        for out, row in output_rows.items():
            if not (0 <= row < num_rows):
                raise ValueError(f"output {out!r} row {row} out of range")
        self.name = name
        self.num_rows = num_rows
        self.num_cols = num_cols
        self.input_row = input_row
        self.output_rows = dict(output_rows)
        self.constant_outputs = dict(constant_outputs or {})
        self._cells: dict[tuple[int, int], Lit] = {}
        #: Optional annotations: which BDD node each line realises.
        self.row_labels: dict[int, object] = {}
        self.col_labels: dict[int, object] = {}

    # -- programming ------------------------------------------------------------
    def set_cell(self, row: int, col: int, lit: Lit) -> None:
        """Program one crosspoint; re-programming a cell is an error."""
        if not (0 <= row < self.num_rows and 0 <= col < self.num_cols):
            raise IndexError(f"cell ({row}, {col}) outside {self.num_rows}x{self.num_cols}")
        existing = self._cells.get((row, col))
        if existing is not None and existing != lit:
            raise ValueError(
                f"cell ({row}, {col}) already programmed with {existing} (new: {lit})"
            )
        if lit != OFF:
            self._cells[(row, col)] = lit

    def cell(self, row: int, col: int) -> Lit:
        """The programmed literal at a crosspoint (OFF if untouched)."""
        return self._cells.get((row, col), OFF)

    def cells(self) -> Iterable[tuple[int, int, Lit]]:
        """All non-OFF cells as ``(row, col, literal)``."""
        for (r, c), lit in self._cells.items():
            yield r, c, lit

    # -- metrics (the paper's hardware-utilisation quantities) --------------------
    @property
    def semiperimeter(self) -> int:
        """Rows + columns (the paper's ``S``)."""
        return self.num_rows + self.num_cols

    @property
    def max_dimension(self) -> int:
        """max(rows, columns) (the paper's ``D``)."""
        return max(self.num_rows, self.num_cols)

    @property
    def area(self) -> int:
        """Rows x columns."""
        return self.num_rows * self.num_cols

    @property
    def memristor_count(self) -> int:
        """Programmed (non-'0') crosspoints, including stitch '1' cells."""
        return len(self._cells)

    @property
    def literal_count(self) -> int:
        """Variable-carrying cells — the paper's power proxy vs CONTRA."""
        return sum(1 for lit in self._cells.values() if not lit.is_constant())

    @property
    def delay_steps(self) -> int:
        """Evaluation time steps: one write per wordline plus one read."""
        return self.num_rows + 1

    # -- evaluation -----------------------------------------------------------------
    def program(self, assignment: Mapping[str, bool]) -> set[tuple[int, int]]:
        """Crosspoints in the low-resistive state under ``assignment``."""
        return {
            rc for rc, lit in self._cells.items() if lit.evaluate(assignment)
        }

    def evaluate(self, assignment: Mapping[str, bool]) -> dict[str, bool]:
        """Flow-based evaluation of every output under ``assignment``.

        Breadth-first search over the row/column bipartite connectivity
        graph induced by the low-resistance cells, starting at the input
        wordline.
        """
        on_cells = self.program(assignment)
        row_adj: dict[int, list[int]] = {}
        col_adj: dict[int, list[int]] = {}
        for r, c in on_cells:
            row_adj.setdefault(r, []).append(c)
            col_adj.setdefault(c, []).append(r)

        reached_rows = {self.input_row}
        reached_cols: set[int] = set()
        frontier_rows = [self.input_row]
        while frontier_rows:
            next_rows: list[int] = []
            for r in frontier_rows:
                for c in row_adj.get(r, ()):
                    if c not in reached_cols:
                        reached_cols.add(c)
                        for r2 in col_adj.get(c, ()):
                            if r2 not in reached_rows:
                                reached_rows.add(r2)
                                next_rows.append(r2)
            frontier_rows = next_rows

        result = {
            out: row in reached_rows for out, row in self.output_rows.items()
        }
        result.update(self.constant_outputs)
        return result

    # -- remapping ------------------------------------------------------------------
    def permuted(
        self,
        row_map: Mapping[int, int],
        col_map: Mapping[int, int],
        num_rows: int | None = None,
        num_cols: int | None = None,
        name: str | None = None,
    ) -> "CrossbarDesign":
        """A copy with wordlines/bitlines relocated onto a physical array.

        ``row_map``/``col_map`` send every logical line of this design to
        a distinct physical line; ``num_rows``/``num_cols`` (default: this
        design's dimensions) may be larger, leaving spare lines
        unprogrammed.  Used by :mod:`repro.robust` to route around
        stuck-at defects.
        """
        num_rows = self.num_rows if num_rows is None else num_rows
        num_cols = self.num_cols if num_cols is None else num_cols
        for kind, mapping, logical, physical in (
            ("row", row_map, self.num_rows, num_rows),
            ("column", col_map, self.num_cols, num_cols),
        ):
            missing = [i for i in range(logical) if i not in mapping]
            if missing:
                raise ValueError(f"{kind} map misses logical {kind}s {missing}")
            images = [mapping[i] for i in range(logical)]
            if len(set(images)) != len(images):
                raise ValueError(f"{kind} map is not injective")
            bad = [i for i in images if not (0 <= i < physical)]
            if bad:
                raise ValueError(f"{kind} map targets out-of-range lines {bad}")

        out = CrossbarDesign(
            name if name is not None else self.name,
            num_rows=num_rows,
            num_cols=num_cols,
            input_row=row_map[self.input_row],
            output_rows={o: row_map[r] for o, r in self.output_rows.items()},
            constant_outputs=self.constant_outputs,
        )
        for r, c, lit in self.cells():
            out.set_cell(row_map[r], col_map[c], lit)
        out.row_labels = {row_map[r]: v for r, v in self.row_labels.items() if r in row_map}
        out.col_labels = {col_map[c]: v for c, v in self.col_labels.items() if c in col_map}
        return out

    # -- presentation ---------------------------------------------------------------
    def to_grid(self) -> list[list[str]]:
        """The design as a row-major grid of cell strings ('0' for OFF)."""
        return [
            [str(self.cell(r, c)) for c in range(self.num_cols)]
            for r in range(self.num_rows)
        ]

    def render(self) -> str:
        """ASCII rendering with port markers, for docs and debugging."""
        grid = self.to_grid()
        width = max((len(s) for row in grid for s in row), default=1)
        out_marks = {row: name for name, row in self.output_rows.items()}
        lines = []
        for r, row in enumerate(grid):
            marks = []
            if r == self.input_row:
                marks.append("<- Vin")
            if r in out_marks:
                marks.append(f"-> {out_marks[r]}")
            body = " ".join(s.rjust(width) for s in row)
            suffix = ("  " + ", ".join(marks)) if marks else ""
            lines.append(body + suffix)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"CrossbarDesign({self.name!r}, {self.num_rows}x{self.num_cols}, "
            f"S={self.semiperimeter}, D={self.max_dimension}, "
            f"memristors={self.memristor_count})"
        )
