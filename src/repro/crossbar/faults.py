"""Memristor fault modeling and yield analysis.

Nanoscale crossbars suffer stuck-at defects: a cell stuck in the low
resistive state (``stuck_on``) adds a permanent connection between its
wordline and bitline, one stuck high (``stuck_off``) never conducts.
This module evaluates flow-based designs under fault sets, identifies
the *critical* cells whose failure changes the computed function, and
estimates manufacturing yield by Monte-Carlo fault injection — the
standard reliability questions for in-memory computing fabrics.
"""

from __future__ import annotations

import hashlib
import json
import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from functools import cached_property

from .design import CrossbarDesign
from .validate import Reference

__all__ = [
    "Fault",
    "FaultMap",
    "STUCK_ON",
    "STUCK_OFF",
    "evaluate_with_faults",
    "is_functional_under_faults",
    "critical_cells",
    "yield_estimate",
    "random_fault_map",
]

STUCK_ON = "stuck_on"
STUCK_OFF = "stuck_off"

#: Stamped into the hashed material of :meth:`FaultMap.signature`;
#: bump when the signature derivation changes.
_SIGNATURE_SCHEMA = "repro.fault-signature/1"


@dataclass(frozen=True)
class Fault:
    """A stuck-at defect at one crosspoint.

    ``layer`` addresses the memristor layer on 3D crossbars and
    defaults to 0, so every existing 2D call site (and serialized
    artifact) keeps working unchanged.
    """

    row: int
    col: int
    kind: str  # STUCK_ON or STUCK_OFF
    layer: int = 0

    def __post_init__(self):
        if self.kind not in (STUCK_ON, STUCK_OFF):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.layer < 0:
            raise ValueError(f"negative fault layer {self.layer}")


@dataclass(frozen=True)
class FaultMap:
    """A post-fabrication defect map for one physical crossbar array.

    ``rows``/``cols`` are the dimensions of the *physical* array, which
    may exceed a design's logical dimensions — the surplus lines are the
    spare rows/columns a defect-aware remap may spend.  At most one
    fault per crosspoint; conflicting duplicates are rejected.

    ``layers`` (default 1) is the memristor layer count of a 3D array;
    each fault's ``layer`` must fall inside it.  Planar maps keep the
    exact constructor, JSON shape and signature they always had.
    """

    rows: int
    cols: int
    faults: tuple[Fault, ...]
    layers: int = 1

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError("a fault map needs a positive array size")
        if self.layers < 1:
            raise ValueError("a fault map needs at least one memristor layer")
        object.__setattr__(self, "faults", tuple(self.faults))
        seen: dict[tuple[int, int, int], str] = {}
        for fault in self.faults:
            if not (0 <= fault.layer < self.layers):
                raise ValueError(
                    f"fault {fault.kind} at layer {fault.layer} is outside "
                    f"the {self.layers}-layer array"
                )
            if not (0 <= fault.row < self.rows and 0 <= fault.col < self.cols):
                raise ValueError(
                    f"fault {fault.kind} at ({fault.row}, {fault.col}) is outside "
                    f"the {self.rows}x{self.cols} array"
                )
            prev = seen.get((fault.layer, fault.row, fault.col))
            if prev is not None and prev != fault.kind:
                raise ValueError(
                    f"conflicting faults at ({fault.row}, {fault.col}): "
                    f"{prev} and {fault.kind}"
                )
            seen[(fault.layer, fault.row, fault.col)] = fault.kind

    @cached_property
    def stuck_on_sites(self) -> frozenset[tuple[int, int]]:
        """Crosspoints shorted permanently on."""
        return frozenset((f.row, f.col) for f in self.faults if f.kind == STUCK_ON)

    @cached_property
    def stuck_off_sites(self) -> frozenset[tuple[int, int]]:
        """Crosspoints that can never conduct."""
        return frozenset((f.row, f.col) for f in self.faults if f.kind == STUCK_OFF)

    @property
    def density(self) -> float:
        """Fraction of defective crosspoints."""
        return len(self.faults) / (self.rows * self.cols)

    def signature(self) -> str:
        """Stable content hash of this map (the fault-class signature).

        Two maps with the same array dimensions and the same *set* of
        faults share one signature regardless of the order their fault
        lists were built in, and the signature survives a JSON round
        trip — which is what lets the yield-campaign runner dedup
        validation and remap work through the content-addressed cache
        keyed on (design, signature).

        Layer coordinates join the hashed material only when they carry
        information (a multi-layer array or an off-bottom fault), so
        every pre-3D signature — and therefore every cached campaign
        result — stays stable.
        """
        material = {
            "schema": _SIGNATURE_SCHEMA,
            "rows": self.rows,
            "cols": self.cols,
            "faults": sorted((f.row, f.col, f.kind) for f in self.faults),
        }
        if self.layers != 1 or any(f.layer for f in self.faults):
            material["layers"] = self.layers
            material["faults"] = sorted(
                (f.layer, f.row, f.col, f.kind) for f in self.faults
            )
        blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def restricted(self, rows: int, cols: int) -> "FaultMap":
        """The sub-map covering the top-left ``rows`` x ``cols`` region.

        Models a chip fabricated without the spare lines (used for the
        naive-vs-remapped yield comparison).
        """
        if not (0 < rows <= self.rows and 0 < cols <= self.cols):
            raise ValueError(f"cannot restrict {self.rows}x{self.cols} to {rows}x{cols}")
        return FaultMap(
            rows, cols,
            tuple(f for f in self.faults if f.row < rows and f.col < cols),
            layers=self.layers,
        )


def _as_rng(seed: int | random.Random) -> random.Random:
    """Accept either an integer seed or a caller-owned ``random.Random``."""
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def random_fault_map(
    rows: int,
    cols: int,
    p_stuck_on: float = 0.002,
    p_stuck_off: float = 0.02,
    seed: int | random.Random = 0,
) -> FaultMap:
    """Draw an i.i.d. stuck-at defect map (at most one fault per cell).

    ``seed`` defaults to 0, so repeated calls with the same arguments
    produce the same map; pass a ``random.Random`` to thread an external
    stream through several draws.
    """
    rng = _as_rng(seed)
    faults = []
    for r in range(rows):
        for c in range(cols):
            u = rng.random()
            if u < p_stuck_on:
                faults.append(Fault(r, c, STUCK_ON))
            elif u < p_stuck_on + p_stuck_off:
                faults.append(Fault(r, c, STUCK_OFF))
    return FaultMap(rows, cols, tuple(faults))


def _check_fault_bounds(design: CrossbarDesign, faults: Sequence[Fault]) -> None:
    from .design import h_plane, v_plane

    for fault in faults:
        if not (0 <= fault.layer < design.num_layers):
            raise ValueError(
                f"fault {fault.kind} at layer {fault.layer} is outside "
                f"the {design.num_layers}-layer crossbar"
            )
        if design.num_layers == 1:
            if not (0 <= fault.row < design.num_rows and 0 <= fault.col < design.num_cols):
                raise ValueError(
                    f"fault {fault.kind} at ({fault.row}, {fault.col}) is outside "
                    f"the {design.num_rows}x{design.num_cols} crossbar"
                )
        else:
            rows = design.plane_sizes[h_plane(fault.layer)]
            cols = design.plane_sizes[v_plane(fault.layer)]
            if not (0 <= fault.row < rows and 0 <= fault.col < cols):
                raise ValueError(
                    f"fault {fault.kind} at layer {fault.layer} ({fault.row}, "
                    f"{fault.col}) is outside the layer's {rows}x{cols} wire planes"
                )


def evaluate_with_faults(
    design: CrossbarDesign,
    assignment: Mapping[str, bool],
    faults: Sequence[Fault],
) -> dict[str, bool]:
    """Flow-based evaluation with the given defects applied.

    ``stuck_on`` cells conduct regardless of programming; ``stuck_off``
    cells never conduct.  Faults outside the design's dimensions are
    rejected with :class:`ValueError` (they would otherwise be silently
    inert for ``stuck_off`` and silently wrong for ``stuck_on``).
    """
    _check_fault_bounds(design, faults)
    on_cells = design.program(assignment)
    layered = design.num_layers > 1
    for fault in faults:
        cell = (
            (fault.layer, fault.row, fault.col)
            if layered
            else (fault.row, fault.col)
        )
        if fault.kind == STUCK_ON:
            on_cells.add(cell)
        else:
            on_cells.discard(cell)
    return design.flow_outputs(on_cells)


def is_functional_under_faults(
    design: CrossbarDesign,
    reference: Reference,
    inputs: Sequence[str],
    faults: Sequence[Fault],
    exhaustive_limit: int = 12,
    samples: int = 256,
    seed: int | random.Random = 0,
) -> bool:
    """Whether the faulty crossbar still computes ``reference`` exactly.

    Exhaustive up to ``exhaustive_limit`` inputs, seeded Monte-Carlo
    beyond (a sound *refuter*: a False answer is definite, a True answer
    beyond the limit is statistical).  ``seed`` (default 0) may be an
    integer or a ``random.Random``; out-of-bounds faults raise
    :class:`ValueError`.

    Runs on the vectorized validation engine (the faults mask the batch
    evaluator's conduction matrix), so single-fault sweeps like
    :func:`critical_cells` and :func:`yield_estimate` trials cost a few
    array fixpoints each instead of ``2**n`` Python BFS walks.
    """
    from .validate import _run_validation

    _check_fault_bounds(design, faults)
    return _run_validation(
        design, tuple(faults), reference, inputs, exhaustive_limit, samples, seed
    ).ok


def critical_cells(
    design: CrossbarDesign,
    reference: Reference,
    inputs: Sequence[str],
    kinds: Sequence[str] = (STUCK_ON, STUCK_OFF),
    include_unprogrammed: bool = True,
    exhaustive_limit: int = 12,
    samples: int = 128,
) -> dict[str, list[tuple[int, int]]]:
    """Single-fault sensitivity analysis.

    Returns, per fault kind, the crosspoints whose single stuck-at
    defect breaks the function.  ``stuck_off`` is only meaningful on
    programmed cells; ``stuck_on`` also threatens *unprogrammed*
    crosspoints (a short can create a spurious sneak path), which are
    included when ``include_unprogrammed`` is set.

    Planar designs report ``(row, col)`` pairs as always; layered
    designs report ``(layer, row, col)`` triples.
    """
    layered = design.num_layers > 1
    programmed = {(l, r, c) for l, r, c, _ in design.cells3d()}
    result: dict[str, list] = {k: [] for k in kinds}

    for kind in kinds:
        if kind == STUCK_OFF:
            candidates = sorted(programmed)
        else:
            if include_unprogrammed:
                candidates = _all_sites(design)
            else:
                candidates = sorted(programmed)
        for l, r, c in candidates:
            fault = Fault(r, c, kind, layer=l)
            if not is_functional_under_faults(
                design, reference, inputs, [fault],
                exhaustive_limit=exhaustive_limit, samples=samples,
            ):
                result[kind].append((l, r, c) if layered else (r, c))
    return result


def _all_sites(design: CrossbarDesign) -> list[tuple[int, int, int]]:
    """Every physical crosspoint of ``design`` as (layer, row, col)."""
    from .design import h_plane, v_plane

    sizes = design.plane_sizes
    return [
        (l, r, c)
        for l in range(design.num_layers)
        for r in range(sizes[h_plane(l)])
        for c in range(sizes[v_plane(l)])
    ]


def yield_estimate(
    design: CrossbarDesign,
    reference: Reference,
    inputs: Sequence[str],
    p_stuck_on: float = 0.001,
    p_stuck_off: float = 0.01,
    trials: int = 200,
    seed: int | random.Random = 0,
    exhaustive_limit: int = 10,
    samples: int = 64,
) -> float:
    """Monte-Carlo functional yield under i.i.d. per-cell defect rates.

    Each trial draws stuck-off defects on programmed cells and stuck-on
    defects on all crosspoints, then checks functionality.  Returns the
    fraction of functional dies.

    ``seed`` (default 0) drives both the fault draw and the per-trial
    functionality sampling, so two calls with the same arguments agree
    exactly.  Pass a ``random.Random`` to share one stream across calls;
    the per-trial check seeds are then drawn from that stream.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    external_rng = isinstance(seed, random.Random)
    rng = _as_rng(seed)
    programmed = [(l, r, c) for l, r, c, _ in design.cells3d()]
    all_cells = _all_sites(design)
    good = 0
    for trial in range(trials):
        faults = [
            Fault(r, c, STUCK_OFF, layer=l)
            for l, r, c in programmed
            if rng.random() < p_stuck_off
        ]
        faults += [
            Fault(r, c, STUCK_ON, layer=l)
            for l, r, c in all_cells
            if rng.random() < p_stuck_on
        ]
        check_seed = rng.randrange(1 << 30) if external_rng else seed + trial
        if is_functional_under_faults(
            design, reference, inputs, faults,
            exhaustive_limit=exhaustive_limit, samples=samples,
            seed=check_seed,
        ):
            good += 1
    return good / trials
