"""Memristor cell contents.

Each crossbar cell is programmed with logical '0' (always high
resistance), logical '1' (always low resistance — used to stitch the
wordline and bitline of a VH node together), or a literal over the
Boolean input variables (low resistance iff the literal is true).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

__all__ = ["Lit", "ON", "OFF"]


@dataclass(frozen=True)
class Lit:
    """A crossbar cell value.

    ``var is None`` encodes the constants: ``positive`` True is the
    always-on '1' cell, False the always-off '0' cell.  Otherwise the
    cell holds the literal ``var`` (``positive``) or ``~var``.
    """

    var: str | None
    positive: bool

    def is_constant(self) -> bool:
        """Whether this is a fixed '0'/'1' cell (no variable)."""
        return self.var is None

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Whether the programmed memristor is in the low-resistive state."""
        if self.var is None:
            return self.positive
        value = bool(assignment[self.var])
        return value if self.positive else not value

    def __str__(self) -> str:
        if self.var is None:
            return "1" if self.positive else "0"
        return self.var if self.positive else f"~{self.var}"


#: The always-on cell (stitches VH wordline/bitline pairs).
ON = Lit(None, True)
#: The always-off cell (unused crosspoints).
OFF = Lit(None, False)
