"""Hardware-utilisation, power and delay metrics.

Cost models follow Section VIII of the paper:

* hardware: rows, columns, semiperimeter ``S``, maximum dimension ``D``,
  area;
* power: proportional to the memristors that must be programmed per
  evaluation — the variable-carrying cells (BDD edges);
* delay: one time step per wordline to program, plus one to evaluate.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from .design import CrossbarDesign

__all__ = ["DesignMetrics", "measure"]


@dataclass(frozen=True)
class DesignMetrics:
    """Flat record of one design's costs (one row of the paper's tables)."""

    name: str
    rows: int
    cols: int
    semiperimeter: int
    max_dimension: int
    area: int
    memristors: int
    literals: int
    power_proxy: int
    delay_steps: int
    #: Memristor layers (1 for the paper's planar designs).
    layers: int = 1
    #: Always-on stitch cells; on layered designs these are the
    #: inter-plane vias, on planar ones the VH stitches.
    vias: int = 0

    def as_dict(self) -> dict:
        """The metrics as a plain dict (report/JSON friendly)."""
        return asdict(self)


def measure(design: CrossbarDesign) -> DesignMetrics:
    """Extract all reported metrics from a design."""
    return DesignMetrics(
        name=design.name,
        rows=design.num_rows,
        cols=design.num_cols,
        semiperimeter=design.semiperimeter,
        max_dimension=design.max_dimension,
        area=design.area,
        memristors=design.memristor_count,
        literals=design.literal_count,
        power_proxy=design.literal_count,
        delay_steps=design.delay_steps,
        layers=design.num_layers,
        vias=design.via_count,
    )
