"""Evaluation-phase programming schedules and switching cost.

The paper's delay model charges one time step per wordline to program
the memristors plus one step to evaluate (Section VIII), and its power
model counts the devices programmed.  Both are *worst case*: between
two consecutive evaluations only the cells whose literal value changed
actually need a write, and only wordlines containing such cells need a
programming step.  This module computes the exact incremental schedule
for an input sequence, giving amortized delay/energy numbers for
streaming workloads — an analysis the worst-case tables cannot show.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from .design import CrossbarDesign

__all__ = ["ProgrammingStep", "ProgrammingSchedule", "schedule_sequence"]


@dataclass(frozen=True)
class ProgrammingStep:
    """The writes needed to move the array to the next assignment."""

    cells_written: int
    rows_touched: int
    #: Per-row write counts (row index -> cells rewritten on that row).
    per_row: tuple[tuple[int, int], ...] = ()

    @property
    def delay_steps(self) -> int:
        """Row-parallel writes: one step per touched wordline, plus the
        evaluation step."""
        return self.rows_touched + 1


@dataclass
class ProgrammingSchedule:
    """Incremental programming cost over an assignment sequence."""

    steps: list[ProgrammingStep] = field(default_factory=list)
    initial_cells: int = 0
    initial_rows: int = 0
    n_evaluations: int = 0

    @property
    def total_writes(self) -> int:
        """Energy proxy: every cell write, including initialization."""
        return self.initial_cells + sum(s.cells_written for s in self.steps)

    @property
    def total_delay(self) -> int:
        """Initialization + per-evaluation delays."""
        if self.n_evaluations == 0:
            return 0
        first = self.initial_rows + 1
        return first + sum(s.delay_steps for s in self.steps)

    @property
    def amortized_delay(self) -> float:
        """Average steps per evaluation over the whole stream."""
        if self.n_evaluations == 0:
            return 0.0
        return self.total_delay / self.n_evaluations

    @property
    def worst_case_delay(self) -> int:
        """Largest single-evaluation delay observed in the stream."""
        return max(
            [self.initial_rows + 1] + [s.delay_steps for s in self.steps],
            default=0,
        )


def _states(design: CrossbarDesign, assignment: Mapping[str, bool]) -> dict[tuple[int, int], bool]:
    return {
        (r, c): lit.evaluate(assignment) for r, c, lit in design.cells()
    }


def schedule_sequence(
    design: CrossbarDesign,
    assignments: Sequence[Mapping[str, bool]],
    assume_erased: bool = True,
) -> ProgrammingSchedule:
    """Exact incremental write schedule for an assignment sequence.

    ``assume_erased=True`` charges the first assignment for every cell
    that must be low-resistance (plus nothing for the erased highs);
    ``False`` charges every programmed cell.
    """
    if not assignments:
        return ProgrammingSchedule(n_evaluations=0)

    first = _states(design, assignments[0])
    if assume_erased:
        to_write = {rc for rc, on in first.items() if on}
    else:
        to_write = set(first)
    init_rows = {r for r, _c in to_write}

    schedule = ProgrammingSchedule(
        initial_cells=len(to_write),
        initial_rows=len(init_rows),
        n_evaluations=len(assignments),
    )
    previous = first
    for env in assignments[1:]:
        current = _states(design, env)
        changed = [rc for rc in current if current[rc] != previous[rc]]
        rows = {}
        for r, _c in changed:
            rows[r] = rows.get(r, 0) + 1
        schedule.steps.append(
            ProgrammingStep(
                cells_written=len(changed),
                rows_touched=len(rows),
                per_row=tuple(sorted(rows.items())),
            )
        )
        previous = current
    return schedule
