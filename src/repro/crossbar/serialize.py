"""JSON (de)serialisation of crossbar designs.

Lets synthesized designs be stored as artifacts, diffed across runs, and
reloaded for evaluation without re-running the NP-hard labeling step.
"""

from __future__ import annotations

import json

from .design import CrossbarDesign
from .literals import Lit

__all__ = ["design_to_json", "design_from_json"]

_FORMAT = "repro.crossbar/1"


def design_to_json(design: CrossbarDesign, indent: int | None = None) -> str:
    """Serialise ``design`` (cells, ports, labels) to a JSON string."""
    payload = {
        "format": _FORMAT,
        "name": design.name,
        "rows": design.num_rows,
        "cols": design.num_cols,
        "input_row": design.input_row,
        "output_rows": design.output_rows,
        "constant_outputs": design.constant_outputs,
        "cells": [
            {"row": r, "col": c, "var": lit.var, "positive": lit.positive}
            for r, c, lit in sorted(design.cells())
        ],
        "row_labels": {str(k): repr(v) for k, v in design.row_labels.items()},
        "col_labels": {str(k): repr(v) for k, v in design.col_labels.items()},
    }
    return json.dumps(payload, indent=indent)


def design_from_json(text: str) -> CrossbarDesign:
    """Reconstruct a design serialised by :func:`design_to_json`.

    Row/column annotation labels are restored as strings (their repr);
    everything functional — dimensions, ports, programmed cells — round
    trips exactly.
    """
    payload = json.loads(text)
    if payload.get("format") != _FORMAT:
        raise ValueError(f"not a serialized crossbar design: {payload.get('format')!r}")
    design = CrossbarDesign(
        payload["name"],
        num_rows=payload["rows"],
        num_cols=payload["cols"],
        input_row=payload["input_row"],
        output_rows=payload["output_rows"],
        constant_outputs={
            k: bool(v) for k, v in payload.get("constant_outputs", {}).items()
        },
    )
    for cell in payload["cells"]:
        design.set_cell(cell["row"], cell["col"], Lit(cell["var"], cell["positive"]))
    design.row_labels = {int(k): v for k, v in payload.get("row_labels", {}).items()}
    design.col_labels = {int(k): v for k, v in payload.get("col_labels", {}).items()}
    return design
