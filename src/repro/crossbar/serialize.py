"""JSON (de)serialisation of crossbar designs and fault maps.

Lets synthesized designs be stored as artifacts, diffed across runs, and
reloaded for evaluation without re-running the NP-hard labeling step.
Fault maps use the same conventions so measured defect data can flow
into ``repro map --fault-map``.
"""

from __future__ import annotations

import json

from .design import CrossbarDesign, CrossbarDesign3D
from .faults import Fault, FaultMap
from .literals import Lit

__all__ = [
    "design_to_json",
    "design_from_json",
    "fault_map_to_json",
    "fault_map_from_json",
]

_FORMAT = "repro.crossbar/1"
_FORMAT_3D = "repro.crossbar/2"
_FAULTS_FORMAT = "repro.faults/1"


def _schema():
    # Imported lazily: repro.check.schema keys on these format markers
    # but must stay importable without pulling in the crossbar package.
    from ..check import schema

    return schema


def _raise_schema_problems(diagnostics) -> None:
    if diagnostics:
        raise ValueError("; ".join(d.message for d in diagnostics))


def design_to_json(design: CrossbarDesign, indent: int | None = None) -> str:
    """Serialise ``design`` (cells, ports, labels) to a JSON string.

    One-layer designs always emit the ``repro.crossbar/1`` schema —
    byte-identical to every pre-3D artifact — while K-layer designs emit
    ``repro.crossbar/2`` with a ``layers`` count, per-plane wire sizes,
    a ``layer`` coordinate on every cell and (when present) a ``meta``
    provenance block carrying the synthesis certificate bounds.
    """
    if design.num_layers == 1:
        payload = {
            "format": _FORMAT,
            "name": design.name,
            "rows": design.num_rows,
            "cols": design.num_cols,
            "input_row": design.input_row,
            "output_rows": design.output_rows,
            "constant_outputs": design.constant_outputs,
            "cells": [
                {"row": r, "col": c, "var": lit.var, "positive": lit.positive}
                for _l, r, c, lit in sorted(
                    design.cells3d(), key=lambda cell: (cell[1], cell[2])
                )
            ],
            "row_labels": {str(k): repr(v) for k, v in design.row_labels.items()},
            "col_labels": {str(k): repr(v) for k, v in design.col_labels.items()},
        }
    else:
        payload = {
            "format": _FORMAT_3D,
            "name": design.name,
            "layers": design.num_layers,
            "plane_sizes": list(design.plane_sizes),
            "rows": design.num_rows,
            "cols": design.num_cols,
            "input_row": design.input_row,
            "output_rows": design.output_rows,
            "constant_outputs": design.constant_outputs,
            "cells": [
                {"layer": l, "row": r, "col": c, "var": lit.var, "positive": lit.positive}
                for l, r, c, lit in sorted(
                    design.cells3d(), key=lambda cell: cell[:3]
                )
            ],
            "plane_labels": [
                {str(k): repr(v) for k, v in labels.items()}
                for labels in design.plane_labels
            ],
        }
        meta = getattr(design, "meta", None)
        if meta:
            payload["meta"] = dict(meta)
    return json.dumps(payload, indent=indent)


def design_from_json(text: str) -> CrossbarDesign:
    """Reconstruct a design serialised by :func:`design_to_json`.

    Row/column annotation labels are restored as strings (their repr);
    everything functional — dimensions, ports, programmed cells — round
    trips exactly.  Accepts both schema versions: ``repro.crossbar/1``
    rebuilds a planar :class:`CrossbarDesign`, ``repro.crossbar/2`` a
    :class:`CrossbarDesign3D`.  A malformed document raises
    :class:`ValueError` listing *every* schema problem found, not just
    the first — including a clear rejection of ``layers < 1``.
    """
    payload = json.loads(text)
    _raise_schema_problems(_schema().design_schema_diagnostics(payload))
    if isinstance(payload, dict) and payload.get("format") == _FORMAT_3D:
        design3d = CrossbarDesign3D(
            payload["name"],
            plane_sizes=payload["plane_sizes"],
            input_row=payload["input_row"],
            output_rows=payload["output_rows"],
            constant_outputs={
                k: bool(v) for k, v in payload.get("constant_outputs", {}).items()
            },
        )
        for cell in payload["cells"]:
            design3d.set_cell3(
                cell["layer"], cell["row"], cell["col"],
                Lit(cell["var"], cell["positive"]),
            )
        for plane, labels in enumerate(payload.get("plane_labels", [])):
            design3d.plane_labels[plane].clear()
            design3d.plane_labels[plane].update(
                {int(k): v for k, v in labels.items()}
            )
        design3d.meta = dict(payload.get("meta", {}))
        return design3d
    design = CrossbarDesign(
        payload["name"],
        num_rows=payload["rows"],
        num_cols=payload["cols"],
        input_row=payload["input_row"],
        output_rows=payload["output_rows"],
        constant_outputs={
            k: bool(v) for k, v in payload.get("constant_outputs", {}).items()
        },
    )
    for cell in payload["cells"]:
        design.set_cell(cell["row"], cell["col"], Lit(cell["var"], cell["positive"]))
    design.row_labels = {int(k): v for k, v in payload.get("row_labels", {}).items()}
    design.col_labels = {int(k): v for k, v in payload.get("col_labels", {}).items()}
    return design


def fault_map_to_json(fault_map: FaultMap, indent: int | None = None) -> str:
    """Serialise a :class:`~repro.crossbar.faults.FaultMap` to JSON.

    The ``layers`` field and per-fault ``layer`` coordinates appear only
    when they differ from their planar defaults, so 2D maps round-trip
    byte-identically to the pre-3D format.
    """
    def fault_obj(f: Fault) -> dict:
        obj = {"row": f.row, "col": f.col, "kind": f.kind}
        if f.layer:
            obj["layer"] = f.layer
        return obj

    payload = {
        "format": _FAULTS_FORMAT,
        "rows": fault_map.rows,
        "cols": fault_map.cols,
        "faults": [
            fault_obj(f)
            for f in sorted(fault_map.faults, key=lambda f: (f.layer, f.row, f.col))
        ],
    }
    if fault_map.layers != 1:
        payload["layers"] = fault_map.layers
    return json.dumps(payload, indent=indent)


def fault_map_from_json(text: str) -> FaultMap:
    """Reconstruct a fault map serialised by :func:`fault_map_to_json`.

    Raises :class:`ValueError` on the wrong format marker, missing
    fields, unknown fault kinds, or out-of-array coordinates — listing
    every problem found, not just the first.
    """
    payload = json.loads(text)
    _raise_schema_problems(_schema().fault_map_schema_diagnostics(payload))
    faults = tuple(
        Fault(int(f["row"]), int(f["col"]), f["kind"], layer=int(f.get("layer", 0)))
        for f in payload["faults"]
    )
    return FaultMap(
        int(payload["rows"]),
        int(payload["cols"]),
        faults,
        layers=int(payload.get("layers", 1)),
    )
