"""JSON (de)serialisation of crossbar designs and fault maps.

Lets synthesized designs be stored as artifacts, diffed across runs, and
reloaded for evaluation without re-running the NP-hard labeling step.
Fault maps use the same conventions so measured defect data can flow
into ``repro map --fault-map``.
"""

from __future__ import annotations

import json

from .design import CrossbarDesign
from .faults import Fault, FaultMap
from .literals import Lit

__all__ = [
    "design_to_json",
    "design_from_json",
    "fault_map_to_json",
    "fault_map_from_json",
]

_FORMAT = "repro.crossbar/1"
_FAULTS_FORMAT = "repro.faults/1"


def _schema():
    # Imported lazily: repro.check.schema keys on these format markers
    # but must stay importable without pulling in the crossbar package.
    from ..check import schema

    return schema


def _raise_schema_problems(diagnostics) -> None:
    if diagnostics:
        raise ValueError("; ".join(d.message for d in diagnostics))


def design_to_json(design: CrossbarDesign, indent: int | None = None) -> str:
    """Serialise ``design`` (cells, ports, labels) to a JSON string."""
    payload = {
        "format": _FORMAT,
        "name": design.name,
        "rows": design.num_rows,
        "cols": design.num_cols,
        "input_row": design.input_row,
        "output_rows": design.output_rows,
        "constant_outputs": design.constant_outputs,
        "cells": [
            {"row": r, "col": c, "var": lit.var, "positive": lit.positive}
            for r, c, lit in sorted(design.cells())
        ],
        "row_labels": {str(k): repr(v) for k, v in design.row_labels.items()},
        "col_labels": {str(k): repr(v) for k, v in design.col_labels.items()},
    }
    return json.dumps(payload, indent=indent)


def design_from_json(text: str) -> CrossbarDesign:
    """Reconstruct a design serialised by :func:`design_to_json`.

    Row/column annotation labels are restored as strings (their repr);
    everything functional — dimensions, ports, programmed cells — round
    trips exactly.  A malformed document raises :class:`ValueError`
    listing *every* schema problem found, not just the first.
    """
    payload = json.loads(text)
    _raise_schema_problems(_schema().design_schema_diagnostics(payload))
    design = CrossbarDesign(
        payload["name"],
        num_rows=payload["rows"],
        num_cols=payload["cols"],
        input_row=payload["input_row"],
        output_rows=payload["output_rows"],
        constant_outputs={
            k: bool(v) for k, v in payload.get("constant_outputs", {}).items()
        },
    )
    for cell in payload["cells"]:
        design.set_cell(cell["row"], cell["col"], Lit(cell["var"], cell["positive"]))
    design.row_labels = {int(k): v for k, v in payload.get("row_labels", {}).items()}
    design.col_labels = {int(k): v for k, v in payload.get("col_labels", {}).items()}
    return design


def fault_map_to_json(fault_map: FaultMap, indent: int | None = None) -> str:
    """Serialise a :class:`~repro.crossbar.faults.FaultMap` to JSON."""
    payload = {
        "format": _FAULTS_FORMAT,
        "rows": fault_map.rows,
        "cols": fault_map.cols,
        "faults": [
            {"row": f.row, "col": f.col, "kind": f.kind}
            for f in sorted(fault_map.faults, key=lambda f: (f.row, f.col))
        ],
    }
    return json.dumps(payload, indent=indent)


def fault_map_from_json(text: str) -> FaultMap:
    """Reconstruct a fault map serialised by :func:`fault_map_to_json`.

    Raises :class:`ValueError` on the wrong format marker, missing
    fields, unknown fault kinds, or out-of-array coordinates — listing
    every problem found, not just the first.
    """
    payload = json.loads(text)
    _raise_schema_problems(_schema().fault_map_schema_diagnostics(payload))
    faults = tuple(
        Fault(int(f["row"]), int(f["col"]), f["kind"])
        for f in payload["faults"]
    )
    return FaultMap(int(payload["rows"]), int(payload["cols"]), faults)
