"""SPICE netlist export.

The paper signs off every design with SPICE simulations and the
memristor model of [33].  :func:`to_spice_netlist` emits a plain
ngspice-compatible DC deck for a programmed crossbar — each crosspoint
as a resistor at its programmed state, the input wordline driven by a
voltage source, a sense resistor on every output wordline, and ``.print``
directives for the sensed voltages — so the designs produced here can be
re-verified with an external circuit simulator.
"""

from __future__ import annotations

from collections.abc import Mapping

from .analog import AnalogParams
from .design import CrossbarDesign

__all__ = ["to_spice_netlist"]


def _row_node(r: int) -> str:
    return f"row{r}"


def _col_node(c: int) -> str:
    return f"col{c}"


def to_spice_netlist(
    design: CrossbarDesign,
    assignment: Mapping[str, bool],
    params: AnalogParams = AnalogParams(),
    title: str | None = None,
) -> str:
    """Serialise the programmed crossbar as a SPICE DC deck."""
    on_cells = design.program(assignment)
    lines = [f"* {title or design.name}: flow-based crossbar DC deck"]
    lines.append(f"* {design.num_rows} wordlines x {design.num_cols} bitlines, "
                 f"{design.memristor_count} programmed cells")
    env = ", ".join(f"{k}={int(bool(v))}" for k, v in sorted(assignment.items()))
    if env:
        lines.append(f"* assignment: {env}")

    lines.append(f"Vin {_row_node(design.input_row)} 0 DC {params.v_in:g}")

    idx = 0
    for r, c, lit in design.cells():
        resistance = params.r_on if (r, c) in on_cells else params.r_off
        lines.append(
            f"Rm{idx} {_row_node(r)} {_col_node(c)} {resistance:g}  * cell({r},{c})={lit}"
        )
        idx += 1

    for out, row in sorted(design.output_rows.items(), key=lambda kv: kv[1]):
        if row == design.input_row:
            continue  # driven node; nothing to sense through
        lines.append(f"Rsense_{out} {_row_node(row)} 0 {params.r_sense:g}")

    lines.append(".op")
    for out, row in sorted(design.output_rows.items(), key=lambda kv: kv[1]):
        lines.append(f".print dc v({_row_node(row)})  * output {out}")
    lines.append(".end")
    return "\n".join(lines) + "\n"
