"""Functional validation of crossbar designs.

The paper verifies every synthesized design with SPICE; here validation
is two-tier: exact logical equivalence against the reference function
(exhaustive up to a cutoff, Monte-Carlo beyond), plus spot checks with
the resistive analog model in :mod:`repro.crossbar.analog`.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from .design import CrossbarDesign

__all__ = ["ValidationReport", "validate_design", "validate_under_faults"]

Reference = Callable[[Mapping[str, bool]], Mapping[str, bool]]


@dataclass
class ValidationReport:
    """Result of :func:`validate_design`."""

    ok: bool
    checked: int
    exhaustive: bool
    counterexample: dict[str, bool] | None = None
    mismatched_outputs: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.ok


def validate_design(
    design: CrossbarDesign,
    reference: Reference,
    inputs: Sequence[str],
    exhaustive_limit: int = 14,
    samples: int = 2000,
    seed: int = 0,
) -> ValidationReport:
    """Check that ``design`` computes the same outputs as ``reference``.

    Exhaustive over all ``2^n`` assignments when ``n <= exhaustive_limit``,
    otherwise ``samples`` seeded Monte-Carlo assignments.  Returns the
    first counterexample found, if any.
    """
    return _run_validation(
        design.evaluate, reference, inputs, exhaustive_limit, samples, seed
    )


def validate_under_faults(
    design: CrossbarDesign,
    reference: Reference,
    inputs: Sequence[str],
    faults,
    exhaustive_limit: int = 12,
    samples: int = 512,
    seed: int = 0,
) -> ValidationReport:
    """Like :func:`validate_design`, but with stuck-at ``faults`` applied.

    This is the end-to-end acceptance check the defect-aware remapper
    (:mod:`repro.robust`) runs on every candidate placement; the report
    carries the first counterexample, which feeds the
    ``RemapFailure`` diagnosis when a candidate is rejected.
    """
    from .faults import evaluate_with_faults

    return _run_validation(
        lambda env: evaluate_with_faults(design, env, faults),
        reference, inputs, exhaustive_limit, samples, seed,
    )


def _run_validation(
    evaluator: Callable[[Mapping[str, bool]], Mapping[str, bool]],
    reference: Reference,
    inputs: Sequence[str],
    exhaustive_limit: int,
    samples: int,
    seed: int,
) -> ValidationReport:
    names = list(inputs)
    if len(names) <= exhaustive_limit:
        assignments = (
            dict(zip(names, bits))
            for bits in itertools.product([False, True], repeat=len(names))
        )
        exhaustive = True
        total = 2 ** len(names)
    else:
        rng = random.Random(seed)
        assignments = (
            {name: bool(rng.getrandbits(1)) for name in names} for _ in range(samples)
        )
        exhaustive = False
        total = samples

    checked = 0
    for env in assignments:
        expected = dict(reference(env))
        actual = evaluator(env)
        checked += 1
        bad = tuple(
            out for out in expected if bool(expected[out]) != bool(actual.get(out))
        )
        if bad:
            return ValidationReport(
                ok=False,
                checked=checked,
                exhaustive=exhaustive,
                counterexample=dict(env),
                mismatched_outputs=bad,
            )
    return ValidationReport(ok=True, checked=total, exhaustive=exhaustive)
