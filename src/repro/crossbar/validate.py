"""Functional validation of crossbar designs.

The paper verifies every synthesized design with SPICE; here validation
is two-tier: exact logical equivalence against the reference function
(exhaustive up to a cutoff, Monte-Carlo beyond), plus spot checks with
the resistive analog model in :mod:`repro.crossbar.analog`.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from .design import CrossbarDesign

__all__ = ["ValidationReport", "validate_design"]

Reference = Callable[[Mapping[str, bool]], Mapping[str, bool]]


@dataclass
class ValidationReport:
    """Result of :func:`validate_design`."""

    ok: bool
    checked: int
    exhaustive: bool
    counterexample: dict[str, bool] | None = None
    mismatched_outputs: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.ok


def validate_design(
    design: CrossbarDesign,
    reference: Reference,
    inputs: Sequence[str],
    exhaustive_limit: int = 14,
    samples: int = 2000,
    seed: int = 0,
) -> ValidationReport:
    """Check that ``design`` computes the same outputs as ``reference``.

    Exhaustive over all ``2^n`` assignments when ``n <= exhaustive_limit``,
    otherwise ``samples`` seeded Monte-Carlo assignments.  Returns the
    first counterexample found, if any.
    """
    names = list(inputs)
    if len(names) <= exhaustive_limit:
        assignments = (
            dict(zip(names, bits))
            for bits in itertools.product([False, True], repeat=len(names))
        )
        exhaustive = True
        total = 2 ** len(names)
    else:
        rng = random.Random(seed)
        assignments = (
            {name: bool(rng.getrandbits(1)) for name in names} for _ in range(samples)
        )
        exhaustive = False
        total = samples

    checked = 0
    for env in assignments:
        expected = dict(reference(env))
        actual = design.evaluate(env)
        checked += 1
        bad = tuple(
            out for out in expected if bool(expected[out]) != bool(actual.get(out))
        )
        if bad:
            return ValidationReport(
                ok=False,
                checked=checked,
                exhaustive=exhaustive,
                counterexample=dict(env),
                mismatched_outputs=bad,
            )
    return ValidationReport(ok=True, checked=total, exhaustive=exhaustive)
