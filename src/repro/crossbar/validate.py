"""Functional validation of crossbar designs.

The paper verifies every synthesized design with SPICE; here validation
is two-tier: exact logical equivalence against the reference function
(exhaustive up to a cutoff, Monte-Carlo beyond), plus spot checks with
the resistive analog model in :mod:`repro.crossbar.analog`.

Both tiers are vectorized.  The exhaustive tier evaluates the design
over the whole ``2**n`` assignment space as packed uint64 truth tables
(:func:`repro.crossbar.batch.bitset_evaluate`); the Monte-Carlo tier
stacks the sampled assignments into one boolean matrix and runs the
batch fixpoint once.  When the reference is a bound ``Netlist.evaluate``
or ``SBDD.evaluate`` — the common case throughout the pipeline — the
reference side is swept the same way (netlist packed simulation, BDD
bitset sweep), so a full exhaustive check costs a handful of array ops
instead of ``2**n`` Python BFS walks.  Any other callable is still
consulted one assignment at a time, in the same order as before, with
the same early exit.

Reports are bit-identical to the scalar loops they replaced: assignment
``k`` of the exhaustive sweep is exactly the ``k``-th element of
``itertools.product([False, True], repeat=n)``, so the first
counterexample (and ``checked``) comes out the same.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from .. import bitset
from ..perf import counters
from .batch import assignments_to_matrix, batch_evaluate, bitset_evaluate
from .design import CrossbarDesign

__all__ = ["ValidationReport", "validate_design", "validate_under_faults"]

Reference = Callable[[Mapping[str, bool]], Mapping[str, bool]]


@dataclass
class ValidationReport:
    """Result of :func:`validate_design`."""

    ok: bool
    checked: int
    exhaustive: bool
    counterexample: dict[str, bool] | None = None
    mismatched_outputs: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.ok


def validate_design(
    design: CrossbarDesign,
    reference: Reference,
    inputs: Sequence[str],
    exhaustive_limit: int = 14,
    samples: int = 2000,
    seed: int = 0,
) -> ValidationReport:
    """Check that ``design`` computes the same outputs as ``reference``.

    Exhaustive over all ``2^n`` assignments when ``n <= exhaustive_limit``,
    otherwise ``samples`` seeded Monte-Carlo assignments.  Returns the
    first counterexample found, if any.  An output the reference defines
    but the design does not is a mismatch on every assignment.
    """
    return _run_validation(
        design, None, reference, inputs, exhaustive_limit, samples, seed
    )


def validate_under_faults(
    design: CrossbarDesign,
    reference: Reference,
    inputs: Sequence[str],
    faults,
    exhaustive_limit: int = 12,
    samples: int = 512,
    seed: int = 0,
) -> ValidationReport:
    """Like :func:`validate_design`, but with stuck-at ``faults`` applied.

    This is the end-to-end acceptance check the defect-aware remapper
    (:mod:`repro.robust`) runs on every candidate placement; the report
    carries the first counterexample, which feeds the
    ``RemapFailure`` diagnosis when a candidate is rejected.  The faults
    are applied by masking the batch evaluator's conduction matrix, so
    the whole check is a single vectorized fixpoint.
    """
    return _run_validation(
        design, tuple(faults), reference, inputs, exhaustive_limit, samples, seed
    )


def _batch_owner(reference: Reference):
    """The Netlist or SBDD whose bound ``evaluate`` ``reference`` is.

    Returns None for any other callable (including subclass overrides,
    whose ``evaluate`` may disagree with the vectorized sweeps).
    """
    owner = getattr(reference, "__self__", None)
    if owner is None:
        return None
    func = getattr(reference, "__func__", None)
    from ..bdd.sbdd import SBDD
    from ..circuits.netlist import Netlist

    if type(owner) is Netlist and func is Netlist.evaluate:
        return owner
    if type(owner) is SBDD and func is SBDD.evaluate:
        return owner
    return None


def _run_validation(
    design: CrossbarDesign,
    faults,
    reference: Reference,
    inputs: Sequence[str],
    exhaustive_limit: int,
    samples: int,
    seed: int | random.Random,
) -> ValidationReport:
    names = list(inputs)
    n = len(names)
    if faults:
        from .faults import _check_fault_bounds

        _check_fault_bounds(design, faults)
    if n <= exhaustive_limit:
        if n <= bitset.MAX_BITSET_VARS:
            return _validate_exhaustive(design, faults, reference, names)
        return _validate_exhaustive_scalar(design, faults, reference, names)
    return _validate_sampled(design, faults, reference, names, samples, seed)


def _report(
    checked: int,
    exhaustive: bool,
    counterexample: dict[str, bool] | None = None,
    mismatched: tuple[str, ...] = (),
) -> ValidationReport:
    counters.increment("validate_assignments", checked)
    return ValidationReport(
        ok=not mismatched,
        checked=checked,
        exhaustive=exhaustive,
        counterexample=counterexample,
        mismatched_outputs=mismatched,
    )


def _validate_exhaustive(
    design: CrossbarDesign, faults, reference: Reference, names: list[str]
) -> ValidationReport:
    n = len(names)
    total = 1 << n
    actual = bitset_evaluate(design, names, faults=faults)
    owner = _batch_owner(reference)
    if owner is not None:
        expected = owner.evaluate_bitset(names)
        diffs = {}
        diff_any = bitset.zeros(n)
        for out, exp in expected.items():
            act = actual.get(out)
            # A dropped output net mismatches everywhere — never treat
            # "absent" as a computed False.
            d = bitset.ones(n) if act is None else exp ^ act
            diffs[out] = d
            diff_any = diff_any | d
        k = bitset.first_set(diff_any)
        if k is None:
            return _report(total, exhaustive=True)
        bad = tuple(out for out in expected if bitset.get_bit(diffs[out], k))
        return _report(k + 1, True, bitset.index_env(k, names), bad)
    # Opaque reference: consult it per assignment (same order and early
    # exit as the scalar loop), against the precomputed design sweep.
    for k, bits in enumerate(itertools.product([False, True], repeat=n)):
        expected = dict(reference(dict(zip(names, bits))))
        bad = tuple(
            out
            for out in expected
            if out not in actual
            or bool(expected[out]) != bitset.get_bit(actual[out], k)
        )
        if bad:
            return _report(k + 1, True, dict(zip(names, map(bool, bits))), bad)
    return _report(total, exhaustive=True)


def _validate_exhaustive_scalar(
    design: CrossbarDesign, faults, reference: Reference, names: list[str]
) -> ValidationReport:
    """Exhaustive fallback beyond the packed-table width (n > 26)."""
    from .faults import evaluate_with_faults

    checked = 0
    for bits in itertools.product([False, True], repeat=len(names)):
        env = dict(zip(names, bits))
        expected = dict(reference(env))
        if faults:
            actual = evaluate_with_faults(design, env, faults)
        else:
            actual = design.evaluate(env)
        checked += 1
        bad = tuple(
            out
            for out in expected
            if out not in actual or bool(expected[out]) != bool(actual[out])
        )
        if bad:
            return _report(checked, True, dict(env), bad)
    return _report(checked, exhaustive=True)


def _validate_sampled(
    design: CrossbarDesign,
    faults,
    reference: Reference,
    names: list[str],
    samples: int,
    seed: int | random.Random,
) -> ValidationReport:
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    # Same draws, same order as the scalar generator produced.
    envs = [
        {name: bool(rng.getrandbits(1)) for name in names} for _ in range(samples)
    ]
    matrix = assignments_to_matrix(envs, names)
    actual = batch_evaluate(design, names, matrix, faults=faults)
    owner = _batch_owner(reference)
    if owner is not None:
        expected = owner.evaluate_batch(matrix, names)
        diffs = {}
        diff_any = np.zeros(samples, dtype=bool)
        for out, exp in expected.items():
            act = actual.get(out)
            d = np.ones(samples, dtype=bool) if act is None else exp ^ act
            diffs[out] = d
            diff_any |= d
        hit = np.flatnonzero(diff_any)
        if hit.size == 0:
            return _report(samples, exhaustive=False)
        k = int(hit[0])
        bad = tuple(out for out in expected if diffs[out][k])
        return _report(k + 1, False, dict(envs[k]), bad)
    for k, env in enumerate(envs):
        expected = dict(reference(env))
        bad = tuple(
            out
            for out in expected
            if out not in actual or bool(expected[out]) != bool(actual[out][k])
        )
        if bad:
            return _report(k + 1, False, dict(env), bad)
    return _report(samples, exhaustive=False)
