"""Device-variation analysis for the analog crossbar model.

Real memristors show cycle-to-cycle and device-to-device resistance
spread.  This module re-runs the DC nodal analysis with log-normally
perturbed R_on/R_off per cell and reports how often each output still
reads the correct logic level — the analog robustness counterpart of
the stuck-at yield analysis in :mod:`repro.crossbar.faults`.
"""

from __future__ import annotations

import math
import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import sparse as sp
from scipy.sparse.linalg import spsolve

from .analog import AnalogParams
from .design import CrossbarDesign
from .faults import _as_rng

__all__ = ["VariationParams", "VariationReport", "simulate_with_variation", "variation_sweep"]


@dataclass(frozen=True)
class VariationParams:
    """Log-normal resistance spread (sigma of ln R)."""

    sigma_on: float = 0.25
    sigma_off: float = 0.25


def _solve(design: CrossbarDesign, conductance: dict[tuple[int, int], float], params: AnalogParams) -> dict[str, float]:
    R, C = design.num_rows, design.num_cols
    n = R + C
    g_sense = 1.0 / params.r_sense

    diag = np.zeros(n)
    rhs = np.zeros(n)
    rows_idx: list[int] = []
    cols_idx: list[int] = []
    data: list[float] = []

    for (r, c), g in conductance.items():
        i, j = r, R + c
        diag[i] += g
        diag[j] += g
        if i == design.input_row:
            rhs[j] += g * params.v_in
        else:
            rows_idx.extend((i, j))
            cols_idx.extend((j, i))
            data.extend((-g, -g))
    for out_row in design.output_rows.values():
        diag[out_row] += g_sense

    keep = [i for i in range(n) if i != design.input_row]
    remap = {node: k for k, node in enumerate(keep)}
    rr, cc, dd = [], [], []
    for i, j, g in zip(rows_idx, cols_idx, data):
        if i in remap and j in remap:
            rr.append(remap[i])
            cc.append(remap[j])
            dd.append(g)
    for node in keep:
        rr.append(remap[node])
        cc.append(remap[node])
        dd.append(diag[node] if diag[node] > 0 else 1.0)
    G = sp.csr_matrix((dd, (rr, cc)), shape=(len(keep), len(keep)))
    v = spsolve(G.tocsc(), rhs[keep])

    volt = np.zeros(n)
    volt[design.input_row] = params.v_in
    for node, k in remap.items():
        volt[node] = v[k]
    return {out: float(volt[row]) for out, row in design.output_rows.items()}


def simulate_with_variation(
    design: CrossbarDesign,
    assignment: Mapping[str, bool],
    params: AnalogParams = AnalogParams(),
    variation: VariationParams = VariationParams(),
    seed: int | random.Random = 0,
) -> dict[str, float]:
    """One variation sample: per-cell log-normal R perturbation.

    Returns the sensed voltage per output.  ``seed`` (default 0) may be
    an integer — same seed, same perturbed die — or a ``random.Random``
    whose stream the draw consumes.
    """
    rng = _as_rng(seed)
    on_cells = design.program(assignment)
    conductance: dict[tuple[int, int], float] = {}
    for r, c, _lit in design.cells():
        if (r, c) in on_cells:
            resistance = params.r_on * math.exp(rng.gauss(0.0, variation.sigma_on))
        else:
            resistance = params.r_off * math.exp(rng.gauss(0.0, variation.sigma_off))
        conductance[(r, c)] = 1.0 / resistance
    return _solve(design, conductance, params)


@dataclass
class VariationReport:
    """Aggregate robustness under device variation."""

    trials: int
    assignments: int
    #: Fraction of (trial, assignment, output) readouts that were correct.
    correct_fraction: float
    #: Worst observed margin to the threshold (fraction of v_in; negative
    #: means some readout crossed to the wrong side).
    worst_margin: float


def variation_sweep(
    design: CrossbarDesign,
    inputs: Sequence[str],
    trials: int = 20,
    n_assignments: int = 16,
    params: AnalogParams = AnalogParams(),
    variation: VariationParams = VariationParams(),
    seed: int | random.Random = 0,
) -> VariationReport:
    """Monte-Carlo over assignments x device-variation samples.

    Fully deterministic for a given integer ``seed`` (default 0): the
    assignment draw and every per-trial die perturbation derive from it,
    so repeated sweeps agree exactly.  Passing a ``random.Random``
    instead threads one external stream through the whole sweep.
    """
    external_rng = isinstance(seed, random.Random)
    rng = _as_rng(seed)
    names = list(inputs)
    envs = [
        {n: bool(rng.getrandbits(1)) for n in names} for _ in range(n_assignments)
    ]
    threshold = params.threshold * params.v_in

    total = 0
    correct = 0
    worst = math.inf
    for t in range(trials):
        die_seed = rng.randrange(1 << 30) if external_rng else seed + 7919 * t
        for env in envs:
            expected = design.evaluate(env)
            volts = simulate_with_variation(
                design, env, params, variation, seed=die_seed
            )
            for out, v in volts.items():
                total += 1
                want = expected[out]
                read = v > threshold
                if read == want:
                    correct += 1
                margin = (v - threshold) if want else (threshold - v)
                worst = min(worst, margin / params.v_in)
    return VariationReport(
        trials=trials,
        assignments=n_assignments,
        correct_fraction=correct / total if total else 1.0,
        worst_margin=worst if worst is not math.inf else 0.0,
    )
