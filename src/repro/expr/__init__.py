"""Boolean expression substrate: AST, parser and evaluation helpers."""

from .ast import (
    FALSE,
    TRUE,
    And,
    Assignment,
    Const,
    Expr,
    Ite,
    Not,
    Or,
    Var,
    Xor,
    all_assignments,
)
from .minimize import (
    cube_to_expr,
    minimize_expr,
    minimize_truth_table,
    prime_implicants,
)
from .parser import ParseError, parse

__all__ = [
    "prime_implicants",
    "minimize_truth_table",
    "minimize_expr",
    "cube_to_expr",
    "Expr",
    "Var",
    "Const",
    "Not",
    "And",
    "Or",
    "Xor",
    "Ite",
    "TRUE",
    "FALSE",
    "Assignment",
    "all_assignments",
    "parse",
    "ParseError",
]
