"""Boolean expression abstract syntax tree.

Expressions are immutable, hashable trees built from variables, constants
and the usual connectives.  They are the lingua franca of the front end:
PLA/BLIF/Verilog readers produce them, the netlist cell library defines
gate semantics with them, and the BDD engine compiles them.

The public constructors normalise trivially (``Not(Not(e)) -> e``,
constant folding of ``And``/``Or`` with constants) but perform no
expensive simplification; that is the BDD engine's job.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Mapping
from typing import Union

Assignment = Mapping[str, Union[bool, int]]

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Not",
    "And",
    "Or",
    "Xor",
    "Ite",
    "TRUE",
    "FALSE",
    "all_assignments",
]


class Expr:
    """Base class for Boolean expressions.

    Subclasses are value objects: two structurally equal expressions
    compare equal and hash equal, which lets callers memoise on them.
    Operators ``&``, ``|``, ``^`` and ``~`` build larger expressions.
    """

    __slots__ = ("_hash",)

    # -- construction sugar -------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return Or(self, other)

    def __xor__(self, other: "Expr") -> "Expr":
        return Xor(self, other)

    def __invert__(self) -> "Expr":
        return Not(self)

    # -- interface -----------------------------------------------------------
    def evaluate(self, assignment: Assignment) -> bool:
        """Evaluate under ``assignment`` (maps variable name -> truth value)."""
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """The set of variable names appearing in the expression."""
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        """Immediate sub-expressions."""
        raise NotImplementedError

    # -- generic helpers -----------------------------------------------------
    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Simultaneously replace variables by expressions."""
        if isinstance(self, Var):
            return mapping.get(self.name, self)
        if isinstance(self, Const):
            return self
        new_children = tuple(c.substitute(mapping) for c in self.children())
        return self._rebuild(new_children)

    def cofactor(self, name: str, value: bool) -> "Expr":
        """Shannon cofactor with respect to ``name = value``."""
        return self.substitute({name: TRUE if value else FALSE})

    def _rebuild(self, children: tuple["Expr", ...]) -> "Expr":
        raise NotImplementedError

    def truth_table(self, order: Iterable[str] | None = None) -> list[bool]:
        """Full truth table in the given (or sorted) variable order.

        Row ``i`` corresponds to the assignment whose bits, MSB first,
        spell ``i`` over the variable order.  Exponential; intended for
        small expressions and cross-checking.
        """
        names = list(order) if order is not None else sorted(self.variables())
        rows = []
        for bits in itertools.product([False, True], repeat=len(names)):
            rows.append(self.evaluate(dict(zip(names, bits))))
        return rows

    def equivalent(self, other: "Expr") -> bool:
        """Exhaustive equivalence check (small expressions only)."""
        names = sorted(self.variables() | other.variables())
        for bits in itertools.product([False, True], repeat=len(names)):
            env = dict(zip(names, bits))
            if self.evaluate(env) != other.evaluate(env):
                return False
        return True

    def size(self) -> int:
        """Number of AST nodes (shared subtrees counted repeatedly)."""
        return 1 + sum(c.size() for c in self.children())

    def depth(self) -> int:
        """Height of the AST (a leaf has depth 0)."""
        kids = self.children()
        if not kids:
            return 0
        return 1 + max(c.depth() for c in kids)


class Var(Expr):
    """A Boolean variable, identified by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name
        self._hash = hash(("var", name))

    def evaluate(self, assignment: Assignment) -> bool:
        try:
            return bool(assignment[self.name])
        except KeyError:
            raise KeyError(f"assignment missing variable {self.name!r}") from None

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def children(self) -> tuple[Expr, ...]:
        return ()

    def __eq__(self, other) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return self.name


class Const(Expr):
    """The constants 0 and 1.  Use the module-level ``TRUE``/``FALSE``."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = bool(value)
        self._hash = hash(("const", self.value))

    def evaluate(self, assignment: Assignment) -> bool:
        return self.value

    def variables(self) -> frozenset[str]:
        return frozenset()

    def children(self) -> tuple[Expr, ...]:
        return ()

    def __eq__(self, other) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "1" if self.value else "0"


TRUE = Const(True)
FALSE = Const(False)


class _Unary(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = operand
        self._hash = hash((type(self).__name__, operand))

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and other.operand == self.operand

    def __hash__(self) -> int:
        return self._hash


class Not(_Unary):
    """Logical negation.  ``Not(Not(e))`` collapses to ``e``."""

    __slots__ = ()

    def __new__(cls, operand: Expr):
        if isinstance(operand, Not):
            return operand.operand
        if isinstance(operand, Const):
            return FALSE if operand.value else TRUE
        return super().__new__(cls)

    def __init__(self, operand: Expr):
        # __new__ may have returned an existing object; only initialise
        # genuinely new Not instances.
        if not hasattr(self, "operand"):
            super().__init__(operand)

    def evaluate(self, assignment: Assignment) -> bool:
        return not self.operand.evaluate(assignment)

    def _rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return Not(children[0])

    def __repr__(self) -> str:
        return f"~{_paren(self.operand)}"


class _Nary(Expr):
    """Common machinery for flattening associative connectives."""

    __slots__ = ("operands",)
    _identity: bool
    _absorbing: bool

    def __new__(cls, *operands: Expr):
        flat: list[Expr] = []
        for op in operands:
            if not isinstance(op, Expr):
                raise TypeError(f"expected Expr, got {type(op).__name__}")
            if type(op) is cls:
                flat.extend(op.operands)  # type: ignore[attr-defined]
            else:
                flat.append(op)
        kept: list[Expr] = []
        for op in flat:
            if isinstance(op, Const):
                if op.value == cls._absorbing:
                    return TRUE if cls._absorbing else FALSE
                continue  # identity element: drop
            kept.append(op)
        if not kept:
            return TRUE if cls._identity else FALSE
        if len(kept) == 1:
            return kept[0]
        obj = super().__new__(cls)
        obj.operands = tuple(kept)
        obj._hash = hash((cls.__name__, obj.operands))
        return obj

    def __init__(self, *operands: Expr):
        pass  # state set in __new__

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for op in self.operands:
            out |= op.variables()
        return out

    def children(self) -> tuple[Expr, ...]:
        return self.operands

    def _rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return type(self)(*children)

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and other.operands == self.operands

    def __hash__(self) -> int:
        return self._hash


class And(_Nary):
    """N-ary conjunction; flattens nested Ands and folds constants."""

    __slots__ = ()
    _identity = True
    _absorbing = False

    def evaluate(self, assignment: Assignment) -> bool:
        return all(op.evaluate(assignment) for op in self.operands)

    def __repr__(self) -> str:
        return " & ".join(_paren(op) for op in self.operands)


class Or(_Nary):
    """N-ary disjunction; flattens nested Ors and folds constants."""

    __slots__ = ()
    _identity = False
    _absorbing = True

    def evaluate(self, assignment: Assignment) -> bool:
        return any(op.evaluate(assignment) for op in self.operands)

    def __repr__(self) -> str:
        return " | ".join(_paren(op) for op in self.operands)


class Xor(Expr):
    """N-ary exclusive or (true iff an odd number of operands are true)."""

    __slots__ = ("operands",)

    def __new__(cls, *operands: Expr):
        flat: list[Expr] = []
        parity = False
        for op in operands:
            if not isinstance(op, Expr):
                raise TypeError(f"expected Expr, got {type(op).__name__}")
            if isinstance(op, Xor):
                flat.extend(op.operands)
            elif isinstance(op, Const):
                parity ^= op.value
            else:
                flat.append(op)
        if not flat:
            return TRUE if parity else FALSE
        if len(flat) == 1:
            return Not(flat[0]) if parity else flat[0]
        obj = super().__new__(cls)
        ops = tuple(flat)
        if parity:
            ops = ops[:-1] + (Not(ops[-1]),)
        obj.operands = ops
        obj._hash = hash(("Xor", obj.operands))
        return obj

    def __init__(self, *operands: Expr):
        pass

    def evaluate(self, assignment: Assignment) -> bool:
        acc = False
        for op in self.operands:
            acc ^= op.evaluate(assignment)
        return acc

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for op in self.operands:
            out |= op.variables()
        return out

    def children(self) -> tuple[Expr, ...]:
        return self.operands

    def _rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return Xor(*children)

    def __eq__(self, other) -> bool:
        return isinstance(other, Xor) and other.operands == self.operands

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return " ^ ".join(_paren(op) for op in self.operands)


class Ite(Expr):
    """If-then-else: ``Ite(c, t, e)`` is ``(c & t) | (~c & e)``."""

    __slots__ = ("cond", "then", "other")

    def __new__(cls, cond: Expr, then: Expr, other: Expr):
        if isinstance(cond, Const):
            return then if cond.value else other
        if then == other:
            return then
        return super().__new__(cls)

    def __init__(self, cond: Expr, then: Expr, other: Expr):
        if hasattr(self, "cond"):
            return
        self.cond = cond
        self.then = then
        self.other = other
        self._hash = hash(("Ite", cond, then, other))

    def evaluate(self, assignment: Assignment) -> bool:
        if self.cond.evaluate(assignment):
            return self.then.evaluate(assignment)
        return self.other.evaluate(assignment)

    def variables(self) -> frozenset[str]:
        return self.cond.variables() | self.then.variables() | self.other.variables()

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.then, self.other)

    def _rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return Ite(*children)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Ite)
            and other.cond == self.cond
            and other.then == self.then
            and other.other == self.other
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"ite({self.cond!r}, {self.then!r}, {self.other!r})"


def _paren(e: Expr) -> str:
    if isinstance(e, (Var, Const, Not)):
        return repr(e)
    return f"({e!r})"


def all_assignments(names: Iterable[str]) -> Iterator[dict[str, bool]]:
    """Yield every assignment over ``names`` in binary counting order."""
    names = list(names)
    for bits in itertools.product([False, True], repeat=len(names)):
        yield dict(zip(names, bits))
