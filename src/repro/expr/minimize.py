"""Two-level logic minimization (Quine–McCluskey).

A self-contained exact minimizer for small functions: prime implicants
by iterated merging, essential-prime extraction, and minimum cover of
the remainder — greedy by default, or provably minimum via the in-house
MILP solver (:mod:`repro.milp`).  Used to compact PLA output and as an
independent oracle in tests (a minimized cover must stay equivalent).

Cubes are strings over ``{'0', '1', '-'}``, one character per variable.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

from .ast import And, Expr, Not, Or, Var, FALSE, TRUE

__all__ = ["prime_implicants", "minimize_truth_table", "minimize_expr", "cube_to_expr"]


def _merge(a: str, b: str) -> str | None:
    """Merge two cubes differing in exactly one specified bit."""
    diff = 0
    out = []
    for x, y in zip(a, b):
        if x == y:
            out.append(x)
        elif x != "-" and y != "-":
            diff += 1
            out.append("-")
            if diff > 1:
                return None
        else:
            return None
    return "".join(out) if diff == 1 else None


def _covers(cube: str, minterm: int, n: int) -> bool:
    for bit in range(n):
        want = (minterm >> bit) & 1
        ch = cube[n - 1 - bit]
        if ch != "-" and int(ch) != want:
            return False
    return True


def _minterm_to_cube(m: int, n: int) -> str:
    return "".join("1" if (m >> (n - 1 - i)) & 1 else "0" for i in range(n))


def prime_implicants(
    minterms: Iterable[int], dont_cares: Iterable[int] = (), n: int | None = None
) -> set[str]:
    """All prime implicants of the ON-set (don't-cares may be absorbed)."""
    ons = set(minterms)
    dcs = set(dont_cares)
    if not ons:
        return set()
    all_terms = ons | dcs
    if n is None:
        n = max(all_terms).bit_length() or 1

    current = {_minterm_to_cube(m, n) for m in all_terms}
    primes: set[str] = set()
    while current:
        merged_away: set[str] = set()
        nxt: set[str] = set()
        for a, b in itertools.combinations(sorted(current), 2):
            m = _merge(a, b)
            if m is not None:
                nxt.add(m)
                merged_away.add(a)
                merged_away.add(b)
        primes |= current - merged_away
        current = nxt
    # Primes that cover only don't-cares are useless.
    return {
        p for p in primes if any(_covers(p, m, n) for m in ons)
    }


def minimize_truth_table(
    minterms: Iterable[int],
    dont_cares: Iterable[int] = (),
    n: int | None = None,
    exact: bool = False,
) -> list[str]:
    """Minimum (or greedy near-minimum) sum-of-products cover.

    Returns a list of cubes covering every ON-minterm.  ``exact=True``
    solves the residual covering problem as a set-cover ILP with the
    in-house solver; the default uses essential primes plus a greedy
    completion (never more cubes than exact, asymptotically log-factor).
    """
    ons = set(minterms)
    if not ons:
        return []
    if n is None:
        n = max(ons | set(dont_cares)).bit_length() or 1
    primes = sorted(prime_implicants(ons, dont_cares, n))

    cover_of = {p: {m for m in ons if _covers(p, m, n)} for p in primes}

    # Essential primes: sole cover of some minterm.
    chosen: list[str] = []
    remaining = set(ons)
    for m in sorted(ons):
        covering = [p for p in primes if m in cover_of[p]]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for p in chosen:
        remaining -= cover_of[p]

    if remaining:
        candidates = [p for p in primes if p not in chosen and cover_of[p] & remaining]
        if exact:
            chosen += _exact_cover(candidates, cover_of, remaining)
        else:
            while remaining:
                best = max(
                    candidates,
                    key=lambda p: (len(cover_of[p] & remaining), -p.count("-") * -1),
                )
                chosen.append(best)
                remaining -= cover_of[best]
                candidates = [p for p in candidates if cover_of[p] & remaining]
    return chosen


def _exact_cover(candidates, cover_of, remaining) -> list[str]:
    from ..milp import Model, sum_expr

    model = Model("set_cover")
    xs = {p: model.add_binary(f"p_{i}") for i, p in enumerate(candidates)}
    for m in remaining:
        covering = [xs[p] for p in candidates if m in cover_of[p]]
        model.add_constraint(sum_expr(covering) >= 1)
    model.minimize(sum_expr(xs.values()))
    sol = model.solve(backend="highs")
    return [p for p in candidates if sol.int_value(xs[p]) == 1]


def cube_to_expr(cube: str, names: Sequence[str]) -> Expr:
    """A cube string as a conjunction of literals over ``names``."""
    lits: list[Expr] = []
    for ch, name in zip(cube, names):
        if ch == "1":
            lits.append(Var(name))
        elif ch == "0":
            lits.append(Not(Var(name)))
    return And(*lits) if lits else TRUE


def minimize_expr(expr: Expr, order: Sequence[str] | None = None, exact: bool = False) -> Expr:
    """Minimize an expression into a two-level sum of products.

    Enumerates the truth table (exponential; small functions only) and
    rebuilds the minimum SOP.
    """
    names = list(order) if order is not None else sorted(expr.variables())
    n = len(names)
    if n == 0:
        return TRUE if expr.evaluate({}) else FALSE
    minterms = []
    for m in range(1 << n):
        env = {name: bool((m >> (n - 1 - i)) & 1) for i, name in enumerate(names)}
        if expr.evaluate(env):
            minterms.append(m)
    if not minterms:
        return FALSE
    if len(minterms) == 1 << n:
        return TRUE
    cubes = minimize_truth_table(minterms, n=n, exact=exact)
    return Or(*[cube_to_expr(c, names) for c in cubes])
