"""Recursive-descent parser for Boolean expressions.

Grammar (lowest to highest precedence)::

    expr    := xor ( ('|' | '+' | 'or')  xor )*
    xor     := term ( '^' term )*
    term    := factor ( ('&' | '*' | 'and') factor )*
    factor  := ('~' | '!' | 'not') factor | atom
    atom    := '0' | '1' | IDENT | '(' expr ')' | IDENT "'"  (postfix not)

Identifiers match ``[A-Za-z_][A-Za-z0-9_.\\[\\]]*`` so bus-style names like
``a[3]`` and hierarchical names like ``u1.q`` parse as single variables.
"""

from __future__ import annotations

import re

from .ast import FALSE, TRUE, And, Expr, Not, Or, Var, Xor

__all__ = ["parse", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed expression text, with position information."""

    def __init__(self, message: str, text: str, pos: int):
        snippet = text[max(0, pos - 20) : pos + 20]
        super().__init__(f"{message} at position {pos}: ...{snippet!r}...")
        self.pos = pos


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<const>[01])(?![A-Za-z0-9_])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.\[\]]*)
  | (?P<op>\||\+|\^|&|\*|~|!|\(|\)|')
    """,
    re.VERBOSE,
)

_KEYWORDS = {"or": "|", "and": "&", "not": "~", "xor": "^"}


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    tokens: list[tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r}", text, pos)
        if m.lastgroup == "ws":
            pos = m.end()
            continue
        value = m.group()
        kind = m.lastgroup or ""
        if kind == "ident" and value.lower() in _KEYWORDS:
            kind, value = "op", _KEYWORDS[value.lower()]
        tokens.append((kind, value, pos))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> tuple[str, str, int] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def take(self) -> tuple[str, str, int]:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input", self.text, len(self.text))
        self.index += 1
        return tok

    def expect_op(self, op: str) -> None:
        tok = self.take()
        if tok[0] != "op" or tok[1] != op:
            raise ParseError(f"expected {op!r}, found {tok[1]!r}", self.text, tok[2])

    def at_op(self, *ops: str) -> bool:
        tok = self.peek()
        return tok is not None and tok[0] == "op" and tok[1] in ops

    # -- grammar -------------------------------------------------------------
    def parse_expr(self) -> Expr:
        parts = [self.parse_xor()]
        while self.at_op("|", "+"):
            self.take()
            parts.append(self.parse_xor())
        return Or(*parts) if len(parts) > 1 else parts[0]

    def parse_xor(self) -> Expr:
        parts = [self.parse_term()]
        while self.at_op("^"):
            self.take()
            parts.append(self.parse_term())
        return Xor(*parts) if len(parts) > 1 else parts[0]

    def parse_term(self) -> Expr:
        parts = [self.parse_factor()]
        while True:
            if self.at_op("&", "*"):
                self.take()
                parts.append(self.parse_factor())
                continue
            # Implicit conjunction by juxtaposition: "a b" or "a ~b" or "a (..)".
            tok = self.peek()
            if tok is not None and (tok[0] in ("ident", "const") or (tok[0] == "op" and tok[1] in ("~", "!", "("))):
                parts.append(self.parse_factor())
                continue
            break
        return And(*parts) if len(parts) > 1 else parts[0]

    def parse_factor(self) -> Expr:
        if self.at_op("~", "!"):
            self.take()
            return Not(self.parse_factor())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        tok = self.take()
        kind, value, pos = tok
        if kind == "const":
            result: Expr = TRUE if value == "1" else FALSE
        elif kind == "ident":
            result = Var(value)
        elif kind == "op" and value == "(":
            result = self.parse_expr()
            self.expect_op(")")
        else:
            raise ParseError(f"unexpected token {value!r}", self.text, pos)
        while self.at_op("'"):
            self.take()
            result = Not(result)
        return result


def parse(text: str) -> Expr:
    """Parse ``text`` into an :class:`~repro.expr.ast.Expr`.

    >>> parse("(a & b) | ~c")
    (a & b) | ~c
    >>> parse("a b' + c")        # PLA-ish syntax also accepted
    (a & ~b) | c
    """
    parser = _Parser(text)
    if parser.peek() is None:
        raise ParseError("empty expression", text, 0)
    expr = parser.parse_expr()
    tok = parser.peek()
    if tok is not None:
        raise ParseError(f"trailing input {tok[1]!r}", text, tok[2])
    return expr
