"""Graph substrate: undirected graphs, 2-coloring, vertex cover, OCT."""

from .bipartite import find_odd_cycle, is_bipartite, two_color
from .decompose import biconnected_components, cyclic_cores
from .flow import Dinic, min_vertex_cut
from .oct import (
    OctResult,
    aligned_odd_cycle_transversal,
    greedy_oct,
    odd_cycle_transversal,
    verify_oct,
)
from .oct_compression import OctBudgetExceeded, oct_iterative_compression
from .product import cartesian_product_k2
from .undirected import UGraph
from .vertex_cover import (
    VertexCoverResult,
    greedy_vertex_cover,
    minimum_vertex_cover,
    nt_kernelize,
)

__all__ = [
    "Dinic",
    "min_vertex_cut",
    "oct_iterative_compression",
    "OctBudgetExceeded",
    "UGraph",
    "two_color",
    "is_bipartite",
    "find_odd_cycle",
    "cartesian_product_k2",
    "biconnected_components",
    "cyclic_cores",
    "aligned_odd_cycle_transversal",
    "greedy_vertex_cover",
    "nt_kernelize",
    "minimum_vertex_cover",
    "VertexCoverResult",
    "odd_cycle_transversal",
    "greedy_oct",
    "verify_oct",
    "OctResult",
]
