"""Bipartiteness testing and 2-coloring.

A crossbar is a complete bipartite graph, so a BDD graph maps to one
wordline/bitline per node exactly when it is bipartite; the 2-coloring
is then the V/H labeling (Section VI-A of the paper).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from .undirected import UGraph

__all__ = ["two_color", "is_bipartite", "find_odd_cycle"]

Node = Hashable


def two_color(
    graph: UGraph,
    nodes: Iterable[Node] | None = None,
    seed_colors: dict[Node, int] | None = None,
) -> dict[Node, int] | None:
    """BFS 2-coloring of the induced subgraph on ``nodes``.

    Returns a mapping node -> {0, 1}, or None if the subgraph contains
    an odd cycle.  ``seed_colors`` pins colors of selected nodes (used
    for alignment constraints); pins that conflict make the coloring
    fail just as an odd cycle would.
    """
    allowed = set(nodes) if nodes is not None else set(graph.nodes())
    color: dict[Node, int] = {}
    pinned = {v: c for v, c in (seed_colors or {}).items() if v in allowed}

    # Pinned nodes seed their components first.  Starting a component at
    # an unpinned node would assign it color 0 arbitrarily and then
    # mis-report a perfectly satisfiable pin elsewhere in the component
    # as a conflict; seeded from the pin, the traversal parity is the
    # component's true parity, so only genuinely contradictory pins
    # (two pins joined by an odd-length path, or an odd cycle) fail.
    starts = list(pinned) + [v for v in allowed if v not in pinned]
    for start in starts:
        if start in color:
            continue
        color[start] = pinned.get(start, 0)
        queue = [start]
        while queue:
            v = queue.pop()
            for u in graph.neighbors(v):
                if u not in allowed:
                    continue
                if u not in color:
                    color[u] = 1 - color[v]
                    if u in pinned and pinned[u] != color[u]:
                        return None
                    queue.append(u)
                elif color[u] == color[v]:
                    return None
    return color


def is_bipartite(graph: UGraph, nodes: Iterable[Node] | None = None) -> bool:
    """Whether the induced subgraph on ``nodes`` is bipartite."""
    return two_color(graph, nodes) is not None


def find_odd_cycle(graph: UGraph) -> list[Node] | None:
    """An explicit odd cycle, or None if the graph is bipartite.

    BFS from each component root; the first same-color edge closes an
    odd cycle through the BFS-tree paths of its endpoints.
    """
    color: dict[Node, int] = {}
    parent: dict[Node, Node | None] = {}

    for start in graph.nodes():
        if start in color:
            continue
        color[start] = 0
        parent[start] = None
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u not in color:
                    color[u] = 1 - color[v]
                    parent[u] = v
                    queue.append(u)
                elif color[u] == color[v]:
                    return _close_cycle(parent, v, u)
    return None


def _close_cycle(parent: dict[Node, Node | None], v: Node, u: Node) -> list[Node]:
    """Cycle through tree paths of ``v`` and ``u`` up to their LCA."""
    path_v, path_u = [v], [u]
    seen = {v: 0}
    x: Node | None = v
    while parent[x] is not None:  # type: ignore[index]
        x = parent[x]  # type: ignore[index]
        seen[x] = len(path_v)
        path_v.append(x)
    x = u
    while x not in seen:
        x = parent[x]  # type: ignore[index,assignment]
        path_u.append(x)
    lca_idx = seen[path_u[-1]]
    cycle = path_v[: lca_idx + 1] + list(reversed(path_u[:-1]))
    return cycle
