"""Witness-carrying lower bounds and their independent verifiers.

The ``repro check`` certificates (L001/L003) and the 3D plane-assignment
optimality tests in :mod:`repro.core.klabel` all rest on two composable
bounds:

* the *OCT transfer bound*: any valid labeling's stitch set is an odd
  cycle transversal of the BDD graph, at every layer count, because the
  parity argument around an odd cycle is plane-independent.  A lower
  bound on the transversal therefore transfers to every K.  This module
  produces it with explicit witnesses — a vertex-disjoint odd-cycle
  packing and, per cyclic core, a feasible fractional matching on the
  core's ``G □ K2`` product (the LP dual of the vertex-cover
  relaxation) — so a consumer can *re-derive* the bound from the
  certificate without re-solving anything;
* the *plane-capacity bound*: a K-layer crossbar has ``K//2 + 1``
  horizontal (even) and ``(K+1)//2`` vertical (odd) nanowire planes.
  With ``n`` nodes and at least ``oct_lb`` stitches, the wires split as
  ``e`` even + ``o`` odd with ``e + o = n + #VH``, ``e >= max(#VH,
  ports)`` (every stitch owns exactly one even wire; every port owns a
  distinct plane-0 wordline) and ``o >= #VH``.  Minimizing
  ``max(ceil(e/P_even), ports) + ceil(o/P_odd)`` over the feasible
  splits — and over the stitch count, which only tightens the bound as
  it grows, so ``oct_lb`` is the sound choice — lower-bounds the
  footprint semiperimeter.  At ``K = 1`` both plane counts are 1 and the
  bound collapses to the planar identity ``n + oct_lb`` exactly.

Verification is deliberately independent of the solvers: the verifier
re-derives the cyclic cores from the graph, re-checks every packed
cycle edge by edge, re-checks dual feasibility of every LP witness
vertex by vertex, and recomputes the capacity formula with integer
arithmetic — a forged certificate (tampered cycles, inflated duals,
wrong plane counts) is rejected with a failure naming the component.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .bipartite import find_odd_cycle
from .decompose import cyclic_cores
from .product import cartesian_product_k2
from .undirected import UGraph

__all__ = [
    "vc_lp_witness",
    "odd_cycle_packing_witness",
    "oct_certificate",
    "verify_oct_certificate",
    "verify_semiperimeter_certificate",
    "layered_capacity_bound",
    "fixed_split_capacity_bound",
    "verify_layered_certificate",
]

#: Numeric slack for dual feasibility / ceil comparisons on LP output.
_TOL = 1e-6


# -- the vertex-cover LP with an explicit dual witness ---------------------------


def vc_lp_witness(graph: UGraph) -> tuple[float, list[tuple[object, object, float]]]:
    """Solve the VC LP relaxation and return a *checkable* bound witness.

    Returns ``(value, matching)`` where ``matching`` is a feasible
    fractional matching — ``(u, v, weight)`` triples with non-negative
    weights summing to at most 1 around every vertex — and ``value`` is
    its total weight.  By weak LP duality any such matching lower-bounds
    the vertex cover (each cover vertex absorbs at most weight 1), so
    the witness *is* the proof: a consumer only has to re-check edge
    membership and the per-vertex sums, not re-run the LP.

    The weights come from the solver's inequality duals; they are
    rescaled into exact feasibility if the solver returns a degenerate
    dual, so ``value`` can be marginally below the LP optimum (never
    above — the bound stays sound).
    """
    nodes = list(graph.nodes())
    edges = list(graph.edges())
    if not nodes or not edges:
        return 0.0, []
    index = {v: i for i, v in enumerate(nodes)}
    rows, cols, data = [], [], []
    for r, (u, v) in enumerate(edges):
        rows.extend((r, r))
        cols.extend((index[u], index[v]))
        data.extend((-1.0, -1.0))
    A_ub = sparse.csr_matrix((data, (rows, cols)), shape=(len(edges), len(nodes)))
    res = linprog(
        np.ones(len(nodes)),
        A_ub=A_ub,
        b_ub=-np.ones(len(edges)),
        bounds=[(0.0, 1.0)] * len(nodes),
        method="highs-ds",
    )
    if res.status != 0:  # pragma: no cover - VC LP is always feasible
        raise RuntimeError(f"vertex cover LP failed: {res.message}")

    weights = np.maximum(0.0, -np.asarray(res.ineqlin.marginals))
    # Repair degenerate duals into exact feasibility: scaling every
    # weight by the worst per-vertex load keeps the witness valid and
    # only ever weakens it.
    load = np.zeros(len(nodes))
    for r, (u, v) in enumerate(edges):
        load[index[u]] += weights[r]
        load[index[v]] += weights[r]
    worst = float(load.max(initial=0.0))
    if worst > 1.0:
        weights = weights / worst
    matching = [
        (u, v, float(w))
        for (u, v), w in zip(edges, weights)
        if w > _TOL
    ]
    return float(sum(w for _, _, w in matching)), matching


def odd_cycle_packing_witness(graph: UGraph) -> list[list[object]]:
    """Greedy vertex-disjoint odd cycles, returned explicitly.

    Each cycle is a closed node walk (consecutive nodes adjacent, last
    adjacent to first) of odd length; the cycles share no vertices.
    Every odd cycle must contain a transversal vertex and disjoint
    cycles need distinct ones, so the *count* lower-bounds the OCT — and
    because the cycles are explicit, the bound is re-checkable without
    re-running the search.
    """
    work = graph.copy()
    cycles: list[list[object]] = []
    while True:
        cycle = find_odd_cycle(work)
        if cycle is None:
            return cycles
        cycles.append(list(cycle))
        for node in cycle:
            work.remove_node(node)


# -- the composed OCT certificate -------------------------------------------------


def _core_order_key(core: UGraph):
    return sorted(repr(v) for v in core.nodes())


def oct_certificate(graph: UGraph) -> dict:
    """The witness-carrying OCT lower bound for ``graph``.

    The transversal decomposes exactly over the graph's cyclic cores
    (``OCT(G) = sum_i OCT(core_i)``), so the LP runs per core on the
    ``core □ K2`` product (Lemma 1's reduction) and the per-core bounds
    ``max(0, ceil(lp_i) - n_i)`` compose by summation.  The second
    certificate is a global vertex-disjoint odd-cycle packing; the
    final ``oct_lb`` is the better of the two.

    Returns a dict with the classic summary fields (``n``, ``cores``,
    ``lp_product``, ``lp_lb``, ``packing_lb``, ``oct_lb``) plus the
    witnesses: ``packing`` (explicit node cycles) and ``lp_witnesses``
    (per core: its node set, the matching triples and their total).
    """
    n = len(graph)
    cores = sorted(cyclic_cores(graph), key=_core_order_key)
    lp_total = 0.0
    lp_lb = 0
    lp_witnesses: list[dict] = []
    for core in cores:
        value, matching = vc_lp_witness(cartesian_product_k2(core))
        lp_total += value
        lp_lb += max(0, math.ceil(value - _TOL) - len(core))
        lp_witnesses.append(
            {
                "nodes": sorted(core.nodes(), key=repr),
                "value": value,
                "matching": [[list(u), list(v), w] for u, v, w in matching],
            }
        )
    packing = odd_cycle_packing_witness(graph)
    packing_lb = len(packing)
    oct_lb = max(lp_lb, packing_lb)
    return {
        "n": n,
        "cores": len(cores),
        "lp_product": lp_total,
        "lp_lb": lp_lb,
        "packing_lb": packing_lb,
        "oct_lb": oct_lb,
        "packing": packing,
        "lp_witnesses": lp_witnesses,
    }


def verify_oct_certificate(graph: UGraph, cert: dict) -> list[str]:
    """Re-check an :func:`oct_certificate` against the graph it claims.

    Returns a list of human-readable failure strings, one per broken
    certificate component (empty = verified).  The check trusts only
    the graph — cores are re-derived, cycles re-walked, matchings
    re-summed — so a certificate with inflated numbers or doctored
    witnesses cannot pass.
    """
    failures: list[str] = []
    n = len(graph)
    if cert.get("n") != n:
        failures.append(f"n: certificate claims {cert.get('n')} nodes, graph has {n}")

    # -- packing: disjoint, odd, and real ---------------------------------------
    used: set = set()
    packing_ok = 0
    for i, cycle in enumerate(cert.get("packing", [])):
        problem = _check_cycle(graph, cycle, used)
        if problem:
            failures.append(f"packing: cycle {i} {problem}")
        else:
            packing_ok += 1
            used.update(cycle)
    claimed_packing = cert.get("packing_lb", 0)
    if claimed_packing > packing_ok:
        failures.append(
            f"packing_lb: claims {claimed_packing} disjoint odd cycles, "
            f"witnesses prove {packing_ok}"
        )

    # -- LP witnesses: feasible matchings on real core products ------------------
    cores = {frozenset(core.nodes()): core for core in cyclic_cores(graph)}
    lp_ok = 0
    seen_cores: set[frozenset] = set()
    for i, witness in enumerate(cert.get("lp_witnesses", [])):
        key = frozenset(witness.get("nodes", ()))
        core = cores.get(key)
        if core is None:
            failures.append(f"lp: witness {i} names a node set that is no cyclic core")
            continue
        if key in seen_cores:
            failures.append(f"lp: witness {i} re-uses an already-counted core")
            continue
        seen_cores.add(key)
        value, problem = _check_matching(
            cartesian_product_k2(core), witness.get("matching", [])
        )
        if problem:
            failures.append(f"lp: witness {i} {problem}")
            continue
        lp_ok += max(0, math.ceil(value - _TOL) - len(core))
    claimed_lp = cert.get("lp_lb", 0)
    if claimed_lp > lp_ok:
        failures.append(
            f"lp_lb: claims a composed LP bound of {claimed_lp}, "
            f"witnesses prove {lp_ok}"
        )

    # -- the combined bound -------------------------------------------------------
    verified_oct = max(min(claimed_lp, lp_ok), min(claimed_packing, packing_ok))
    if cert.get("oct_lb", 0) > verified_oct:
        failures.append(
            f"oct_lb: claims {cert.get('oct_lb')}, witnesses prove {verified_oct}"
        )
    return failures


def _check_cycle(graph: UGraph, cycle, used: set) -> str | None:
    if not isinstance(cycle, (list, tuple)) or len(cycle) < 3:
        return "is not a cycle of length >= 3"
    if len(cycle) % 2 == 0:
        return f"has even length {len(cycle)}"
    if len(set(cycle)) != len(cycle):
        return "repeats a vertex"
    if any(v in used for v in cycle):
        return "shares a vertex with an earlier cycle"
    for a, b in zip(cycle, list(cycle[1:]) + [cycle[0]]):
        if not graph.has_edge(a, b):
            return f"uses the non-edge ({a!r}, {b!r})"
    return None


def _check_matching(product: UGraph, matching) -> tuple[float, str | None]:
    load: dict = {}
    total = 0.0
    for entry in matching:
        try:
            u, v, w = entry
        except (TypeError, ValueError):
            return 0.0, f"has a malformed matching entry {entry!r}"
        u = tuple(u) if isinstance(u, list) else u
        v = tuple(v) if isinstance(v, list) else v
        if not isinstance(w, (int, float)) or w < -_TOL:
            return 0.0, f"has a negative or non-numeric weight on ({u!r}, {v!r})"
        if not product.has_edge(u, v):
            return 0.0, f"puts weight on the non-edge ({u!r}, {v!r})"
        load[u] = load.get(u, 0.0) + w
        load[v] = load.get(v, 0.0) + w
        total += w
    for vertex, weight in load.items():
        if weight > 1.0 + _TOL:
            return 0.0, (
                f"is not a fractional matching: vertex {vertex!r} "
                f"carries weight {weight:.6f} > 1"
            )
    return total, None


def verify_semiperimeter_certificate(graph: UGraph, cert: dict) -> list[str]:
    """Re-check a planar (L001) certificate: OCT witnesses + identity.

    The planar bound is ``s_lb = n + oct_lb`` (Lemma 1), so beyond the
    witness checks the only extra obligation is that the claimed bound
    actually follows from the claimed transversal.
    """
    failures = verify_oct_certificate(graph, cert)
    expected = len(graph) + int(cert.get("oct_lb", 0))
    if cert.get("s_lb") != expected:
        failures.append(
            f"s_lb: claims {cert.get('s_lb')}, the planar identity gives "
            f"n + oct_lb = {expected}"
        )
    return failures


# -- plane-capacity bounds --------------------------------------------------------


def plane_counts(layers: int) -> tuple[int, int]:
    """(horizontal, vertical) nanowire plane counts of a K-layer fabric."""
    if layers < 1:
        raise ValueError(f"layers must be >= 1, got {layers}")
    return layers // 2 + 1, (layers + 1) // 2


def layered_capacity_bound(
    n: int,
    oct_lb: int,
    ports: int,
    layers: int,
    gamma: float | None = None,
) -> dict:
    """The K-layer footprint bound (module docstring, second bullet).

    ``s_lb`` minimizes ``max(ceil(e/P_even), ports) + ceil(o/P_odd)``
    over the feasible even/odd wire splits; monotonicity in the stitch
    count makes ``oct_lb`` (the *minimum* possible stitches) the sound
    instantiation.  With ``gamma`` given, ``obj_lb`` additionally bounds
    the paper's weighted objective ``gamma*S + (1-gamma)*D`` by taking
    the split-wise minimum of the combined expression (``D`` is bounded
    per split by the larger side, and ``R >= ports`` always).  At
    ``layers == 1`` the result is exactly ``n + oct_lb``.
    """
    p_even, p_odd = plane_counts(layers)
    out = {
        "layers": layers,
        "even_planes": p_even,
        "odd_planes": p_odd,
        "ports": ports,
        "oct_lb": oct_lb,
        "s_lb": 0,
        "split_even": 0,
    }
    if gamma is not None:
        out["obj_lb"] = 0.0
    if n <= 0:
        return out
    best_s = None
    best_obj = None
    for even in range(max(oct_lb, ports), n + 1):
        odd = n + oct_lb - even
        r_lb = max(math.ceil(even / p_even), ports)
        c_lb = math.ceil(odd / p_odd)
        s = r_lb + c_lb
        if best_s is None or s < best_s:
            best_s, out["split_even"] = s, even
        if gamma is not None:
            obj = gamma * s + (1.0 - gamma) * max(r_lb, c_lb)
            best_obj = obj if best_obj is None else min(best_obj, obj)
    out["s_lb"] = int(best_s or 0)
    if gamma is not None:
        out["obj_lb"] = float(best_obj or 0.0)
    return out


def fixed_split_capacity_bound(
    even_wires: int, odd_wires: int, ports: int, layers: int
) -> tuple[int, int]:
    """``(s_lb, d_lb)`` for a *known* even/odd wire split.

    Once stage 1 fixes the stitch set and bipartition the wire totals
    per side are no longer adversarial: ``R >= max(ceil(E/P_even),
    ports)`` and ``C >= ceil(O/P_odd)`` hold for every plane assignment,
    which is the bound stage 2's solutions are certified against.
    """
    p_even, p_odd = plane_counts(layers)
    r_lb = max(math.ceil(even_wires / p_even), ports)
    c_lb = math.ceil(odd_wires / p_odd)
    return r_lb + c_lb, max(r_lb, c_lb)


def verify_layered_certificate(
    graph: UGraph, cert: dict, ports: int, layers: int
) -> list[str]:
    """Re-check a layered (L003) certificate independently.

    Runs the full OCT witness verification, then recomputes the plane
    capacities and the closed-form bound from the design's own layer
    count and port set — so a certificate quoting the wrong number of
    planes, a foreign port count or a bound its own ``oct_lb`` cannot
    support is rejected.
    """
    failures = verify_oct_certificate(graph, cert)
    p_even, p_odd = plane_counts(layers)
    if cert.get("layers") != layers:
        failures.append(
            f"plane capacity: certificate covers {cert.get('layers')} layers, "
            f"the design has {layers}"
        )
    if cert.get("even_planes") != p_even or cert.get("odd_planes") != p_odd:
        failures.append(
            f"plane capacity: a {layers}-layer fabric has {p_even} horizontal "
            f"and {p_odd} vertical planes, certificate claims "
            f"{cert.get('even_planes')}/{cert.get('odd_planes')}"
        )
    if cert.get("ports") != ports:
        failures.append(
            f"plane capacity: design pins {ports} port nodes to plane 0, "
            f"certificate claims {cert.get('ports')}"
        )
    expected = layered_capacity_bound(
        len(graph), int(cert.get("oct_lb", 0)), ports, layers
    )["s_lb"]
    if cert.get("s_lb") != expected:
        failures.append(
            f"plane capacity: bound {cert.get('s_lb')} does not match the "
            f"recomputed capacity bound {expected}"
        )
    return failures
