"""Graph decomposition in front of the exact OCT/vertex-cover solves.

Every cycle of a graph lies inside a single biconnected component, so
odd cycles only exist inside non-bipartite blocks.  Bridges, tree parts
and bipartite blocks therefore contribute nothing to an odd cycle
transversal — they are "solved for free" — and the exact solve only has
to run on the *cyclic cores*: the connected unions of non-bipartite
blocks.  Two non-bipartite blocks sharing a cut vertex must stay in the
same core (an optimal transversal may want to delete the shared vertex
once for both blocks), so cores merge blocks through shared vertices
rather than solving per block.

The decomposition is exact: cores are vertex-disjoint, every odd cycle
lies inside exactly one core, and hence

    OCT(G) = sum over cores C of OCT(C)

with the union of per-core transversals an optimal transversal of ``G``.
"""

from __future__ import annotations

from collections.abc import Hashable

from .bipartite import is_bipartite
from .undirected import UGraph

__all__ = ["biconnected_components", "cyclic_cores"]

Node = Hashable


def biconnected_components(graph: UGraph) -> list[UGraph]:
    """The biconnected components (blocks) as edge-induced subgraphs.

    Iterative Hopcroft–Tarjan: the blocks partition the edge set; a
    bridge forms a two-node block of its own.  Isolated nodes belong to
    no block.  Neighbor sets are visited in sorted order so the block
    list is deterministic for orderable (e.g. integer) node types.
    """
    disc: dict[Node, int] = {}
    low: dict[Node, int] = {}
    edge_stack: list[tuple[Node, Node]] = []
    blocks: list[UGraph] = []
    clock = 0

    for root in graph.nodes():
        if root in disc:
            continue
        disc[root] = low[root] = clock
        clock += 1
        work: list[tuple[Node, Node | None, list[Node], int]] = [
            (root, None, _sorted_neighbors(graph, root), 0)
        ]
        while work:
            v, parent, nbrs, i = work[-1]
            if i < len(nbrs):
                work[-1] = (v, parent, nbrs, i + 1)
                u = nbrs[i]
                if u == parent:
                    continue
                if u not in disc:
                    edge_stack.append((v, u))
                    disc[u] = low[u] = clock
                    clock += 1
                    work.append((u, v, _sorted_neighbors(graph, u), 0))
                elif disc[u] < disc[v]:
                    # Back edge to an ancestor.
                    edge_stack.append((v, u))
                    low[v] = min(low[v], disc[u])
                continue
            work.pop()
            if not work:
                continue
            pv = work[-1][0]
            low[pv] = min(low[pv], low[v])
            if low[v] >= disc[pv]:
                # pv is an articulation point (or the root): the edges
                # above (pv, v) on the stack form one block.
                block = UGraph()
                while True:
                    a, b = edge_stack.pop()
                    block.add_edge(a, b, graph.edge_data(a, b))
                    if (a, b) == (pv, v):
                        break
                blocks.append(block)
    return blocks


def _sorted_neighbors(graph: UGraph, v: Node) -> list[Node]:
    nbrs = graph.neighbors(v)
    try:
        return sorted(nbrs)  # type: ignore[type-var]
    except TypeError:
        return sorted(nbrs, key=lambda u: (str(type(u)), repr(u)))


def cyclic_cores(graph: UGraph) -> list[UGraph]:
    """Connected unions of non-bipartite blocks, as edge subgraphs.

    The returned cores are vertex-disjoint and jointly contain every odd
    cycle of ``graph``; everything outside them (tree parts, bridges,
    bipartite blocks) is bipartite once the cores' transversals are
    removed, so an exact OCT solve only needs to run per core.
    """
    odd_blocks = [b for b in biconnected_components(graph) if not is_bipartite(b)]
    if not odd_blocks:
        return []

    # Union-find over blocks through shared (cut) vertices.
    parent = list(range(len(odd_blocks)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    owner: dict[Node, int] = {}
    for idx, block in enumerate(odd_blocks):
        for v in block.nodes():
            if v in owner:
                parent[find(idx)] = find(owner[v])
            else:
                owner[v] = idx

    merged: dict[int, UGraph] = {}
    for idx, block in enumerate(odd_blocks):
        core = merged.setdefault(find(idx), UGraph())
        for u, v in block.edges():
            core.add_edge(u, v, block.edge_data(u, v))
    return [merged[root] for root in sorted(merged)]
