"""Maximum flow (Dinic) and minimum vertex cuts.

Substrate for the iterative-compression OCT algorithm in
:mod:`repro.graphs.oct_compression`: vertex-disjoint separation reduces
to max flow on the vertex-split digraph (each vertex becomes an
``in -> out`` arc of capacity one).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from .undirected import UGraph

__all__ = ["Dinic", "min_vertex_cut"]

Node = Hashable


class Dinic:
    """Dinic's max-flow on an integer-capacity digraph."""

    def __init__(self):
        self._index: dict = {}
        self._adj: list[list[int]] = []
        # Edge arrays: to[e], cap[e]; reverse edge is e ^ 1.
        self._to: list[int] = []
        self._cap: list[int] = []

    def node(self, v) -> int:
        """Intern a node, returning its dense index."""
        idx = self._index.get(v)
        if idx is None:
            idx = len(self._adj)
            self._index[v] = idx
            self._adj.append([])
        return idx

    def add_edge(self, u, v, capacity: int) -> int:
        """Add a directed edge; returns its edge id."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        ui, vi = self.node(u), self.node(v)
        eid = len(self._to)
        self._to.extend((vi, ui))
        self._cap.extend((capacity, 0))
        self._adj[ui].append(eid)
        self._adj[vi].append(eid + 1)
        return eid

    def max_flow(self, source, sink) -> int:
        """Maximum source->sink flow (BFS levels + blocking DFS).

        The augmenting DFS is iterative (explicit edge stack), so
        arbitrarily long augmenting paths cannot hit the interpreter's
        recursion limit.
        """
        s, t = self.node(source), self.node(sink)
        flow = 0
        n = len(self._adj)
        while True:
            level = [-1] * n
            level[s] = 0
            queue = deque([s])
            while queue:
                u = queue.popleft()
                for eid in self._adj[u]:
                    v = self._to[eid]
                    if self._cap[eid] > 0 and level[v] < 0:
                        level[v] = level[u] + 1
                        queue.append(v)
            if level[t] < 0:
                return flow
            iters = [0] * n
            while True:
                pushed = self._augment(s, t, level, iters)
                if not pushed:
                    break
                flow += pushed

    def _augment(self, s: int, t: int, level: list[int], iters: list[int]) -> int:
        """Push flow along one shortest augmenting path (0 when none).

        ``path`` holds the edge ids of the current partial path; a dead
        end retreats one edge and advances the parent's edge pointer, so
        every edge is abandoned at most once per phase (the standard
        blocking-flow accounting).
        """
        adj, to, cap = self._adj, self._to, self._cap
        path: list[int] = []
        u = s
        while True:
            if u == t:
                pushed = min(cap[eid] for eid in path)
                for eid in path:
                    cap[eid] -= pushed
                    cap[eid ^ 1] += pushed
                return pushed
            advanced = False
            while iters[u] < len(adj[u]):
                eid = adj[u][iters[u]]
                v = to[eid]
                if cap[eid] > 0 and level[v] == level[u] + 1:
                    path.append(eid)
                    u = v
                    advanced = True
                    break
                iters[u] += 1
            if not advanced:
                if not path:
                    return 0
                last = path.pop()
                u = to[last ^ 1]  # tail of the abandoned edge
                iters[u] += 1

    def min_cut_reachable(self, source) -> set[int]:
        """Node indices reachable from ``source`` in the residual graph."""
        s = self.node(source)
        seen = {s}
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for eid in self._adj[u]:
                v = self._to[eid]
                if self._cap[eid] > 0 and v not in seen:
                    seen.add(v)
                    queue.append(v)
        return seen

    def index_of(self, v) -> int:
        """Dense index of an interned node (KeyError if unknown)."""
        return self._index[v]


def min_vertex_cut(
    graph: UGraph,
    sources: Iterable[Node],
    sinks: Iterable[Node],
    removable: Iterable[Node],
    limit: int | None = None,
) -> set[Node] | None:
    """Smallest ``S ⊆ removable`` separating ``sources`` from ``sinks``.

    Returns None when no cut of size ``<= limit`` exists.  Vertex
    capacities are realised by node splitting; terminals listed in
    ``removable`` keep unit capacity, so the cut may delete a terminal
    itself (a vertex that is both source and sink *must* then be cut).
    Separation is impossible (None) when a non-removable vertex is both
    a source and a sink, or two non-removable terminals of opposite
    sides are adjacent.
    """
    sources = set(sources)
    sinks = set(sinks)
    removable = set(removable)
    if (sources & sinks) - removable:
        return None

    dinic = Dinic()
    INF = 1 << 40

    def v_in(v):
        return ("in", v)

    def v_out(v):
        return ("out", v)

    for v in graph.nodes():
        cap = 1 if v in removable else INF
        dinic.add_edge(v_in(v), v_out(v), cap)
    for u, v in graph.edges():
        dinic.add_edge(v_out(u), v_in(v), INF)
        dinic.add_edge(v_out(v), v_in(u), INF)
    SRC, SNK = ("S",), ("T",)
    for v in sources:
        dinic.add_edge(SRC, v_in(v), INF)
    for v in sinks:
        dinic.add_edge(v_out(v), SNK, INF)

    flow = dinic.max_flow(SRC, SNK)
    if flow >= INF:
        return None
    if limit is not None and flow > limit:
        return None

    reachable = dinic.min_cut_reachable(SRC)
    cut = set()
    for v in removable:
        if (
            dinic.index_of(v_in(v)) in reachable
            and dinic.index_of(v_out(v)) not in reachable
        ):
            cut.add(v)
    return cut
