"""Odd cycle transversal (OCT).

Minimizing the number of VH labels is exactly finding a minimum odd
cycle transversal of the BDD graph (Section VI-A).  Following the
paper's Lemma 1, the OCT is computed through a minimum vertex cover of
the Cartesian product ``P = G □ K2``:

* ``v`` belongs to the OCT iff *both* copies ``(v,0)`` and ``(v,1)``
  are in the cover;
* otherwise exactly one copy ``(v,c)`` is covered, and ``c`` is a valid
  2-coloring of the remaining bipartite graph — i.e. the V/H labels
  come for free from the same solve.

Instead of one monolithic vertex-cover MILP, the solve first
decomposes the graph into its *cyclic cores* (connected unions of
non-bipartite biconnected blocks, :mod:`repro.graphs.decompose`):
bridges, tree parts and bipartite blocks contain no odd cycle and are
solved for free, and the per-core transversals and LP bounds compose
exactly — ``OCT(G) = sum_i OCT(core_i)``.  The final 2-coloring is
re-derived on the full remainder graph, which stitches the per-core
colorings parity-consistently across cut vertices.

:func:`aligned_odd_cycle_transversal` additionally makes the paper's
Eq. 7 alignment constraint (ports on wordlines) exact: an auxiliary
*hub* node adjacent to every port turns any odd-parity conflict between
two ports into an odd cycle through the hub, so the minimum transversal
of the hub graph that spares the hub is exactly the minimum number of
VH labels over *aligned* labelings.  Sparing (and 2-coloring) the hub
is enforced for free at the product level: by copy-swap symmetry the
hub can be pinned to color 1, which forces ``(hub, 1)`` and every
``(port, 0)`` into the cover and leaves a plain vertex-cover instance.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field

from ..perf import counters
from .bipartite import two_color
from .decompose import cyclic_cores
from .product import cartesian_product_k2
from .undirected import UGraph
from .vertex_cover import minimum_vertex_cover

__all__ = [
    "OctResult",
    "odd_cycle_transversal",
    "aligned_odd_cycle_transversal",
    "greedy_oct",
    "verify_oct",
]

Node = Hashable


@dataclass
class OctResult:
    """An odd cycle transversal plus the induced 2-coloring."""

    oct_set: set
    #: 2-coloring of the nodes outside the OCT (node -> 0/1).
    coloring: dict
    optimal: bool
    lower_bound: float = 0.0
    runtime: float = 0.0
    trace: list = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of transversal vertices (the paper's ``k``)."""
        return len(self.oct_set)


def odd_cycle_transversal(
    graph: UGraph,
    backend: str = "highs",
    time_limit: float | None = None,
    trace_callback=None,
    jobs: int = 1,
    decompose: bool = True,
) -> OctResult:
    """Minimum OCT via vertex cover on ``G □ K2`` (paper Lemma 1).

    With ``decompose`` (the default) the exact solve runs per cyclic
    core; ``decompose=False`` keeps the monolithic product solve for
    cross-checking.  ``jobs > 1`` solves independent cores (and kernel
    components within each core) in parallel worker threads.  With a
    ``time_limit`` — a budget shared by all core solves — the result is
    a valid but possibly non-minimal transversal (``optimal`` reports
    which).  The coloring always covers every non-OCT node.
    """
    deadline = None if time_limit is None else time.monotonic() + time_limit
    cores = cyclic_cores(graph) if decompose else ([graph] if len(graph) else [])
    if decompose:
        counters.increment("oct_cores", len(cores))
        counters.increment(
            "oct_nodes_outside_cores", len(graph) - sum(len(c) for c in cores)
        )
    solves = [(core, None, ()) for core in cores]
    return _combine(graph, _solve_cores(solves, backend, deadline, trace_callback, jobs))


def aligned_odd_cycle_transversal(
    graph: UGraph,
    ports: Iterable[Node],
    backend: str = "highs",
    time_limit: float | None = None,
    trace_callback=None,
    jobs: int = 1,
    decompose: bool = True,
) -> OctResult:
    """Minimum OCT subject to alignment: every surviving port must land
    in one color class per remainder component (so that per-component
    flips can put all ports on wordlines; ports inside the transversal
    are VH and aligned by construction).

    Exact via the hub gadget described in the module docstring.  The
    returned transversal has minimum size among all alignment-feasible
    transversals, and the coloring gives every surviving port the same
    color within its remainder component.
    """
    ports = set(ports) & set(graph.nodes())
    if not ports:
        return odd_cycle_transversal(
            graph, backend=backend, time_limit=time_limit,
            trace_callback=trace_callback, jobs=jobs, decompose=decompose,
        )

    deadline = None if time_limit is None else time.monotonic() + time_limit
    hub = _fresh_node(graph)
    hub_graph = graph.copy()
    for port in sorted(ports):
        hub_graph.add_edge(hub, port)

    cores = cyclic_cores(hub_graph) if decompose else [hub_graph]
    if decompose:
        counters.increment("oct_cores", len(cores))
        counters.increment(
            "oct_nodes_outside_cores",
            len(hub_graph) - sum(len(c) for c in cores),
        )
    solves = []
    for core in cores:
        if hub in core:
            solves.append((core, hub, tuple(sorted(core.neighbors(hub)))))
        else:
            solves.append((core, None, ()))
    return _combine(graph, _solve_cores(solves, backend, deadline, trace_callback, jobs))


def _fresh_node(graph: UGraph) -> Node:
    """A node id not present in ``graph`` (an int below the minimum when
    all nodes are ints, keeping iteration order deterministic)."""
    nodes = list(graph.nodes())
    if all(isinstance(v, int) for v in nodes):
        return min(nodes, default=0) - 1
    return ("__alignment_hub__",)


def _solve_cores(
    solves: list[tuple[UGraph, Node | None, tuple]],
    backend: str,
    deadline: float | None,
    trace_callback,
    jobs: int,
) -> list[dict]:
    if jobs > 1 and len(solves) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=min(jobs, len(solves))) as pool:
            return list(
                pool.map(
                    lambda s: _solve_core(s[0], s[1], s[2], backend, deadline,
                                          trace_callback, jobs),
                    solves,
                )
            )
    return [
        _solve_core(core, hub, hub_ports, backend, deadline, trace_callback, jobs)
        for core, hub, hub_ports in solves
    ]


def _solve_core(
    core: UGraph,
    hub: Node | None,
    hub_ports: tuple,
    backend: str,
    deadline: float | None,
    trace_callback,
    jobs: int,
) -> dict:
    """Exact OCT of one cyclic core (hub-pinned when ``hub`` is set).

    Returns a dict with ``oct_set``, ``optimal``, ``lower_bound`` (on
    this core's transversal size), ``runtime`` and ``trace``.
    """
    remaining = None
    if deadline is not None:
        remaining = max(0.0, deadline - time.monotonic())

    product = cartesian_product_k2(core)
    forced: set = set()
    if hub is not None:
        # Case split on the hub's color; by the copy-swap symmetry of
        # the product, pinning the hub to color 1 loses no solutions.
        # (hub, 1) enters the cover (so the hub is never VH) and
        # (hub, 0) stays out, which forces every (port, 0) neighbor in.
        forced = {(port, 0) for port in hub_ports}
        for node in forced:
            product.remove_node(node)
        product.remove_node((hub, 0))
        product.remove_node((hub, 1))
        forced.add((hub, 1))

    vc = minimum_vertex_cover(
        product, backend=backend, time_limit=remaining,
        trace_callback=trace_callback, jobs=jobs,
    )
    cover = set(vc.cover) | forced

    oct_set: set = set()
    proper = True
    for v in core.nodes():
        if v == hub:
            continue
        in0 = (v, 0) in cover
        in1 = (v, 1) in cover
        if in0 and in1:
            oct_set.add(v)
        elif not in0 and not in1:  # pragma: no cover - twin edge forces one
            proper = False

    # Defensive: an early-stopped solve may return a cover that misses
    # edges, i.e. a non-transversal. Repair greedily on this core only.
    if not proper or two_color(core, set(core.nodes()) - oct_set) is None:
        greedy = greedy_oct(core)
        oct_set = set(greedy.oct_set)
        if hub is not None and hub in oct_set:
            # The greedy repair must spare the hub: delete its surviving
            # port neighbors instead, which always restores alignment.
            oct_set.discard(hub)
            oct_set.update(hub_ports)
        return {
            "oct_set": oct_set,
            "optimal": False,
            "lower_bound": max(0.0, _core_bound(vc.lower_bound, core, forced)),
            "runtime": vc.runtime,
            "trace": list(vc.trace),
        }

    return {
        "oct_set": oct_set,
        "optimal": vc.optimal,
        "lower_bound": max(0.0, _core_bound(vc.lower_bound, core, forced)),
        "runtime": vc.runtime,
        "trace": list(vc.trace),
    }


def _core_bound(vc_bound: float, core: UGraph, forced: set) -> float:
    """Lower bound on this core's transversal size from the VC bound.

    Every core node has at least one covered copy, so the transversal
    size is the total cover size minus the node count; ``forced``
    vertices (hub gadget) are part of the cover but pre-removed from
    the VC instance.
    """
    return vc_bound + len(forced) - len(core)


def _combine(graph: UGraph, solved: list[dict]) -> OctResult:
    oct_set: set = set()
    optimal = True
    lower_bound = 0.0
    runtime = 0.0
    trace: list = []
    for res in solved:
        oct_set |= res["oct_set"]
        optimal = optimal and res["optimal"]
        lower_bound += res["lower_bound"]
        runtime += res["runtime"]
        trace.extend(res["trace"])

    # Stitch the coloring on the full remainder: bridges, tree parts and
    # bipartite blocks were never solved, and a single traversal colors
    # them parity-consistently with the solved cores across cut
    # vertices.
    coloring = two_color(graph, set(graph.nodes()) - oct_set)
    if coloring is None:  # pragma: no cover - union of core OCTs is valid
        greedy = greedy_oct(graph)
        return OctResult(
            oct_set=set(greedy.oct_set),
            coloring=greedy.coloring,
            optimal=False,
            lower_bound=max(0.0, lower_bound),
            runtime=runtime,
            trace=trace,
        )
    return OctResult(
        oct_set=oct_set,
        coloring=coloring,
        optimal=optimal,
        lower_bound=max(0.0, lower_bound),
        runtime=runtime,
        trace=trace,
    )


def greedy_oct(graph: UGraph) -> OctResult:
    """Heuristic OCT: repeatedly delete the highest-degree vertex on a
    conflict edge until the rest 2-colors.

    Fast (near-linear per round) and always valid; used for scalability
    mode and as a fallback when the exact solve is preempted.
    """
    removed: set = set()
    work = graph.copy()
    while True:
        coloring = two_color(work)
        if coloring is not None:
            return OctResult(oct_set=removed, coloring=coloring, optimal=False)
        # Find one conflict edge under a fresh BFS coloring attempt and
        # remove its higher-degree endpoint.
        victim = _find_conflict_victim(work)
        removed.add(victim)
        work.remove_node(victim)


def _find_conflict_victim(graph: UGraph) -> Node:
    color: dict = {}
    for start in graph.nodes():
        if start in color:
            continue
        color[start] = 0
        queue = [start]
        while queue:
            v = queue.pop()
            for u in graph.neighbors(v):
                if u not in color:
                    color[u] = 1 - color[v]
                    queue.append(u)
                elif color[u] == color[v]:
                    return v if graph.degree(v) >= graph.degree(u) else u
    raise AssertionError("no conflict found in non-bipartite graph")


def verify_oct(graph: UGraph, oct_set: set) -> bool:
    """Whether removing ``oct_set`` leaves a bipartite graph."""
    return two_color(graph, set(graph.nodes()) - set(oct_set)) is not None
