"""Odd cycle transversal (OCT).

Minimizing the number of VH labels is exactly finding a minimum odd
cycle transversal of the BDD graph (Section VI-A).  Following the
paper's Lemma 1, the OCT is computed through a minimum vertex cover of
the Cartesian product ``P = G □ K2``:

* ``v`` belongs to the OCT iff *both* copies ``(v,0)`` and ``(v,1)``
  are in the cover;
* otherwise exactly one copy ``(v,c)`` is covered, and ``c`` is a valid
  2-coloring of the remaining bipartite graph — i.e. the V/H labels
  come for free from the same solve.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

from .bipartite import two_color
from .product import cartesian_product_k2
from .undirected import UGraph
from .vertex_cover import minimum_vertex_cover

__all__ = ["OctResult", "odd_cycle_transversal", "greedy_oct", "verify_oct"]

Node = Hashable


@dataclass
class OctResult:
    """An odd cycle transversal plus the induced 2-coloring."""

    oct_set: set
    #: 2-coloring of the nodes outside the OCT (node -> 0/1).
    coloring: dict
    optimal: bool
    lower_bound: float = 0.0
    runtime: float = 0.0
    trace: list = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of transversal vertices (the paper's ``k``)."""
        return len(self.oct_set)


def odd_cycle_transversal(
    graph: UGraph,
    backend: str = "highs",
    time_limit: float | None = None,
    trace_callback=None,
) -> OctResult:
    """Minimum OCT via vertex cover on ``G □ K2`` (paper Lemma 1).

    With a time limit the vertex cover solve may stop early; the result
    is then a valid but possibly non-minimal transversal (``optimal``
    reports which).  The coloring always covers every non-OCT node.
    """
    product = cartesian_product_k2(graph)
    vc = minimum_vertex_cover(
        product, backend=backend, time_limit=time_limit, trace_callback=trace_callback
    )

    oct_set: set = set()
    coloring: dict = {}
    for v in graph.nodes():
        in0 = (v, 0) in vc.cover
        in1 = (v, 1) in vc.cover
        if in0 and in1:
            oct_set.add(v)
        elif in0:
            coloring[v] = 0
        elif in1:
            coloring[v] = 1
        else:  # pragma: no cover - twin edge forces at least one copy
            raise AssertionError(f"vertex cover misses twin edge of {v!r}")

    # The VC-derived coloring is proper by construction when the cover is
    # feasible; re-color defensively if an early-stopped solve broke it.
    if not _coloring_is_proper(graph, oct_set, coloring):
        fixed = two_color(graph, set(graph.nodes()) - oct_set)
        if fixed is None:
            # Not actually a transversal: fall back to greedy repair.
            greedy = greedy_oct(graph)
            return OctResult(
                oct_set=greedy.oct_set,
                coloring=greedy.coloring,
                optimal=False,
                lower_bound=vc.lower_bound - len(graph),
                runtime=vc.runtime,
                trace=vc.trace,
            )
        coloring = fixed

    return OctResult(
        oct_set=oct_set,
        coloring=coloring,
        optimal=vc.optimal,
        lower_bound=max(0.0, vc.lower_bound - len(graph)),
        runtime=vc.runtime,
        trace=vc.trace,
    )


def greedy_oct(graph: UGraph) -> OctResult:
    """Heuristic OCT: repeatedly delete the highest-degree vertex on a
    conflict edge until the rest 2-colors.

    Fast (near-linear per round) and always valid; used for scalability
    mode and as a fallback when the exact solve is preempted.
    """
    removed: set = set()
    work = graph.copy()
    while True:
        coloring = two_color(work)
        if coloring is not None:
            return OctResult(oct_set=removed, coloring=coloring, optimal=False)
        # Find one conflict edge under a fresh BFS coloring attempt and
        # remove its higher-degree endpoint.
        victim = _find_conflict_victim(work)
        removed.add(victim)
        work.remove_node(victim)


def _find_conflict_victim(graph: UGraph) -> Node:
    color: dict = {}
    for start in graph.nodes():
        if start in color:
            continue
        color[start] = 0
        queue = [start]
        while queue:
            v = queue.pop()
            for u in graph.neighbors(v):
                if u not in color:
                    color[u] = 1 - color[v]
                    queue.append(u)
                elif color[u] == color[v]:
                    return v if graph.degree(v) >= graph.degree(u) else u
    raise AssertionError("no conflict found in non-bipartite graph")


def verify_oct(graph: UGraph, oct_set: set) -> bool:
    """Whether removing ``oct_set`` leaves a bipartite graph."""
    return two_color(graph, set(graph.nodes()) - set(oct_set)) is not None


def _coloring_is_proper(graph: UGraph, oct_set: set, coloring: dict) -> bool:
    for u, v in graph.edges():
        if u in oct_set or v in oct_set:
            continue
        if u not in coloring or v not in coloring:
            return False
        if coloring[u] == coloring[v]:
            return False
    return True
