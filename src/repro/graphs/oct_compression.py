"""Odd cycle transversal by iterative compression (Reed–Smith–Vetta).

The classic FPT algorithm, implemented as an independent exact solver to
cross-check the paper's Lemma 1 pipeline (vertex cover on ``G □ K2``):

* vertices are added one at a time, maintaining an *optimal* OCT ``X``
  of the growing induced prefix (adding a vertex changes the optimum by
  at most one, so each step either keeps ``X ∪ {v}`` or compresses it);
* the compression step guesses which part ``S`` of the old transversal
  stays in the graph and how it is 2-colored, turning the residual
  question into an *annotated bipartite coloring* problem;
* since the rest of the graph is bipartite with a rigid per-component
  coloring, the annotation reduces to a minimum vertex cut between
  "keep parity" and "flip parity" demand vertices (solved with Dinic).

Runtime ``O(3^k · poly)`` where ``k`` is the transversal size — usable
whenever the optimum is small, independent of graph size.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable

from .bipartite import two_color
from .flow import min_vertex_cut
from .oct import OctResult
from .undirected import UGraph

__all__ = ["oct_iterative_compression", "OctBudgetExceeded"]

Node = Hashable


class OctBudgetExceeded(RuntimeError):
    """The optimal transversal is larger than the allowed ``max_k``."""


def oct_iterative_compression(graph: UGraph, max_k: int = 10) -> OctResult:
    """Exact minimum OCT via iterative compression.

    Raises :class:`OctBudgetExceeded` when the optimum exceeds
    ``max_k`` (the ``3^k`` enumeration would be impractical anyway).
    """
    order = sorted(graph.nodes(), key=repr)
    prefix: list[Node] = []
    oct_set: set[Node] = set()

    for v in order:
        prefix.append(v)
        sub = graph.subgraph(prefix)
        candidate = oct_set | {v}
        if two_color(sub, set(prefix) - oct_set) is not None:
            # v did not break bipartiteness of the remainder.
            continue
        compressed = _compress(sub, candidate)
        if compressed is not None:
            oct_set = compressed
        else:
            oct_set = candidate
        if len(oct_set) > max_k:
            raise OctBudgetExceeded(
                f"transversal exceeds max_k={max_k} (got {len(oct_set)})"
            )

    coloring = two_color(graph, set(graph.nodes()) - oct_set)
    assert coloring is not None
    return OctResult(
        oct_set=set(oct_set),
        coloring=coloring,
        optimal=True,
        lower_bound=float(len(oct_set)),
    )


def _compress(graph: UGraph, big: set[Node]) -> set[Node] | None:
    """Find an OCT strictly smaller than ``big`` (|big| - 1), or None."""
    budget_total = len(big) - 1
    big_list = sorted(big, key=repr)
    w_nodes = set(graph.nodes()) - big
    base = two_color(graph, w_nodes)
    assert base is not None

    for keep_mask in range(1 << len(big_list)):
        kept = [big_list[i] for i in range(len(big_list)) if (keep_mask >> i) & 1]
        deleted = [x for x in big_list if x not in kept]
        budget = budget_total - len(deleted)
        if budget < 0:
            continue

        for side_mask in range(1 << len(kept)):
            side = {
                s: (side_mask >> i) & 1 for i, s in enumerate(kept)
            }
            # Kept transversal vertices must form a proper pre-coloring.
            if any(
                graph.has_edge(a, b) and side[a] == side[b]
                for a, b in itertools.combinations(kept, 2)
            ):
                continue

            # Demands on the bipartite remainder: neighbor w of a kept
            # vertex s must take color 1 - side[s]; in flip terms the
            # component of w must flip iff base[w] == side[s].
            demand_flip: set[Node] = set()
            demand_keep: set[Node] = set()
            for s in kept:
                for w in graph.neighbors(s):
                    if w not in w_nodes:
                        continue
                    if base[w] == side[s]:
                        demand_flip.add(w)
                    else:
                        demand_keep.add(w)

            sub = graph.subgraph(w_nodes)
            cut = min_vertex_cut(
                sub,
                sources=demand_keep,
                sinks=demand_flip,
                removable=w_nodes,
                limit=budget,
            )
            if cut is not None and len(cut) <= budget:
                return set(deleted) | set(cut)
    return None
