"""Graph products.

Lemma 1 of the paper reduces odd cycle transversal on ``G`` to minimum
vertex cover on the Cartesian product ``P = G □ K2``: two copies of
``G`` with each node joined to its twin.
"""

from __future__ import annotations

from .undirected import UGraph

__all__ = ["cartesian_product_k2"]


def cartesian_product_k2(graph: UGraph) -> UGraph:
    """The Cartesian product ``G □ K2``.

    Nodes are ``(v, 0)`` and ``(v, 1)``; each copy preserves all edges
    of ``G``, and every pair of twins is connected.
    """
    product = UGraph()
    for v in graph.nodes():
        product.add_edge((v, 0), (v, 1))
    for u, v in graph.edges():
        product.add_edge((u, 0), (v, 0))
        product.add_edge((u, 1), (v, 1))
    return product
