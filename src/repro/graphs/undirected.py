"""A small undirected graph with hashable nodes and optional edge data.

The COMPACT pipeline views the (S)BDD as an undirected graph whose nodes
become nanowires and whose edges become memristors.  This class is the
in-house substrate for that view: adjacency sets, per-edge data (the
literal programmed on the memristor), and the handful of operations the
labeling algorithms need.  ``networkx`` is only used in tests as an
independent cross-check.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

__all__ = ["UGraph"]

Node = Hashable


class UGraph:
    """Simple undirected graph (no self-loops, no parallel edges)."""

    def __init__(self):
        self._adj: dict[Node, set[Node]] = {}
        self._edge_data: dict[tuple[Node, Node], object] = {}

    # -- construction ---------------------------------------------------------
    def add_node(self, v: Node) -> None:
        """Add an isolated node (no-op if present)."""
        self._adj.setdefault(v, set())

    def add_edge(self, u: Node, v: Node, data: object = None) -> None:
        """Add edge ``{u, v}``; re-adding replaces its data."""
        if u == v:
            raise ValueError(f"self-loop on {u!r} not allowed")
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._edge_data[self._key(u, v)] = data

    def remove_node(self, v: Node) -> None:
        """Remove a node and its incident edges (no-op if absent)."""
        for u in list(self._adj.get(v, ())):
            self.remove_edge(u, v)
        self._adj.pop(v, None)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove edge ``{u, v}`` if present."""
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._edge_data.pop(self._key(u, v), None)

    @staticmethod
    def _key(u: Node, v: Node) -> tuple[Node, Node]:
        """Canonical (order-independent) key for edge ``{u, v}``."""
        try:
            return (u, v) if u <= v else (v, u)  # type: ignore[operator]
        except TypeError:
            # Mixed node types: fall back to a stable textual order.
            return (u, v) if (str(type(u)), repr(u)) <= (str(type(v)), repr(v)) else (v, u)

    # -- queries -----------------------------------------------------------------
    def __contains__(self, v: Node) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Iterate over edges as canonical (u, v) pairs."""
        return iter(self._edge_data)

    def edge_data(self, u: Node, v: Node) -> object:
        """Data stored on edge ``{u, v}`` (KeyError if absent)."""
        return self._edge_data[self._key(u, v)]

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether edge ``{u, v}`` exists."""
        return v in self._adj.get(u, ())

    def neighbors(self, v: Node) -> set[Node]:
        """The adjacency set of ``v`` (copied)."""
        return set(self._adj[v])

    def degree(self, v: Node) -> int:
        """Number of incident edges."""
        return len(self._adj[v])

    def num_edges(self) -> int:
        """Total edge count."""
        return len(self._edge_data)

    # -- algorithms -----------------------------------------------------------------
    def subgraph(self, keep: Iterable[Node]) -> "UGraph":
        """Induced subgraph on ``keep`` (edge data preserved)."""
        keep_set = set(keep)
        out = UGraph()
        for v in keep_set:
            if v in self._adj:
                out.add_node(v)
        for (u, v), data in self._edge_data.items():
            if u in keep_set and v in keep_set:
                out.add_edge(u, v, data)
        return out

    def copy(self) -> "UGraph":
        """Deep copy of structure (edge data shared by reference)."""
        out = UGraph()
        for v in self._adj:
            out.add_node(v)
        for (u, v), data in self._edge_data.items():
            out.add_edge(u, v, data)
        return out

    def connected_components(self) -> list[set[Node]]:
        """Connected components as node sets."""
        seen: set[Node] = set()
        components: list[set[Node]] = []
        for start in self._adj:
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            seen.add(start)
            while stack:
                v = stack.pop()
                for u in self._adj[v]:
                    if u not in seen:
                        seen.add(u)
                        comp.add(u)
                        stack.append(u)
            components.append(comp)
        return components

    def __repr__(self) -> str:
        return f"UGraph(nodes={len(self._adj)}, edges={self.num_edges()})"
