"""Minimum vertex cover.

The paper computes minimal odd cycle transversals through a minimum
vertex cover ILP (Section VI-A).  This module provides:

* :func:`greedy_vertex_cover` — maximal-matching 2-approximation, used
  as a warm start and upper bound;
* :func:`nt_kernelize` — Nemhauser–Trotter LP-based kernelization: the
  VC linear relaxation is half-integral, and some optimal cover contains
  every LP-1 vertex and no LP-0 vertex, so branch and bound only needs
  to run on the LP-½ kernel;
* :func:`minimum_vertex_cover` — exact solve (kernel + ILP) with a
  choice of MILP backend.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from ..milp import Model, SolveStatus, sum_expr
from .undirected import UGraph

__all__ = [
    "greedy_vertex_cover",
    "nt_kernelize",
    "minimum_vertex_cover",
    "VertexCoverResult",
]

Node = Hashable


@dataclass
class VertexCoverResult:
    """Outcome of :func:`minimum_vertex_cover`."""

    cover: set
    optimal: bool
    lower_bound: float
    runtime: float = 0.0
    #: Convergence trace from the MILP solve of the kernel (may be empty).
    trace: list = field(default_factory=list)


def greedy_vertex_cover(graph: UGraph) -> set:
    """2-approximate cover: both endpoints of a maximal matching."""
    cover: set = set()
    for u, v in graph.edges():
        if u not in cover and v not in cover:
            cover.add(u)
            cover.add(v)
    return cover


def nt_kernelize(graph: UGraph) -> tuple[set, set, UGraph, float]:
    """Nemhauser–Trotter kernelization via the half-integral VC LP.

    Returns ``(forced_in, forced_out, kernel_graph, lp_bound)``:
    vertices with LP value 1 belong to some optimal cover (forced in),
    vertices with value 0 to none (forced out), and the ½-vertices form
    the kernel whose induced subgraph still has to be solved exactly.
    ``lp_bound`` is the LP optimum — a valid lower bound for the full
    problem.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return set(), set(), UGraph(), 0.0
    index = {v: i for i, v in enumerate(nodes)}
    edges = list(graph.edges())
    if not edges:
        return set(), set(nodes), UGraph(), 0.0

    rows, cols, data = [], [], []
    for r, (u, v) in enumerate(edges):
        rows.extend((r, r))
        cols.extend((index[u], index[v]))
        data.extend((-1.0, -1.0))
    A_ub = sparse.csr_matrix((data, (rows, cols)), shape=(len(edges), len(nodes)))
    b_ub = -np.ones(len(edges))
    # Nemhauser–Trotter is only sound on a *vertex* of the LP polytope,
    # where the VC relaxation is half-integral.  Interior-point methods
    # can return non-vertex optima with arbitrary fractional values, so
    # force the dual simplex ("highs-ds") and insist on {0, 1/2, 1}.
    res = linprog(
        np.ones(len(nodes)),
        A_ub=A_ub,
        b_ub=b_ub,
        bounds=[(0.0, 1.0)] * len(nodes),
        method="highs-ds",
    )
    if res.status != 0:  # pragma: no cover - VC LP is always feasible
        raise RuntimeError(f"vertex cover LP failed: {res.message}")

    _HALF_INTEGRAL_TOL = 1e-6
    forced_in: set = set()
    forced_out: set = set()
    kernel_nodes: list = []
    for v, i in index.items():
        x = res.x[i]
        if x > 1.0 - _HALF_INTEGRAL_TOL:
            forced_in.add(v)
        elif x < _HALF_INTEGRAL_TOL:
            forced_out.add(v)
        elif abs(x - 0.5) <= _HALF_INTEGRAL_TOL:
            kernel_nodes.append(v)
        else:  # pragma: no cover - simplex vertices are half-integral
            raise RuntimeError(
                f"vertex cover LP returned a non-half-integral value {x!r} "
                f"for vertex {v!r}; Nemhauser-Trotter requires a vertex solution"
            )
    kernel = graph.subgraph(kernel_nodes)
    return forced_in, forced_out, kernel, float(res.fun)


def minimum_vertex_cover(
    graph: UGraph,
    backend: str = "highs",
    time_limit: float | None = None,
    use_kernelization: bool = True,
    trace_callback=None,
) -> VertexCoverResult:
    """Exact minimum vertex cover.

    Kernelizes with Nemhauser–Trotter (unless disabled), then solves the
    kernel with the requested MILP backend, warm-started by the greedy
    2-approximation.  With a ``time_limit`` the result may be a feasible
    (non-optimal) cover; ``optimal`` reports which.
    """
    if use_kernelization:
        forced_in, _forced_out, kernel, lp_bound = nt_kernelize(graph)
    else:
        forced_in, kernel, lp_bound = set(), graph.copy(), 0.0

    if kernel.num_edges() == 0:
        return VertexCoverResult(cover=set(forced_in), optimal=True, lower_bound=lp_bound)

    model = Model("vertex_cover")
    xs = {v: model.add_binary(f"x_{v}") for v in kernel.nodes()}
    for u, v in kernel.edges():
        model.add_constraint(xs[u] + xs[v] >= 1)
    model.minimize(sum_expr(xs.values()))

    warm = {f"x_{v}": 1.0 for v in greedy_vertex_cover(kernel)}
    for v in kernel.nodes():
        warm.setdefault(f"x_{v}", 0.0)

    sol = model.solve(
        backend=backend,
        time_limit=time_limit,
        initial_solution=warm if backend == "bnb" else None,
        trace_callback=trace_callback,
    )
    if sol.status in (SolveStatus.INFEASIBLE, SolveStatus.NO_SOLUTION):
        # VC is always feasible; fall back to the greedy cover (can only
        # happen when the time limit preempts the root LP).
        cover = set(forced_in) | greedy_vertex_cover(kernel)
        return VertexCoverResult(cover=cover, optimal=False, lower_bound=lp_bound)

    cover = set(forced_in)
    for v in kernel.nodes():
        if sol.int_value(f"x_{v}"):
            cover.add(v)
    return VertexCoverResult(
        cover=cover,
        optimal=sol.is_optimal,
        lower_bound=lp_bound,
        runtime=sol.runtime,
        trace=sol.trace,
    )
