"""Minimum vertex cover.

The paper computes minimal odd cycle transversals through a minimum
vertex cover ILP (Section VI-A).  This module provides:

* :func:`greedy_vertex_cover` — maximal-matching 2-approximation, used
  as a warm start and upper bound;
* :func:`nt_kernelize` — Nemhauser–Trotter LP-based kernelization: the
  VC linear relaxation is half-integral, and some optimal cover contains
  every LP-1 vertex and no LP-0 vertex, so branch and bound only needs
  to run on the LP-½ kernel;
* :func:`minimum_vertex_cover` — exact solve (kernel + ILP) with a
  choice of MILP backend.  The ½-kernel is split into connected
  components — vertex cover decomposes exactly over them — and each
  component becomes its own (much smaller) MILP, optionally solved in
  parallel with ``jobs`` worker threads.
"""

from __future__ import annotations

import time
from collections.abc import Hashable
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from ..milp import Model, SolveStatus, sum_expr
from ..perf import counters
from .undirected import UGraph

__all__ = [
    "greedy_vertex_cover",
    "nt_kernelize",
    "minimum_vertex_cover",
    "VertexCoverResult",
]

Node = Hashable


@dataclass
class VertexCoverResult:
    """Outcome of :func:`minimum_vertex_cover`."""

    cover: set
    optimal: bool
    lower_bound: float
    runtime: float = 0.0
    #: Convergence trace from the MILP solve of the kernel (may be empty).
    trace: list = field(default_factory=list)


def greedy_vertex_cover(graph: UGraph) -> set:
    """2-approximate cover: both endpoints of a maximal matching."""
    cover: set = set()
    for u, v in graph.edges():
        if u not in cover and v not in cover:
            cover.add(u)
            cover.add(v)
    return cover


def nt_kernelize(graph: UGraph) -> tuple[set, set, UGraph, float]:
    """Nemhauser–Trotter kernelization via the half-integral VC LP.

    Returns ``(forced_in, forced_out, kernel_graph, lp_bound)``:
    vertices with LP value 1 belong to some optimal cover (forced in),
    vertices with value 0 to none (forced out), and the ½-vertices form
    the kernel whose induced subgraph still has to be solved exactly.
    ``lp_bound`` is the LP optimum — a valid lower bound for the full
    problem.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return set(), set(), UGraph(), 0.0
    index = {v: i for i, v in enumerate(nodes)}
    edges = list(graph.edges())
    if not edges:
        return set(), set(nodes), UGraph(), 0.0

    rows, cols, data = [], [], []
    for r, (u, v) in enumerate(edges):
        rows.extend((r, r))
        cols.extend((index[u], index[v]))
        data.extend((-1.0, -1.0))
    A_ub = sparse.csr_matrix((data, (rows, cols)), shape=(len(edges), len(nodes)))
    b_ub = -np.ones(len(edges))
    # Nemhauser–Trotter is only sound on a *vertex* of the LP polytope,
    # where the VC relaxation is half-integral.  Interior-point methods
    # can return non-vertex optima with arbitrary fractional values, so
    # force the dual simplex ("highs-ds") and insist on {0, 1/2, 1}.
    res = linprog(
        np.ones(len(nodes)),
        A_ub=A_ub,
        b_ub=b_ub,
        bounds=[(0.0, 1.0)] * len(nodes),
        method="highs-ds",
    )
    if res.status != 0:  # pragma: no cover - VC LP is always feasible
        raise RuntimeError(f"vertex cover LP failed: {res.message}")

    _HALF_INTEGRAL_TOL = 1e-6
    forced_in: set = set()
    forced_out: set = set()
    kernel_nodes: list = []
    for v, i in index.items():
        x = res.x[i]
        if x > 1.0 - _HALF_INTEGRAL_TOL:
            forced_in.add(v)
        elif x < _HALF_INTEGRAL_TOL:
            forced_out.add(v)
        elif abs(x - 0.5) <= _HALF_INTEGRAL_TOL:
            kernel_nodes.append(v)
        else:  # pragma: no cover - simplex vertices are half-integral
            raise RuntimeError(
                f"vertex cover LP returned a non-half-integral value {x!r} "
                f"for vertex {v!r}; Nemhauser-Trotter requires a vertex solution"
            )
    kernel = graph.subgraph(kernel_nodes)
    return forced_in, forced_out, kernel, float(res.fun)


def minimum_vertex_cover(
    graph: UGraph,
    backend: str = "highs",
    time_limit: float | None = None,
    use_kernelization: bool = True,
    trace_callback=None,
    jobs: int = 1,
) -> VertexCoverResult:
    """Exact minimum vertex cover.

    Kernelizes with Nemhauser–Trotter (unless disabled), splits the
    kernel into connected components — a minimum cover is the union of
    per-component minimum covers — and solves each component with the
    requested MILP backend, warm-started by the greedy 2-approximation.
    ``jobs > 1`` solves independent components in parallel worker
    threads.  With a ``time_limit`` (a budget shared by all component
    solves) the result may be a feasible (non-optimal) cover;
    ``optimal`` reports which.
    """
    deadline = None if time_limit is None else time.monotonic() + time_limit
    if use_kernelization:
        forced_in, _forced_out, kernel, lp_bound = nt_kernelize(graph)
    else:
        forced_in, kernel, lp_bound = set(), graph.copy(), 0.0

    if kernel.num_edges() == 0:
        return VertexCoverResult(cover=set(forced_in), optimal=True, lower_bound=lp_bound)

    pieces = [
        kernel.subgraph(comp)
        for comp in kernel.connected_components()
        if len(comp) > 1
    ]
    counters.increment("vc_kernel_milps", len(pieces))
    if len(pieces) > 1:
        counters.increment("vc_kernel_splits")

    if jobs > 1 and len(pieces) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=min(jobs, len(pieces))) as pool:
            results = list(
                pool.map(
                    lambda piece: _solve_piece(piece, backend, deadline, trace_callback),
                    pieces,
                )
            )
    else:
        results = [_solve_piece(piece, backend, deadline, trace_callback) for piece in pieces]

    cover = set(forced_in)
    optimal = True
    runtime = 0.0
    pieces_bound = 0.0
    trace: list = []
    for piece_cover, piece_optimal, piece_bound, piece_runtime, piece_trace in results:
        cover |= piece_cover
        optimal = optimal and piece_optimal
        pieces_bound += piece_bound
        runtime += piece_runtime
        trace.extend(piece_trace)

    # VC(G) = |forced_in| + sum of per-component covers (Nemhauser-
    # Trotter), so per-component solver bounds compose into a bound at
    # least as tight as the global LP's.
    lower_bound = max(lp_bound, len(forced_in) + pieces_bound)
    return VertexCoverResult(
        cover=cover,
        optimal=optimal,
        lower_bound=lower_bound,
        runtime=runtime,
        trace=trace,
    )


def _solve_piece(
    kernel: UGraph, backend: str, deadline: float | None, trace_callback
) -> tuple[set, bool, float, float, list]:
    """Solve one kernel component; returns (cover, optimal, bound, runtime, trace).

    ``bound`` is a proven lower bound on the component's cover size (the
    cover size itself when optimality was proven, else the solver's dual
    bound clamped to be non-negative).
    """
    remaining = None
    if deadline is not None:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            # Budget exhausted before this component's solve started.
            return greedy_vertex_cover(kernel), False, 0.0, 0.0, []

    model = Model("vertex_cover")
    xs = {v: model.add_binary(f"x_{v}") for v in kernel.nodes()}
    for u, v in kernel.edges():
        model.add_constraint(xs[u] + xs[v] >= 1)
    model.minimize(sum_expr(xs.values()))

    warm = {f"x_{v}": 1.0 for v in greedy_vertex_cover(kernel)}
    for v in kernel.nodes():
        warm.setdefault(f"x_{v}", 0.0)

    sol = model.solve(
        backend=backend,
        time_limit=remaining,
        initial_solution=warm if backend == "bnb" else None,
        trace_callback=trace_callback,
    )
    if sol.status in (SolveStatus.INFEASIBLE, SolveStatus.NO_SOLUTION):
        # VC is always feasible; fall back to the greedy cover (can only
        # happen when the time limit preempts the root LP).
        bound = max(0.0, sol.bound) if sol.bound is not None else 0.0
        return greedy_vertex_cover(kernel), False, bound, sol.runtime, list(sol.trace)

    cover = {v for v in kernel.nodes() if sol.int_value(f"x_{v}")}
    if sol.is_optimal:
        bound = float(len(cover))
    else:
        bound = max(0.0, sol.bound) if sol.bound is not None else 0.0
    return cover, sol.is_optimal, bound, sol.runtime, list(sol.trace)
