"""Circuit file formats: PLA, BLIF and a structural Verilog subset."""

from .blif import BlifDoc, BlifError, read_blif, scan_blif, write_blif
from .dot import design_to_dot, netlist_to_dot
from .pla import PlaDoc, PlaError, read_pla, scan_pla, write_pla
from .verilog import VerilogDoc, VerilogError, read_verilog, scan_verilog, write_verilog

__all__ = [
    "netlist_to_dot",
    "design_to_dot",
    "read_pla",
    "write_pla",
    "scan_pla",
    "PlaDoc",
    "PlaError",
    "read_blif",
    "write_blif",
    "scan_blif",
    "BlifDoc",
    "BlifError",
    "read_verilog",
    "write_verilog",
    "scan_verilog",
    "VerilogDoc",
    "VerilogError",
]
