"""Circuit file formats: PLA, BLIF and a structural Verilog subset."""

from .blif import BlifError, read_blif, write_blif
from .dot import design_to_dot, netlist_to_dot
from .pla import PlaError, read_pla, write_pla
from .verilog import VerilogError, read_verilog, write_verilog

__all__ = [
    "netlist_to_dot",
    "design_to_dot",
    "read_pla",
    "write_pla",
    "PlaError",
    "read_blif",
    "write_blif",
    "BlifError",
    "read_verilog",
    "write_verilog",
    "VerilogError",
]
