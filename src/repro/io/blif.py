"""BLIF (Berkeley Logic Interchange Format) reader and writer.

Supports the combinational subset the benchmarks use: ``.model``,
``.inputs``, ``.outputs``, ``.names`` (single-output covers over
``{0, 1, -}``), continuation lines (``\\``) and ``.end``.  Latches and
subcircuits are rejected explicitly; every :class:`BlifError` carries
the source file name and the 1-based line number of the offending
(logical) line.

Parsing is two-phase.  :func:`scan_blif` is a purely structural pass
that collects declarations and ``.names`` blocks with their source
lines; :func:`read_blif` then builds the net table from the *whole*
scan before wiring any fan-ins, so a ``.names`` block may reference a
net that is declared (or driven) only later in the file.  A net that
is never declared anywhere raises a :class:`BlifError` with the exact
``file:line`` — and the netlist linter (:mod:`repro.check`) flags the
same condition as a diagnostic instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.netlist import Gate, Netlist, NetlistError

__all__ = ["read_blif", "write_blif", "scan_blif", "BlifError", "BlifDoc", "NamesBlock"]


class BlifError(ValueError):
    """Raised on malformed or unsupported BLIF text.

    ``source`` and ``line`` (1-based; the first physical line of a
    continued logical line) are folded into the message when known.
    """

    def __init__(self, message: str, *, source: str | None = None, line: int | None = None):
        self.source = source
        self.line = line
        if source is not None and line is not None:
            message = f"{source}:{line}: {message}"
        elif source is not None:
            message = f"{source}: {message}"
        elif line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


@dataclass(frozen=True)
class NamesBlock:
    """One ``.names`` block: signal list plus raw cover rows."""

    line: int
    signals: tuple[str, ...]
    #: Cover rows as ``(line, mask, value)``; single-column rows have
    #: an empty mask.
    cover: tuple[tuple[int, str, str], ...]

    @property
    def output(self) -> str | None:
        return self.signals[-1] if self.signals else None

    @property
    def sources(self) -> tuple[str, ...]:
        return self.signals[:-1] if self.signals else ()


@dataclass
class BlifDoc:
    """The structural view of a BLIF file (first parse phase)."""

    source: str | None = None
    name: str = "blif"
    inputs: list[tuple[str, int]] = field(default_factory=list)
    outputs: list[tuple[str, int]] = field(default_factory=list)
    blocks: list[NamesBlock] = field(default_factory=list)


def scan_blif(text: str, source: str | None = None) -> BlifDoc:
    """Structural first pass: declarations and blocks with line spans.

    Raises :class:`BlifError` only for syntax-level problems (unknown
    or unsupported directives, malformed cover lines, cover lines
    outside a block); every semantic question — undeclared nets,
    duplicate drivers, cover polarity — is left to :func:`read_blif`
    and the linter, which can point at exact lines.
    """
    # Join continuation lines, strip comments; remember where each
    # logical line started so errors can point at it.
    logical_lines: list[tuple[int, str]] = []
    pending = ""
    pending_start = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            if not pending:
                pending_start = lineno
            pending += line[:-1] + " "
            continue
        logical_lines.append((pending_start or lineno, pending + line))
        pending = ""
        pending_start = 0
    if pending:
        logical_lines.append((pending_start, pending))

    doc = BlifDoc(source=source)
    current: list[tuple[int, str, str]] | None = None
    current_header: tuple[int, tuple[str, ...]] | None = None

    def flush_block() -> None:
        nonlocal current, current_header
        if current_header is not None:
            line, signals = current_header
            doc.blocks.append(NamesBlock(line, signals, tuple(current or ())))
        current = None
        current_header = None

    for lineno, line in logical_lines:
        stripped = line.strip()
        if stripped.startswith("."):
            parts = stripped.split()
            key = parts[0]
            flush_block()
            if key == ".model":
                doc.name = parts[1] if len(parts) > 1 else doc.name
            elif key == ".inputs":
                doc.inputs.extend((name, lineno) for name in parts[1:])
            elif key == ".outputs":
                doc.outputs.extend((name, lineno) for name in parts[1:])
            elif key == ".names":
                current = []
                current_header = (lineno, tuple(parts[1:]))
            elif key == ".end":
                break
            elif key in (".latch", ".subckt", ".gate"):
                raise BlifError(
                    f"unsupported BLIF construct {key!r} (combinational only)",
                    source=source, line=lineno,
                )
            else:
                raise BlifError(
                    f"unknown BLIF directive {key!r}", source=source, line=lineno
                )
            continue
        if current is None:
            raise BlifError(
                f"cover line outside .names block: {stripped!r}",
                source=source, line=lineno,
            )
        parts = stripped.split()
        if len(parts) == 1:
            current.append((lineno, "", parts[0]))
        elif len(parts) == 2:
            current.append((lineno, parts[0], parts[1]))
        else:
            raise BlifError(
                f"malformed cover line {stripped!r}", source=source, line=lineno
            )
    flush_block()
    return doc


def read_blif(text: str, source: str | None = None) -> Netlist:
    """Parse BLIF ``text`` into a netlist.

    Each ``.names`` block becomes a two-level AND-OR cone (or a constant
    gate).  Covers with output value ``0`` are complemented.  The net
    table is built from the whole file first, so blocks may reference
    nets declared only later; references to nets that are never
    declared raise with the offending ``file:line``.
    """
    doc = scan_blif(text, source=source)

    # First pass over the scan: the complete net table.  Every net is
    # either a primary input or the output of exactly one block.
    inputs = [name for name, _ in doc.inputs]
    declared: set[str] = set(inputs)
    driven: set[str] = set()
    for block in doc.blocks:
        if not block.signals:
            raise BlifError(
                ".names block without signals", source=source, line=block.line
            )
        out = block.output
        if out in driven:
            raise BlifError(
                f".names {out}: net {out!r} is already driven by an earlier block",
                source=source, line=block.line,
            )
        if out in declared:
            raise BlifError(
                f".names {out}: net {out!r} is a primary input",
                source=source, line=block.line,
            )
        driven.add(out)
    declared |= driven

    nl = Netlist(doc.name, inputs=inputs, outputs=[name for name, _ in doc.outputs])
    for name, lineno in doc.inputs:
        nl.spans[("input", name)] = (source, lineno)
    for name, lineno in doc.outputs:
        nl.spans[("output", name)] = (source, lineno)

    # Second pass: wire fan-ins, now that every reference is resolvable.
    for block in doc.blocks:
        for src in block.sources:
            if src not in declared:
                raise BlifError(
                    f".names {block.output}: references undeclared net {src!r}",
                    source=source, line=block.line,
                )
        _names_to_gates(nl, list(block.sources), block.output, list(block.cover),
                        source, block.line)
        nl.spans[("gate", block.output)] = (source, block.line)
    try:
        nl.check()
    except NetlistError as exc:
        # Residual semantic problems (e.g. combinational cycles) carry
        # at least the source file.
        raise BlifError(str(exc), source=source) from exc
    return nl


def _names_to_gates(
    nl: Netlist,
    srcs: list[str],
    out: str,
    cover: list[tuple[int, str, str]],
    source: str | None,
    block_line: int,
) -> None:
    if not cover:
        nl.add_gate(out, "CONST0", [])
        return
    out_values = {value for _, _, value in cover}
    if out_values == {"1"} or out_values == {"0"}:
        complemented = out_values == {"0"}
    else:
        raise BlifError(
            f".names {out}: mixed cover polarities unsupported",
            source=source, line=block_line,
        )
    if not srcs:
        # Constant: the presence of a "1" (or "0") line sets the value.
        nl.add_gate(out, "CONST0" if complemented else "CONST1", [])
        return

    inv: dict[str, str] = {}

    def inverted(var: str) -> str:
        if var not in inv:
            inv[var] = nl.add_gate(nl.fresh_net(f"inv_{out}_"), "INV", [var])
        return inv[var]

    terms: list[str] = []
    for lineno, mask, _value in cover:
        if len(mask) != len(srcs):
            raise BlifError(
                f".names {out}: cube arity mismatch {mask!r}",
                source=source, line=lineno,
            )
        lits = []
        for ch, var in zip(mask, srcs):
            if ch == "1":
                lits.append(var)
            elif ch == "0":
                lits.append(inverted(var))
            elif ch != "-":
                raise BlifError(
                    f".names {out}: bad cube character {ch!r}",
                    source=source, line=lineno,
                )
        if not lits:
            terms = ["__TAUTOLOGY__"]
            break
        if len(lits) == 1:
            terms.append(lits[0])
        else:
            terms.append(nl.add_gate(nl.fresh_net(f"and_{out}_"), "AND", lits))

    if terms == ["__TAUTOLOGY__"]:
        nl.add_gate(out, "CONST0" if complemented else "CONST1", [])
        return
    if len(terms) == 1:
        nl.add_gate(out, "INV" if complemented else "BUF", terms)
        return
    if complemented:
        nl.add_gate(out, "NOR", terms)
    else:
        nl.add_gate(out, "OR", terms)


def write_blif(netlist: Netlist) -> str:
    """Serialise a netlist to BLIF, one ``.names`` block per gate."""
    lines = [f".model {netlist.name}"]
    lines.append(".inputs " + " ".join(netlist.inputs))
    lines.append(".outputs " + " ".join(netlist.outputs))
    for gate in netlist.topological_gates():
        lines.append(".names " + " ".join((*gate.inputs, gate.output)))
        lines.extend(_gate_cover(gate))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _gate_cover(gate: Gate) -> list[str]:
    k = len(gate.inputs)
    t = gate.gate_type
    if t == "AND":
        return ["1" * k + " 1"]
    if t == "NAND":
        return [("-" * i + "0" + "-" * (k - i - 1) + " 1") for i in range(k)]
    if t == "OR":
        return [("-" * i + "1" + "-" * (k - i - 1) + " 1") for i in range(k)]
    if t == "NOR":
        return ["0" * k + " 1"]
    if t in ("XOR", "XNOR"):
        want_odd = t == "XOR"
        rows = []
        for idx in range(1 << k):
            ones = bin(idx).count("1")
            if (ones % 2 == 1) == want_odd:
                rows.append("".join("1" if (idx >> b) & 1 else "0" for b in range(k)) + " 1")
        return rows
    if t == "INV":
        return ["0 1"]
    if t == "BUF":
        return ["1 1"]
    if t == "MUX":  # inputs: sel, then, else
        return ["11- 1", "0-1 1"]
    if t == "MAJ":
        rows = []
        need = k // 2 + 1
        for idx in range(1 << k):
            if bin(idx).count("1") >= need:
                rows.append("".join("1" if (idx >> b) & 1 else "0" for b in range(k)) + " 1")
        return rows
    if t == "CONST0":
        return []
    if t == "CONST1":
        return ["1"]
    raise BlifError(f"cannot serialise gate type {t}")  # pragma: no cover
