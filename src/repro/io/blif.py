"""BLIF (Berkeley Logic Interchange Format) reader and writer.

Supports the combinational subset the benchmarks use: ``.model``,
``.inputs``, ``.outputs``, ``.names`` (single-output covers over
``{0, 1, -}``), continuation lines (``\\``) and ``.end``.  Latches and
subcircuits are rejected explicitly; every :class:`BlifError` carries
the source file name and the 1-based line number of the offending
(logical) line.
"""

from __future__ import annotations

from ..circuits.netlist import Gate, Netlist

__all__ = ["read_blif", "write_blif", "BlifError"]


class BlifError(ValueError):
    """Raised on malformed or unsupported BLIF text.

    ``source`` and ``line`` (1-based; the first physical line of a
    continued logical line) are folded into the message when known.
    """

    def __init__(self, message: str, *, source: str | None = None, line: int | None = None):
        self.source = source
        self.line = line
        if source is not None and line is not None:
            message = f"{source}:{line}: {message}"
        elif source is not None:
            message = f"{source}: {message}"
        elif line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


def read_blif(text: str, source: str | None = None) -> Netlist:
    """Parse BLIF ``text`` into a netlist.

    Each ``.names`` block becomes a two-level AND-OR cone (or a constant
    gate).  Covers with output value ``0`` are complemented.
    """
    # Join continuation lines, strip comments; remember where each
    # logical line started so errors can point at it.
    logical_lines: list[tuple[int, str]] = []
    pending = ""
    pending_start = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            if not pending:
                pending_start = lineno
            pending += line[:-1] + " "
            continue
        logical_lines.append((pending_start or lineno, pending + line))
        pending = ""
        pending_start = 0
    if pending:
        logical_lines.append((pending_start, pending))

    name = "blif"
    inputs: list[str] = []
    outputs: list[str] = []
    blocks: list[tuple[int, list[str], list[tuple[int, str, str]]]] = []
    current: list[tuple[int, str, str]] | None = None

    for lineno, line in logical_lines:
        stripped = line.strip()
        if stripped.startswith("."):
            parts = stripped.split()
            key = parts[0]
            current = None
            if key == ".model":
                name = parts[1] if len(parts) > 1 else name
            elif key == ".inputs":
                inputs.extend(parts[1:])
            elif key == ".outputs":
                outputs.extend(parts[1:])
            elif key == ".names":
                current = []
                blocks.append((lineno, parts[1:], current))
            elif key == ".end":
                break
            elif key in (".latch", ".subckt", ".gate"):
                raise BlifError(
                    f"unsupported BLIF construct {key!r} (combinational only)",
                    source=source, line=lineno,
                )
            else:
                raise BlifError(
                    f"unknown BLIF directive {key!r}", source=source, line=lineno
                )
            continue
        if current is None:
            raise BlifError(
                f"cover line outside .names block: {stripped!r}",
                source=source, line=lineno,
            )
        parts = stripped.split()
        if len(parts) == 1:
            current.append((lineno, "", parts[0]))
        elif len(parts) == 2:
            current.append((lineno, parts[0], parts[1]))
        else:
            raise BlifError(
                f"malformed cover line {stripped!r}", source=source, line=lineno
            )

    nl = Netlist(name, inputs=inputs, outputs=outputs)
    for lineno, signals, cover in blocks:
        if not signals:
            raise BlifError(".names block without signals", source=source, line=lineno)
        *srcs, out = signals
        _names_to_gates(nl, srcs, out, cover, source, lineno)
    nl.check()
    return nl


def _names_to_gates(
    nl: Netlist,
    srcs: list[str],
    out: str,
    cover: list[tuple[int, str, str]],
    source: str | None,
    block_line: int,
) -> None:
    if not cover:
        nl.add_gate(out, "CONST0", [])
        return
    out_values = {value for _, _, value in cover}
    if out_values == {"1"} or out_values == {"0"}:
        complemented = out_values == {"0"}
    else:
        raise BlifError(
            f".names {out}: mixed cover polarities unsupported",
            source=source, line=block_line,
        )
    if not srcs:
        # Constant: the presence of a "1" (or "0") line sets the value.
        nl.add_gate(out, "CONST0" if complemented else "CONST1", [])
        return

    inv: dict[str, str] = {}

    def inverted(var: str) -> str:
        if var not in inv:
            inv[var] = nl.add_gate(nl.fresh_net(f"inv_{out}_"), "INV", [var])
        return inv[var]

    terms: list[str] = []
    for lineno, mask, _value in cover:
        if len(mask) != len(srcs):
            raise BlifError(
                f".names {out}: cube arity mismatch {mask!r}",
                source=source, line=lineno,
            )
        lits = []
        for ch, var in zip(mask, srcs):
            if ch == "1":
                lits.append(var)
            elif ch == "0":
                lits.append(inverted(var))
            elif ch != "-":
                raise BlifError(
                    f".names {out}: bad cube character {ch!r}",
                    source=source, line=lineno,
                )
        if not lits:
            terms = ["__TAUTOLOGY__"]
            break
        if len(lits) == 1:
            terms.append(lits[0])
        else:
            terms.append(nl.add_gate(nl.fresh_net(f"and_{out}_"), "AND", lits))

    if terms == ["__TAUTOLOGY__"]:
        nl.add_gate(out, "CONST0" if complemented else "CONST1", [])
        return
    if len(terms) == 1:
        nl.add_gate(out, "INV" if complemented else "BUF", terms)
        return
    if complemented:
        nl.add_gate(out, "NOR", terms)
    else:
        nl.add_gate(out, "OR", terms)


def write_blif(netlist: Netlist) -> str:
    """Serialise a netlist to BLIF, one ``.names`` block per gate."""
    lines = [f".model {netlist.name}"]
    lines.append(".inputs " + " ".join(netlist.inputs))
    lines.append(".outputs " + " ".join(netlist.outputs))
    for gate in netlist.topological_gates():
        lines.append(".names " + " ".join((*gate.inputs, gate.output)))
        lines.extend(_gate_cover(gate))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _gate_cover(gate: Gate) -> list[str]:
    k = len(gate.inputs)
    t = gate.gate_type
    if t == "AND":
        return ["1" * k + " 1"]
    if t == "NAND":
        return [("-" * i + "0" + "-" * (k - i - 1) + " 1") for i in range(k)]
    if t == "OR":
        return [("-" * i + "1" + "-" * (k - i - 1) + " 1") for i in range(k)]
    if t == "NOR":
        return ["0" * k + " 1"]
    if t in ("XOR", "XNOR"):
        want_odd = t == "XOR"
        rows = []
        for idx in range(1 << k):
            ones = bin(idx).count("1")
            if (ones % 2 == 1) == want_odd:
                rows.append("".join("1" if (idx >> b) & 1 else "0" for b in range(k)) + " 1")
        return rows
    if t == "INV":
        return ["0 1"]
    if t == "BUF":
        return ["1 1"]
    if t == "MUX":  # inputs: sel, then, else
        return ["11- 1", "0-1 1"]
    if t == "MAJ":
        rows = []
        need = k // 2 + 1
        for idx in range(1 << k):
            if bin(idx).count("1") >= need:
                rows.append("".join("1" if (idx >> b) & 1 else "0" for b in range(k)) + " 1")
        return rows
    if t == "CONST0":
        return []
    if t == "CONST1":
        return ["1"]
    raise BlifError(f"cannot serialise gate type {t}")  # pragma: no cover
