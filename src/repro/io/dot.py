"""Graphviz export for netlists and crossbar designs."""

from __future__ import annotations

from ..circuits.netlist import Netlist
from ..crossbar.design import CrossbarDesign

__all__ = ["netlist_to_dot", "design_to_dot"]


def netlist_to_dot(netlist: Netlist) -> str:
    """Render a gate-level netlist in Graphviz dot syntax."""
    lines = [f'digraph "{netlist.name}" {{', "  rankdir=LR;"]
    for name in netlist.inputs:
        lines.append(f'  "{name}" [shape=triangle, label="{name}"];')
    for gate in netlist.topological_gates():
        shape = "box"
        lines.append(
            f'  "{gate.output}" [shape={shape}, '
            f'label="{gate.gate_type}\\n{gate.output}"];'
        )
        for src in gate.inputs:
            lines.append(f'  "{src}" -> "{gate.output}";')
    for out in netlist.outputs:
        sink = f"__out_{out}"
        lines.append(f'  "{sink}" [shape=doublecircle, label="{out}"];')
        lines.append(f'  "{out}" -> "{sink}";')
    lines.append("}")
    return "\n".join(lines)


def design_to_dot(design: CrossbarDesign) -> str:
    """Render a crossbar design as its row/column bipartite graph.

    Wordlines are boxes on the left rank, bitlines circles on the
    right; each programmed cell is an edge labelled with its literal.
    """
    lines = [f'digraph "{design.name}" {{', "  rankdir=LR;"]
    for r in range(design.num_rows):
        marks = []
        if r == design.input_row:
            marks.append("Vin")
        for out, row in design.output_rows.items():
            if row == r:
                marks.append(out)
        suffix = f"\\n({', '.join(marks)})" if marks else ""
        lines.append(f'  "r{r}" [shape=box, label="WL{r}{suffix}"];')
    for c in range(design.num_cols):
        lines.append(f'  "c{c}" [shape=circle, label="BL{c}"];')
    for r, c, lit in design.cells():
        lines.append(f'  "r{r}" -> "c{c}" [dir=none, label="{lit}"];')
    lines.append("}")
    return "\n".join(lines)
