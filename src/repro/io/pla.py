"""PLA (Berkeley espresso format) reader and writer.

The paper's flow accepts Boolean functions "specified using a Verilog,
BLIF or PLA file" (Section II-C).  This reader supports the common
subset: ``.i``, ``.o``, ``.ilb``, ``.ob``, ``.p``, ``.type fr``/``f``,
cube lines over ``{0, 1, -}`` inputs and ``{0, 1, ~, -}`` outputs, and
``.e``/``.end``.  The function is materialised as a two-level AND-OR
:class:`~repro.circuits.netlist.Netlist`.
"""

from __future__ import annotations

import itertools

from ..circuits.netlist import Netlist

__all__ = ["read_pla", "write_pla", "PlaError"]


class PlaError(ValueError):
    """Raised on malformed PLA text.

    Carries the ``source`` file name and 1-based ``line`` number when
    known; both are folded into the message (``file.pla:12: ...``) so
    CLI users get an actionable one-liner.
    """

    def __init__(self, message: str, *, source: str | None = None, line: int | None = None):
        self.source = source
        self.line = line
        if source is not None and line is not None:
            message = f"{source}:{line}: {message}"
        elif source is not None:
            message = f"{source}: {message}"
        elif line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


def read_pla(text: str, name: str = "pla", source: str | None = None) -> Netlist:
    """Parse PLA ``text`` into a two-level netlist.

    ``source`` (usually the file name) is attached to every
    :class:`PlaError` alongside the offending line number.
    """
    n_in = n_out = None
    in_names: list[str] | None = None
    out_names: list[str] | None = None
    cubes: list[tuple[int, str, str]] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            key = parts[0]
            try:
                if key == ".i":
                    n_in = int(parts[1])
                elif key == ".o":
                    n_out = int(parts[1])
            except (IndexError, ValueError):
                raise PlaError(
                    f"{key} needs one integer argument, got {line!r}",
                    source=source, line=lineno,
                ) from None
            if key == ".ilb":
                in_names = parts[1:]
            elif key == ".ob":
                out_names = parts[1:]
            elif key in (".i", ".o", ".p", ".type", ".phase", ".pair"):
                continue  # counts handled above; rest informational
            elif key in (".e", ".end"):
                break
            else:
                raise PlaError(
                    f"unsupported PLA directive {key!r}", source=source, line=lineno
                )
            continue
        parts = line.split()
        if len(parts) != 2:
            raise PlaError(f"malformed cube line {line!r}", source=source, line=lineno)
        cubes.append((lineno, parts[0], parts[1]))

    if n_in is None or n_out is None:
        raise PlaError("PLA file missing .i or .o", source=source)
    if in_names is None:
        in_names = [f"x{i}" for i in range(n_in)]
    if out_names is None:
        out_names = [f"f{j}" for j in range(n_out)]
    if len(in_names) != n_in or len(out_names) != n_out:
        raise PlaError(".ilb/.ob arity does not match .i/.o", source=source)

    nl = Netlist(name, inputs=list(in_names), outputs=list(out_names))
    inv = {}

    def inverted(var: str) -> str:
        if var not in inv:
            inv[var] = nl.add_gate(nl.fresh_net(f"n_{var}_"), "INV", [var])
        return inv[var]

    terms: dict[str, list[str]] = {out: [] for out in out_names}
    for idx, (lineno, in_part, out_part) in enumerate(cubes):
        if len(in_part) != n_in or len(out_part) != n_out:
            raise PlaError(
                f"cube {idx} has wrong arity: {in_part} {out_part}",
                source=source, line=lineno,
            )
        lits = []
        for bit, ch in enumerate(in_part):
            if ch == "1":
                lits.append(in_names[bit])
            elif ch == "0":
                lits.append(inverted(in_names[bit]))
            elif ch != "-":
                raise PlaError(
                    f"bad input character {ch!r} in cube {idx}",
                    source=source, line=lineno,
                )
        if lits:
            if len(lits) == 1:
                cube_net = nl.add_gate(nl.fresh_net("cube"), "BUF", lits)
            else:
                cube_net = nl.add_gate(nl.fresh_net("cube"), "AND", lits)
        else:
            cube_net = nl.add_gate(nl.fresh_net("cube"), "CONST1", [])
        for j, ch in enumerate(out_part):
            if ch in ("1", "4"):
                terms[out_names[j]].append(cube_net)
            elif ch not in ("0", "-", "~", "2"):
                raise PlaError(
                    f"bad output character {ch!r} in cube {idx}",
                    source=source, line=lineno,
                )

    for out in out_names:
        if terms[out]:
            nl.add_gate(out, "OR", terms[out])
        else:
            nl.add_gate(out, "CONST0", [])
    nl.check()
    return nl


def write_pla(netlist: Netlist, exhaustive_limit: int = 16) -> str:
    """Serialise a netlist to PLA by truth-table enumeration.

    Exponential in the input count; refuses beyond ``exhaustive_limit``
    inputs.  Intended for golden files and round-trip tests.
    """
    n = len(netlist.inputs)
    if n > exhaustive_limit:
        raise PlaError(
            f"write_pla enumerates 2^{n} rows; raise exhaustive_limit to force"
        )
    lines = [
        f".i {n}",
        f".o {len(netlist.outputs)}",
        ".ilb " + " ".join(netlist.inputs),
        ".ob " + " ".join(netlist.outputs),
    ]
    rows = []
    for bits in itertools.product("01", repeat=n):
        env = {name: bit == "1" for name, bit in zip(netlist.inputs, bits)}
        out = netlist.evaluate(env)
        out_bits = "".join("1" if out[o] else "0" for o in netlist.outputs)
        if "1" in out_bits:
            rows.append("".join(bits) + " " + out_bits)
    lines.append(f".p {len(rows)}")
    lines.extend(rows)
    lines.append(".e")
    return "\n".join(lines) + "\n"
