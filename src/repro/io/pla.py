"""PLA (Berkeley espresso format) reader and writer.

The paper's flow accepts Boolean functions "specified using a Verilog,
BLIF or PLA file" (Section II-C).  This reader supports the common
subset: ``.i``, ``.o``, ``.ilb``, ``.ob``, ``.p``, ``.type fr``/``f``,
cube lines over ``{0, 1, -}`` inputs and ``{0, 1, ~, -}`` outputs, and
``.e``/``.end``.  The function is materialised as a two-level AND-OR
:class:`~repro.circuits.netlist.Netlist`.

Parsing is two-phase: :func:`scan_pla` performs a purely structural
pass (directives, declarations and raw cubes, each with its 1-based
source line) and :func:`read_pla` builds the netlist from the scan.
The structural document is what the netlist linter
(:mod:`repro.check`) analyses, so it can diagnose semantic problems
with exact ``file:line`` spans instead of crashing mid-build.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..circuits.netlist import Netlist

__all__ = ["read_pla", "write_pla", "scan_pla", "PlaError", "PlaDoc", "PlaCube"]


class PlaError(ValueError):
    """Raised on malformed PLA text.

    Carries the ``source`` file name and 1-based ``line`` number when
    known; both are folded into the message (``file.pla:12: ...``) so
    CLI users get an actionable one-liner.
    """

    def __init__(self, message: str, *, source: str | None = None, line: int | None = None):
        self.source = source
        self.line = line
        if source is not None and line is not None:
            message = f"{source}:{line}: {message}"
        elif source is not None:
            message = f"{source}: {message}"
        elif line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


@dataclass(frozen=True)
class PlaCube:
    """One raw cube line: input part, output part, source line."""

    line: int
    inputs: str
    outputs: str


@dataclass
class PlaDoc:
    """The structural view of a PLA file (first parse phase).

    ``in_names``/``out_names`` are None when the file has no
    ``.ilb``/``.ob`` and default ``x{i}``/``f{j}`` names apply.  The
    ``*_line`` fields hold the 1-based line of the naming declaration
    (falling back to the ``.i``/``.o`` counts) for diagnostics.
    """

    source: str | None = None
    n_in: int | None = None
    n_out: int | None = None
    in_names: list[str] | None = None
    out_names: list[str] | None = None
    in_names_line: int | None = None
    out_names_line: int | None = None
    #: Value of the ``.type`` directive (``"fr"``, ``"f"``, ...) if any.
    kind: str | None = None
    cubes: list[PlaCube] = field(default_factory=list)

    def input_names(self) -> list[str]:
        if self.in_names is not None:
            return list(self.in_names)
        return [f"x{i}" for i in range(self.n_in or 0)]

    def output_names(self) -> list[str]:
        if self.out_names is not None:
            return list(self.out_names)
        return [f"f{j}" for j in range(self.n_out or 0)]


def scan_pla(text: str, source: str | None = None) -> PlaDoc:
    """Structural first pass: directives and raw cubes with line spans.

    Raises :class:`PlaError` only for problems that leave the file
    uninterpretable (bad directive arguments, unknown directives,
    malformed cube lines, missing ``.i``/``.o``).  Per-cube character
    and arity problems are left to :func:`read_pla` / the linter.
    """
    doc = PlaDoc(source=source)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            key = parts[0]
            try:
                if key == ".i":
                    doc.n_in = int(parts[1])
                    if doc.in_names_line is None:
                        doc.in_names_line = lineno
                elif key == ".o":
                    doc.n_out = int(parts[1])
                    if doc.out_names_line is None:
                        doc.out_names_line = lineno
            except (IndexError, ValueError):
                raise PlaError(
                    f"{key} needs one integer argument, got {line!r}",
                    source=source, line=lineno,
                ) from None
            if key == ".ilb":
                doc.in_names = parts[1:]
                doc.in_names_line = lineno
            elif key == ".ob":
                doc.out_names = parts[1:]
                doc.out_names_line = lineno
            elif key == ".type":
                doc.kind = parts[1] if len(parts) > 1 else None
            elif key in (".i", ".o", ".p", ".phase", ".pair"):
                continue  # counts handled above; rest informational
            elif key in (".e", ".end"):
                break
            else:
                raise PlaError(
                    f"unsupported PLA directive {key!r}", source=source, line=lineno
                )
            continue
        parts = line.split()
        if len(parts) != 2:
            raise PlaError(f"malformed cube line {line!r}", source=source, line=lineno)
        doc.cubes.append(PlaCube(lineno, parts[0], parts[1]))

    if doc.n_in is None or doc.n_out is None:
        raise PlaError("PLA file missing .i or .o", source=source)
    if doc.in_names is not None and len(doc.in_names) != doc.n_in:
        raise PlaError(".ilb/.ob arity does not match .i/.o", source=source)
    if doc.out_names is not None and len(doc.out_names) != doc.n_out:
        raise PlaError(".ilb/.ob arity does not match .i/.o", source=source)
    return doc


def read_pla(text: str, name: str = "pla", source: str | None = None) -> Netlist:
    """Parse PLA ``text`` into a two-level netlist.

    ``source`` (usually the file name) is attached to every
    :class:`PlaError` alongside the offending line number, and the
    returned netlist carries per-declaration spans in ``spans``.
    """
    doc = scan_pla(text, source=source)
    n_in, n_out = doc.n_in, doc.n_out
    in_names = doc.input_names()
    out_names = doc.output_names()

    nl = Netlist(name, inputs=list(in_names), outputs=list(out_names))
    for in_name in in_names:
        nl.spans[("input", in_name)] = (source, doc.in_names_line)
    for out_name in out_names:
        nl.spans[("output", out_name)] = (source, doc.out_names_line)
    inv = {}

    def inverted(var: str) -> str:
        if var not in inv:
            inv[var] = nl.add_gate(nl.fresh_net(f"n_{var}_"), "INV", [var])
        return inv[var]

    terms: dict[str, list[str]] = {out: [] for out in out_names}
    for idx, cube in enumerate(doc.cubes):
        lineno, in_part, out_part = cube.line, cube.inputs, cube.outputs
        if len(in_part) != n_in or len(out_part) != n_out:
            raise PlaError(
                f"cube {idx} has wrong arity: {in_part} {out_part}",
                source=source, line=lineno,
            )
        lits = []
        for bit, ch in enumerate(in_part):
            if ch == "1":
                lits.append(in_names[bit])
            elif ch == "0":
                lits.append(inverted(in_names[bit]))
            elif ch != "-":
                raise PlaError(
                    f"bad input character {ch!r} in cube {idx}",
                    source=source, line=lineno,
                )
        if lits:
            if len(lits) == 1:
                cube_net = nl.add_gate(nl.fresh_net("cube"), "BUF", lits)
            else:
                cube_net = nl.add_gate(nl.fresh_net("cube"), "AND", lits)
        else:
            cube_net = nl.add_gate(nl.fresh_net("cube"), "CONST1", [])
        nl.spans[("gate", cube_net)] = (source, lineno)
        for j, ch in enumerate(out_part):
            if ch in ("1", "4"):
                terms[out_names[j]].append(cube_net)
            elif ch not in ("0", "-", "~", "2"):
                raise PlaError(
                    f"bad output character {ch!r} in cube {idx}",
                    source=source, line=lineno,
                )

    for out in out_names:
        if terms[out]:
            nl.add_gate(out, "OR", terms[out])
        else:
            nl.add_gate(out, "CONST0", [])
        nl.spans[("gate", out)] = (source, doc.out_names_line)
    nl.check()
    return nl


def write_pla(netlist: Netlist, exhaustive_limit: int = 16) -> str:
    """Serialise a netlist to PLA by truth-table enumeration.

    Exponential in the input count; refuses beyond ``exhaustive_limit``
    inputs.  Intended for golden files and round-trip tests.
    """
    n = len(netlist.inputs)
    if n > exhaustive_limit:
        raise PlaError(
            f"write_pla enumerates 2^{n} rows; raise exhaustive_limit to force"
        )
    lines = [
        f".i {n}",
        f".o {len(netlist.outputs)}",
        ".ilb " + " ".join(netlist.inputs),
        ".ob " + " ".join(netlist.outputs),
    ]
    rows = []
    for bits in itertools.product("01", repeat=n):
        env = {name: bit == "1" for name, bit in zip(netlist.inputs, bits)}
        out = netlist.evaluate(env)
        out_bits = "".join("1" if out[o] else "0" for o in netlist.outputs)
        if "1" in out_bits:
            rows.append("".join(bits) + " " + out_bits)
    lines.append(f".p {len(rows)}")
    lines.extend(rows)
    lines.append(".e")
    return "\n".join(lines) + "\n"
