"""Structural Verilog (gate-primitive subset) reader and writer.

Supports the netlist style ISCAS85 distributions use::

    module c17 (N1, N2, N3, N6, N7, N22, N23);
      input N1, N2, N3, N6, N7;
      output N22, N23;
      wire N10, N11, N16, N19;
      nand g0 (N10, N1, N3);
      ...
    endmodule

Recognised primitives: ``and, or, nand, nor, xor, xnor, not, buf``
(first port is the output).  Everything behavioural is out of scope.

Parsing is two-phase: :func:`scan_verilog` collects declarations and
primitive instances with their source lines into a :class:`VerilogDoc`,
and :func:`read_verilog` builds the netlist from the scan.  The netlist
linter (:mod:`repro.check`) consumes the scan document directly so it
can report semantic problems as diagnostics with exact ``file:line``
spans instead of raising mid-build.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..circuits.netlist import Netlist, NetlistError

__all__ = [
    "read_verilog",
    "write_verilog",
    "scan_verilog",
    "VerilogError",
    "VerilogDoc",
    "VerilogInstance",
]


class VerilogError(ValueError):
    """Raised on malformed or unsupported Verilog text.

    ``source`` and ``line`` (1-based, when determinable) are folded into
    the message for actionable CLI one-liners.
    """

    def __init__(self, message: str, *, source: str | None = None, line: int | None = None):
        self.source = source
        self.line = line
        if source is not None and line is not None:
            message = f"{source}:{line}: {message}"
        elif source is not None:
            message = f"{source}: {message}"
        elif line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


_PRIMITIVES = {
    "and": "AND",
    "or": "OR",
    "nand": "NAND",
    "nor": "NOR",
    "xor": "XOR",
    "xnor": "XNOR",
    "not": "INV",
    "buf": "BUF",
}

_MODULE_RE = re.compile(r"\bmodule\s+(\w+)\s*\(([^)]*)\)\s*;", re.S)
_DECL_RE = re.compile(r"\b(input|output|wire)\s+([^;]+);", re.S)
_INST_RE = re.compile(r"\b(and|or|nand|nor|xor|xnor|not|buf)\s+(\w+\s+)?\(([^)]*)\)\s*;", re.S)


@dataclass(frozen=True)
class VerilogInstance:
    """One primitive instance: output first, then fan-in nets."""

    line: int
    primitive: str
    output: str
    inputs: tuple[str, ...]


@dataclass
class VerilogDoc:
    """The structural view of a Verilog module (first parse phase)."""

    source: str | None = None
    name: str = "verilog"
    inputs: list[tuple[str, int]] = field(default_factory=list)
    outputs: list[tuple[str, int]] = field(default_factory=list)
    wires: list[tuple[str, int]] = field(default_factory=list)
    instances: list[VerilogInstance] = field(default_factory=list)


def scan_verilog(text: str, source: str | None = None) -> VerilogDoc:
    """Structural first pass: declarations and instances with line spans.

    Raises :class:`VerilogError` only when the file cannot be read at
    all (no module, missing ``endmodule``, unparseable declarations or
    instances); semantic problems are left to :func:`read_verilog` and
    the linter.
    """
    text = _strip_comments(text)

    def line_at(offset: int) -> int:
        return text.count("\n", 0, offset) + 1

    m = _MODULE_RE.search(text)
    if m is None:
        raise VerilogError("no module declaration found", source=source)
    body_start = m.end()
    end = text.find("endmodule", body_start)
    if end < 0:
        raise VerilogError("missing endmodule", source=source)
    body = text[body_start:end]

    doc = VerilogDoc(source=source, name=m.group(1))
    for decl in _DECL_RE.finditer(body):
        kind, names = decl.groups()
        lineno = line_at(body_start + decl.start())
        signals = [s.strip() for s in names.replace("\n", " ").split(",") if s.strip()]
        for s in signals:
            if not re.fullmatch(r"[A-Za-z_]\w*(\[\d+\])?", s):
                raise VerilogError(
                    f"unsupported signal declaration {s!r}",
                    source=source, line=lineno,
                )
        target = {"input": doc.inputs, "output": doc.outputs, "wire": doc.wires}[kind]
        target.extend((s, lineno) for s in signals)

    for inst in _INST_RE.finditer(body):
        prim, _inst, ports = inst.groups()
        lineno = line_at(body_start + inst.start())
        signals = [s.strip() for s in ports.replace("\n", " ").split(",") if s.strip()]
        if len(signals) < 2:
            raise VerilogError(
                f"primitive {prim} needs an output and inputs",
                source=source, line=lineno,
            )
        doc.instances.append(
            VerilogInstance(lineno, prim, signals[0], tuple(signals[1:]))
        )
    return doc


def read_verilog(text: str, source: str | None = None) -> Netlist:
    """Parse one structural module into a netlist.

    ``source`` (usually the file name) is attached to every
    :class:`VerilogError`, with the 1-based line of the offending
    construct where it can be pinpointed, and the returned netlist
    carries per-declaration spans in ``spans``.
    """
    doc = scan_verilog(text, source=source)
    nl = Netlist(
        doc.name,
        inputs=[s for s, _ in doc.inputs],
        outputs=[s for s, _ in doc.outputs],
    )
    for s, lineno in doc.inputs:
        nl.spans[("input", s)] = (source, lineno)
    for s, lineno in doc.outputs:
        nl.spans[("output", s)] = (source, lineno)
    for inst in doc.instances:
        try:
            nl.add_gate(inst.output, _PRIMITIVES[inst.primitive], inst.inputs)
        except NetlistError as exc:
            raise VerilogError(str(exc), source=source, line=inst.line) from exc
        nl.spans[("gate", inst.output)] = (source, inst.line)
    nl.check()
    return nl


def _strip_comments(text: str) -> str:
    # Keep the newlines of block comments so error line numbers stay true.
    text = re.sub(
        r"/\*.*?\*/", lambda m: "\n" * m.group(0).count("\n") or " ", text, flags=re.S
    )
    text = re.sub(r"//[^\n]*", " ", text)
    return text


def write_verilog(netlist: Netlist) -> str:
    """Serialise a netlist to structural Verilog.

    MUX/MAJ/CONST gates have no primitive; they are expanded through
    :func:`repro.baselines.magic.decompose2`-style rewrites inline.
    """
    expanded = _expand_nonprimitives(netlist)
    ports = expanded.inputs + expanded.outputs
    lines = [f"module {expanded.name} ({', '.join(ports)});"]
    if expanded.inputs:
        lines.append("  input " + ", ".join(expanded.inputs) + ";")
    if expanded.outputs:
        lines.append("  output " + ", ".join(expanded.outputs) + ";")
    wires = [g.output for g in expanded.gates if g.output not in expanded.outputs]
    if wires:
        lines.append("  wire " + ", ".join(wires) + ";")
    rev = {v: k for k, v in _PRIMITIVES.items()}
    for i, gate in enumerate(expanded.topological_gates()):
        prim = rev[gate.gate_type]
        lines.append(f"  {prim} g{i} ({gate.output}, {', '.join(gate.inputs)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _expand_nonprimitives(netlist: Netlist) -> Netlist:
    out = Netlist(netlist.name, inputs=list(netlist.inputs), outputs=list(netlist.outputs))
    for gate in netlist.topological_gates():
        t, ins = gate.gate_type, list(gate.inputs)
        if t in _PRIMITIVES.values():
            out.add_gate(gate.output, t, ins)
        elif t == "MUX":
            sel, a, b = ins
            ns = out.add_gate(out.fresh_net("_vn"), "INV", [sel])
            ta = out.add_gate(out.fresh_net("_vn"), "AND", [sel, a])
            tb = out.add_gate(out.fresh_net("_vn"), "AND", [ns, b])
            out.add_gate(gate.output, "OR", [ta, tb])
        elif t == "MAJ":
            import itertools as _it

            need = len(ins) // 2 + 1
            terms = []
            for combo in _it.combinations(ins, need):
                terms.append(out.add_gate(out.fresh_net("_vn"), "AND", list(combo)))
            out.add_gate(gate.output, "OR", terms)
        elif t == "CONST0":
            # 0 = x & ~x over an arbitrary input (or a tied-off wire).
            probe = netlist.inputs[0] if netlist.inputs else None
            if probe is None:
                raise VerilogError("cannot express constants without inputs")
            np_ = out.add_gate(out.fresh_net("_vn"), "INV", [probe])
            out.add_gate(gate.output, "AND", [probe, np_])
        elif t == "CONST1":
            probe = netlist.inputs[0] if netlist.inputs else None
            if probe is None:
                raise VerilogError("cannot express constants without inputs")
            np_ = out.add_gate(out.fresh_net("_vn"), "INV", [probe])
            out.add_gate(gate.output, "OR", [probe, np_])
        else:  # pragma: no cover
            raise VerilogError(f"cannot serialise gate type {t}")
    out.check()
    return out
