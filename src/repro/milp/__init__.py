"""MILP substrate: modeling layer, branch-and-bound and HiGHS backends."""

from .branch_and_bound import solve_bnb
from .highs_backend import solve_highs
from .model import Constraint, LinExpr, Model, Solution, SolveStatus, Variable, sum_expr

__all__ = [
    "Model",
    "Variable",
    "LinExpr",
    "Constraint",
    "Solution",
    "SolveStatus",
    "sum_expr",
    "solve_bnb",
    "solve_highs",
]
