"""Pure-Python branch and bound for mixed 0-1 / integer linear programs.

LP relaxations are solved with scipy's HiGHS ``linprog``; the search is
best-bound-first with most-fractional branching, an LP-rounding primal
heuristic, and full convergence tracing (elapsed time, best integer,
best bound, relative gap) — the quantities CPLEX reports and the paper
plots in Figures 10 and 11.

The implementation favours clarity over raw speed: it is the
reproduction's stand-in for CPLEX, sized for the synthetic benchmark
suite (hundreds to a few thousand binaries).
"""

from __future__ import annotations

import heapq
import itertools
import math
import time

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .model import Model, Solution, SolveStatus, relative_gap

__all__ = ["solve_bnb"]

_INT_TOL = 1e-6


class _Arrays:
    """Dense objective + sparse constraint matrices extracted from a Model."""

    def __init__(self, model: Model):
        n = len(model.variables)
        self.n = n
        sign = 1.0 if model.sense == "min" else -1.0
        self.sign = sign
        self.c = np.zeros(n)
        for idx, coef in model.objective.coeffs.items():
            self.c[idx] = sign * coef
        self.obj_const = sign * model.objective.constant

        ub_rows, ub_cols, ub_data, ub_rhs = [], [], [], []
        eq_rows, eq_cols, eq_data, eq_rhs = [], [], [], []
        for con in model.constraints:
            # expr sense 0; '<=': expr <= 0; '>=': -expr <= 0.
            if con.sense == "==":
                row = len(eq_rhs)
                for idx, coef in con.expr.coeffs.items():
                    eq_rows.append(row)
                    eq_cols.append(idx)
                    eq_data.append(coef)
                eq_rhs.append(-con.expr.constant)
            else:
                flip = 1.0 if con.sense == "<=" else -1.0
                row = len(ub_rhs)
                for idx, coef in con.expr.coeffs.items():
                    ub_rows.append(row)
                    ub_cols.append(idx)
                    ub_data.append(flip * coef)
                ub_rhs.append(-flip * con.expr.constant)

        self.A_ub = (
            sparse.csr_matrix((ub_data, (ub_rows, ub_cols)), shape=(len(ub_rhs), n))
            if ub_rhs
            else None
        )
        self.b_ub = np.array(ub_rhs) if ub_rhs else None
        self.A_eq = (
            sparse.csr_matrix((eq_data, (eq_rows, eq_cols)), shape=(len(eq_rhs), n))
            if eq_rhs
            else None
        )
        self.b_eq = np.array(eq_rhs) if eq_rhs else None
        self.lb = np.array([v.lb for v in model.variables])
        self.ub = np.array([v.ub for v in model.variables])
        self.int_mask = np.array([v.integer for v in model.variables])
        self.obj_step = self._objective_step(model)

    def _objective_step(self, model: Model) -> float:
        """Granularity of the objective over integer solutions.

        When every variable with a nonzero objective coefficient is
        integer, any feasible objective is a multiple of the GCD of the
        coefficients; LP bounds can be lifted to the next multiple.
        Returns 0.0 when no such step exists.
        """
        from fractions import Fraction

        step = None
        for var in model.variables:
            coef = model.objective.coeffs.get(var.index, 0.0)
            if coef == 0.0:
                continue
            if not var.integer:
                return 0.0
            frac = Fraction(abs(coef)).limit_denominator(10**6)
            if abs(float(frac) - abs(coef)) > 1e-9:
                return 0.0
            step = frac if step is None else _frac_gcd(step, frac)
        return float(step) if step else 0.0

    def lift(self, bound: float) -> float:
        """Round an LP bound up to the next achievable objective value."""
        if self.obj_step <= 0.0:
            return bound
        steps = math.ceil(bound / self.obj_step - 1e-9)
        return steps * self.obj_step

    def lp(self, lb: np.ndarray, ub: np.ndarray):
        """Solve the LP relaxation under the given variable bounds."""
        return linprog(
            self.c,
            A_ub=self.A_ub,
            b_ub=self.b_ub,
            A_eq=self.A_eq,
            b_eq=self.b_eq,
            bounds=np.column_stack([lb, ub]),
            method="highs",
        )


def solve_bnb(
    model: Model,
    time_limit: float | None = None,
    gap_tol: float = 1e-6,
    initial_solution: dict[str, float] | None = None,
    trace_callback=None,
    node_limit: int | None = None,
) -> Solution:
    """Solve ``model`` by LP-based branch and bound.

    See :meth:`repro.milp.model.Model.solve` for the parameters.  The
    returned :class:`~repro.milp.model.Solution` carries the full
    convergence ``trace``; ``status`` is ``optimal`` when the gap closed,
    ``feasible`` when a limit stopped the search with an incumbent.
    """
    start = time.monotonic()
    if not model.variables:
        obj = model.objective.constant
        return Solution(
            status=SolveStatus.OPTIMAL, objective=obj, bound=obj, gap=0.0,
            runtime=_elapsed(start), trace=[(0.0, obj, obj, 0.0)],
        )
    arrays = _Arrays(model)
    n = arrays.n
    names = [v.name for v in model.variables]

    incumbent_obj: float | None = None  # in internal (minimisation) sign
    incumbent_x: np.ndarray | None = None
    trace: list[tuple[float, float | None, float, float | None]] = []

    def record(bound: float) -> None:
        elapsed = time.monotonic() - start
        inc_ext = _external(incumbent_obj, arrays)
        bnd_ext = _external(bound, arrays)
        gap = relative_gap(incumbent_obj, bound)
        trace.append((elapsed, inc_ext, bnd_ext, gap))
        if trace_callback is not None:
            trace_callback(elapsed, inc_ext, bnd_ext, gap)

    # Warm start.
    if initial_solution is not None and model.check_feasible(initial_solution):
        incumbent_x = np.array(
            [float(initial_solution.get(name, 0.0)) for name in names]
        )
        incumbent_obj = float(arrays.c @ incumbent_x)

    # Root node.
    root = arrays.lp(arrays.lb, arrays.ub)
    if root.status == 2:  # infeasible
        return Solution(status=SolveStatus.INFEASIBLE, objective=None, runtime=_elapsed(start))
    if root.status == 3:  # unbounded
        return Solution(status=SolveStatus.UNBOUNDED, objective=None, runtime=_elapsed(start))

    counter = itertools.count()
    # Heap entries: (lp_bound, -depth, tiebreak, lb, ub, lp_solution).
    # Best bound first; on plateaus prefer deeper nodes (diving), which
    # finds improving incumbents much sooner.
    heap: list[tuple[float, int, int, np.ndarray, np.ndarray, np.ndarray]] = []
    root_bound = arrays.lift(root.fun)
    heapq.heappush(
        heap, (root_bound, 0, next(counter), arrays.lb.copy(), arrays.ub.copy(), root.x)
    )
    best_bound = root_bound
    record(best_bound)
    last_record = time.monotonic()
    trace_interval = 1.0
    deadline = None if time_limit is None else start + time_limit

    # Initial dive for a first incumbent when none was supplied.
    if incumbent_obj is None:
        dived = _dive(arrays, arrays.lb, arrays.ub, root.x, deadline)
        if dived is not None:
            incumbent_obj = float(arrays.c @ dived)
            incumbent_x = dived
            record(best_bound)
            last_record = time.monotonic()

    nodes_explored = 0
    dive_period = 512
    status = SolveStatus.OPTIMAL

    while heap:
        now = time.monotonic()
        if time_limit is not None and now - start > time_limit:
            status = SolveStatus.FEASIBLE if incumbent_obj is not None else SolveStatus.NO_SOLUTION
            break
        if node_limit is not None and nodes_explored >= node_limit:
            status = SolveStatus.FEASIBLE if incumbent_obj is not None else SolveStatus.NO_SOLUTION
            break
        if now - last_record >= trace_interval:
            record(best_bound)
            last_record = now

        lp_bound, neg_depth, _, lb, ub, x = heapq.heappop(heap)
        if incumbent_obj is not None and lp_bound >= incumbent_obj - gap_tol * max(1.0, abs(incumbent_obj)):
            continue  # pruned by bound
        nodes_explored += 1

        if lp_bound > best_bound:
            best_bound = lp_bound
            record(best_bound)
            last_record = time.monotonic()
            gap = relative_gap(incumbent_obj, best_bound)
            if gap is not None and gap <= gap_tol:
                break

        frac = _fractional(x, arrays.int_mask)
        if frac is None:
            # Integral LP optimum: new incumbent candidate.
            if incumbent_obj is None or lp_bound < incumbent_obj - 1e-12:
                incumbent_obj = lp_bound
                incumbent_x = np.round(x * (arrays.int_mask)) + x * (~arrays.int_mask)
                record(best_bound)
                last_record = time.monotonic()
            continue

        # Primal heuristics: cheap rounding frequently, a dive from the
        # current node periodically.
        if incumbent_obj is None or nodes_explored % 64 == 0:
            cand = _round_heuristic(arrays, x)
            if cand is not None:
                cand_obj = float(arrays.c @ cand)
                if incumbent_obj is None or cand_obj < incumbent_obj - 1e-12:
                    incumbent_obj, incumbent_x = cand_obj, cand
                    record(best_bound)
                    last_record = time.monotonic()
        if nodes_explored % dive_period == 0:
            dived = _dive(arrays, lb, ub, x, deadline)
            if dived is not None:
                cand_obj = float(arrays.c @ dived)
                if incumbent_obj is None or cand_obj < incumbent_obj - 1e-12:
                    incumbent_obj, incumbent_x = cand_obj, dived
                    record(best_bound)
                    last_record = time.monotonic()

        branch_idx = frac
        xv = x[branch_idx]
        for direction in ("down", "up"):
            lb2, ub2 = lb.copy(), ub.copy()
            if direction == "down":
                ub2[branch_idx] = math.floor(xv)
            else:
                lb2[branch_idx] = math.ceil(xv)
            if lb2[branch_idx] > ub2[branch_idx]:
                continue
            child = arrays.lp(lb2, ub2)
            if child.status != 0:
                continue
            child_bound = arrays.lift(child.fun)
            if incumbent_obj is not None and child_bound >= incumbent_obj - 1e-12:
                continue
            heapq.heappush(
                heap, (child_bound, neg_depth - 1, next(counter), lb2, ub2, child.x)
            )

    else:
        # Queue exhausted: incumbent (if any) is optimal.
        if incumbent_obj is not None:
            best_bound = incumbent_obj
            status = SolveStatus.OPTIMAL
        else:
            status = SolveStatus.INFEASIBLE

    if heap and status == SolveStatus.OPTIMAL and incumbent_obj is not None:
        # Broke out on gap closure; bound equals incumbent within tolerance.
        best_bound = max(best_bound, min(entry[0] for entry in heap))

    record(best_bound if incumbent_obj is None else min(best_bound, incumbent_obj) if status == SolveStatus.OPTIMAL else best_bound)

    values = {}
    if incumbent_x is not None:
        for i, name in enumerate(names):
            v = incumbent_x[i]
            values[name] = float(round(v)) if arrays.int_mask[i] else float(v)

    inc_ext = _external(incumbent_obj, arrays)
    bnd_ext = _external(best_bound, arrays)
    return Solution(
        status=status if incumbent_obj is not None or status in (SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED) else SolveStatus.NO_SOLUTION,
        objective=inc_ext,
        values=values,
        bound=bnd_ext,
        gap=relative_gap(incumbent_obj, best_bound),
        runtime=_elapsed(start),
        nodes_explored=nodes_explored,
        trace=trace,
    )


def _frac_gcd(a, b):
    from fractions import Fraction

    return Fraction(
        math.gcd(a.numerator * b.denominator, b.numerator * a.denominator),
        a.denominator * b.denominator,
    )


def _elapsed(start: float) -> float:
    return time.monotonic() - start


def _external(internal: float | None, arrays: _Arrays) -> float | None:
    """Convert an internal minimisation objective back to the model sense."""
    if internal is None:
        return None
    return arrays.sign * (internal + arrays.obj_const) if arrays.sign < 0 else internal + arrays.obj_const


def _fractional(x: np.ndarray, int_mask: np.ndarray) -> int | None:
    """Index of the most fractional integer variable, or None if integral."""
    frac = np.abs(x - np.round(x))
    frac[~int_mask] = 0.0
    if float(frac.max(initial=0.0)) <= _INT_TOL:
        return None
    # Prefer the fractional variable closest to 0.5.
    score = np.where(frac > _INT_TOL, -np.abs(frac - 0.5), -np.inf)
    return int(np.argmax(score))


def _round_heuristic(arrays: _Arrays, x: np.ndarray) -> np.ndarray | None:
    """Round the LP point and accept it if it satisfies all constraints.

    Tries nearest rounding and ceiling-at-½ (the latter is feasible by
    construction for covering constraints such as vertex cover).
    """
    best = None
    for mode in ("nearest", "ceil_half"):
        cand = x.copy()
        ints = cand[arrays.int_mask]
        if mode == "nearest":
            ints = np.round(ints)
        else:
            ints = np.floor(ints + 0.5 + 1e-9)
        cand[arrays.int_mask] = ints
        cand = np.clip(cand, arrays.lb, arrays.ub)
        if arrays.A_ub is not None and np.any(arrays.A_ub @ cand > arrays.b_ub + 1e-7):
            continue
        if arrays.A_eq is not None and np.any(
            np.abs(arrays.A_eq @ cand - arrays.b_eq) > 1e-7
        ):
            continue
        if best is None or float(arrays.c @ cand) < float(arrays.c @ best):
            best = cand
    return best


def _dive(
    arrays: _Arrays,
    lb: np.ndarray,
    ub: np.ndarray,
    x: np.ndarray,
    deadline: float | None,
    max_steps: int = 400,
) -> np.ndarray | None:
    """Depth-first dive: fix fractional variables one at a time.

    A classic MIP primal heuristic — follows the LP, fixing the most
    fractional variable to its nearest integer (backtracking once to the
    other value on infeasibility), until the LP optimum is integral.
    """
    lb, ub = lb.copy(), ub.copy()
    for _ in range(max_steps):
        if deadline is not None and time.monotonic() > deadline:
            return None
        idx = _fractional(x, arrays.int_mask)
        if idx is None:
            out = x.copy()
            out[arrays.int_mask] = np.round(out[arrays.int_mask])
            return out
        value = math.floor(x[idx] + 0.5)
        tried = []
        for v in (value, 1 - value if ub[idx] <= 1 else value + 1):
            if v < lb[idx] or v > ub[idx] or v in tried:
                continue
            tried.append(v)
            lb2, ub2 = lb.copy(), ub.copy()
            lb2[idx] = ub2[idx] = v
            res = arrays.lp(lb2, ub2)
            if res.status == 0:
                lb, ub, x = lb2, ub2, res.x
                break
        else:
            return None
    return None
