"""scipy MILP (HiGHS) backend for the modeling layer.

Fast reference solves.  HiGHS does not expose an incumbent/bound trace
through scipy, so ``Solution.trace`` contains just the final point; use
the ``bnb`` backend when convergence data is needed (Figures 10/11).
"""

from __future__ import annotations

import time

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from .model import Model, Solution, SolveStatus, relative_gap

__all__ = ["solve_highs"]


def solve_highs(model: Model, time_limit: float | None = None, gap_tol: float = 1e-6) -> Solution:
    """Solve ``model`` with scipy's HiGHS MILP."""
    start = time.monotonic()
    n = len(model.variables)
    sign = 1.0 if model.sense == "min" else -1.0
    if n == 0:
        obj = model.objective.constant
        return Solution(
            status=SolveStatus.OPTIMAL, objective=obj, bound=obj, gap=0.0,
            runtime=time.monotonic() - start, trace=[(0.0, obj, obj, 0.0)],
        )

    c = np.zeros(n)
    for idx, coef in model.objective.coeffs.items():
        c[idx] = sign * coef

    rows, cols, data, lo, hi = [], [], [], [], []
    for con in model.constraints:
        r = len(lo)
        for idx, coef in con.expr.coeffs.items():
            rows.append(r)
            cols.append(idx)
            data.append(coef)
        rhs = -con.expr.constant
        if con.sense == "<=":
            lo.append(-np.inf)
            hi.append(rhs)
        elif con.sense == ">=":
            lo.append(rhs)
            hi.append(np.inf)
        else:
            lo.append(rhs)
            hi.append(rhs)

    constraints = []
    if lo:
        A = sparse.csr_matrix((data, (rows, cols)), shape=(len(lo), n))
        constraints.append(LinearConstraint(A, np.array(lo), np.array(hi)))

    bounds = Bounds(
        np.array([v.lb for v in model.variables]),
        np.array([v.ub for v in model.variables]),
    )
    integrality = np.array([1 if v.integer else 0 for v in model.variables])

    options: dict = {"mip_rel_gap": gap_tol}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)

    res = milp(
        c,
        constraints=constraints,
        bounds=bounds,
        integrality=integrality,
        options=options,
    )
    runtime = time.monotonic() - start

    if res.status == 2:
        return Solution(status=SolveStatus.INFEASIBLE, objective=None, runtime=runtime)
    if res.x is None:
        return Solution(status=SolveStatus.NO_SOLUTION, objective=None, runtime=runtime)

    values = {}
    for i, var in enumerate(model.variables):
        v = float(res.x[i])
        values[var.name] = float(round(v)) if var.integer else v

    internal_obj = float(c @ res.x) + sign * model.objective.constant
    objective = sign * internal_obj if sign < 0 else internal_obj
    bound_internal = getattr(res, "mip_dual_bound", None)
    if bound_internal is None or not np.isfinite(bound_internal):
        bound_internal = float(c @ res.x)
    bound_total = bound_internal + sign * model.objective.constant
    bound = sign * bound_total if sign < 0 else bound_total
    gap = getattr(res, "mip_gap", None)
    if gap is None:
        gap = relative_gap(internal_obj, bound_total)

    status = SolveStatus.OPTIMAL if res.status == 0 else SolveStatus.FEASIBLE
    elapsed = runtime
    return Solution(
        status=status,
        objective=objective,
        values=values,
        bound=bound,
        gap=gap,
        runtime=runtime,
        nodes_explored=int(getattr(res, "mip_node_count", 0) or 0),
        trace=[(elapsed, objective, bound, gap)],
    )
