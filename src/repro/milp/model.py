"""Mixed-integer linear programming modeling layer.

The paper solves its VH-labeling formulations with CPLEX.  This package
is the offline stand-in: a small modeling API (variables, linear
expressions, constraints) plus two interchangeable solvers —

* :mod:`repro.milp.branch_and_bound` — a pure-Python best-bound branch
  and bound over scipy's HiGHS LP relaxation.  It records an
  (elapsed time, best integer, best bound, relative gap) trace, which is
  what Figures 10 and 11 of the paper plot.
* :mod:`repro.milp.highs_backend` — scipy's ``milp`` (HiGHS) for fast
  reference solves.

Usage::

    m = Model("vc")
    x = {v: m.add_binary(f"x_{v}") for v in nodes}
    for u, v in edges:
        m.add_constraint(x[u] + x[v] >= 1)
    m.minimize(sum_expr(x.values()))
    sol = m.solve(time_limit=60)
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field

__all__ = [
    "Model",
    "Variable",
    "LinExpr",
    "Constraint",
    "Solution",
    "SolveStatus",
    "sum_expr",
]


class SolveStatus:
    """Solver outcome constants."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # stopped at time limit with an incumbent
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NO_SOLUTION = "no_solution"  # stopped with no incumbent found


@dataclass(frozen=True)
class Variable:
    """A decision variable (identified by index within its model)."""

    index: int
    name: str
    lb: float
    ub: float
    integer: bool

    # -- expression sugar ----------------------------------------------------
    def _expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0}, 0.0)

    def __add__(self, other):
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return (-1.0 * self._expr()) + other

    def __mul__(self, k):
        return self._expr() * k

    __rmul__ = __mul__

    def __neg__(self):
        return self._expr() * -1.0

    def __le__(self, other):
        return self._expr() <= other

    def __ge__(self, other):
        return self._expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        # Variable-to-variable comparison stays a plain equality test so
        # Variables behave as dict keys; write `x - y == 0` for an
        # equality *constraint* between two variables.
        if isinstance(other, Variable):
            return self.index == other.index and self.name == other.name
        if isinstance(other, (int, float, LinExpr)):
            return self._expr() == other
        return NotImplemented

    def __hash__(self):
        return hash(("Variable", self.index))

    def __repr__(self) -> str:
        return self.name


class LinExpr:
    """A linear expression: ``sum coef_i * var_i + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: dict[int, float] | None = None, constant: float = 0.0):
        self.coeffs: dict[int, float] = dict(coeffs or {})
        self.constant = float(constant)

    @staticmethod
    def _as_expr(value) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value._expr()
        if isinstance(value, (int, float)):
            return LinExpr({}, float(value))
        raise TypeError(f"cannot interpret {value!r} as a linear expression")

    def copy(self) -> "LinExpr":
        """A detached copy (coefficient dict not shared)."""
        return LinExpr(dict(self.coeffs), self.constant)

    def __add__(self, other):
        other = self._as_expr(other)
        out = self.copy()
        for idx, coef in other.coeffs.items():
            out.coeffs[idx] = out.coeffs.get(idx, 0.0) + coef
        out.constant += other.constant
        return out

    __radd__ = __add__

    def __sub__(self, other):
        return self + (self._as_expr(other) * -1.0)

    def __rsub__(self, other):
        return (self * -1.0) + other

    def __mul__(self, k):
        if not isinstance(k, (int, float)):
            raise TypeError("linear expressions only scale by constants")
        return LinExpr({i: c * k for i, c in self.coeffs.items()}, self.constant * k)

    __rmul__ = __mul__

    def __neg__(self):
        return self * -1.0

    def __le__(self, other):
        return Constraint(self - other, "<=")

    def __ge__(self, other):
        return Constraint(self - other, ">=")

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (int, float, Variable, LinExpr)):
            return Constraint(self - other, "==")
        return NotImplemented

    def __hash__(self):
        return id(self)

    def value(self, values: list[float]) -> float:
        """Evaluate under a dense list of variable values."""
        return self.constant + sum(c * values[i] for i, c in self.coeffs.items())

    def __repr__(self) -> str:
        parts = [f"{c:+g}*x{i}" for i, c in sorted(self.coeffs.items())]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


@dataclass
class Constraint:
    """``expr (<=|>=|==) 0`` (the rhs is folded into the constant)."""

    expr: LinExpr
    sense: str  # '<=', '>=' or '=='
    name: str = ""

    def __post_init__(self):
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"bad constraint sense {self.sense!r}")


@dataclass
class Solution:
    """Result of a MILP solve.

    ``trace`` holds ``(elapsed_seconds, incumbent, bound, relative_gap)``
    tuples recorded whenever the incumbent or bound improved — the raw
    data behind the paper's Figure 10/11 convergence plots.
    """

    status: str
    objective: float | None
    values: dict[str, float] = field(default_factory=dict)
    bound: float | None = None
    gap: float | None = None
    runtime: float = 0.0
    nodes_explored: int = 0
    trace: list[tuple[float, float | None, float, float | None]] = field(default_factory=list)

    @property
    def is_optimal(self) -> bool:
        """Whether the solver proved optimality."""
        return self.status == SolveStatus.OPTIMAL

    def __getitem__(self, var: "Variable | str") -> float:
        key = var.name if isinstance(var, Variable) else var
        return self.values[key]

    def int_value(self, var: "Variable | str") -> int:
        """The variable's value rounded to an integer."""
        return round(self[var])


def relative_gap(incumbent: float | None, bound: float) -> float | None:
    """CPLEX-style relative MIP gap ``|inc - bound| / max(|inc|, eps)``."""
    if incumbent is None:
        return None
    denom = max(abs(incumbent), 1e-10)
    return abs(incumbent - bound) / denom


class Model:
    """A minimisation/maximisation MILP model."""

    def __init__(self, name: str = "model"):
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.sense: str = "min"

    # -- variables -------------------------------------------------------------
    def add_var(
        self,
        name: str | None = None,
        lb: float = 0.0,
        ub: float = math.inf,
        integer: bool = False,
    ) -> Variable:
        """Add a decision variable with the given bounds/integrality."""
        idx = len(self.variables)
        var = Variable(idx, name or f"x{idx}", float(lb), float(ub), integer)
        self.variables.append(var)
        return var

    def add_binary(self, name: str | None = None) -> Variable:
        """Add a 0/1 variable."""
        return self.add_var(name, 0.0, 1.0, integer=True)

    def add_integer(self, name: str | None = None, lb: float = 0.0, ub: float = math.inf) -> Variable:
        """Add an integer variable."""
        return self.add_var(name, lb, ub, integer=True)

    def add_continuous(self, name: str | None = None, lb: float = 0.0, ub: float = math.inf) -> Variable:
        """Add a continuous variable."""
        return self.add_var(name, lb, ub, integer=False)

    # -- constraints -------------------------------------------------------------
    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Add a linear constraint built from expression comparisons."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects an expression comparison, e.g. x + y >= 1"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    # -- objective ----------------------------------------------------------------
    def minimize(self, expr) -> None:
        """Set a minimisation objective."""
        self.objective = LinExpr._as_expr(expr)
        self.sense = "min"

    def maximize(self, expr) -> None:
        """Set a maximisation objective."""
        self.objective = LinExpr._as_expr(expr)
        self.sense = "max"

    # -- solving ---------------------------------------------------------------------
    def solve(
        self,
        backend: str = "bnb",
        time_limit: float | None = None,
        gap_tol: float = 1e-6,
        initial_solution: dict[str, float] | None = None,
        trace_callback=None,
    ) -> Solution:
        """Solve the model.

        Parameters
        ----------
        backend:
            ``"bnb"`` for the pure-Python branch and bound (records full
            convergence traces), ``"highs"`` for scipy's MILP.
        time_limit:
            Wall-clock budget in seconds (None = unlimited).
        gap_tol:
            Stop when the relative gap falls below this value.
        initial_solution:
            Optional warm-start assignment (by variable name); used by the
            B&B backend as the starting incumbent if feasible.
        trace_callback:
            Optional ``f(elapsed, incumbent, bound, gap)`` called on every
            trace event (B&B backend only).
        """
        if backend == "bnb":
            from .branch_and_bound import solve_bnb

            return solve_bnb(
                self,
                time_limit=time_limit,
                gap_tol=gap_tol,
                initial_solution=initial_solution,
                trace_callback=trace_callback,
            )
        if backend == "highs":
            from .highs_backend import solve_highs

            return solve_highs(self, time_limit=time_limit, gap_tol=gap_tol)
        raise ValueError(f"unknown backend {backend!r}")

    # -- feasibility -----------------------------------------------------------------
    def check_feasible(self, values: dict[str, float], tol: float = 1e-6) -> bool:
        """Whether a named assignment satisfies bounds, integrality, constraints."""
        dense = [0.0] * len(self.variables)
        for var in self.variables:
            if var.name not in values:
                return False
            v = float(values[var.name])
            if v < var.lb - tol or v > var.ub + tol:
                return False
            if var.integer and abs(v - round(v)) > tol:
                return False
            dense[var.index] = v
        for con in self.constraints:
            lhs = con.expr.value(dense)
            if con.sense == "<=" and lhs > tol:
                return False
            if con.sense == ">=" and lhs < -tol:
                return False
            if con.sense == "==" and abs(lhs) > tol:
                return False
        return True

    def objective_value(self, values: dict[str, float]) -> float:
        """Objective value of a named assignment."""
        dense = [0.0] * len(self.variables)
        for var in self.variables:
            dense[var.index] = float(values.get(var.name, 0.0))
        return self.objective.value(dense)

    def __repr__(self) -> str:
        n_int = sum(1 for v in self.variables if v.integer)
        return (
            f"Model({self.name!r}, vars={len(self.variables)} ({n_int} int), "
            f"constraints={len(self.constraints)})"
        )


def sum_expr(items: Iterable) -> LinExpr:
    """Sum variables/expressions into a single :class:`LinExpr`."""
    out = LinExpr()
    for item in items:
        out = out + item
    return out
