"""Performance instrumentation: counters, stage timers and perf baselines.

This package makes the synthesis pipeline's speed *measurable*:

* :mod:`repro.perf.counters` — process-wide named event counters
  (SBDD rebuilds, reorder swaps, ...) used to prove algorithmic claims
  (e.g. that in-place sifting performs zero rebuilds per candidate
  position);
* :class:`StageTimer` — wall-clock stage timing, threaded through
  :class:`repro.core.compact.Compact`;
* :mod:`repro.perf.schema` — validation for the persisted
  ``BENCH_*.json`` perf-trajectory artifacts;
* :mod:`repro.perf.harness` — the parallel benchmark runner behind
  ``python -m repro bench perf --jobs N --perf-json BENCH_compact.json``
  (imported lazily; it depends on the bench suites and the core
  pipeline, so it must stay out of this package ``__init__``).
"""

from . import counters
from .schema import BENCH_SCHEMA_ID, validate_bench_payload
from .timers import StageTimer

__all__ = [
    "counters",
    "StageTimer",
    "BENCH_SCHEMA_ID",
    "validate_bench_payload",
]
