"""Process-wide named event counters.

A deliberately tiny mechanism: hot code paths call :func:`increment`
with a counter name, and tests/benchmarks bracket a region with
:func:`reset` + :func:`snapshot` to assert how often something happened.
The counters are plain module state (no locks): the synthesis pipeline
is single-threaded per process, and the parallel bench runner forks one
process per circuit, so each worker sees its own counters.

Well-known counter names
------------------------
``sbdd_rebuilds``
    Full shared-BDD constructions performed by the ordering search
    (:func:`repro.bdd.ordering.sbdd_size_for_order` and the initial
    build of :func:`repro.bdd.ordering.sift_order`).
``reorder_swaps``
    Adjacent-level swaps executed by
    :func:`repro.bdd.reorder.swap_adjacent`.
"""

from __future__ import annotations

__all__ = ["increment", "get", "reset", "snapshot"]

_COUNTS: dict[str, int] = {}


def increment(name: str, amount: int = 1) -> None:
    """Add ``amount`` to counter ``name`` (created at 0 on first use)."""
    _COUNTS[name] = _COUNTS.get(name, 0) + amount


def get(name: str) -> int:
    """Current value of counter ``name`` (0 if never incremented)."""
    return _COUNTS.get(name, 0)


def reset(name: str | None = None) -> None:
    """Reset one counter, or all of them when ``name`` is None."""
    if name is None:
        _COUNTS.clear()
    else:
        _COUNTS.pop(name, None)


def snapshot() -> dict[str, int]:
    """A copy of all counters at this instant."""
    return dict(_COUNTS)
