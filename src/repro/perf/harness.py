"""Parallel perf-benchmark harness and ``BENCH_*.json`` emitter.

Runs the full COMPACT pipeline (in-place sift -> SBDD -> labeling ->
mapping) over the benchmark suite, one circuit per worker process, and
records the perf trajectory: per-circuit wall times, SBDD sizes before
and after sifting, op-cache hit rates and sift swap counts.  The
resulting payload validates against :mod:`repro.perf.schema` and is what
``python -m repro bench perf --jobs N --perf-json BENCH_compact.json``
persists.

Determinism: workers are pure (fresh manager and fresh counters per
process/circuit) and records are sorted by circuit name, so ``--jobs 1``
and ``--jobs 4`` produce identical results up to wall-clock fields.
:func:`deterministic_view` strips exactly those fields for comparisons.

This module deliberately lives outside ``repro.perf.__init__`` — it
imports the bench suites and the core pipeline, which themselves import
``repro.perf``.
"""

from __future__ import annotations

import json
import platform
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from ..bdd import build_sbdd, sift_order, static_order
from ..core import Compact
from ..crossbar import validate_design
from . import counters
from .schema import BENCH_SCHEMA_ID, validate_bench_payload

__all__ = [
    "run_perf_circuit",
    "run_perf_suite",
    "run_layer_sweep",
    "deterministic_view",
    "write_bench_json",
    "render_perf_table",
    "render_layer_sweep_table",
]

#: Default per-circuit labeling budget (seconds) for perf runs.
DEFAULT_TIME_LIMIT = 20.0


def run_perf_circuit(
    name: str,
    gamma: float = 0.5,
    method: str = "auto",
    backend: str = "highs",
    time_limit: float = DEFAULT_TIME_LIMIT,
    sift_rounds: int = 1,
    solver_jobs: int = 1,
) -> dict:
    """Synthesize one suite circuit with full perf instrumentation.

    ``solver_jobs`` sets the labeling solver's worker threads (parallel
    cyclic cores / kernel components); it never changes the synthesized
    design.  Returns a JSON-ready record (see :mod:`repro.perf.schema`).
    """
    from ..bench.suites import circuit

    counters.reset()
    netlist = circuit(name)
    start_order = static_order(netlist)
    static_nodes = build_sbdd(netlist, order=start_order).node_count()

    sift_stats: dict = {}
    t0 = time.monotonic()
    order = sift_order(
        netlist, start=start_order, max_rounds=sift_rounds, stats=sift_stats
    )
    t_sift = time.monotonic() - t0

    compact = Compact(
        gamma=gamma, method=method, backend=backend, time_limit=time_limit,
        jobs=solver_jobs,
    )
    t0 = time.monotonic()
    result = compact.synthesize_netlist(netlist, order=order)
    wall = time.monotonic() - t0

    design = result.design

    # Validation tier: exhaustive bitset sweep up to the default cutoff,
    # Monte-Carlo batch beyond (same policy as the pipeline's own check).
    t0 = time.monotonic()
    report = validate_design(design, netlist.evaluate, netlist.inputs)
    t_validate = time.monotonic() - t0

    # BDD-side full-space sweep throughput (assignments per second); the
    # SBDD rebuild is excluded from the timed region.  Skipped for wide
    # circuits where a 2**n sweep stops being the validation engine.
    sweep_rate = None
    n_inputs = len(netlist.inputs)
    if n_inputs <= 20:
        sbdd = build_sbdd(netlist, order=order)
        t0 = time.monotonic()
        sbdd.evaluate_bitset(netlist.inputs)
        t_sweep = time.monotonic() - t0
        sweep_rate = (1 << n_inputs) / t_sweep if t_sweep > 0 else 0.0

    stages = {k: round(v, 6) for k, v in result.times.items()}
    stages["validate"] = round(t_validate, 6)
    return {
        "circuit": name,
        "inputs": len(netlist.inputs),
        "outputs": len(netlist.outputs),
        "sbdd_nodes_static": static_nodes,
        "sbdd_nodes_sifted": sift_stats.get("final_size", static_nodes),
        "sift": {
            "swaps": sift_stats.get("swaps", 0),
            # Rebuilds *during the position search*: total counted builds
            # minus sift_order's single initial construction.
            "rebuilds": counters.get("sbdd_rebuilds") - 1,
            "time_s": t_sift,
        },
        "stages": stages,
        "wall_time_s": wall,
        "validate": {
            "assignments": report.checked,
            "exhaustive": report.exhaustive,
            "ok": report.ok,
            "assignments_per_s": (
                report.checked / t_validate if t_validate > 0 else 0.0
            ),
            "bitset_sweep_assignments_per_s": sweep_rate,
        },
        "bdd_table_size": result.perf["bdd_table_size"],
        "cache": {
            k: v for k, v in result.perf["cache"].items() if k != "entries"
        },
        "crossbar": {
            "rows": design.num_rows,
            "cols": design.num_cols,
            "semiperimeter": design.semiperimeter,
            "max_dimension": design.max_dimension,
        },
        "labeling": {
            "method": result.labeling.meta.get("method", ""),
            "oct_cores": counters.get("oct_cores"),
            "vc_kernel_milps": counters.get("vc_kernel_milps"),
            "vc_kernel_splits": counters.get("vc_kernel_splits"),
        },
        "optimal": result.optimal,
    }


def _worker(task: tuple[str, dict]) -> dict:
    name, kwargs = task
    return run_perf_circuit(name, **kwargs)


def run_perf_suite(
    tier: str | None = None,
    jobs: int = 1,
    names: list[str] | None = None,
    gamma: float = 0.5,
    method: str = "auto",
    backend: str = "highs",
    time_limit: float = DEFAULT_TIME_LIMIT,
    sift_rounds: int = 1,
    solver_jobs: int = 1,
) -> dict:
    """Run the perf harness over the suite; returns the BENCH payload.

    ``jobs > 1`` fans circuits out to a :class:`ProcessPoolExecutor`
    (one circuit per worker); ``solver_jobs`` additionally parallelizes
    the labeling solve *within* each circuit (decomposed cores/kernel
    components).  ``names`` restricts the run to specific suite
    circuits.  Records are sorted by circuit name regardless of
    completion order.
    """
    from ..bench.suites import suite

    if names is None:
        names = [b.name for b in suite(tier)]
    else:
        known = {b.name for b in suite("full")}
        unknown = sorted(set(names) - known)
        if unknown:
            raise ValueError(f"unknown suite circuits: {', '.join(unknown)}")
    kwargs = {
        "gamma": gamma,
        "method": method,
        "backend": backend,
        "time_limit": time_limit,
        "sift_rounds": sift_rounds,
        "solver_jobs": solver_jobs,
    }
    tasks = [(name, kwargs) for name in sorted(set(names))]

    t0 = time.monotonic()
    if jobs <= 1:
        records = [_worker(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            records = list(pool.map(_worker, tasks))
    total_wall = time.monotonic() - t0

    records.sort(key=lambda r: r["circuit"])
    payload = {
        "schema": BENCH_SCHEMA_ID,
        "suite_tier": tier or "fast",
        "gamma": gamma,
        "method": method,
        "backend": backend,
        "time_limit": time_limit,
        "jobs": jobs,
        "solver_jobs": solver_jobs,
        "python": platform.python_version(),
        "circuits": records,
        "totals": {
            "circuits": len(records),
            "wall_time_s": total_wall,
            "sift_swaps": sum(r["sift"]["swaps"] for r in records),
            "sbdd_nodes_sifted": sum(r["sbdd_nodes_sifted"] for r in records),
        },
    }
    return validate_bench_payload(payload)


def _layer_point(task: tuple[str, int, dict]) -> dict:
    """One (circuit, layer-count) synthesis for the layer sweep."""
    from ..bench.suites import circuit

    from ..core.klabel import stitch_lower_bound

    name, layers, kwargs = task
    netlist = circuit(name)
    compact = Compact(layers=layers, **kwargs)
    t0 = time.monotonic()
    result = compact.synthesize_netlist(netlist)
    wall = time.monotonic() - t0
    design = result.design
    report = validate_design(design, netlist.evaluate, netlist.inputs)
    meta = result.labeling.meta
    if layers == 1:
        # The planar path never enters stage 2: a single plane per side
        # admits exactly one assignment, and the certified bound is the
        # planar identity n + oct_lb (what L001 checks).
        plane_optimal = True
        s_lb = len(result.bdd_graph.graph) + stitch_lower_bound(result.labeling)
        certified_gap = design.semiperimeter - s_lb
    else:
        plane_optimal = bool(meta.get("plane_optimal", False))
        certified_gap = int(meta.get("certified_gap", 0))
    return {
        "circuit": name,
        "layers": layers,
        "rows": design.num_rows,
        "cols": design.num_cols,
        "semiperimeter": design.semiperimeter,
        "max_dimension": design.max_dimension,
        "vias": design.via_count,
        "plane_method": meta.get("plane_method", "2d"),
        "plane_optimal": plane_optimal,
        "certified_gap": certified_gap,
        "ok": report.ok,
        "wall_time_s": wall,
    }


def run_layer_sweep(
    names: list[str] | None = None,
    tier: str | None = None,
    layers: tuple[int, ...] = (1, 2, 3),
    jobs: int = 1,
    gamma: float = 0.5,
    method: str = "auto",
    backend: str = "highs",
    time_limit: float = DEFAULT_TIME_LIMIT,
) -> dict:
    """Semiperimeter-vs-layer-count sweep over the benchmark suite.

    Synthesizes every named circuit at each layer count in ``layers``,
    validates each design against its netlist, and returns the
    ``layer_sweep`` block for the BENCH payload: per circuit, one result
    row per layer count (footprint, semiperimeter, via count, whether
    the layered design validated).  The 2-layer and 3-layer points are
    the FLOW-3D-style folds; the 1-layer point is the paper's planar
    baseline, so each row directly reads as "S shrinks (or holds) as
    layers are added".
    """
    from ..bench.suites import suite

    if names is None:
        names = [b.name for b in suite(tier)]
    layer_list = sorted(set(int(k) for k in layers))
    if not layer_list or layer_list[0] < 1:
        raise ValueError("layer counts must be integers >= 1")
    kwargs = {
        "gamma": gamma, "method": method, "backend": backend,
        "time_limit": time_limit,
    }
    tasks = [
        (name, k, kwargs) for name in sorted(set(names)) for k in layer_list
    ]
    if jobs <= 1:
        points = [_layer_point(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            points = list(pool.map(_layer_point, tasks))

    by_circuit: dict[str, list[dict]] = {}
    for point in points:
        row = dict(point)
        row.pop("circuit")
        by_circuit.setdefault(point["circuit"], []).append(row)
    return {
        "layers": layer_list,
        "gamma": gamma,
        "method": method,
        "circuits": [
            {
                "circuit": name,
                "results": sorted(rows, key=lambda r: r["layers"]),
            }
            for name, rows in sorted(by_circuit.items())
        ],
    }


def render_layer_sweep_table(block: dict):
    """Semiperimeter-vs-layer-count table of a ``layer_sweep`` block."""
    from ..bench.tables import Table

    layer_list = block["layers"]
    columns = ["circuit"]
    for k in layer_list:
        columns += [f"S(K={k})", f"RxC(K={k})"]
    columns.append("ok")
    table = Table("Semiperimeter vs memristor layers", columns)
    for entry in block["circuits"]:
        by_k = {r["layers"]: r for r in entry["results"]}
        cells: list = [entry["circuit"]]
        for k in layer_list:
            r = by_k.get(k)
            if r is None:
                cells += ["-", "-"]
            else:
                cells += [r["semiperimeter"], f"{r['rows']}x{r['cols']}"]
        cells.append("yes" if all(r["ok"] for r in entry["results"]) else "NO")
        table.add_row(*cells)
    return table


#: Wall-clock fields stripped by :func:`deterministic_view` (throughput
#: rates are time-derived, so they are clock fields too).
_TIME_FIELDS = frozenset(
    [
        "time_s",
        "wall_time_s",
        "stages",
        "assignments_per_s",
        "bitset_sweep_assignments_per_s",
    ]
)


def deterministic_view(payload: dict) -> dict:
    """The payload minus wall-clock fields and run metadata.

    Two runs of the same suite at any ``--jobs`` level must agree on
    this view exactly; the regression test for deterministic
    parallelism compares it across ``--jobs 1`` and ``--jobs 4``.
    """

    def strip(value):
        if isinstance(value, dict):
            return {k: strip(v) for k, v in value.items() if k not in _TIME_FIELDS}
        if isinstance(value, list):
            return [strip(v) for v in value]
        return value

    view = strip(payload)
    view.pop("jobs", None)
    view.pop("solver_jobs", None)
    view.pop("python", None)
    return view


def write_bench_json(path: str | Path, payload: dict) -> Path:
    """Validate and persist a BENCH payload (pretty-printed, trailing NL)."""
    validate_bench_payload(payload)
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def render_perf_table(payload: dict):
    """Human-readable summary table of a BENCH payload."""
    from ..bench.tables import Table

    table = Table(
        f"Perf baseline ({payload['suite_tier']} suite, gamma={payload['gamma']:g})",
        [
            "circuit", "nodes", "sifted", "swaps", "t_sift(s)",
            "t_synth(s)", "t_val(s)", "hit rate", "R", "C", "S",
        ],
    )
    for r in payload["circuits"]:
        t_val = r.get("stages", {}).get("validate")
        table.add_row(
            r["circuit"],
            r["sbdd_nodes_static"],
            r["sbdd_nodes_sifted"],
            r["sift"]["swaps"],
            round(r["sift"]["time_s"], 3),
            round(r["wall_time_s"], 3),
            "" if t_val is None else round(t_val, 3),
            f"{100 * r['cache']['hit_rate']:.1f}%",
            r["crossbar"]["rows"],
            r["crossbar"]["cols"],
            r["crossbar"]["semiperimeter"],
        )
    table.add_row(
        "TOTAL", "", "", payload["totals"]["sift_swaps"], "",
        round(payload["totals"]["wall_time_s"], 3), "", "", "", "", "",
    )
    return table
