"""Schema validation for persisted ``BENCH_*.json`` perf baselines.

The perf harness (:mod:`repro.perf.harness`) emits one JSON document per
run; committed documents (e.g. ``BENCH_compact.json``) form the repo's
performance trajectory.  Validation is hand-rolled (no ``jsonschema``
dependency): :func:`validate_bench_payload` raises :class:`ValueError`
with a dotted path to the first offending field.
"""

from __future__ import annotations

from numbers import Real

__all__ = ["BENCH_SCHEMA_ID", "validate_bench_payload"]

#: Identifier stamped into every payload; bump on breaking changes.
BENCH_SCHEMA_ID = "repro-bench-perf/1"

#: (field, type) pairs required on every per-circuit record.
_CIRCUIT_FIELDS: tuple[tuple[str, type], ...] = (
    ("circuit", str),
    ("inputs", int),
    ("outputs", int),
    ("sbdd_nodes_static", int),
    ("sbdd_nodes_sifted", int),
    ("bdd_table_size", int),
    ("wall_time_s", Real),
    ("optimal", bool),
)

_SIFT_FIELDS: tuple[tuple[str, type], ...] = (
    ("swaps", int),
    ("rebuilds", int),
    ("time_s", Real),
)

_CACHE_FIELDS: tuple[tuple[str, type], ...] = (
    ("hits", int),
    ("misses", int),
    ("resets", int),
    ("hit_rate", Real),
)

_CROSSBAR_FIELDS: tuple[tuple[str, type], ...] = (
    ("rows", int),
    ("cols", int),
    ("semiperimeter", int),
    ("max_dimension", int),
)

#: Required on every result row of the optional ``layer_sweep`` block.
_LAYER_RESULT_FIELDS: tuple[tuple[str, type], ...] = (
    ("layers", int),
    ("rows", int),
    ("cols", int),
    ("semiperimeter", int),
    ("max_dimension", int),
    ("vias", int),
    ("plane_method", str),
    ("plane_optimal", bool),
    ("certified_gap", int),
    ("ok", bool),
)

#: Required inside the optional per-circuit ``validate`` block (the
#: time-derived ``bitset_sweep_assignments_per_s`` is checked separately
#: because it may be null for wide circuits).
_VALIDATE_FIELDS: tuple[tuple[str, type], ...] = (
    ("assignments", int),
    ("exhaustive", bool),
    ("ok", bool),
    ("assignments_per_s", Real),
)


def _require(mapping, field: str, kind: type, where: str):
    if not isinstance(mapping, dict):
        raise ValueError(f"{where}: expected an object, got {type(mapping).__name__}")
    if field not in mapping:
        raise ValueError(f"{where}.{field}: missing required field")
    value = mapping[field]
    # bool is an int subclass; keep them apart so schemas stay honest.
    if kind is int and isinstance(value, bool):
        raise ValueError(f"{where}.{field}: expected int, got bool")
    if not isinstance(value, kind):
        raise ValueError(
            f"{where}.{field}: expected {kind.__name__}, got {type(value).__name__}"
        )
    return value


def validate_bench_payload(payload: dict) -> dict:
    """Validate a perf-baseline document; returns it for chaining.

    Raises :class:`ValueError` naming the first invalid field.
    """
    schema = _require(payload, "schema", str, "$")
    if schema != BENCH_SCHEMA_ID:
        raise ValueError(f"$.schema: expected {BENCH_SCHEMA_ID!r}, got {schema!r}")
    _require(payload, "suite_tier", str, "$")
    _require(payload, "gamma", Real, "$")
    _require(payload, "jobs", int, "$")
    totals = _require(payload, "totals", dict, "$")
    _require(totals, "circuits", int, "$.totals")
    _require(totals, "wall_time_s", Real, "$.totals")

    circuits = _require(payload, "circuits", list, "$")
    if totals["circuits"] != len(circuits):
        raise ValueError(
            f"$.totals.circuits: {totals['circuits']} != len(circuits) == {len(circuits)}"
        )
    names = []
    for i, record in enumerate(circuits):
        where = f"$.circuits[{i}]"
        for field, kind in _CIRCUIT_FIELDS:
            _require(record, field, kind, where)
        sift = _require(record, "sift", dict, where)
        for field, kind in _SIFT_FIELDS:
            _require(sift, field, kind, f"{where}.sift")
        cache = _require(record, "cache", dict, where)
        for field, kind in _CACHE_FIELDS:
            _require(cache, field, kind, f"{where}.cache")
        crossbar = _require(record, "crossbar", dict, where)
        for field, kind in _CROSSBAR_FIELDS:
            _require(crossbar, field, kind, f"{where}.crossbar")
        stages = _require(record, "stages", dict, where)
        for stage, seconds in stages.items():
            if not isinstance(seconds, Real):
                raise ValueError(f"{where}.stages.{stage}: expected a number")
        # Optional (added with the vectorized validation engine; older
        # committed baselines predate it).
        if "validate" in record:
            validate = _require(record, "validate", dict, where)
            for field, kind in _VALIDATE_FIELDS:
                _require(validate, field, kind, f"{where}.validate")
            sweep = validate.get("bitset_sweep_assignments_per_s")
            if sweep is not None and not isinstance(sweep, Real):
                raise ValueError(
                    f"{where}.validate.bitset_sweep_assignments_per_s: "
                    "expected a number or null"
                )
        names.append(record["circuit"])
    if names != sorted(names):
        raise ValueError("$.circuits: records must be sorted by circuit name")
    if len(set(names)) != len(names):
        raise ValueError("$.circuits: duplicate circuit names")

    # Optional (added with 3D synthesis; older baselines predate it).
    if "layer_sweep" in payload:
        _validate_layer_sweep(payload["layer_sweep"])
    # Optional (added with the async service front; older baselines
    # predate the fleet load generator).
    if "service_load" in payload:
        _validate_service_load(payload["service_load"])
    return payload


#: Required on each per-front report inside the ``service_load`` block.
_LOAD_REPORT_FIELDS: tuple[tuple[str, type], ...] = (
    ("mix", str),
    ("front", str),
    ("nodes", int),
    ("connections", int),
    ("pipeline", int),
    ("requests", int),
    ("wall_time_s", Real),
    ("rps", Real),
    ("ok", int),
    ("errors", int),
    ("error_rate", Real),
    ("cache_hits", int),
    ("hit_rate", Real),
    ("deduped", int),
)

_LOAD_LATENCY_FIELDS: tuple[tuple[str, type], ...] = (
    ("mean", Real),
    ("p50", Real),
    ("p90", Real),
    ("p99", Real),
    ("max", Real),
)


def _validate_load_report(report, where: str) -> None:
    for field, kind in _LOAD_REPORT_FIELDS:
        _require(report, field, kind, where)
    latency = _require(report, "latency_ms", dict, where)
    for field, kind in _LOAD_LATENCY_FIELDS:
        _require(latency, field, kind, f"{where}.latency_ms")
    if report["ok"] + report["errors"] != report["requests"]:
        raise ValueError(f"{where}: ok + errors must equal requests")


def _validate_service_load(block) -> None:
    """The optional ``service_load`` block: a front-vs-front load run.

    Either a single load report or a comparison (``threaded`` +
    ``async`` reports with the measured ``speedup_rps``).
    """
    where = "$.service_load"
    if isinstance(block, dict) and "speedup_rps" in block:
        _require(block, "mix", str, where)
        _require(block, "connections", int, where)
        _require(block, "speedup_rps", Real, where)
        _validate_load_report(
            _require(block, "threaded", dict, where), f"{where}.threaded"
        )
        _validate_load_report(_require(block, "async", dict, where), f"{where}.async")
    else:
        _validate_load_report(block, where)


def _validate_layer_sweep(block) -> None:
    where = "$.layer_sweep"
    layer_list = _require(block, "layers", list, where)
    if not layer_list or any(
        isinstance(k, bool) or not isinstance(k, int) or k < 1 for k in layer_list
    ):
        raise ValueError(f"{where}.layers: expected a list of integers >= 1")
    if layer_list != sorted(set(layer_list)):
        raise ValueError(f"{where}.layers: must be strictly increasing")
    _require(block, "gamma", Real, where)
    _require(block, "method", str, where)
    circuits = _require(block, "circuits", list, where)
    names = []
    for i, entry in enumerate(circuits):
        ewhere = f"{where}.circuits[{i}]"
        names.append(_require(entry, "circuit", str, ewhere))
        results = _require(entry, "results", list, ewhere)
        seen_k = []
        for j, result in enumerate(results):
            rwhere = f"{ewhere}.results[{j}]"
            for field, kind in _LAYER_RESULT_FIELDS:
                _require(result, field, kind, rwhere)
            seen_k.append(result["layers"])
        if seen_k != sorted(set(seen_k)):
            raise ValueError(f"{ewhere}.results: layer counts must be sorted, unique")
        unknown = sorted(set(seen_k) - set(layer_list))
        if unknown:
            raise ValueError(
                f"{ewhere}.results: layer counts {unknown} not in {where}.layers"
            )
    if names != sorted(names):
        raise ValueError(f"{where}.circuits: records must be sorted by circuit name")
    if len(set(names)) != len(names):
        raise ValueError(f"{where}.circuits: duplicate circuit names")
