"""Wall-clock stage timing for multi-stage pipelines."""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["StageTimer"]


class StageTimer:
    """Accumulate wall-clock seconds per named pipeline stage.

    ::

        timer = StageTimer()
        with timer.stage("bdd"):
            sbdd = build_sbdd(netlist)
        with timer.stage("labeling"):
            labeling = label(graph)
        timer.times  # {"bdd": ..., "labeling": ...}

    Re-entering a stage name accumulates (useful for loops).  The timer
    is also usable as a plain dict factory: ``dict(timer.times)``.
    """

    def __init__(self) -> None:
        self.times: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str):
        t0 = time.monotonic()
        try:
            yield self
        finally:
            self.times[name] = self.times.get(name, 0.0) + time.monotonic() - t0

    @property
    def total(self) -> float:
        """Sum of all recorded stage times."""
        return sum(self.times.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        stages = ", ".join(f"{k}={v:.3f}s" for k, v in self.times.items())
        return f"StageTimer({stages})"
