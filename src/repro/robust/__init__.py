"""Defect-aware remapping and fault-tolerant synthesis.

COMPACT synthesizes for a pristine crossbar; fabricated arrays ship with
stuck-at defects.  This package recovers designs on defective arrays by
searching for row/column permutations (and bounded spare lines) under
which every required cell avoids ``stuck_off`` sites and every open cell
avoids ``stuck_on`` sites — constant-ON stitch cells harmlessly reuse
``stuck_on`` sites.  The escalation chain is

    identity -> permute -> permute + spares -> re-synthesize -> RemapFailure

with a greedy/bipartite-matching placer, a MILP fallback on the
:mod:`repro.milp` substrate, end-to-end functional verification of every
accepted placement, and a structured diagnosis (best partial placement
plus blocking faults) when recovery is impossible.

Entry points: :func:`remap` for a synthesized design,
:func:`synthesize_fault_tolerant` for a netlist, and
:func:`yield_comparison` behind ``repro bench yield``.
"""

from .constraints import (
    ON,
    OPEN,
    VAR,
    Violation,
    cell_classes,
    placement_violations,
    sneak_exclusions,
)
from .milp_placer import milp_place
from .pipeline import FaultTolerantResult, synthesize_fault_tolerant
from .placer import greedy_place, repair_sneak_paths
from .provision import line_cover_level, provisioning_table, render_provisioning_table
from .remap import RemapDiagnosis, RemapFailure, RemapResult, remap
from .yieldcmp import YieldComparison, render_yield_table, yield_comparison

__all__ = [
    "OPEN",
    "VAR",
    "ON",
    "Violation",
    "cell_classes",
    "placement_violations",
    "sneak_exclusions",
    "greedy_place",
    "repair_sneak_paths",
    "milp_place",
    "line_cover_level",
    "provisioning_table",
    "render_provisioning_table",
    "remap",
    "RemapResult",
    "RemapDiagnosis",
    "RemapFailure",
    "FaultTolerantResult",
    "synthesize_fault_tolerant",
    "YieldComparison",
    "yield_comparison",
    "render_yield_table",
]
