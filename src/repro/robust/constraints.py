"""Placement constraint model for defect-aware remapping.

A logical crosspoint falls into one of three classes once a design is
fixed:

* ``OPEN`` — unprogrammed; must never conduct, so it cannot sit on a
  ``stuck_on`` site (a short there creates a sneak path);
* ``VAR`` — programmed with a variable literal; it must be able to both
  conduct and isolate, so it tolerates neither ``stuck_off`` nor
  ``stuck_on`` sites;
* ``ON`` — a constant-true stitch cell; it conducts in every evaluation
  anyway, so a ``stuck_on`` site underneath is *harmlessly reused* — only
  ``stuck_off`` breaks it.

:func:`placement_violations` scores a candidate row/column placement
against a :class:`~repro.crossbar.faults.FaultMap` under this model,
including the second-order hazard the per-cell rules miss: two or more
``stuck_on`` shorts meeting on an *unused* line can chain used lines
together into a sneak path that bypasses the programmed logic.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..crossbar.design import CrossbarDesign
from ..crossbar.faults import STUCK_OFF, STUCK_ON, Fault, FaultMap

__all__ = [
    "OPEN", "VAR", "ON", "Violation",
    "cell_classes", "placement_violations", "sneak_exclusions",
]

OPEN = "open"
VAR = "literal"
ON = "on"


@dataclass(frozen=True)
class Violation:
    """One fault a candidate placement fails to avoid."""

    fault: Fault
    #: Logical (row, col) placed on the fault site; None for sneak-path
    #: hazards routed through unused physical lines.
    logical: tuple[int, int] | None
    reason: str


def cell_classes(design: CrossbarDesign) -> dict[tuple[int, int], str]:
    """Class (``VAR`` or ``ON``) of every programmed logical crosspoint.

    Unprogrammed crosspoints are implicitly ``OPEN`` (absent from the
    mapping).
    """
    return {
        (r, c): ON if lit.is_constant() else VAR
        for r, c, lit in design.cells()
    }


def placement_violations(
    design: CrossbarDesign,
    fault_map: FaultMap,
    row_map: Mapping[int, int],
    col_map: Mapping[int, int],
    classes: Mapping[tuple[int, int], str] | None = None,
) -> list[Violation]:
    """All faults violated by placing ``design`` at ``row_map``/``col_map``.

    An empty list is a *necessary* condition for the remap to verify; it
    is very nearly sufficient (the final authority is the end-to-end
    functional check in :mod:`repro.robust.remap`).
    """
    if classes is None:
        classes = cell_classes(design)
    inv_row = {phys: log for log, phys in row_map.items()}
    inv_col = {phys: log for log, phys in col_map.items()}

    out: list[Violation] = []
    sneak_edges: list[Fault] = []
    for fault in fault_map.faults:
        r = inv_row.get(fault.row)
        c = inv_col.get(fault.col)
        if r is not None and c is not None:
            klass = classes.get((r, c), OPEN)
            if fault.kind == STUCK_OFF and klass != OPEN:
                out.append(Violation(fault, (r, c), f"stuck_off under {klass} cell"))
            elif fault.kind == STUCK_ON and klass != ON:
                out.append(Violation(fault, (r, c), f"stuck_on under {klass} cell"))
        elif fault.kind == STUCK_ON:
            # Short touching at least one unused line: harmless alone,
            # but chains of them can bridge used lines.
            sneak_edges.append(fault)

    out.extend(_sneak_path_violations(sneak_edges, set(inv_row), set(inv_col)))
    return out


def _sneak_path_violations(
    edges: list[Fault],
    used_rows: set[int],
    used_cols: set[int],
) -> list[Violation]:
    """Stuck-on shorts whose connected component bridges >= 2 used lines.

    Each stuck-on fault is an edge between a physical wordline and
    bitline; a component (through unused lines) containing two or more
    used lines conducts unconditionally between them — a sneak path no
    per-cell rule catches.  Union-find over the edge endpoints.
    """
    if not edges:
        return []
    parent: dict[tuple[str, int], tuple[str, int]] = {}

    def find(x):
        root = x
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a, b):
        parent[find(a)] = find(b)

    for fault in edges:
        union(("r", fault.row), ("c", fault.col))

    used_count: dict[tuple[str, int], int] = {}
    for kind, used in (("r", used_rows), ("c", used_cols)):
        for line in used:
            node = (kind, line)
            if node in parent:
                root = find(node)
                used_count[root] = used_count.get(root, 0) + 1

    return [
        Violation(fault, None, "sneak path through unused lines")
        for fault in edges
        if used_count.get(find(("r", fault.row)), 0) >= 2
    ]


def sneak_exclusions(
    fault_map: FaultMap,
    slack_rows: int,
    slack_cols: int,
) -> tuple[set[int], set[int]]:
    """Physical lines to leave unused so stuck-on chains cannot bridge.

    Each connected component of the stuck-on edge graph must keep at
    most one of its lines in use — otherwise the shorts conduct between
    the used lines regardless of placement (unless every short happens
    to sit under a constant-ON cell, which this conservative pre-pass
    does not count on).  Greedily keeps one line per component, drawn
    from the axis with the tighter remaining slack, and excludes the
    rest; components the spare budget cannot cover are skipped (the
    placer and repair pass then fight them as best they can).

    Returns ``(excluded_rows, excluded_cols)``.
    """
    comp_rows: dict[tuple[str, int], set[int]] = {}
    comp_cols: dict[tuple[str, int], set[int]] = {}
    parent: dict[tuple[str, int], tuple[str, int]] = {}

    def find(x):
        root = x
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for fault in fault_map.faults:
        if fault.kind == STUCK_ON:
            parent[find(("r", fault.row))] = find(("c", fault.col))
    edge_count: dict[tuple[str, int], int] = {}
    for fault in fault_map.faults:
        if fault.kind == STUCK_ON:
            root = find(("r", fault.row))
            edge_count[root] = edge_count.get(root, 0) + 1
    for node in list(parent):
        kind, line = node
        (comp_rows if kind == "r" else comp_cols).setdefault(find(node), set()).add(line)

    excluded_rows: set[int] = set()
    excluded_cols: set[int] = set()
    components = sorted(
        {*comp_rows, *comp_cols},
        key=lambda root: len(comp_rows.get(root, ())) + len(comp_cols.get(root, ())),
    )
    for root in components:
        rows = comp_rows.get(root, set())
        cols = comp_cols.get(root, set())
        # A lone short can't chain; the per-cell rules already steer the
        # placer around it, so don't burn slack on it here.
        if edge_count.get(root, 0) < 2:
            continue
        row_slack = slack_rows - len(excluded_rows)
        col_slack = slack_cols - len(excluded_cols)
        # Keep one line in use; preferably on the axis whose slack is
        # scarcer, so the exclusions land where spares remain.
        keep_row = bool(rows) and (not cols or row_slack <= col_slack)
        need_rows = len(rows) - (1 if keep_row else 0)
        need_cols = len(cols) - (0 if keep_row else 1)
        if need_rows > row_slack or need_cols > col_slack:
            keep_row = not keep_row  # try keeping the other axis instead
            need_rows = len(rows) - (1 if keep_row else 0)
            need_cols = len(cols) - (0 if keep_row else 1)
            if need_rows > row_slack or need_cols > col_slack:
                continue
        kept = (max(rows) if keep_row else max(cols)) if (rows if keep_row else cols) else None
        excluded_rows.update(r for r in rows if not (keep_row and r == kept))
        excluded_cols.update(c for c in cols if keep_row or c != kept)
    return excluded_rows, excluded_cols
