"""Exact defect-aware placement as a MILP (fallback for the greedy placer).

Two assignment matrices — ``P[r,R]`` (logical wordline ``r`` on physical
wordline ``R``) and ``Q[c,C]`` — with pairwise *forbidden-site*
constraints derived from the fault map:

* a ``stuck_off`` site cannot host any programmed logical cell:
  ``P[r,R] + Q[c,C] <= 1`` for every programmed ``(r, c)``;
* a ``stuck_on`` site can only host a constant-ON stitch cell:
  the same exclusion for every logical ``(r, c)`` that is *not* ON-class.

The objective minimizes displacement (lines moved off their identity
slot), so feasible remaps stay close to the original layout.  Reuses
:mod:`repro.milp` — the same substrate and ``time_limit`` discipline as
the labeling solves.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..crossbar.design import CrossbarDesign
from ..crossbar.faults import STUCK_ON, FaultMap
from ..milp import Model, SolveStatus, sum_expr
from ..perf import counters
from .constraints import ON, cell_classes

__all__ = ["milp_place"]


def milp_place(
    design: CrossbarDesign,
    fault_map: FaultMap,
    allowed_rows: Sequence[int],
    allowed_cols: Sequence[int],
    time_limit: float | None = 10.0,
    backend: str = "highs",
) -> tuple[dict[int, int], dict[int, int]] | None:
    """Solve for a violation-free placement; None when proven infeasible
    (or no placement was found within ``time_limit``)."""
    counters.increment("remap_milp_calls")
    classes = cell_classes(design)
    model = Model("remap")

    p = {
        (r, R): model.add_binary(f"P_{r}_{R}")
        for r in range(design.num_rows)
        for R in allowed_rows
    }
    q = {
        (c, C): model.add_binary(f"Q_{c}_{C}")
        for c in range(design.num_cols)
        for C in allowed_cols
    }

    for r in range(design.num_rows):
        model.add_constraint(sum_expr(p[r, R] for R in allowed_rows) == 1)
    for R in allowed_rows:
        model.add_constraint(sum_expr(p[r, R] for r in range(design.num_rows)) <= 1)
    for c in range(design.num_cols):
        model.add_constraint(sum_expr(q[c, C] for C in allowed_cols) == 1)
    for C in allowed_cols:
        model.add_constraint(sum_expr(q[c, C] for c in range(design.num_cols)) <= 1)

    allowed_row_set = set(allowed_rows)
    allowed_col_set = set(allowed_cols)
    for fault in fault_map.faults:
        R, C = fault.row, fault.col
        if R not in allowed_row_set or C not in allowed_col_set:
            continue
        if fault.kind == STUCK_ON:
            blocked = [
                (r, c)
                for r in range(design.num_rows)
                for c in range(design.num_cols)
                if classes.get((r, c)) != ON
            ]
        else:
            blocked = list(classes)  # every programmed cell needs to conduct
        for r, c in blocked:
            model.add_constraint(p[r, R] + q[c, C] <= 1)

    model.minimize(
        sum_expr(var for (r, R), var in p.items() if r != R)
        + sum_expr(var for (c, C), var in q.items() if c != C)
    )

    solution = model.solve(backend=backend, time_limit=time_limit)
    if solution.status not in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE):
        return None
    row_map = {
        r: R for (r, R), var in p.items() if solution.int_value(var) == 1
    }
    col_map = {
        c: C for (c, C), var in q.items() if solution.int_value(var) == 1
    }
    if len(row_map) != design.num_rows or len(col_map) != design.num_cols:
        return None  # degenerate relaxation artifact; treat as no answer
    return row_map, col_map
