"""Fault-tolerant synthesis: COMPACT + defect-aware remapping.

The full escalation chain for a *netlist* (the design-level stages live
in :mod:`repro.robust.remap`):

    synthesize --> remap (identity/permute/spares)
               --> re-synthesize under different variable orders, remap each
               --> RemapFailure with the best diagnosis across all attempts

Different variable orders yield structurally different crossbars (other
cell positions, other dimensions), so a fault map that blocks one design
often misses another — the cheapest form of design diversity available
to a flow-based pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..circuits.netlist import Netlist
from ..core import Compact, CompactResult
from ..crossbar.faults import FaultMap
from ..perf import counters
from .remap import RemapFailure, RemapResult, remap, with_resynthesis_attempts

__all__ = ["FaultTolerantResult", "synthesize_fault_tolerant"]


@dataclass
class FaultTolerantResult:
    """A synthesized, defect-avoiding, verified crossbar."""

    remap: RemapResult
    synthesis: CompactResult
    resynthesized: bool
    #: Variable order that recovered the mapping (None = the default order).
    order: tuple[str, ...] | None
    #: Re-synthesis attempts consumed (0 when the first design remapped).
    resynthesis_attempts: int

    @property
    def design(self):
        """The physical (remapped) design."""
        return self.remap.design


def _candidate_orders(
    netlist: Netlist, n_orders: int, rng: random.Random
) -> list[list[str]]:
    orders: list[list[str]] = []
    seen = set()
    base = list(netlist.inputs)
    for candidate in [list(reversed(base))] + [
        rng.sample(base, len(base)) for _ in range(max(0, n_orders * 3))
    ]:
        key = tuple(candidate)
        if key not in seen and candidate != base:
            seen.add(key)
            orders.append(candidate)
        if len(orders) >= n_orders:
            break
    return orders


def synthesize_fault_tolerant(
    netlist: Netlist,
    fault_map: FaultMap,
    compact: Compact | None = None,
    *,
    n_orders: int = 2,
    seed: int = 0,
    **remap_kwargs,
) -> FaultTolerantResult:
    """Synthesize ``netlist`` and place it around ``fault_map``'s defects.

    Runs COMPACT, then the remap escalation chain; on failure,
    re-synthesizes under up to ``n_orders`` alternative variable orders
    (reversed first, then seeded shuffles) and retries each design that
    still fits the physical array.  ``remap_kwargs`` are forwarded to
    :func:`repro.robust.remap.remap`.

    Raises :class:`RemapFailure` carrying the best diagnosis across all
    attempts; never leaks a bare solver or indexing error.
    """
    compact = compact or Compact()
    result = compact.synthesize_netlist(netlist)
    try:
        placed = remap(
            result.design, fault_map, netlist.evaluate, netlist.inputs,
            **remap_kwargs,
        )
        return FaultTolerantResult(
            remap=placed, synthesis=result,
            resynthesized=False, order=None, resynthesis_attempts=0,
        )
    except RemapFailure as failure:
        best_failure = failure

    rng = random.Random(seed)
    attempts = 0
    for order in _candidate_orders(netlist, n_orders, rng):
        counters.increment("remap_resynthesis_attempts")
        attempts += 1
        retry = compact.synthesize_netlist(netlist, order=order)
        if (
            retry.design.num_rows > fault_map.rows
            or retry.design.num_cols > fault_map.cols
        ):
            continue  # this order grew the design past the physical array
        try:
            placed = remap(
                retry.design, fault_map, netlist.evaluate, netlist.inputs,
                **remap_kwargs,
            )
            return FaultTolerantResult(
                remap=placed, synthesis=retry,
                resynthesized=True, order=tuple(order),
                resynthesis_attempts=attempts,
            )
        except RemapFailure as failure:
            if len(failure.diagnosis.best_violations) < len(
                best_failure.diagnosis.best_violations
            ):
                best_failure = failure

    raise with_resynthesis_attempts(best_failure, attempts)
