"""Greedy/bipartite-matching placement for defect-aware remapping.

The search alternates two bipartite matchings: with the column placement
fixed, each logical wordline is matched to a compatible physical
wordline (zero placement violations) by Kuhn's augmenting-path
algorithm; then the roles flip and the bitlines are re-matched under the
new row placement.  A few alternations with randomized restarts route
around sparse stuck-at maps in well under a millisecond per design —
the MILP fallback (:mod:`repro.robust.milp_placer`) is only consulted
when this fails.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from ..crossbar.design import CrossbarDesign
from ..crossbar.faults import STUCK_OFF, STUCK_ON, FaultMap
from ..perf import counters
from .constraints import ON, OPEN, Violation, cell_classes, placement_violations

__all__ = ["greedy_place", "repair_sneak_paths"]


def _faults_by_line(fault_map: FaultMap, by_row: bool) -> dict[int, list[tuple[int, str]]]:
    index: dict[int, list[tuple[int, str]]] = {}
    for f in fault_map.faults:
        line, cross = (f.row, f.col) if by_row else (f.col, f.row)
        index.setdefault(line, []).append((cross, f.kind))
    return index


def _line_cost(
    cells: dict[int, str],
    faults_on_line: list[tuple[int, str]],
    inv_cross: dict[int, int],
) -> int:
    """Violations incurred by one logical line on one physical line."""
    cost = 0
    for cross_phys, kind in faults_on_line:
        cross_log = inv_cross.get(cross_phys)
        if cross_log is None:
            continue  # crosses an unused line; handled by the sneak check
        klass = cells.get(cross_log, OPEN)
        if kind == STUCK_OFF and klass != OPEN:
            cost += 1
        elif kind == STUCK_ON and klass != ON:
            cost += 1
    return cost


def _match_side(
    n_logical: int,
    slots: Sequence[int],
    cells_by_line: dict[int, dict[int, str]],
    faults_by_phys: dict[int, list[tuple[int, str]]],
    inv_cross: dict[int, int],
    rng: random.Random | None,
) -> dict[int, int]:
    """Match every logical line to a physical slot, zero-cost where possible.

    Kuhn's algorithm over the zero-cost compatibility graph; logical
    lines with no zero-cost slot left are then filled greedily with the
    cheapest remaining slot.  Identity slots are preferred so feasible
    placements stay close to the original layout.
    """
    costs: dict[int, dict[int, int]] = {}
    edges: dict[int, list[int]] = {}
    for log in range(n_logical):
        cells = cells_by_line.get(log, {})
        row_costs = {
            phys: _line_cost(cells, faults_by_phys.get(phys, ()), inv_cross)
            for phys in slots
        }
        costs[log] = row_costs
        free = [phys for phys in slots if row_costs[phys] == 0]
        # Identity first keeps displacement low; shuffle the rest on restarts.
        if rng is not None:
            rng.shuffle(free)
        free.sort(key=lambda phys: phys != log)
        edges[log] = free

    slot_owner: dict[int, int] = {}

    def try_assign(log: int, visited: set[int]) -> bool:
        for phys in edges[log]:
            if phys in visited:
                continue
            visited.add(phys)
            if phys not in slot_owner or try_assign(slot_owner[phys], visited):
                slot_owner[phys] = log
                return True
        return False

    order = list(range(n_logical))
    if rng is not None:
        rng.shuffle(order)
    for log in order:
        try_assign(log, set())

    assignment = {log: phys for phys, log in slot_owner.items()}
    remaining = [phys for phys in slots if phys not in slot_owner]
    for log in range(n_logical):
        if log not in assignment:
            best = min(remaining, key=lambda phys: (costs[log][phys], phys != log))
            assignment[log] = best
            remaining.remove(best)
    return assignment


def greedy_place(
    design: CrossbarDesign,
    fault_map: FaultMap,
    allowed_rows: Sequence[int],
    allowed_cols: Sequence[int],
    seed: int = 0,
    restarts: int = 8,
    iterations: int = 4,
) -> tuple[dict[int, int], dict[int, int], list[Violation]]:
    """Search for a violation-free placement of ``design`` on the array.

    Returns the best ``(row_map, col_map, violations)`` found;
    ``violations`` is empty on success.  ``allowed_rows``/``allowed_cols``
    bound the physical lines the placement may use (the escalation chain
    widens them when spending spares).
    """
    if len(allowed_rows) < design.num_rows or len(allowed_cols) < design.num_cols:
        raise ValueError("allowed physical lines cannot fit the design")
    counters.increment("remap_greedy_calls")

    classes = cell_classes(design)
    cells_by_row: dict[int, dict[int, str]] = {}
    cells_by_col: dict[int, dict[int, str]] = {}
    for (r, c), klass in classes.items():
        cells_by_row.setdefault(r, {})[c] = klass
        cells_by_col.setdefault(c, {})[r] = klass
    faults_by_prow = _faults_by_line(fault_map, by_row=True)
    faults_by_pcol = _faults_by_line(fault_map, by_row=False)

    rng = random.Random(seed)
    best: tuple[dict[int, int], dict[int, int], list[Violation]] | None = None

    for restart in range(max(1, restarts)):
        shuffler = rng if restart else None
        col_map = {c: allowed_cols[c] for c in range(design.num_cols)}
        if shuffler is not None:
            targets = list(allowed_cols)
            shuffler.shuffle(targets)
            col_map = {c: targets[c] for c in range(design.num_cols)}
        row_map = {r: allowed_rows[r] for r in range(design.num_rows)}

        for _ in range(max(1, iterations)):
            inv_col = {phys: log for log, phys in col_map.items()}
            row_map = _match_side(
                design.num_rows, allowed_rows, cells_by_row,
                faults_by_prow, inv_col, shuffler,
            )
            inv_row = {phys: log for log, phys in row_map.items()}
            col_map = _match_side(
                design.num_cols, allowed_cols, cells_by_col,
                faults_by_pcol, inv_row, shuffler,
            )
            violations = placement_violations(
                design, fault_map, row_map, col_map, classes=classes
            )
            if best is None or len(violations) < len(best[2]):
                best = (dict(row_map), dict(col_map), violations)
            if not violations:
                return best
    assert best is not None
    return best


def repair_sneak_paths(
    design: CrossbarDesign,
    fault_map: FaultMap,
    row_map: dict[int, int],
    col_map: dict[int, int],
    allowed_rows: Sequence[int],
    allowed_cols: Sequence[int],
    max_passes: int = 8,
) -> tuple[dict[int, int], dict[int, int], list[Violation]]:
    """Repair a near-feasible placement by relocating single lines.

    Both the matcher's cost model and the MILP only score *per-cell*
    conflicts; a placement can pass both and still be bridged by a chain
    of stuck-on shorts meeting on unused physical lines.  This steepest-
    descent pass moves one implicated used line per round onto a free
    physical line, accepting only moves that strictly shrink the total
    violation count.  Per-cell violations are eligible too — breaking a
    sneak bridge often trades it for a stuck-on under an open cell that
    one more relocation removes.  Returns the (possibly improved) maps
    and their remaining violations.
    """
    row_map, col_map = dict(row_map), dict(col_map)
    classes = cell_classes(design)
    violations = placement_violations(design, fault_map, row_map, col_map, classes)
    for _ in range(max(1, max_passes)):
        if not violations:
            break
        counters.increment("remap_sneak_repairs")
        moves: list[tuple[int, str, int, int]] = []
        for axis, mapping, allowed in (
            ("r", row_map, allowed_rows),
            ("c", col_map, allowed_cols),
        ):
            used = set(mapping.values())
            free = [p for p in allowed if p not in used]
            if not free:
                continue
            # Every used line in a bridged component is an endpoint of
            # some flagged stuck-on edge, and every per-cell violation
            # names its own row and column — so this covers all of them.
            implicated = {
                phys
                for v in violations
                for phys in ((v.fault.row,) if axis == "r" else (v.fault.col,))
                if phys in used
            }
            inv = {phys: log for log, phys in mapping.items()}
            for phys in sorted(implicated):
                log = inv[phys]
                for target in free:
                    mapping[log] = target
                    count = len(placement_violations(
                        design, fault_map, row_map, col_map, classes
                    ))
                    mapping[log] = phys
                    moves.append((count, axis, log, target))
        if not moves:
            break
        best_count, axis, log, target = min(moves)
        if best_count >= len(violations):
            break
        (row_map if axis == "r" else col_map)[log] = target
        violations = placement_violations(design, fault_map, row_map, col_map, classes)
    return row_map, col_map, violations
