"""Spare-line provisioning estimates from fault maps.

How many spare rows/columns should a fab provision per array so that
(almost) every die is recoverable?  The exact answer needs a remap
attempt per (map, budget) pair; this module gives the standard cheap
structural bound instead: the *line-cover level* of a fault map — the
number of lines (rows or columns) a greedy cover retires to leave a
fault-free subarray.  A die whose map has line-cover level ``k`` is
recoverable by pure line retirement with ``k`` spare lines, so the
cumulative distribution of levels over a fault-map sample is a lower
bound on yield-at-budget — the spare-provisioning table a yield
campaign reports next to its measured functional yield.

The greedy cover is within ``ln(n)`` of the optimal line cover (plain
set-cover bound) and exact whenever faults do not share lines, which at
realistic defect densities is the overwhelmingly common case.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping, Sequence

from ..crossbar.faults import FaultMap

__all__ = ["line_cover_level", "provisioning_table", "render_provisioning_table"]


def line_cover_level(fault_map: FaultMap) -> int:
    """Greedy count of lines (rows or columns) covering every fault.

    0 for a pristine map.  Ties between a row and a column with equal
    remaining coverage break toward the row, then toward the lower
    index, so the level is a pure function of the map's content.
    """
    remaining = {(f.row, f.col) for f in fault_map.faults}
    level = 0
    while remaining:
        rows = Counter(r for r, _ in remaining)
        cols = Counter(c for _, c in remaining)
        best_row = min(rows, key=lambda r: (-rows[r], r))
        best_col = min(cols, key=lambda c: (-cols[c], c))
        if rows[best_row] >= cols[best_col]:
            remaining = {(r, c) for r, c in remaining if r != best_row}
        else:
            remaining = {(r, c) for r, c in remaining if c != best_col}
        level += 1
    return level


def provisioning_table(
    levels: Iterable[int] | Mapping[int, int], max_spares: int | None = None
) -> list[dict]:
    """Cumulative recoverable fraction per spare-line budget.

    ``levels`` are per-sample line-cover levels (0 = works as-is),
    either one entry per sample or a ``{level: count}`` histogram —
    campaign-scale callers pass the histogram.  Each
    returned row is ``{"spares", "samples", "cumulative", "fraction"}``:
    the number of samples at exactly that level, the running total, and
    the running fraction — i.e. the structural yield achievable with at
    most ``spares`` spare lines.  Budgets up to ``max_spares`` (default:
    the largest observed level) are listed even when empty, so the table
    always ends at fraction 1.0 of the observed sample.
    """
    counts = Counter(dict(levels)) if isinstance(levels, Mapping) else Counter(levels)
    total = sum(counts.values())
    if total == 0:
        raise ValueError("provisioning_table needs at least one sample")
    top = max(counts)
    if max_spares is not None:
        top = max(top, max_spares)
    rows = []
    cumulative = 0
    for spares in range(top + 1):
        cumulative += counts.get(spares, 0)
        rows.append({
            "spares": spares,
            "samples": counts.get(spares, 0),
            "cumulative": cumulative,
            "fraction": cumulative / total,
        })
    return rows


def render_provisioning_table(rows: Sequence[dict]) -> str:
    """Fixed-width text table for CLI output."""
    lines = [f"{'spares':>6}  {'samples':>8}  {'cumulative':>10}  {'fraction':>8}"]
    for row in rows:
        lines.append(
            f"{row['spares']:>6}  {row['samples']:>8}  "
            f"{row['cumulative']:>10}  {row['fraction']:>8.4f}"
        )
    return "\n".join(lines)
