"""Defect-aware remapping of synthesized crossbar designs.

Given a :class:`~repro.crossbar.design.CrossbarDesign` and a
post-fabrication :class:`~repro.crossbar.faults.FaultMap`, search for a
row/column permutation — and, when permutation alone fails, a bounded
number of spare rows/columns — under which the design still computes its
function on the defective array.  The escalation chain:

1. **identity** — the design may already tolerate the map as-is;
2. **permute** — greedy/bipartite matching (then a MILP fallback)
   restricted to the primary ``rows x cols`` region;
3. **spares** — the same search over the full physical array, spending
   up to the spare budget;
4. failure — a structured :class:`RemapFailure` carrying the best
   partial placement and the blocking faults (never a bare crash).

Every accepted placement is verified end-to-end with
:func:`~repro.crossbar.validate.validate_under_faults` against the
reference function; constraint satisfaction alone is never trusted.
Re-synthesis under a different variable order (the step beyond spares)
needs the source netlist and lives in :mod:`repro.robust.pipeline`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field, replace

from ..crossbar.design import CrossbarDesign
from ..crossbar.faults import Fault, FaultMap
from ..crossbar.validate import Reference, ValidationReport, validate_under_faults
from ..perf import StageTimer, counters
from .constraints import Violation, placement_violations, sneak_exclusions
from .milp_placer import milp_place
from .placer import greedy_place, repair_sneak_paths

__all__ = ["RemapResult", "RemapDiagnosis", "RemapFailure", "remap"]


@dataclass
class RemapResult:
    """A verified defect-avoiding placement."""

    design: CrossbarDesign  # programmed onto the physical array
    row_map: dict[int, int]
    col_map: dict[int, int]
    stage: str  # 'identity' | 'permute' | 'spares'
    method: str  # 'identity' | 'greedy' | 'milp'
    fault_map: FaultMap
    report: ValidationReport
    times: dict[str, float] = field(default_factory=dict)

    @property
    def spare_rows_used(self) -> int:
        """Logical wordlines relocated beyond the primary region."""
        limit = len(self.row_map)
        return sum(1 for phys in self.row_map.values() if phys >= limit)

    @property
    def spare_cols_used(self) -> int:
        limit = len(self.col_map)
        return sum(1 for phys in self.col_map.values() if phys >= limit)

    @property
    def displacement(self) -> int:
        """Lines moved off their identity slot (remap perturbation size)."""
        return sum(1 for log, phys in self.row_map.items() if log != phys) + sum(
            1 for log, phys in self.col_map.items() if log != phys
        )


@dataclass
class RemapDiagnosis:
    """Why remapping failed, and the best partial placement reached."""

    stages: tuple[str, ...]  # escalation stages attempted, in order
    best_stage: str | None
    best_violations: tuple[Violation, ...]
    blocking_faults: tuple[Fault, ...]
    best_row_map: dict[int, int]
    best_col_map: dict[int, int]
    #: Placements that failed the end-to-end functional check: either
    #: constraint-clean ones the model was too optimistic about, or
    #: near-miss candidates given a best-effort verification.
    verification_failures: int = 0
    #: Variable-order re-synthesis attempts (pipeline level; 0 here).
    resynthesis_attempts: int = 0
    message: str = ""

    def summary(self) -> str:
        """One-line human-readable diagnosis."""
        blockers = ", ".join(
            f"{f.kind}@({f.row},{f.col})" for f in self.blocking_faults[:6]
        )
        if len(self.blocking_faults) > 6:
            blockers += f", ... ({len(self.blocking_faults)} total)"
        return (
            f"remap failed after {'/'.join(self.stages)}: best stage "
            f"{self.best_stage or 'none'} left {len(self.best_violations)} "
            f"violation(s); blocking faults: {blockers or 'none'}"
        )


class RemapFailure(Exception):
    """Raised when no verified placement exists within the search budget.

    Always carries a :class:`RemapDiagnosis` — callers get the best
    partial result and the blocking faults instead of a crash.
    """

    def __init__(self, diagnosis: RemapDiagnosis):
        self.diagnosis = diagnosis
        super().__init__(diagnosis.message or diagnosis.summary())


def _blocking_faults(violations: Sequence[Violation]) -> tuple[Fault, ...]:
    seen: dict[Fault, None] = {}
    for v in violations:
        seen.setdefault(v.fault, None)
    return tuple(sorted(seen, key=lambda f: (f.row, f.col, f.kind)))


def remap(
    design: CrossbarDesign,
    fault_map: FaultMap,
    reference: Reference,
    inputs: Sequence[str],
    *,
    max_spare_rows: int | None = None,
    max_spare_cols: int | None = None,
    method: str = "auto",
    time_limit: float | None = 10.0,
    seed: int = 0,
    restarts: int = 8,
    exhaustive_limit: int = 12,
    samples: int = 256,
) -> RemapResult:
    """Find and verify a defect-avoiding placement of ``design``.

    Parameters
    ----------
    fault_map:
        Defects of the physical array; its dimensions must be at least
        the design's, and any surplus rows/columns are the spare pool.
    reference, inputs:
        The golden function, for the end-to-end verification of every
        candidate (exhaustive up to ``exhaustive_limit`` inputs, seeded
        Monte-Carlo with ``samples`` assignments beyond).
    max_spare_rows, max_spare_cols:
        Spare budget; ``None`` allows the whole surplus.
    method:
        ``"greedy"``, ``"milp"``, or ``"auto"`` (greedy first, MILP as
        the fallback whenever greedy leaves violations).
    time_limit:
        Wall-clock budget per MILP fallback solve (same semantics as the
        labeling solves).

    Returns a verified :class:`RemapResult`; raises :class:`RemapFailure`
    with a full diagnosis when every stage fails.
    """
    if method not in ("auto", "greedy", "milp"):
        raise ValueError(f"unknown remap method {method!r}")
    if fault_map.rows < design.num_rows or fault_map.cols < design.num_cols:
        raise ValueError(
            f"fault map array {fault_map.rows}x{fault_map.cols} cannot hold the "
            f"{design.num_rows}x{design.num_cols} design"
        )
    counters.increment("remap_attempts")
    timer = StageTimer()

    spare_rows = fault_map.rows - design.num_rows
    spare_cols = fault_map.cols - design.num_cols
    if max_spare_rows is not None:
        spare_rows = min(spare_rows, max_spare_rows)
    if max_spare_cols is not None:
        spare_cols = min(spare_cols, max_spare_cols)

    def verify(row_map, col_map, stage, how) -> RemapResult | None:
        counters.increment("remap_verifications")
        with timer.stage("verify"):
            physical = design.permuted(
                row_map, col_map, num_rows=fault_map.rows, num_cols=fault_map.cols
            )
            report = validate_under_faults(
                physical, reference, inputs, fault_map.faults,
                exhaustive_limit=exhaustive_limit, samples=samples, seed=seed,
            )
        if report.ok:
            return RemapResult(
                design=physical, row_map=dict(row_map), col_map=dict(col_map),
                stage=stage, method=how, fault_map=fault_map,
                report=report, times=dict(timer.times),
            )
        counters.increment("remap_verification_failures")
        return None

    stages_tried: list[str] = []
    best: tuple[str, dict, dict, list[Violation]] | None = None
    near_misses: list[tuple[int, str, str, dict, dict]] = []
    verification_failures = 0

    identity_rows = {r: r for r in range(design.num_rows)}
    identity_cols = {c: c for c in range(design.num_cols)}
    stage_plan = [("identity", 0, 0), ("permute", 0, 0)]
    if spare_rows or spare_cols:
        stage_plan.append(("spares", spare_rows, spare_cols))

    for stage, extra_r, extra_c in stage_plan:
        stages_tried.append(stage)
        allowed_rows = range(design.num_rows + extra_r)
        allowed_cols = range(design.num_cols + extra_c)

        candidates: list[tuple[str, dict, dict, list[Violation]]] = []
        if stage == "identity":
            with timer.stage("identity"):
                violations = placement_violations(
                    design, fault_map, identity_rows, identity_cols
                )
            candidates.append(("identity", identity_rows, identity_cols, violations))
        else:
            # Lines that stuck-on chains would bridge if left unused:
            # spend spare slack to keep them out of play entirely.
            excl_rows, excl_cols = sneak_exclusions(
                fault_map, len(allowed_rows) - design.num_rows,
                len(allowed_cols) - design.num_cols,
            )
            slot_sets = [(list(allowed_rows), list(allowed_cols))]
            if excl_rows or excl_cols:
                slot_sets.insert(0, (
                    [r for r in allowed_rows if r not in excl_rows],
                    [c for c in allowed_cols if c not in excl_cols],
                ))
            if method in ("auto", "greedy"):
                for slot_rows, slot_cols in slot_sets:
                    with timer.stage("greedy"):
                        row_map, col_map, violations = greedy_place(
                            design, fault_map, slot_rows, slot_cols,
                            seed=seed, restarts=restarts,
                        )
                    candidates.append(("greedy", row_map, col_map, violations))
                    if not violations:
                        break
            needs_milp = method == "milp" or (
                method == "auto"
                and (not candidates or all(c[3] for c in candidates))
            )
            if needs_milp:
                for slot_rows, slot_cols in slot_sets:
                    with timer.stage("milp"):
                        placed = milp_place(
                            design, fault_map, slot_rows, slot_cols,
                            time_limit=time_limit,
                        )
                    if placed is None:
                        continue
                    row_map, col_map = placed
                    violations = placement_violations(
                        design, fault_map, row_map, col_map
                    )
                    candidates.append(("milp", row_map, col_map, violations))
                    if not violations:
                        break

        for how, row_map, col_map, violations in candidates:
            if violations:
                # Near-feasible: local line relocation can often finish
                # the job without a full re-placement.
                with timer.stage("repair"):
                    row_map, col_map, violations = repair_sneak_paths(
                        design, fault_map, row_map, col_map,
                        list(allowed_rows), list(allowed_cols),
                    )
            if best is None or len(violations) < len(best[3]):
                best = (stage, dict(row_map), dict(col_map), list(violations))
            if violations:
                near_misses.append(
                    (len(violations), stage, how, dict(row_map), dict(col_map))
                )
                continue
            result = verify(row_map, col_map, stage, how)
            if result is not None:
                return result
            verification_failures += 1

    # The constraint model is conservative: a lone stuck-on under an
    # open cell, say, may not disturb the function at all.  Give the
    # least-violating candidates a shot at the end-to-end check — it is
    # the final authority in both directions.
    seen_maps: set[tuple] = set()
    for count, stage, how, row_map, col_map in sorted(
        near_misses, key=lambda t: t[0]
    )[:6]:
        key = (tuple(sorted(row_map.items())), tuple(sorted(col_map.items())))
        if key in seen_maps:
            continue
        seen_maps.add(key)
        result = verify(row_map, col_map, stage, how)
        if result is not None:
            return result
        verification_failures += 1

    assert best is not None
    best_stage, best_rows, best_cols, best_violations = best
    diagnosis = RemapDiagnosis(
        stages=tuple(stages_tried),
        best_stage=best_stage,
        best_violations=tuple(best_violations),
        blocking_faults=_blocking_faults(best_violations),
        best_row_map=best_rows,
        best_col_map=best_cols,
        verification_failures=verification_failures,
    )
    diagnosis.message = diagnosis.summary()
    raise RemapFailure(diagnosis)


def with_resynthesis_attempts(failure: RemapFailure, attempts: int) -> RemapFailure:
    """A copy of ``failure`` recording pipeline-level re-synthesis tries."""
    diagnosis = replace(failure.diagnosis, resynthesis_attempts=attempts)
    diagnosis.message = diagnosis.summary() + (
        f" (after {attempts} re-synthesis attempt(s))" if attempts else ""
    )
    return RemapFailure(diagnosis)
