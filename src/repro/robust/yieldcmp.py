"""Naive vs. remapped yield comparison (``repro bench yield``).

For each suite circuit: synthesize once, then draw seeded random
stuck-at fault maps on a physical array with a few spare lines and
measure

* **naive yield** — how often the design, placed as-synthesized on a
  chip *without* the spares, still computes its function;
* **remapped yield** — how often the escalation chain
  (permute -> spares -> re-synthesize) recovers a verified-functional
  placement.

Every unrecovered trial must end in a structured
:class:`~repro.robust.remap.RemapFailure`; any other exception escaping
the chain is a bug, so the harness deliberately does not catch it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..bench.suites import suite
from ..bench.tables import Table
from ..core import Compact
from ..crossbar.faults import is_functional_under_faults, random_fault_map
from ..perf import StageTimer
from .pipeline import synthesize_fault_tolerant
from .remap import RemapFailure, remap

__all__ = ["YieldComparison", "yield_comparison", "render_yield_table"]


@dataclass
class YieldComparison:
    """Per-circuit outcome of the yield sweep."""

    circuit: str
    rows: int
    cols: int
    spare_rows: int
    spare_cols: int
    trials: int
    naive_ok: int
    remapped_ok: int
    #: Recoveries per stage: identity / permute / spares / resynth.
    stages: dict[str, int]
    failures: int  # trials that ended in a RemapFailure diagnosis
    wall_time_s: float

    @property
    def naive_yield(self) -> float:
        return self.naive_ok / self.trials

    @property
    def remapped_yield(self) -> float:
        return self.remapped_ok / self.trials


def yield_comparison(
    tier: str | None = None,
    names: list[str] | None = None,
    *,
    trials: int = 20,
    p_stuck_on: float = 0.002,
    p_stuck_off: float = 0.02,
    spare_rows: int = 2,
    spare_cols: int = 2,
    seed: int = 0,
    time_limit: float | None = 5.0,
    gamma: float = 0.5,
    resynthesize: bool = False,
) -> list[YieldComparison]:
    """Run the naive-vs-remapped yield sweep over the benchmark suite.

    Designs are synthesized with the fast heuristic labeling (mapping
    quality is irrelevant here; defect tolerance is what is measured).
    With ``resynthesize`` the chain may also re-synthesize failing
    circuits under alternative variable orders (slower, higher recovery).
    """
    entries = suite(tier)
    if names:
        known = {e.name for e in entries}
        unknown = sorted(set(names) - known)
        if unknown:
            raise ValueError(f"unknown suite circuits: {', '.join(unknown)}")
        entries = [e for e in entries if e.name in names]

    compact = Compact(gamma=gamma, method="heuristic")
    results: list[YieldComparison] = []
    for entry in entries:
        netlist = entry.build()
        synth = compact.synthesize_netlist(netlist)
        design = synth.design
        # str seeding is deterministic (hashed with sha512, not hash()).
        rng = random.Random(f"{seed}:{entry.name}")
        timer = StageTimer()
        naive_ok = remapped_ok = failures = 0
        stages: dict[str, int] = {}

        with timer.stage("sweep"):
            for _ in range(trials):
                fault_map = random_fault_map(
                    design.num_rows + spare_rows,
                    design.num_cols + spare_cols,
                    p_stuck_on=p_stuck_on,
                    p_stuck_off=p_stuck_off,
                    seed=rng,
                )
                naive_faults = fault_map.restricted(
                    design.num_rows, design.num_cols
                ).faults
                if is_functional_under_faults(
                    design, netlist.evaluate, netlist.inputs, naive_faults
                ):
                    naive_ok += 1
                try:
                    if resynthesize:
                        ft = synthesize_fault_tolerant(
                            netlist, fault_map, compact,
                            time_limit=time_limit, seed=seed,
                        )
                        stage = "resynth" if ft.resynthesized else ft.remap.stage
                    else:
                        placed = remap(
                            design, fault_map, netlist.evaluate, netlist.inputs,
                            time_limit=time_limit, seed=seed,
                        )
                        stage = placed.stage
                    remapped_ok += 1
                    stages[stage] = stages.get(stage, 0) + 1
                except RemapFailure:
                    failures += 1

        results.append(
            YieldComparison(
                circuit=entry.name,
                rows=design.num_rows, cols=design.num_cols,
                spare_rows=spare_rows, spare_cols=spare_cols,
                trials=trials, naive_ok=naive_ok, remapped_ok=remapped_ok,
                stages=stages, failures=failures,
                wall_time_s=timer.times["sweep"],
            )
        )
    return results


def render_yield_table(results: list[YieldComparison]) -> Table:
    """Format the sweep as the ``repro bench yield`` report table."""
    table = Table(
        "Yield: naive placement vs defect-aware remapping",
        [
            "circuit", "array", "spares", "trials",
            "naive", "remapped", "identity", "permute", "spare", "resynth", "failed",
        ],
    )
    for r in results:
        table.add_row(
            r.circuit,
            f"{r.rows}x{r.cols}",
            f"+{r.spare_rows}r/+{r.spare_cols}c",
            r.trials,
            f"{r.naive_yield:.2f}",
            f"{r.remapped_yield:.2f}",
            r.stages.get("identity", 0),
            r.stages.get("permute", 0),
            r.stages.get("spares", 0),
            r.stages.get("resynth", 0),
            r.failures,
        )
    if results:
        total = sum(r.trials for r in results)
        table.add_row(
            "TOTAL", "", "", total,
            f"{sum(r.naive_ok for r in results) / total:.2f}",
            f"{sum(r.remapped_ok for r in results) / total:.2f}",
            sum(r.stages.get('identity', 0) for r in results),
            sum(r.stages.get('permute', 0) for r in results),
            sum(r.stages.get('spares', 0) for r in results),
            sum(r.stages.get('resynth', 0) for r in results),
            sum(r.failures for r in results),
        )
    return table
