"""Persistent synthesis service: daemon, client, cache and job engine.

COMPACT synthesis is expensive (NP-hard labeling) and, for a given
request, perfectly deterministic — the ideal shape for a long-lived
service in front of the pipeline.  This package turns the batch tool
into that service:

* :mod:`repro.service.protocol` — versioned NDJSON request/response
  frames with structured error objects;
* :mod:`repro.service.cache` — content-addressed result cache
  (SHA-256 of the request's canonical form; LRU memory front over a
  JSON-on-disk store);
* :mod:`repro.service.jobs` — request execution, shared with the
  single-shot CLI so service results are byte-identical to
  ``repro synth`` / ``repro map`` artifacts;
* :mod:`repro.service.engine` — bounded queue, process-pool workers,
  in-flight deduplication, per-job timeouts, crash recovery, drain;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  socket daemon behind ``repro serve`` and the client behind
  ``repro client``;
* :mod:`repro.service.bench` — the ``repro bench service`` trace
  replay (throughput, latency percentiles, cache hit rate).

Everything is stdlib-only: no web framework, no serialization
dependency.
"""

from .cache import ResultCache, canonical_request, request_key
from .client import RetryPolicy, ServiceClient, ServiceClientError, ServiceUnavailable
from .engine import Engine
from .protocol import (
    CACHEABLE_METHODS,
    ERROR_CODES,
    METHODS,
    PROTOCOL_VERSION,
    ProtocolError,
)
from .remote import DirectoryRemoteTier, InMemoryRemoteTier, RemoteTier

__version__ = "1.1"

# Imported after __version__ is bound: server.py reads it back from here.
from .server import ServiceServer, format_address, parse_address  # noqa: E402
from .threaded import ThreadedServiceServer  # noqa: E402

__all__ = [
    "ServiceServer",
    "ThreadedServiceServer",
    "parse_address",
    "format_address",
    "RemoteTier",
    "InMemoryRemoteTier",
    "DirectoryRemoteTier",
    "PROTOCOL_VERSION",
    "METHODS",
    "CACHEABLE_METHODS",
    "ERROR_CODES",
    "ProtocolError",
    "ResultCache",
    "canonical_request",
    "request_key",
    "Engine",
    "RetryPolicy",
    "ServiceClient",
    "ServiceClientError",
    "ServiceUnavailable",
]
