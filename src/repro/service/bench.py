"""Trace replay benchmark for the synthesis service.

``repro bench service`` replays a request trace — either a recorded
JSON file or a deterministic synthetic trace of small expression
synthesis requests with a configurable repeat rate — against a running
server (``--connect``) or an in-process one spun up for the run, and
reports throughput, latency percentiles and the cache hit rate.

A synthetic trace with ``repeat_rate`` r over n requests contains
``round(n * (1 - r))`` distinct requests (each appearing first exactly
once), so with a single sequential client the expected number of cache
hits is exactly the number of repeats — the invariant the service
acceptance test pins down.
"""

from __future__ import annotations

import json
import random
import threading
import time
from pathlib import Path

from .client import ServiceClient, ServiceClientError, ServiceUnavailable
from .protocol import make_request

__all__ = [
    "build_trace",
    "load_trace",
    "replay_trace",
    "run_service_bench",
    "render_service_table",
]

_VARS = ("a", "b", "c", "d", "e")


def _random_expr(rng: random.Random) -> str:
    """A small deterministic boolean expression (3 literals, 5 vars)."""
    literals = []
    for var in rng.sample(_VARS, 3):
        literals.append(var if rng.random() < 0.7 else f"~{var}")
    op1, op2 = (rng.choice(("&", "|")) for _ in range(2))
    return f"({literals[0]} {op1} {literals[1]}) {op2} {literals[2]}"


def build_trace(
    requests: int = 200,
    repeat_rate: float = 0.5,
    seed: int = 0,
    gamma: float = 0.5,
) -> list[dict]:
    """A deterministic synthetic trace of ``synth`` requests.

    Distinct requests appear in order of first use; repeats are drawn
    uniformly from the already-seen pool, so every repeat of a request
    lands strictly after its first occurrence.
    """
    if requests < 1:
        raise ValueError("requests must be >= 1")
    if not 0.0 <= repeat_rate < 1.0:
        raise ValueError("repeat_rate must lie in [0, 1)")
    rng = random.Random(seed)
    distinct = max(1, round(requests * (1.0 - repeat_rate)))
    pool: list[dict] = []
    seen: set[str] = set()
    while len(pool) < distinct:
        expr = _random_expr(rng)
        if expr in seen:
            continue
        seen.add(expr)
        pool.append({
            "method": "synth",
            "params": {"expr": expr, "gamma": gamma, "validate": True},
        })
    trace = list(pool)
    for _ in range(requests - distinct):
        position = rng.randrange(1, len(trace) + 1)
        trace.insert(position, rng.choice(trace[:position]))
    return trace


def load_trace(path: str | Path) -> list[dict]:
    """Read a recorded trace: a JSON list of ``{"method", "params"}``."""
    entries = json.loads(Path(path).read_text())
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{path}: trace must be a non-empty JSON list")
    for i, entry in enumerate(entries):
        # Reuse the protocol's request validation for early, precise errors.
        try:
            make_request(entry.get("method"), entry.get("params", {}))
        except (AttributeError, ValueError) as exc:
            raise ValueError(f"{path}: trace entry {i}: {exc}") from exc
    return entries


def _connect(connect) -> ServiceClient:
    if connect[0] == "unix":
        return ServiceClient(socket_path=connect[1])
    return ServiceClient(tcp=(connect[1], connect[2]))


def replay_trace(trace: list[dict], connect, clients: int = 1) -> list[dict]:
    """Replay ``trace`` over ``clients`` connections (round-robin split).

    Each client replays its slice sequentially on its own connection.
    Returns one record per request, in trace order: ``{"ok", "cached",
    "deduped", "code", "latency_s"}``.
    """
    clients = max(1, min(clients, len(trace)))
    records: list[dict | None] = [None] * len(trace)

    def _run(slice_offset: int) -> None:
        with _connect(connect) as client:
            for index in range(slice_offset, len(trace), clients):
                entry = trace[index]
                t0 = time.monotonic()
                try:
                    response = client.call(entry["method"], entry.get("params", {}))
                    record = {
                        "ok": bool(response.get("ok")),
                        "cached": bool(response.get("cached", False)),
                        "deduped": bool(response.get("deduped", False)),
                        "code": None if response.get("ok")
                        else response["error"]["code"],
                    }
                except (ServiceUnavailable, ServiceClientError) as exc:
                    record = {
                        "ok": False, "cached": False, "deduped": False,
                        "code": getattr(exc, "code", "unavailable"),
                    }
                record["latency_s"] = time.monotonic() - t0
                records[index] = record

    threads = [
        threading.Thread(target=_run, args=(offset,), name=f"replay-{offset}")
        for offset in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [r for r in records if r is not None]


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def run_service_bench(
    requests: int = 200,
    repeat_rate: float = 0.5,
    clients: int = 1,
    jobs: int | None = None,
    seed: int = 0,
    connect=None,
    trace_path: str | Path | None = None,
    cache_dir: str | Path | None = None,
) -> dict:
    """Replay a trace and measure the service; returns a report payload.

    Without ``connect`` an in-process server is started on an ephemeral
    TCP port for the duration of the run.
    """
    if trace_path is not None:
        trace = load_trace(trace_path)
    else:
        trace = build_trace(requests=requests, repeat_rate=repeat_rate, seed=seed)
    distinct = len({
        json.dumps(entry, sort_keys=True) for entry in trace
    })
    repeats = len(trace) - distinct

    server = None
    if connect is None:
        from .server import ServiceServer

        server = ServiceServer(("tcp", "127.0.0.1", 0), jobs=jobs, cache_dir=cache_dir)
        server.start()
        connect = server.address
    try:
        t0 = time.monotonic()
        records = replay_trace(trace, connect, clients=clients)
        wall = time.monotonic() - t0
        with _connect(connect) as client:
            stats = client.stats()
    finally:
        if server is not None:
            server.stop()

    latencies = sorted(r["latency_s"] for r in records)
    cached = sum(1 for r in records if r["cached"])
    deduped = sum(1 for r in records if r["deduped"])
    failed = sum(1 for r in records if not r["ok"])
    return {
        "requests": len(records),
        "distinct": distinct,
        "repeats": repeats,
        "clients": clients,
        "wall_time_s": wall,
        "throughput_rps": len(records) / wall if wall > 0 else 0.0,
        "ok": len(records) - failed,
        "failed": failed,
        "cache_hits": cached,
        "deduped": deduped,
        "hit_rate": cached / len(records) if records else 0.0,
        "latency_s": {
            "mean": sum(latencies) / len(latencies) if latencies else 0.0,
            "p50": _percentile(latencies, 0.50),
            "p90": _percentile(latencies, 0.90),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
        "server": stats,
    }


def render_service_table(payload: dict):
    """Human-readable summary of a :func:`run_service_bench` payload."""
    from ..bench.tables import Table

    table = Table(
        f"Service trace replay ({payload['requests']} requests, "
        f"{payload['clients']} client(s))",
        ["metric", "value"],
    )
    latency = payload["latency_s"]
    engine = payload["server"]["engine"]
    rows = [
        ("requests ok / failed", f"{payload['ok']} / {payload['failed']}"),
        ("distinct / repeats", f"{payload['distinct']} / {payload['repeats']}"),
        ("throughput", f"{payload['throughput_rps']:.1f} req/s"),
        ("cache hits", f"{payload['cache_hits']} ({100 * payload['hit_rate']:.1f}%)"),
        ("deduped in-flight", str(payload["deduped"])),
        ("latency p50", f"{1000 * latency['p50']:.1f} ms"),
        ("latency p90", f"{1000 * latency['p90']:.1f} ms"),
        ("latency p99", f"{1000 * latency['p99']:.1f} ms"),
        ("latency max", f"{1000 * latency['max']:.1f} ms"),
        ("workers", str(engine["workers"])),
        ("worker crashes", str(engine["counters"].get("service_worker_crashes", 0))),
    ]
    for name, value in rows:
        table.add_row(name, value)
    return table
